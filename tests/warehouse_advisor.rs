//! Warehouse → advisor end-to-end: the XML data-warehouse workload
//! ([`partix_gen::warehouse`]) drives the advisor's frequency miner.
//! The region-skewed dashboard query log is mined for hot equality
//! predicates, the mined paths become horizontal re-split candidates,
//! the recommended design passes the formal completeness/disjointness
//! check, and both adoption paths — fresh registration and live
//! [`partix_advisor::rebalance`] migration — keep answering the star
//! queries with the centralized oracle's bytes.

use partix::engine::{Distribution, NetworkModel, PartiX, Placement};
use partix::frag::{check_correctness, FragmentDef, FragmentationSchema, Fragmenter};
use partix::gen::{gen_warehouse, warehouse_queries, warehouse_workload, WarehouseConfig};
use partix::path::{PathExpr, Predicate};
use partix::query::Item;
use partix::schema::{CollectionDef, ElementDecl, Occurs, RepoKind, Schema};
use partix_advisor::{
    advise_live, mine_predicates, mined_split_paths, AdvisorConfig, RebalanceOptions,
    WorkloadProfiler,
};
use std::sync::Arc;

const FACTS: &str = "facts";
const FACTS_CENTRAL: &str = "facts_central";
const DIM_PRODUCTS: &str = "dim_products";
const DIM_OUTLETS: &str = "dim_outlets";
const NODES: usize = 4;
const SEED: u64 = 0x00DA_7A1B;

fn p(s: &str) -> PathExpr {
    PathExpr::parse(s).expect("path")
}

fn canonical(items: &[Item]) -> String {
    let mut lines: Vec<String> = items.iter().map(Item::serialize).collect();
    lines.sort();
    lines.join("\n")
}

/// Oracle equality for star-query answers. Aggregates like `sum()` are
/// composed from per-fragment partials, so a re-fragmentation legally
/// reorders a float summation; numeric answers compare under a relative
/// epsilon, everything else must match byte-for-byte.
fn assert_matches_oracle(id: &str, phase: &str, items: &[Item], oracle: &str) {
    let got = canonical(items);
    if let (Ok(a), Ok(b)) = (got.parse::<f64>(), oracle.parse::<f64>()) {
        assert!(
            (a - b).abs() <= 1e-9 * b.abs().max(1.0),
            "{id} {phase}: {a} vs oracle {b}",
        );
    } else {
        assert_eq!(got, oracle, "{id} {phase}");
    }
}

/// The fact collection: `Sale`-rooted MD documents.
fn facts_collection() -> CollectionDef {
    let sale = ElementDecl::complex(
        "Sale",
        vec![
            (ElementDecl::leaf("Id"), Occurs::ONE),
            (ElementDecl::leaf("Product"), Occurs::ONE),
            (ElementDecl::leaf("Outlet"), Occurs::ONE),
            (ElementDecl::leaf("Region"), Occurs::ONE),
            (ElementDecl::leaf("Quarter"), Occurs::ONE),
            (ElementDecl::leaf("Units"), Occurs::ONE),
            (ElementDecl::leaf("Amount"), Occurs::ONE),
        ],
    );
    CollectionDef::new(
        FACTS,
        Arc::new(Schema::new("warehouse_facts", sale)),
        p("/Sale"),
        RepoKind::MultipleDocuments,
    )
}

/// The un-advised starting point: the whole fact collection as one
/// fragment sitting on node 0 of a `NODES`-node cluster, plus the
/// centralized oracle copy.
fn unfragmented_warehouse(sales: &[partix::xml::Document]) -> PartiX {
    let px = PartiX::new(NODES, NetworkModel::default());
    let design = FragmentationSchema::new(
        facts_collection(),
        vec![FragmentDef::horizontal("all", Predicate::Exists(p("/Sale")))],
    )
    .expect("single-fragment design");
    px.register_distribution(Distribution {
        design,
        placements: vec![Placement { fragment: "all".into(), node: 0 }],
    })
    .expect("placement valid");
    px.publish(FACTS, sales).expect("publish facts");
    px.publish_centralized(0, FACTS_CENTRAL, sales).expect("oracle copy");
    px
}

/// QW1–QW6: the star queries that touch only the fact collection (the
/// dimension lookups QW7/QW8 need no fragmented distribution).
fn fact_queries() -> Vec<(&'static str, String)> {
    warehouse_queries(FACTS, DIM_PRODUCTS, DIM_OUTLETS)
        .into_iter()
        .filter(|(_, q)| !q.contains(DIM_PRODUCTS) && !q.contains(DIM_OUTLETS))
        .collect()
}

fn oracle_answers(px: &PartiX, queries: &[(&'static str, String)]) -> Vec<String> {
    queries
        .iter()
        .map(|(id, q)| {
            let central = q.replace(
                &format!("collection(\"{FACTS}\")"),
                &format!("collection(\"{FACTS_CENTRAL}\")"),
            );
            canonical(
                &px.execute_centralized(0, &central)
                    .unwrap_or_else(|e| panic!("{id} oracle: {e}"))
                    .items,
            )
        })
        .collect()
}

/// The dashboard mix is region-dominant by construction; the miner must
/// surface `/Sale/Region` as the hottest split path for the facts.
#[test]
fn mining_surfaces_region_as_the_hottest_fact_predicate() {
    let log = warehouse_workload(FACTS, DIM_PRODUCTS, DIM_OUTLETS);
    let mined = mine_predicates(&log);
    let paths = mined_split_paths(&mined, FACTS, 2);
    assert!(!paths.is_empty(), "nothing mined from the warehouse log");
    assert_eq!(paths[0].to_string(), "/Sale/Region", "region must mine hottest");
    let region = mined
        .iter()
        .find(|m| m.collection == FACTS && m.path.to_string() == "/Sale/Region")
        .expect("region predicate mined");
    for other in mined.iter().filter(|m| m.collection == FACTS) {
        assert!(region.hits >= other.hits, "{} out-mined Region", other.path);
    }
}

/// A mined re-split of generated fact documents satisfies the formal
/// fragmentation rules: complete, disjoint, reconstructible.
#[test]
fn mined_region_design_is_complete_and_disjoint() {
    let warehouse = gen_warehouse(WarehouseConfig::default(), SEED);
    let log = warehouse_workload(FACTS, DIM_PRODUCTS, DIM_OUTLETS);
    let path = mined_split_paths(&mine_predicates(&log), FACTS, 1)
        .into_iter()
        .next()
        .expect("a mined path");
    for count in [2, 4] {
        let design =
            partix::frag::horizontal_by_values(facts_collection(), &path, &warehouse.sales, count)
                .unwrap_or_else(|e| panic!("{count}-way split: {e}"));
        let fragments = Fragmenter::new(design.clone()).fragment_all(&warehouse.sales);
        let report = check_correctness(&design, &warehouse.sales, &fragments);
        assert!(
            report.is_correct(),
            "{count}-way mined design violates fragmentation rules: {:?}",
            report.violations,
        );
    }
}

/// Full loop: run the warehouse workload against the unfragmented
/// cluster, feed the profile *and the raw query log* to the advisor,
/// and adopt its mined re-split. The advised design must check out
/// formally and keep every star query on the oracle's answer.
#[test]
fn advisor_resplits_warehouse_facts_from_the_mined_log() {
    let warehouse = gen_warehouse(WarehouseConfig::default(), SEED);
    let px = unfragmented_warehouse(&warehouse.sales);
    let queries = fact_queries();
    let oracle = oracle_answers(&px, &queries);

    // profile one pass of the fact workload against the bad layout
    let profiler = WorkloadProfiler::new();
    for (idx, (id, q)) in queries.iter().enumerate() {
        let result = px.execute(q).unwrap_or_else(|e| panic!("{id}: {e}"));
        assert_matches_oracle(id, "pre-advice", &result.items, &oracle[idx]);
        profiler.record(&result.report);
    }
    profiler.observe_placement(&px, FACTS);

    let mut config = AdvisorConfig::new(NODES);
    config.seed = SEED;
    config.candidate_counts = vec![2, 4];
    // no operator-supplied split path: candidates must come from mining
    config.query_log = warehouse_workload(FACTS, DIM_PRODUCTS, DIM_OUTLETS);
    config.mined_paths = 2;
    let advice = advise_live(&px, FACTS, &profiler.snapshot(), &config)
        .expect("advise")
        .expect("facts distribution registered");

    assert!(
        advice.candidates_considered > 1,
        "mining produced no candidates beyond the current design",
    );
    assert!(advice.design_changed, "advisor kept the one-fragment layout");
    let described: Vec<String> =
        advice.design.fragments.iter().map(|f| format!("{f}")).collect();
    assert!(
        described.iter().any(|d| d.contains("/Sale/Region") || d.contains("/Sale/Quarter")),
        "winning design does not split on a mined path: {described:?}",
    );
    let fragments = Fragmenter::new(advice.design.clone()).fragment_all(&warehouse.sales);
    let report = check_correctness(&advice.design, &warehouse.sales, &fragments);
    assert!(report.is_correct(), "advised design invalid: {:?}", report.violations);

    // adopt on a fresh cluster and re-verify every answer
    let adopted = PartiX::new(NODES, NetworkModel::default());
    adopted.register_distribution(advice.distribution()).expect("advised placement valid");
    adopted.publish(FACTS, &warehouse.sales).expect("republish");
    adopted
        .publish_centralized(0, FACTS_CENTRAL, &warehouse.sales)
        .expect("oracle copy");
    for (idx, (id, q)) in queries.iter().enumerate() {
        let result = adopted.execute(q).unwrap_or_else(|e| panic!("{id} post-adopt: {e}"));
        assert_matches_oracle(id, "after adoption", &result.items, &oracle[idx]);
    }
}

/// The advised placement also lands through the *live* migration path:
/// start from the mined design parked entirely on node 0, rebalance to
/// the advisor's placement while verifying, and keep oracle answers.
#[test]
fn mined_design_rebalances_live_onto_the_advised_placement() {
    let warehouse = gen_warehouse(WarehouseConfig::default(), SEED);
    let px = unfragmented_warehouse(&warehouse.sales);
    let queries = fact_queries();
    let oracle = oracle_answers(&px, &queries);

    let profiler = WorkloadProfiler::new();
    for (_, q) in &queries {
        profiler.record(&px.execute(q).expect("profiling query").report);
    }
    profiler.observe_placement(&px, FACTS);
    let mut config = AdvisorConfig::new(NODES);
    config.seed = SEED;
    config.candidate_counts = vec![4];
    config.query_log = warehouse_workload(FACTS, DIM_PRODUCTS, DIM_OUTLETS);
    let advice = advise_live(&px, FACTS, &profiler.snapshot(), &config)
        .expect("advise")
        .expect("facts distribution registered");
    assert!(advice.design_changed, "need a mined re-split to migrate");

    // park the advised design entirely on node 0 …
    let skewed = PartiX::new(NODES, NetworkModel::default());
    let parked: Vec<Placement> = advice
        .design
        .fragments
        .iter()
        .map(|f| Placement { fragment: f.name.clone(), node: 0 })
        .collect();
    skewed
        .register_distribution(Distribution { design: advice.design.clone(), placements: parked })
        .expect("parked placement valid");
    skewed.publish(FACTS, &warehouse.sales).expect("publish parked");
    skewed
        .publish_centralized(0, FACTS_CENTRAL, &warehouse.sales)
        .expect("oracle copy");

    // … and migrate live onto the advisor's placement
    let report = partix_advisor::rebalance(
        &skewed,
        FACTS,
        &advice.placements,
        &RebalanceOptions::default(),
    )
    .expect("live rebalance");
    assert!(report.verified, "post-migration validation failed");
    assert!(!report.moves.is_empty(), "nothing migrated off node 0");
    assert!(report.migrated_docs > 0);

    let spread: std::collections::BTreeSet<usize> = skewed
        .catalog()
        .distribution(FACTS)
        .expect("distribution")
        .placements
        .iter()
        .map(|p| p.node)
        .collect();
    assert!(spread.len() > 1, "migration left every fragment on node 0");
    for (idx, (id, q)) in queries.iter().enumerate() {
        let result = skewed.execute(q).unwrap_or_else(|e| panic!("{id} post-migration: {e}"));
        assert_matches_oracle(id, "after migration", &result.items, &oracle[idx]);
    }
}
