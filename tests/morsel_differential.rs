//! Morsel differential suite: intra-fragment parallel execution must be
//! **invisible** except for speed. Every query family runs against the
//! same database twice — once with the morsel scan forced on (several
//! workers, one-document morsels) and once forced sequential — and the
//! serialized answers must be byte-identical, including document order,
//! duplicate sort keys under `order by`, and the reported scan
//! statistics. The distributed variant re-runs the paper workload with
//! morsels enabled on every node of a fragmented cluster against the
//! centralized oracle, and a proptest block fuzzes corpus size and
//! morsel geometry.
//!
//! `PARTIX_PROPTEST_CASES` overrides the proptest case count.

use partix::gen::{gen_items, ItemProfile};
use partix::query::Item;
use partix::storage::{Database, MorselConfig, StorageMode};
use partix::xml::Document;
use partix_bench::{queries, setup};
use proptest::prelude::*;

/// Morsel geometry that forces the parallel path even for tiny
/// collections (the CI host may have a single core, so the default
/// config would resolve to sequential execution).
const PARALLEL: MorselConfig = MorselConfig { max_workers: 4, min_docs: 1 };
/// One worker disables the morsel path entirely.
const SEQUENTIAL: MorselConfig = MorselConfig { max_workers: 1, min_docs: 1 };

/// Query families over the items corpus. The flag says whether the
/// planner should decompose the query into morsels (`true`) or fall
/// back to the sequential evaluator (`false`).
fn families() -> Vec<(&'static str, String, bool)> {
    let c = |q: &str| q.replace("$C", r#"collection("items")"#);
    vec![
        ("path-scan", c("$C/Item/Code"), true),
        ("deep-path", c("$C/Item//Description"), true),
        (
            "selection",
            c(r#"for $i in $C/Item where $i/Section = "CD" return $i/Name"#),
            true,
        ),
        (
            "contains",
            c(r#"for $i in $C/Item where contains($i//Description, "good") return $i/Code"#),
            true,
        ),
        (
            "exists",
            c(r#"for $i in $C/Item where exists($i/Release) return $i/Code"#),
            true,
        ),
        (
            "numeric-filter",
            c(r#"for $i in $C/Item where number($i/Code) < 20 return $i/Name"#),
            true,
        ),
        ("count", c(r#"count(for $i in $C/Item where $i/Section = "BOOK" return $i)"#), true),
        ("sum", c("sum(for $i in $C/Item return number($i/Code))"), true),
        ("min", c("min(for $i in $C/Item return number($i/Code))"), true),
        ("max", c("max(for $i in $C/Item return number($i/Code))"), true),
        ("avg", c("avg(for $i in $C/Item return number($i/Code))"), true),
        (
            "order-asc",
            c("for $i in $C/Item order by $i/Section return $i/Code"),
            true,
        ),
        (
            "order-desc",
            c("for $i in $C/Item order by $i/Section descending return $i/Code"),
            true,
        ),
        (
            "construct",
            c(r#"for $i in $C/Item where $i/Section = "DVD"
                 return <hit>{$i/Code}</hit>"#),
            true,
        ),
        // non-decomposable shapes: must stay sequential and still agree
        (
            "let-bound",
            c("let $all := $C/Item return count($all)"),
            false,
        ),
        (
            "self-join",
            c(
                r#"for $a in $C/Item
                   for $b in $C/Item
                   where $a/Code = $b/Code and $a/Section = "CD"
                   return $a/Code"#,
            ),
            false,
        ),
    ]
}

fn corpus(n: usize) -> Vec<Document> {
    gen_items(n, ItemProfile::Small, 0x5EED)
}

fn db_with(docs: &[Document], mode: StorageMode, config: MorselConfig) -> Database {
    let db = Database::new();
    db.create_collection("items", mode).unwrap();
    db.store_all("items", docs.iter().cloned());
    db.set_morsel_config(config);
    db
}

/// Canonical serialization for distributed answers: one line per item,
/// sorted (fragment concatenation order is not document order).
fn canonical(items: &[Item]) -> String {
    let mut lines: Vec<String> = items.iter().map(Item::serialize).collect();
    lines.sort();
    lines.join("\n")
}

#[test]
fn every_family_matches_sequential_hot_and_cold() {
    let docs = corpus(48);
    for mode in [StorageMode::Hot, StorageMode::Cold] {
        let par = db_with(&docs, mode, PARALLEL);
        let seq = db_with(&docs, mode, SEQUENTIAL);
        for (id, query, decomposable) in families() {
            let a = par.execute(&query).unwrap_or_else(|e| panic!("{id} parallel: {e}"));
            let b = seq.execute(&query).unwrap_or_else(|e| panic!("{id} sequential: {e}"));
            // exact, order-preserving equality — not canonicalized
            assert_eq!(a.serialize(), b.serialize(), "{id} ({mode:?}): answers diverge");
            if decomposable {
                assert!(a.stats.morsels >= 2, "{id} ({mode:?}): expected morsel path");
            } else {
                assert_eq!(a.stats.morsels, 0, "{id} ({mode:?}): expected fallback");
            }
            assert_eq!(b.stats.morsels, 0, "{id}: sequential config must not split");
            assert_eq!(a.stats.docs_scanned, b.stats.docs_scanned, "{id}: stats diverge");
            assert_eq!(a.stats.collection_size, b.stats.collection_size, "{id}");
        }
    }
}

#[test]
fn duplicate_sort_keys_keep_document_order_across_morsel_counts() {
    // Section has only a handful of distinct values over 30 documents,
    // so ties abound: a stable global sort must reproduce exactly the
    // sequential tie order for every morsel geometry.
    let docs = corpus(30);
    let seq = db_with(&docs, StorageMode::Hot, SEQUENTIAL);
    let query = r#"for $i in collection("items")/Item
                   order by $i/Section return $i/Code"#;
    let oracle = seq.execute(query).unwrap().serialize();
    for max_workers in [2, 3, 4, 8] {
        for min_docs in [1, 2, 7] {
            let par = db_with(&docs, StorageMode::Hot, MorselConfig { max_workers, min_docs });
            let out = par.execute(query).unwrap();
            assert_eq!(
                out.serialize(),
                oracle,
                "tie order broke at workers={max_workers} min_docs={min_docs}",
            );
        }
    }
}

#[test]
fn distributed_morsels_match_centralized_oracle() {
    let docs = setup::quick_items(80);
    let px = setup::horizontal(&docs, 4);
    px.cluster().set_morsel_config(PARALLEL);
    let oracle = setup::horizontal(&docs, 4); // defaults: sequential scans
    let central = |q: &str| {
        q.replace(
            &format!("collection(\"{}\")", setup::DIST),
            &format!("collection(\"{}\")", setup::CENTRAL),
        )
    };
    let mut morsel_sites = 0usize;
    for (id, query) in queries::horizontal(setup::DIST) {
        let dist = px.execute(&query).unwrap_or_else(|e| panic!("{id} morsels: {e}"));
        let cent = oracle
            .execute_centralized(0, &central(&query))
            .unwrap_or_else(|e| panic!("{id} centralized: {e}"));
        assert_eq!(
            canonical(&dist.items),
            canonical(&cent.items),
            "{id}: morsel-parallel cluster diverges from the oracle",
        );
        morsel_sites += dist.report.sites.iter().filter(|s| s.morsels > 0).count();
    }
    // the per-site morsel counts must surface in the reports: the
    // workload scans 20-document fragments with 1-document morsels, so
    // plenty of sub-queries must have split
    assert!(morsel_sites > 0, "no site ever reported a morsel split");
}

#[test]
fn site_reports_render_morsel_counts() {
    let docs = setup::quick_items(40);
    let px = setup::horizontal(&docs, 2);
    px.cluster().set_morsel_config(PARALLEL);
    let query = format!(
        r#"for $i in collection("{}")/Item where $i/Section = "CD" return $i/Name"#,
        setup::DIST,
    );
    let result = px.execute(&query).unwrap();
    let split: usize = result.report.sites.iter().map(|s| s.morsels).sum();
    assert!(split >= 2, "expected morsel splits in the site reports");
    assert!(
        result.report.to_string().contains("morsels"),
        "report display must mention the morsel split:\n{}",
        result.report,
    );
}

proptest! {
    #![proptest_config(cases(16))]

    /// Random corpus size × random morsel geometry × every family:
    /// parallel and sequential answers are byte-identical.
    #[test]
    fn random_geometry_matches_sequential(
        n in 1usize..40,
        max_workers in 2usize..6,
        min_docs in 1usize..8,
        family in 0usize..16,
    ) {
        let fams = families();
        let (id, query, _) = &fams[family % fams.len()];
        let docs = corpus(n);
        let par = db_with(&docs, StorageMode::Hot, MorselConfig { max_workers, min_docs });
        let seq = db_with(&docs, StorageMode::Hot, SEQUENTIAL);
        let a = par.execute(query).unwrap_or_else(|e| panic!("{id} parallel: {e}"));
        let b = seq.execute(query).unwrap_or_else(|e| panic!("{id} sequential: {e}"));
        prop_assert_eq!(a.serialize(), b.serialize(), "{} diverged", id);
        prop_assert_eq!(a.stats.docs_scanned, b.stats.docs_scanned);
    }
}

/// Per-block case budget, overridable with `PARTIX_PROPTEST_CASES`.
fn cases(default_cases: u32) -> ProptestConfig {
    std::env::var("PARTIX_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .map(ProptestConfig::with_cases)
        .unwrap_or_else(|| ProptestConfig::with_cases(default_cases))
}
