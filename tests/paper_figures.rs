//! The paper's own fragment definitions (Figures 2, 3 and 4), executed
//! verbatim against generated data, with the Section 3.3 correctness
//! rules verified for each.

use partix::frag::{
    check_correctness, FragMode, FragmentDef, Fragmenter, FragmentationSchema,
};
use partix::gen::{gen_items, gen_store, ItemProfile};
use partix::path::{eval_path, PathExpr, Predicate};
use partix::schema::{builtin, CollectionDef, RepoKind};
use partix::xml::Document;
use std::sync::Arc;

fn p(s: &str) -> PathExpr {
    PathExpr::parse(s).unwrap()
}

fn pr(s: &str) -> Predicate {
    Predicate::parse(s).unwrap()
}

fn citems() -> CollectionDef {
    CollectionDef::new(
        "Citems",
        Arc::new(builtin::virtual_store()),
        p("/Store/Items/Item"),
        RepoKind::MultipleDocuments,
    )
}

fn cstore() -> CollectionDef {
    CollectionDef::new(
        "Cstore",
        Arc::new(builtin::virtual_store()),
        p("/Store"),
        RepoKind::SingleDocument,
    )
}

/// Figure 2(a): `F1CD := ⟨Citems, σ /Item/Section="CD"⟩`,
/// `F2CD := ⟨Citems, σ /Item/Section≠"CD"⟩`.
///
/// Note the complement uses `not(...)` (universal semantics), not the
/// `≠` operator: with the existential reading of `≠` over multi-valued
/// paths the two fragments could overlap. Section is single-valued in
/// the schema, so both readings coincide on valid data — and the checker
/// proves it.
#[test]
fn figure_2a_horizontal_by_section() {
    let docs = gen_items(300, ItemProfile::Small, 21);
    let design = FragmentationSchema::new(
        citems(),
        vec![
            FragmentDef::horizontal("F1CD", pr(r#"/Item/Section = "CD""#)),
            FragmentDef::horizontal("F2CD", pr(r#"not(/Item/Section = "CD")"#)),
        ],
    )
    .unwrap();
    let fragments = Fragmenter::new(design.clone()).fragment_all(&docs);
    let report = check_correctness(&design, &docs, &fragments);
    assert!(report.is_correct(), "{:?}", report.violations);
    // the skewed generator gives CD ≈ 30%
    let cd = fragments[0].1.len();
    assert!(cd > 50 && cd < 150, "CD docs: {cd}");
    assert_eq!(cd + fragments[1].1.len(), docs.len());
}

/// Figure 2(b): text-search split — `F1good` selects documents whose
/// `//Description` contains "good", `F2good` the complement.
#[test]
fn figure_2b_horizontal_by_text() {
    let docs = gen_items(300, ItemProfile::Small, 22);
    let design = FragmentationSchema::new(
        citems(),
        vec![
            FragmentDef::horizontal("F1good", pr(r#"contains(//Description, "good")"#)),
            FragmentDef::horizontal(
                "F2good",
                pr(r#"not(contains(//Description, "good"))"#),
            ),
        ],
    )
    .unwrap();
    let fragments = Fragmenter::new(design.clone()).fragment_all(&docs);
    let report = check_correctness(&design, &docs, &fragments);
    assert!(report.is_correct(), "{:?}", report.violations);
    // generator tunes document-level selectivity to roughly a third
    let good = fragments[0].1.len();
    assert!(good > 45 && good < 180, "good docs: {good}");
}

/// Figure 2(c): existential split — `F1with_pictures` keeps documents
/// having a `/Item/PictureList`, `F2with_pictures` those without.
/// The paper notes this "cannot be classified as a vertical nor hybrid
/// fragment" — it is horizontal even though it tests structure.
#[test]
fn figure_2c_horizontal_existential() {
    // Large items always carry pictures; small never do — mix them
    let mut docs = gen_items(20, ItemProfile::Small, 23);
    let large = gen_items(10, ItemProfile::Large, 24);
    for (i, mut d) in large.into_iter().enumerate() {
        d.name = Some(format!("large{i:03}"));
        docs.push(d);
    }
    let design = FragmentationSchema::new(
        citems(),
        vec![
            FragmentDef::horizontal("F1with_pictures", pr("/Item/PictureList")),
            FragmentDef::horizontal("F2with_pictures", pr("empty(/Item/PictureList)")),
        ],
    )
    .unwrap();
    let fragments = Fragmenter::new(design.clone()).fragment_all(&docs);
    let report = check_correctness(&design, &docs, &fragments);
    assert!(report.is_correct(), "{:?}", report.violations);
    assert_eq!(fragments[0].1.len(), 10);
    assert_eq!(fragments[1].1.len(), 20);
}

/// Figure 3(a): `F1items := ⟨Citems, π /Item, {/Item/PictureList}⟩` and
/// `F2items := ⟨Citems, π /Item/PictureList, {}⟩` — the paper's
/// disjointness-by-prune pair, reconstructed exactly.
#[test]
fn figure_3a_vertical_items() {
    let docs = gen_items(15, ItemProfile::Large, 25);
    let design = FragmentationSchema::new(
        citems(),
        vec![
            FragmentDef::vertical("F1items", p("/Item"), vec![p("/Item/PictureList")]),
            FragmentDef::vertical("F2items", p("/Item/PictureList"), vec![]),
        ],
    )
    .unwrap();
    let fragments = Fragmenter::new(design.clone()).fragment_all(&docs);
    let report = check_correctness(&design, &docs, &fragments);
    assert!(report.is_correct(), "{:?}", report.violations);
    // no picture content in F1, only picture content in F2
    for doc in &fragments[0].1 {
        assert!(doc.root().child_element("PictureList").is_none());
    }
    for doc in &fragments[1].1 {
        assert_eq!(doc.root_label(), "PictureList");
    }
    let rebuilt =
        partix::frag::correctness::reconstruct_any(&design, &fragments).unwrap();
    for (a, b) in docs.iter().zip(&rebuilt) {
        assert_eq!(a, b);
    }
}

/// Figure 3(b): `F1sections := ⟨Cstore, π /Store/Sections, {}⟩` and
/// `F2section := ⟨Cstore, π /Store, {/Store/Sections}⟩` over the SD
/// store.
#[test]
fn figure_3b_vertical_store() {
    let store = gen_store(40, ItemProfile::Small, 26);
    let docs = vec![store];
    let design = FragmentationSchema::new(
        cstore(),
        vec![
            FragmentDef::vertical("F1sections", p("/Store/Sections"), vec![]),
            FragmentDef::vertical("F2section", p("/Store"), vec![p("/Store/Sections")]),
        ],
    )
    .unwrap();
    let fragments = Fragmenter::new(design.clone()).fragment_all(&docs);
    let report = check_correctness(&design, &docs, &fragments);
    assert!(report.is_correct(), "{:?}", report.violations);
    assert_eq!(fragments[0].1[0].root_label(), "Sections");
    assert!(fragments[1].1[0].root().child_element("Sections").is_none());
    assert!(fragments[1].1[0].root().child_element("Items").is_some());
    let rebuilt =
        partix::frag::correctness::reconstruct_any(&design, &fragments).unwrap();
    assert_eq!(rebuilt[0], docs[0]);
}

/// Figure 4: the full StoreHyb design — hybrid item fragments for CD,
/// DVD, and the rest, plus `F4items := ⟨Cstore, π /Store,
/// {/Store/Items}⟩` — in both storage modes.
#[test]
fn figure_4_hybrid_store() {
    let store = gen_store(120, ItemProfile::Small, 27);
    let docs = vec![store];
    for mode in [FragMode::SingleDoc, FragMode::ManySmallDocs] {
        let design = FragmentationSchema::new(
            cstore(),
            vec![
                FragmentDef::hybrid(
                    "F1items",
                    p("/Store/Items/Item"),
                    pr(r#"/Item/Section = "CD""#),
                    mode,
                ),
                FragmentDef::hybrid(
                    "F2items",
                    p("/Store/Items/Item"),
                    pr(r#"/Item/Section = "DVD""#),
                    mode,
                ),
                FragmentDef::hybrid(
                    "F3items",
                    p("/Store/Items/Item"),
                    pr(r#"/Item/Section != "CD" and /Item/Section != "DVD""#),
                    mode,
                ),
                FragmentDef::vertical("F4items", p("/Store"), vec![p("/Store/Items")]),
            ],
        )
        .unwrap();
        let fragments = Fragmenter::new(design.clone()).fragment_all(&docs);
        let report = check_correctness(&design, &docs, &fragments);
        assert!(report.is_correct(), "{mode:?}: {:?}", report.violations);
        // all 120 items are accounted for across the three item fragments
        let unit = p("/Store/Items/Item");
        let items_per_fragment: usize = fragments[..3]
            .iter()
            .map(|(_, frag_docs)| match mode {
                FragMode::SingleDoc => frag_docs
                    .iter()
                    .map(|d: &Document| eval_path(d, &unit).len())
                    .sum::<usize>(),
                FragMode::ManySmallDocs => frag_docs.len(),
            })
            .sum();
        assert_eq!(items_per_fragment, 120, "{mode:?}");
    }
}
