//! Write-path differential suite: the proof that online writes give the
//! *right answer or a typed error — never wrong or lost data*.
//!
//! A centralized in-memory oracle (the unfragmented copy on node 0,
//! written with the same [`WriteOp`]s the coordinator routes) applies
//! the same interleaved read/write schedule as the fragmented cluster,
//! and every read must answer byte-identically to it. The contract is
//! exercised three ways:
//!
//! * **in-process** with the result cache *enabled* — proving that the
//!   per-write epoch bumps invalidate cached answers exactly as
//!   rebalancing does;
//! * **with WAL-backed nodes and seeded kill-points** injected at every
//!   stage of the write pipeline (append / fsync / apply) — a killed
//!   node answers typed `Unavailable`, is reopened from its directory
//!   (snapshot + WAL replay), and the recovered state must match what
//!   the kill stage's durability semantics predict;
//! * **over loopback TCP** — the same kill matrix with the writes
//!   traveling as PXN1 `Write` frames through `NodeServer` /
//!   `RemoteDriver`, and the crash also taking down the listener.
//!
//! A seeded schedule fuzzer (sized by `PARTIX_PROPTEST_CASES`) then
//! interleaves random reads, puts, deletes and kills; every failing
//! schedule prints as a replayable `describe()` string, matching the
//! `FaultPlan` reproducibility contract.

use partix::engine::{PartiX, PartixDriver, WriteError};
use partix::frag::check_correctness;
use partix::gen::SECTIONS;
use partix::query::Item;
use partix::storage::{DurableDb, WalStage, WriteOp};
use partix::xml::{parse, Document};
use partix_bench::{queries, setup};
use partix_net::{NodeServer, RemoteDriver, ServerConfig};
use std::path::{Path, PathBuf};
use std::sync::Arc;

// ---------------------------------------------------------------- helpers

fn tmp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("partix-wdiff-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Canonical serialization: one line per item, sorted (fragment
/// concatenation order is not document order).
fn canonical(items: &[Item]) -> String {
    let mut lines: Vec<String> = items.iter().map(Item::serialize).collect();
    lines.sort();
    lines.join("\n")
}

fn centralized_text(query: &str) -> String {
    query.replace(
        &format!("collection(\"{}\")", setup::DIST),
        &format!("collection(\"{}\")", setup::CENTRAL),
    )
}

/// A small read workload: predicate selection, text search, aggregation,
/// full scan — enough shape diversity to catch stale caches and partial
/// fragments.
fn workload() -> Vec<(&'static str, String)> {
    let mut qs: Vec<(&'static str, String)> = queries::horizontal(setup::DIST)
        .into_iter()
        .filter(|(id, _)| matches!(*id, "QH1" | "QH5" | "QH7"))
        .collect();
    qs.push((
        "SCAN",
        format!(r#"for $i in collection("{}")/Item return $i"#, setup::DIST),
    ));
    qs
}

/// Every workload query must answer byte-identically to the oracle.
fn assert_matches_oracle(px: &PartiX, workload: &[(&'static str, String)], label: &str) {
    for (id, query) in workload {
        let answer = px.execute(query).unwrap_or_else(|e| panic!("{label}/{id}: {e}"));
        let oracle = px
            .execute_centralized(0, &centralized_text(query))
            .unwrap_or_else(|e| panic!("{label}/{id} centralized: {e}"));
        assert_eq!(
            canonical(&answer.items),
            canonical(&oracle.items),
            "{label}/{id}: answer diverges from the oracle",
        );
    }
}

/// A routable item document (Section drawn from the generator's
/// vocabulary, so some fragment's predicate always accepts it).
fn item(name: &str, section: &str, code: u32) -> Document {
    let mut d = parse(&format!(
        "<Item><Code>{code}</Code><Name>w{code}</Name>\
         <Description>written online</Description><Section>{section}</Section></Item>"
    ))
    .unwrap();
    d.name = Some(name.to_owned());
    d
}

/// Apply a write to the centralized oracle copy (node 0's raw database,
/// untouched by drivers — the same store `execute_centralized` reads).
fn oracle_put(px: &PartiX, doc: &Document) {
    let op = WriteOp::Put { collection: setup::CENTRAL.into(), doc: doc.clone() };
    px.cluster().node(0).unwrap().db.apply_write(&op);
}

fn oracle_delete(px: &PartiX, name: &str) -> u32 {
    let op = WriteOp::Delete { collection: setup::CENTRAL.into(), name: name.into() };
    px.cluster().node(0).unwrap().db.apply_write(&op)
}

fn oracle_has(px: &PartiX, name: &str) -> bool {
    PartixDriver::fetch_collection(&*px.cluster().node(0).unwrap().db, setup::CENTRAL)
        .iter()
        .any(|d| d.name.as_deref() == Some(name))
}

/// Re-fragment the oracle's documents and compare against the cluster's
/// live fragment contents — the paper's completeness/disjointness/
/// reconstruction rules, re-checked over post-write state.
fn assert_invariants(px: &PartiX, label: &str) {
    let dist = px.catalog().distribution(setup::DIST).cloned().expect("registered");
    let sources: Vec<Document> =
        PartixDriver::fetch_collection(&*px.cluster().node(0).unwrap().db, setup::CENTRAL)
            .iter()
            .map(|d| (**d).clone())
            .collect();
    let contents: Vec<(String, Vec<Document>)> = dist
        .design
        .fragments
        .iter()
        .map(|frag| {
            let node_id = *dist.nodes_of(&frag.name).first().expect("placed");
            let node = px.cluster().node(node_id).expect("placed");
            let docs = node.fetch_docs(&frag.name).iter().map(|d| (**d).clone()).collect();
            (frag.name.clone(), docs)
        })
        .collect();
    let report = check_correctness(&dist.design, &sources, &contents);
    assert!(
        report.is_correct(),
        "{label}: invariants violated after writes: {:?}",
        report.violations
    );
}

/// Replace every node's driver with a WAL-backed [`DurableDb`] seeded
/// from the node's published fragments (checkpointed, so a reopen
/// without WAL records reproduces it). The centralized oracle stays on
/// the raw node-0 database.
fn attach_durable(px: &PartiX, root: &Path) -> Vec<Arc<DurableDb>> {
    px.cluster()
        .nodes()
        .iter()
        .enumerate()
        .map(|(i, node)| {
            let dir = root.join(format!("node{i}"));
            let durable = Arc::new(DurableDb::open(&dir).unwrap());
            for collection in PartixDriver::collections(&*node.db) {
                if collection == setup::CENTRAL {
                    continue; // the oracle is not part of the fragmented store
                }
                let docs: Vec<Document> =
                    PartixDriver::fetch_collection(&*node.db, &collection)
                        .iter()
                        .map(|d| (**d).clone())
                        .collect();
                PartixDriver::store(&*durable, &collection, docs);
            }
            durable.checkpoint().unwrap();
            node.set_driver(Arc::clone(&durable) as Arc<dyn PartixDriver>);
            durable
        })
        .collect()
}

/// Crash-recover node `i`: reopen its directory (snapshot + WAL replay)
/// and install the recovered database as the node's driver.
fn recover_node(px: &PartiX, durables: &mut [Arc<DurableDb>], root: &Path, i: usize) {
    let dir = root.join(format!("node{i}"));
    let recovered = Arc::new(DurableDb::open(&dir).unwrap());
    px.cluster()
        .node(i)
        .unwrap()
        .set_driver(Arc::clone(&recovered) as Arc<dyn PartixDriver>);
    durables[i] = recovered;
}

/// The fragment (and its primary node) a section routes to under
/// [`setup::horizontal`]'s section-group design.
fn route_of(px: &PartiX, section: &str) -> (String, usize) {
    let dist = px.catalog().distribution(setup::DIST).cloned().unwrap();
    let probe = [item("probe", section, 0)];
    for frag in &dist.design.fragments {
        if !partix::frag::apply::apply_fragment(frag, &probe).is_empty() {
            let node = *dist.nodes_of(&frag.name).first().unwrap();
            return (frag.name.clone(), node);
        }
    }
    panic!("section {section} routes nowhere");
}

// ------------------------------------------------- in-process differential

/// Interleaved writes and reads, result cache ON: every answer must
/// track the oracle through inserts, in-place updates, cross-fragment
/// moves and deletes — epoch bumps are what keeps the cache honest.
#[test]
fn interleaved_writes_and_reads_match_oracle_with_result_cache() {
    let px = setup::horizontal(&setup::quick_items(40), 4);
    px.set_result_cache_enabled(true);
    let workload = workload();
    assert_matches_oracle(&px, &workload, "pre-write");

    // fresh inserts into different fragments
    for (k, section) in ["CD", "DVD", "BOOK", "GARDEN"].iter().enumerate() {
        let doc = item(&format!("w{k:02}"), section, 900 + k as u32);
        px.put(setup::DIST, doc.clone()).unwrap();
        oracle_put(&px, &doc);
        assert_matches_oracle(&px, &workload, &format!("after insert {section}"));
    }

    // in-place update (same routing value, new content)
    let doc = item("w00", "CD", 1900);
    px.update(setup::DIST, doc.clone()).unwrap();
    oracle_put(&px, &doc);
    assert_matches_oracle(&px, &workload, "after in-place update");

    // cross-fragment move: w01's Section flips DVD → SPORT
    let doc = item("w01", "SPORT", 901);
    let report = px.update(setup::DIST, doc.clone()).unwrap();
    assert_eq!(report.deleted, 1, "stale DVD piece must be cleared");
    oracle_put(&px, &doc);
    assert_matches_oracle(&px, &workload, "after cross-fragment move");

    // delete a generated doc and a written one
    for name in ["item00003", "w02"] {
        px.delete(setup::DIST, name).unwrap();
        assert_eq!(oracle_delete(&px, name), 1);
        assert_matches_oracle(&px, &workload, &format!("after delete {name}"));
    }

    // unroutable: typed error on the cluster, no state change anywhere
    let err = px.put(setup::DIST, item("w99", "PERFUME", 999)).unwrap_err();
    assert!(matches!(err, WriteError::UnroutableDocument { .. }), "{err}");
    assert_matches_oracle(&px, &workload, "after unroutable refusal");
    assert_invariants(&px, "in-process");
}

// ----------------------------------------------------- WAL kill matrices

/// Drive one kill-point scenario against `px` whose nodes are WAL-backed
/// (`durables`), with `recover` abstracting how a node comes back
/// (in-process reopen vs TCP restart). Covers all three stages.
fn run_kill_matrix(
    px: &PartiX,
    durables: &mut [Arc<DurableDb>],
    root: &Path,
    recover: &dyn Fn(&PartiX, &mut [Arc<DurableDb>], &Path, usize),
    label: &str,
) {
    let workload = workload();
    assert_matches_oracle(px, &workload, &format!("{label}/baseline"));
    let mut acked: Vec<Document> = Vec::new();

    for (k, stage) in WalStage::ALL.into_iter().enumerate() {
        let section = ["CD", "DVD", "BOOK"][k];
        let (_frag, victim_node) = route_of(px, section);
        let name = format!("k{k:02}");
        let doc = item(&name, section, 700 + k as u32);

        // arm the one-shot kill and issue the write: it must fail typed
        durables[victim_node].set_kill(Some(stage));
        let err = px.put(setup::DIST, doc.clone()).unwrap_err();
        match &err {
            WriteError::NodeUnavailable { node, .. } => {
                assert_eq!(*node, victim_node, "{label}/{stage:?}: wrong victim")
            }
            other => panic!("{label}/{stage:?}: expected NodeUnavailable, got {other}"),
        }

        // the node is dead until recovery; queries over it answer typed
        // errors or fail over — never wrong data. Recover it.
        recover(px, durables, root, victim_node);

        // Deterministic durability: a kill before the fsync-point loses
        // the (never-acknowledged) record; at or after it, replay
        // restores the write.
        let oracle_decides = stage.survives_recovery();
        if oracle_decides {
            oracle_put(px, &doc);
        }
        assert_matches_oracle(px, &workload, &format!("{label}/{stage:?} post-recovery"));

        // the client retries the unacknowledged write; idempotence makes
        // retry converge regardless of what recovery restored
        let report = px.put(setup::DIST, doc.clone()).unwrap();
        assert_eq!(report.replaced, oracle_decides, "{label}/{stage:?}: replay state");
        if !oracle_decides {
            oracle_put(px, &doc);
        }
        acked.push(doc);
        assert_matches_oracle(px, &workload, &format!("{label}/{stage:?} post-retry"));
        assert_invariants(px, &format!("{label}/{stage:?}"));
    }

    // no acknowledged write was lost anywhere along the way
    let scan = px
        .execute(&format!(r#"for $i in collection("{}")/Item return $i"#, setup::DIST))
        .unwrap();
    let all = canonical(&scan.items);
    for (idx, doc) in acked.iter().enumerate() {
        let marker = format!("<Name>w{}</Name>", 700 + idx);
        assert!(
            all.contains(&marker),
            "{label}: acknowledged write {:?} lost (marker {marker})",
            doc.name
        );
    }
    assert!(
        durables.iter().map(|d| d.fsyncs()).sum::<u64>() > 0,
        "{label}: WAL pipeline never fsynced"
    );
}

#[test]
fn wal_kill_points_recover_to_oracle_in_process() {
    let root = tmp_root("inproc");
    let px = setup::horizontal(&setup::quick_items(40), 4);
    let mut durables = attach_durable(&px, &root);
    run_kill_matrix(&px, &mut durables, &root, &recover_node, "in-process");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn wal_kill_points_recover_over_loopback_tcp() {
    let root = tmp_root("tcp");
    let px = setup::horizontal(&setup::quick_items(40), 4);
    let durables = attach_durable(&px, &root);

    // host each DurableDb behind a real listener; the coordinator talks
    // PXN1 — writes travel as non-idempotent Write frames
    let mut servers: Vec<Option<NodeServer>> = Vec::new();
    let mut remotes: Vec<Arc<RemoteDriver>> = Vec::new();
    for (i, durable) in durables.iter().enumerate() {
        let server = NodeServer::bind_driver(
            "127.0.0.1:0",
            Arc::clone(durable) as Arc<dyn PartixDriver>,
            ServerConfig::default(),
        )
        .unwrap();
        let remote = RemoteDriver::connect(server.local_addr()).unwrap();
        px.cluster().node(i).unwrap().set_driver(Arc::clone(&remote) as Arc<dyn PartixDriver>);
        servers.push(Some(server));
        remotes.push(remote);
    }
    let mut durables = durables;

    // recovery over TCP: the crash takes the listener down with the
    // database; recovery reopens the directory and rebinds the same
    // address, serving the *recovered* DurableDb
    let servers_cell = std::cell::RefCell::new(servers);
    let remotes_cell = std::cell::RefCell::new(remotes);
    let recover = |_px: &PartiX, durables: &mut [Arc<DurableDb>], root: &Path, i: usize| {
        let mut servers = servers_cell.borrow_mut();
        let addr = servers[i].as_ref().unwrap().local_addr();
        if let Some(mut server) = servers[i].take() {
            server.shutdown();
        }
        let recovered = Arc::new(DurableDb::open(&root.join(format!("node{i}"))).unwrap());
        durables[i] = Arc::clone(&recovered);
        let server = NodeServer::bind_driver(
            addr,
            recovered as Arc<dyn PartixDriver>,
            ServerConfig::default(),
        )
        .unwrap();
        servers[i] = Some(server);
        // pooled connections into the old incarnation are stale; a
        // non-idempotent Write must not trip over them
        remotes_cell.borrow_mut()[i].drain_pool();
    };

    run_kill_matrix(&px, &mut durables, &root, &recover, "tcp");
    let _ = std::fs::remove_dir_all(&root);
}

// -------------------------------------------------------- schedule fuzzer

#[derive(Debug, Clone)]
enum SchedOp {
    Read(usize),
    Put { serial: usize, section: usize },
    Delete { serial: usize },
    Kill { stage: WalStage },
}

struct Schedule {
    seed: u64,
    ops: Vec<SchedOp>,
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Schedule {
    /// ~24 ops: reads and puts dominate, deletes and kills salted in.
    fn generate(seed: u64, reads: usize) -> Schedule {
        let mut state = seed;
        let n = 16 + (splitmix(&mut state) % 12) as usize;
        let ops = (0..n)
            .map(|_| match splitmix(&mut state) % 10 {
                0..=2 => SchedOp::Read((splitmix(&mut state) as usize) % reads),
                3..=6 => SchedOp::Put {
                    serial: (splitmix(&mut state) as usize) % 24,
                    section: (splitmix(&mut state) as usize) % SECTIONS.len(),
                },
                7..=8 => SchedOp::Delete { serial: (splitmix(&mut state) as usize) % 24 },
                _ => SchedOp::Kill {
                    stage: WalStage::ALL[(splitmix(&mut state) as usize) % 3],
                },
            })
            .collect();
        Schedule { seed, ops }
    }

    /// Replayable one-line form, printed on failure (the `FaultPlan`
    /// reproducibility contract: the string is enough to rebuild the
    /// schedule by seed).
    fn describe(&self) -> String {
        let ops: Vec<String> = self
            .ops
            .iter()
            .map(|op| match op {
                SchedOp::Read(k) => format!("R{k}"),
                SchedOp::Put { serial, section } => {
                    format!("P(s{serial},{})", SECTIONS[*section])
                }
                SchedOp::Delete { serial } => format!("D(s{serial})"),
                SchedOp::Kill { stage } => format!("K({stage:?})"),
            })
            .collect();
        format!("schedule seed=0x{:016x} [{}]", self.seed, ops.join(" "))
    }
}

/// Put with crash-recovery retries: on `NodeUnavailable` the named node
/// is recovered and the (idempotent) write reissued until acknowledged.
/// Only then does the oracle apply it — "acknowledged" is the contract.
fn put_with_recovery(
    px: &PartiX,
    durables: &mut [Arc<DurableDb>],
    root: &Path,
    doc: &Document,
    ctx: &str,
) {
    for _attempt in 0..5 {
        match px.put(setup::DIST, doc.clone()) {
            Ok(_) => {
                oracle_put(px, doc);
                return;
            }
            Err(WriteError::NodeUnavailable { node, .. }) => {
                recover_node(px, durables, root, node);
            }
            Err(other) => panic!("{ctx}: unexpected write error {other}"),
        }
    }
    panic!("{ctx}: put did not converge in 5 attempts");
}

fn delete_with_recovery(
    px: &PartiX,
    durables: &mut [Arc<DurableDb>],
    root: &Path,
    name: &str,
    ctx: &str,
) {
    let existed = oracle_has(px, name);
    for _attempt in 0..5 {
        match px.delete(setup::DIST, name) {
            Ok(_) => {
                assert!(existed, "{ctx}: cluster deleted {name} the oracle never had");
                oracle_delete(px, name);
                return;
            }
            // a retry after a partial first attempt may find the name
            // already gone — the oracle tells us which story is true
            Err(WriteError::NoSuchDocument { .. }) => {
                if existed {
                    oracle_delete(px, name);
                }
                return;
            }
            Err(WriteError::NodeUnavailable { node, .. }) => {
                recover_node(px, durables, root, node);
            }
            Err(other) => panic!("{ctx}: unexpected delete error {other}"),
        }
    }
    panic!("{ctx}: delete did not converge in 5 attempts");
}

/// Random interleavings of reads, writes and kill-points over WAL-backed
/// nodes. Case count from `PARTIX_PROPTEST_CASES` (default 24).
#[test]
fn fuzzed_schedules_converge_to_the_oracle() {
    let cases: u64 = std::env::var("PARTIX_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(24);
    let workload = workload();

    for case in 0..cases {
        let schedule = Schedule::generate(0xD1FF_0000 ^ (case * 0x9E37), workload.len());
        let ctx = schedule.describe();
        let root = tmp_root(&format!("fuzz{case}"));
        let px = setup::horizontal(&setup::quick_items(30), 4);
        let mut durables = attach_durable(&px, &root);

        for op in &schedule.ops {
            match op {
                SchedOp::Read(k) => {
                    let (id, query) = &workload[*k];
                    // an armed-but-untriggered kill leaves reads live;
                    // triggered kills are recovered before the next op
                    let answer =
                        px.execute(query).unwrap_or_else(|e| panic!("{ctx}: {id}: {e}"));
                    let oracle = px
                        .execute_centralized(0, &centralized_text(query))
                        .unwrap_or_else(|e| panic!("{ctx}: {id} centralized: {e}"));
                    assert_eq!(
                        canonical(&answer.items),
                        canonical(&oracle.items),
                        "{ctx}: {id} diverges",
                    );
                }
                SchedOp::Put { serial, section } => {
                    let doc = item(
                        &format!("s{serial:02}"),
                        SECTIONS[*section],
                        2000 + *serial as u32,
                    );
                    put_with_recovery(&px, &mut durables, &root, &doc, &ctx);
                }
                SchedOp::Delete { serial } => {
                    delete_with_recovery(
                        &px,
                        &mut durables,
                        &root,
                        &format!("s{serial:02}"),
                        &ctx,
                    );
                }
                SchedOp::Kill { stage } => {
                    // arm the node CD-section writes route to; the
                    // one-shot charge fires on that node's next write
                    let (_, node) = route_of(&px, "CD");
                    durables[node].set_kill(Some(*stage));
                }
            }
        }
        for durable in &durables {
            durable.set_kill(None); // disarm any unspent charge
        }
        assert_matches_oracle(&px, &workload, &ctx);
        assert_invariants(&px, &ctx);
        let _ = std::fs::remove_dir_all(&root);
    }
}
