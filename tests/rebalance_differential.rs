//! Migration differential suite: the proof that a live rebalance is
//! invisible to queries. The paper-set workload runs **before**,
//! **during** (from concurrent threads), and **after**
//! [`partix_advisor::rebalance`] moves every fragment of a deliberately
//! skewed cluster, and every answered query must stay byte-identical to
//! the centralized oracle. The same contract is re-run with the nodes
//! behind loopback TCP servers (the copies then travel as real frames)
//! and with seeded fault injectors on the query path (answers may turn
//! into typed errors, never into wrong data). After every migration the
//! rebalancer's own completeness/disjointness re-validation must have
//! passed and the catalog must hold exactly the target placement.

use partix::engine::{FaultPlan, PartiX, Placement, RetryPolicy};
use partix::query::Item;
use partix_advisor::{advise_live, AdvisorConfig, RebalanceOptions, WorkloadProfiler};
use partix_bench::remote::RemoteCluster;
use partix_bench::{queries, setup};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// Canonical serialization: one line per item, sorted (fragment
/// concatenation order is not document order).
fn canonical(items: &[Item]) -> String {
    let mut lines: Vec<String> = items.iter().map(Item::serialize).collect();
    lines.sort();
    lines.join("\n")
}

/// Rewrite a query against [`setup::DIST`] to the centralized copy.
fn centralized_text(query: &str) -> String {
    query.replace(
        &format!("collection(\"{}\")", setup::DIST),
        &format!("collection(\"{}\")", setup::CENTRAL),
    )
}

/// The centralized answers for a workload.
fn oracle_answers(px: &PartiX, workload: &[(&'static str, String)]) -> Vec<String> {
    workload
        .iter()
        .map(|(id, query)| {
            canonical(
                &px.execute_centralized(0, &centralized_text(query))
                    .unwrap_or_else(|e| panic!("{id} centralized: {e}"))
                    .items,
            )
        })
        .collect()
}

/// Every workload query must answer byte-identically to the oracle.
fn assert_matches_oracle(
    px: &PartiX,
    oracle: &[String],
    workload: &[(&'static str, String)],
    label: &str,
) {
    for (k, (id, query)) in workload.iter().enumerate() {
        let answer = px
            .execute(query)
            .unwrap_or_else(|e| panic!("{label}/{id}: {e}"));
        assert_eq!(
            canonical(&answer.items),
            oracle[k],
            "{label}/{id}: answer diverges from the oracle",
        );
    }
}

/// Record one sequential pass of the workload into a profile the
/// advisor can cost (and size the fragments from the live placement).
fn profile_workload(px: &PartiX, workload: &[(&'static str, String)]) -> partix_advisor::WorkloadProfile {
    let profiler = WorkloadProfiler::new();
    for (id, query) in workload {
        let result = px.execute(query).unwrap_or_else(|e| panic!("{id} profiling: {e}"));
        profiler.record(&result.report);
    }
    profiler.observe_placement(px, setup::DIST);
    profiler.snapshot()
}

/// The catalog's placements for [`setup::DIST`], as sorted
/// `(fragment, node)` pairs.
fn catalog_pairs(px: &PartiX) -> Vec<(String, usize)> {
    let dist = px.catalog().distribution(setup::DIST).cloned().expect("registered");
    let mut pairs: Vec<(String, usize)> =
        dist.placements.iter().map(|p| (p.fragment.clone(), p.node)).collect();
    pairs.sort();
    pairs
}

fn sorted_pairs(placements: &[Placement]) -> Vec<(String, usize)> {
    let mut pairs: Vec<(String, usize)> =
        placements.iter().map(|p| (p.fragment.clone(), p.node)).collect();
    pairs.sort();
    pairs
}

/// Run `rebalance` while `threads` concurrent query loops hammer the
/// workload; returns the rebalance report plus how many mid-flight
/// queries ran and how many diverged from the oracle.
fn rebalance_under_query_load(
    px: &PartiX,
    target: &[Placement],
    oracle: &[String],
    workload: &[(&'static str, String)],
    threads: usize,
) -> (partix_advisor::RebalanceReport, u64, u64) {
    let done = AtomicBool::new(false);
    let ran = AtomicU64::new(0);
    let wrong = AtomicU64::new(0);
    let mut report = None;
    std::thread::scope(|scope| {
        let probes: Vec<_> = (0..threads)
            .map(|offset| {
                let (done, ran, wrong) = (&done, &ran, &wrong);
                scope.spawn(move || {
                    let mut k = offset;
                    // check-after-query: even an instant swap is probed
                    loop {
                        let (_, query) = &workload[k % workload.len()];
                        if let Ok(result) = px.execute(query) {
                            if canonical(&result.items) != oracle[k % workload.len()] {
                                wrong.fetch_add(1, Ordering::Relaxed);
                            }
                            ran.fetch_add(1, Ordering::Relaxed);
                        }
                        k += 1;
                        if done.load(Ordering::Relaxed) {
                            break;
                        }
                    }
                })
            })
            .collect();
        report = Some(
            partix_advisor::rebalance(px, setup::DIST, target, &RebalanceOptions::default())
                .expect("live rebalance"),
        );
        done.store(true, Ordering::Relaxed);
        for probe in probes {
            probe.join().expect("probe thread");
        }
    });
    (
        report.expect("rebalance ran"),
        ran.load(Ordering::Relaxed),
        wrong.load(Ordering::Relaxed),
    )
}

#[test]
fn live_rebalance_is_invisible_before_during_after() {
    let docs = setup::quick_items(80);
    let px = setup::skewed_horizontal(&docs, 4, 4);
    let workload = queries::horizontal(setup::DIST);
    let oracle = oracle_answers(&px, &workload);
    assert_matches_oracle(&px, &oracle, &workload, "skewed-before");

    let profile = profile_workload(&px, &workload);
    let mut config = AdvisorConfig::new(4);
    config.seed = 7;
    let advice = advise_live(&px, setup::DIST, &profile, &config)
        .expect("advise")
        .expect("distribution registered");
    assert!(
        advice.placements.iter().any(|p| p.node != 0),
        "advisor must spread the skewed placement",
    );

    let (report, ran, wrong) =
        rebalance_under_query_load(&px, &advice.placements, &oracle, &workload, 3);
    assert!(!report.moves.is_empty(), "skew must trigger moves");
    assert!(report.verified, "completeness/disjointness re-validation must pass");
    assert!(ran > 0, "no queries observed the migration");
    assert_eq!(wrong, 0, "{wrong} mid-migration answers diverged from the oracle");

    assert_matches_oracle(&px, &oracle, &workload, "skewed-after");
    assert_eq!(
        catalog_pairs(&px),
        sorted_pairs(&advice.placements),
        "catalog must hold exactly the target placement",
    );
}

#[test]
fn remote_rebalance_ships_real_frames_and_stays_transparent() {
    let docs = setup::quick_items(60);
    let px = setup::skewed_horizontal(&docs, 4, 4);
    let workload = queries::horizontal(setup::DIST);
    let oracle = oracle_answers(&px, &workload);

    let wire = RemoteCluster::attach(&px);
    assert_matches_oracle(&px, &oracle, &workload, "remote-before");

    let profile = profile_workload(&px, &workload);
    let mut config = AdvisorConfig::new(4);
    config.seed = 7;
    let advice = advise_live(&px, setup::DIST, &profile, &config)
        .expect("advise")
        .expect("distribution registered");

    let bytes_before = wire.wire_bytes();
    let (report, ran, wrong) =
        rebalance_under_query_load(&px, &advice.placements, &oracle, &workload, 2);
    assert!(report.verified);
    assert!(report.migrated_bytes > 0);
    assert!(
        wire.wire_bytes() > bytes_before,
        "migration copies must cross the wire on a remote cluster",
    );
    assert!(ran > 0);
    assert_eq!(wrong, 0, "{wrong} mid-migration remote answers diverged");

    assert_matches_oracle(&px, &oracle, &workload, "remote-after");
    assert_eq!(catalog_pairs(&px), sorted_pairs(&advice.placements));
}

/// Seeded fault injectors on the query path (the copy path is the
/// coordinator's own, not faulted): every answered query still matches
/// the oracle — faults may cost answers, never corrupt them — and the
/// migration itself completes verified because replica copies don't go
/// through the faulted sub-query drivers.
#[test]
fn faulted_rebalance_returns_oracle_answer_or_typed_error() {
    let docs = setup::quick_items(60);
    let workload = queries::horizontal(setup::DIST);
    // explicit spread target: fragment i → node i
    let target: Vec<Placement> = (0..4)
        .map(|i| Placement { fragment: format!("f{i}"), node: i })
        .collect();

    for seed in [3u64, 0xBAD5EED] {
        let px = setup::skewed_horizontal(&docs, 4, 4);
        let oracle = oracle_answers(&px, &workload);
        px.set_retry_policy(RetryPolicy {
            timeout: Some(Duration::from_millis(500)),
            ..RetryPolicy::default()
        });
        FaultPlan::from_seed(seed, 4, 0.6).install(&px);

        let label = format!("faulted-{seed:#x}");
        let mut answered = 0;
        for (k, (id, query)) in workload.iter().enumerate() {
            if let Ok(result) = px.execute(query) {
                assert_eq!(
                    canonical(&result.items),
                    oracle[k],
                    "{label}/{id}: faulted pre-migration answer is wrong",
                );
                answered += 1;
            }
        }

        let (report, _ran, wrong) =
            rebalance_under_query_load(&px, &target, &oracle, &workload, 2);
        assert!(report.verified, "{label}: migration must verify despite query faults");
        assert_eq!(wrong, 0, "{label}: {wrong} mid-migration answers were wrong");

        for (k, (id, query)) in workload.iter().enumerate() {
            if let Ok(result) = px.execute(query) {
                assert_eq!(
                    canonical(&result.items),
                    oracle[k],
                    "{label}/{id}: faulted post-migration answer is wrong",
                );
                answered += 1;
            }
        }
        assert_eq!(catalog_pairs(&px), sorted_pairs(&target), "{label}");
        // the schedule must leave *some* signal — all-errors would make
        // the differential vacuous
        assert!(answered > 0, "{label}: every query errored; seed too harsh");
    }
}

/// An online write landing while the rebalancer holds the *union*
/// placement (old ∪ new replica homes) must route to both homes and
/// survive retirement in exactly one post-swap replica set — the target
/// one. This is the seam where the online write path and live migration
/// interlock: a write routed only to the old home would be dropped with
/// it, one routed only to the new home would be invisible until the
/// swap.
#[test]
fn write_during_migration_lands_in_exactly_one_replica_set() {
    use partix::storage::WriteOp;
    use partix_advisor::{rebalance_with_observer, RebalancePhase};

    let docs = setup::quick_items(40);
    let px = setup::skewed_horizontal(&docs, 2, 2);
    let workload = queries::horizontal(setup::DIST);
    let target: Vec<Placement> = vec![
        Placement { fragment: "f0".into(), node: 0 },
        Placement { fragment: "f1".into(), node: 1 },
    ];

    // a document that routes into f1, the fragment in flight to node 1
    let mut doc = partix::xml::parse(
        "<Item><Code>4242</Code><Name>migrant</Name>\
         <Description>written mid-migration</Description>\
         <Section>TOY</Section></Item>",
    )
    .unwrap();
    doc.name = Some("mig-doc".into());
    let dist = px.catalog().distribution(setup::DIST).cloned().expect("registered");
    let home = dist
        .design
        .fragments
        .iter()
        .find(|f| !partix::frag::apply::apply_fragment(f, std::slice::from_ref(&doc)).is_empty())
        .expect("doc must route somewhere")
        .name
        .clone();
    assert_eq!(home, "f1", "probe doc must target the migrating fragment");

    let mut injected = false;
    let report = rebalance_with_observer(
        &px,
        setup::DIST,
        &target,
        &RebalanceOptions::default(),
        &mut |phase| {
            if phase == RebalancePhase::UnionRegistered {
                // the catalog now routes f1 writes to old AND new homes
                px.put(setup::DIST, doc.clone()).expect("mid-migration put");
                px.cluster().node(0).unwrap().db.apply_write(&WriteOp::Put {
                    collection: setup::CENTRAL.into(),
                    doc: doc.clone(),
                });
                injected = true;
            }
        },
    )
    .expect("rebalance with a mid-flight write");
    assert!(injected, "observer never saw the union window");
    assert!(report.verified, "post-move re-validation must pass despite the extra doc");
    assert_eq!(catalog_pairs(&px), sorted_pairs(&target));

    // exactly one (fragment, node) pair holds the written doc: the
    // target placement of its fragment — not zero (lost with the retired
    // replica), not two (retirement missed the old home)
    let mut holders: Vec<(String, usize)> = Vec::new();
    for (node_id, node) in px.cluster().nodes().iter().enumerate() {
        for frag in ["f0", "f1"] {
            if node.fetch_docs(frag).iter().any(|d| d.name.as_deref() == Some("mig-doc")) {
                holders.push((frag.to_string(), node_id));
            }
        }
    }
    assert_eq!(
        holders,
        vec![("f1".to_string(), 1)],
        "mid-migration write must survive in exactly the post-swap replica set",
    );

    // and the full workload still answers byte-identically to the
    // (equally updated) centralized oracle
    let oracle = oracle_answers(&px, &workload);
    assert_matches_oracle(&px, &oracle, &workload, "after mid-migration write");
}

/// Mid-migration probes that race the atomic swap must be replanned,
/// not answered from a retired replica: after moving every fragment
/// away from node 0 twice (there and back), answers still match.
#[test]
fn round_trip_migration_converges_back_to_the_start() {
    let docs = setup::quick_items(40);
    let px = setup::skewed_horizontal(&docs, 2, 2);
    let workload = queries::horizontal(setup::DIST);
    let oracle = oracle_answers(&px, &workload);

    let spread: Vec<Placement> = vec![
        Placement { fragment: "f0".into(), node: 0 },
        Placement { fragment: "f1".into(), node: 1 },
    ];
    let back: Vec<Placement> = vec![
        Placement { fragment: "f0".into(), node: 0 },
        Placement { fragment: "f1".into(), node: 0 },
    ];
    for (label, target) in [("spread", &spread), ("back", &back), ("spread-again", &spread)] {
        let (report, _ran, wrong) =
            rebalance_under_query_load(&px, target, &oracle, &workload, 2);
        assert!(report.verified, "{label}");
        assert_eq!(wrong, 0, "{label}: mid-migration divergence");
        assert_matches_oracle(&px, &oracle, &workload, label);
        assert_eq!(catalog_pairs(&px), sorted_pairs(target), "{label}");
    }
}
