//! Local-vs-remote differential suite: the proof that the partix-net
//! transport is transparent. Every query family of `tests/differential.rs`
//! runs three ways over the same corpus — in-process drivers, remote
//! drivers over loopback TCP ([`partix_bench::remote::RemoteCluster`]),
//! and the centralized oracle — and the canonical serializations must be
//! byte-identical. The coordinator cannot tell the transports apart, so
//! any divergence is a wire-protocol bug (codec, framing, or pooling).
//!
//! The faulted variants re-run the dispatch-layer contract over sockets:
//! with injectors wrapping the *remote* drivers, a query returns either
//! the oracle answer or a typed error — never silently wrong data. A
//! killed node server must likewise surface as a typed error.

use partix::engine::{ExecOptions, FaultPlan, PartiX, RetryPolicy};
use partix::frag::FragMode;
use partix::gen::{ArticleProfile, ItemProfile};
use partix::query::Item;
use partix_bench::remote::RemoteCluster;
use partix_bench::{queries, setup};
use std::time::Duration;

/// Canonical serialization: one line per item, sorted (fragment
/// concatenation order is not document order).
fn canonical(items: &[Item]) -> String {
    let mut lines: Vec<String> = items.iter().map(Item::serialize).collect();
    lines.sort();
    lines.join("\n")
}

/// Rewrite a query against [`setup::DIST`] to the centralized copy.
fn centralized_text(query: &str) -> String {
    query.replace(
        &format!("collection(\"{}\")", setup::DIST),
        &format!("collection(\"{}\")", setup::CENTRAL),
    )
}

/// Capture the in-process answers for a workload (run before the remote
/// drivers are installed).
fn local_answers(px: &PartiX, workload: &[(&'static str, String)], label: &str) -> Vec<String> {
    workload
        .iter()
        .map(|(id, query)| {
            canonical(
                &px.execute(query)
                    .unwrap_or_else(|e| panic!("{label}/{id} local: {e}"))
                    .items,
            )
        })
        .collect()
}

/// After [`RemoteCluster::attach`], every query must reproduce both the
/// captured in-process answer and the centralized oracle byte-for-byte.
fn assert_remote_differential(
    px: &PartiX,
    local: &[String],
    workload: &[(&'static str, String)],
    label: &str,
) {
    for (k, (id, query)) in workload.iter().enumerate() {
        let remote = px
            .execute(query)
            .unwrap_or_else(|e| panic!("{label}/{id} remote: {e}"));
        let remote = canonical(&remote.items);
        assert_eq!(
            remote, local[k],
            "{label}/{id}: remote answer diverges from the in-process run",
        );
        let oracle = px
            .execute_centralized(0, &centralized_text(query))
            .unwrap_or_else(|e| panic!("{label}/{id} centralized: {e}"));
        assert_eq!(
            remote,
            canonical(&oracle.items),
            "{label}/{id}: remote answer diverges from the oracle",
        );
    }
}

#[test]
fn horizontal_remote_matches_local_across_fragment_counts() {
    let docs = setup::quick_items(80);
    let workload = queries::horizontal(setup::DIST);
    for n in [2, 4, 8] {
        let label = format!("hor{n}-remote");
        let px = setup::horizontal(&docs, n);
        let local = local_answers(&px, &workload, &label);
        let wire = RemoteCluster::attach(&px);
        assert_remote_differential(&px, &local, &workload, &label);
        assert!(wire.wire_bytes() > 0, "{label}: no bytes crossed the wire");
    }
}

#[test]
fn vertical_remote_matches_local() {
    let docs = partix::gen::gen_articles(10, ArticleProfile::SMALL, 29);
    let workload = queries::vertical(setup::DIST);
    let px = setup::vertical(&docs);
    let local = local_answers(&px, &workload, "vert-remote");
    let _wire = RemoteCluster::attach(&px);
    assert_remote_differential(&px, &local, &workload, "vert-remote");
}

#[test]
fn hybrid_remote_matches_local_both_frag_modes() {
    let store = partix::gen::gen_store(40, ItemProfile::Small, 31);
    for mode in [FragMode::SingleDoc, FragMode::ManySmallDocs] {
        let label = format!("{mode:?}-remote");
        let px = setup::hybrid(&store, mode);
        let workload = queries::hybrid(setup::DIST);
        let local = local_answers(&px, &workload, &label);
        let _wire = RemoteCluster::attach(&px);
        assert_remote_differential(&px, &local, &workload, &label);
    }
}

// ------------------------------------------------------ faulted runs --

/// Faulted remote runs: every answered query matches `oracle`, errors
/// are typed, wrong data never appears. Returns the success count.
fn assert_no_wrong_data(
    px: &PartiX,
    oracle: &[String],
    workload: &[(&'static str, String)],
    label: &str,
) -> usize {
    let mut ok = 0;
    for (k, (id, query)) in workload.iter().enumerate() {
        match px.execute_with(query, ExecOptions::default()) {
            Ok(result) => {
                assert_eq!(
                    canonical(&result.items),
                    oracle[k],
                    "{label}/{id}: faulted remote run returned wrong data",
                );
                ok += 1;
            }
            // a typed error is acceptable under faults — wrong data is not
            Err(_) => {}
        }
    }
    ok
}

/// Replicated horizontal cluster over sockets with injectors wrapping
/// the remote drivers: same no-wrong-data contract as the in-process
/// suite, same seeds, now with real frames underneath the faults.
#[test]
fn horizontal_remote_under_faults_returns_oracle_answer_or_typed_error() {
    let docs = setup::quick_items(60);
    let workload = queries::horizontal(setup::DIST);
    let clean = setup::horizontal(&docs, 4);
    let oracle: Vec<String> = workload
        .iter()
        .map(|(id, q)| {
            canonical(&clean.execute(q).unwrap_or_else(|e| panic!("{id}: {e}")).items)
        })
        .collect();

    for seed in [3u64, 0xBAD5EED, 0xC4A0_5EED] {
        let plan = FaultPlan::from_seed(seed, 4, 0.8);
        let px = setup::horizontal_replicated(&docs, 4, 2);
        px.set_retry_policy(RetryPolicy {
            timeout: Some(Duration::from_millis(500)),
            ..RetryPolicy::default()
        });
        // transport first, faults second: injectors wrap RemoteDriver
        let _wire = RemoteCluster::attach(&px);
        plan.install(&px);
        assert_no_wrong_data(&px, &oracle, &workload, &format!("remote-faulted-{seed:#x}"));
    }
}

/// A killed node server is a typed error, not wrong data: unreplicated
/// fragments on a dead listener must fail the query cleanly, and a
/// restart on the same port must heal it without rebuilding anything.
#[test]
fn killed_server_yields_typed_error_and_restart_heals() {
    let docs = setup::quick_items(40);
    let px = setup::horizontal(&docs, 2);
    px.set_retry_policy(RetryPolicy {
        timeout: Some(Duration::from_millis(500)),
        ..RetryPolicy::default()
    });
    let q = format!(r#"count(collection("{}")/Item)"#, setup::DIST);
    let mut wire = RemoteCluster::attach(&px);
    let healthy = canonical(&px.execute(&q).expect("healthy remote run").items);

    wire.kill(1);
    match px.execute(&q) {
        // no replica for f1: the failure must be a typed error
        Err(_) => {}
        Ok(result) => {
            // dispatch may legally answer only if the answer is right
            // (e.g. served from cache) — wrong data is the one outlawed
            // outcome
            assert_eq!(
                canonical(&result.items),
                healthy,
                "query over a dead server returned wrong data",
            );
        }
    }

    wire.restart(1);
    let healed = px.execute(&q).expect("restarted server answers");
    assert_eq!(canonical(&healed.items), healthy);
}
