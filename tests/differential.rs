//! Differential oracle suite: the paper's correctness rules
//! (completeness / disjointness / reconstruction, Sec. 3.3) as an
//! executable check. For every bench query class the same corpus is
//! published centralized and under each fragmentation design, and the
//! serialized answers must be byte-identical (after canonical ordering —
//! fragment concatenation order is not document order).
//!
//! The fault-injected variants add the dispatch-layer contract: a run
//! under injected faults must return either the oracle answer or a typed
//! `PartixError` — never silently wrong data.

use partix::engine::{ExecOptions, FaultPlan, PartiX, RetryPolicy};
use partix::frag::FragMode;
use partix::gen::{ArticleProfile, ItemProfile};
use partix::query::Item;
use partix_bench::{queries, setup};
use std::time::Duration;

/// Canonical serialization: one line per item, sorted. Two answers are
/// equivalent iff these strings are byte-identical.
fn canonical(items: &[Item]) -> String {
    let mut lines: Vec<String> = items.iter().map(Item::serialize).collect();
    lines.sort();
    lines.join("\n")
}

/// Rewrite a query against [`setup::DIST`] to the centralized copy.
fn centralized_text(query: &str) -> String {
    query.replace(
        &format!("collection(\"{}\")", setup::DIST),
        &format!("collection(\"{}\")", setup::CENTRAL),
    )
}

/// Every query must produce byte-identical canonical output both ways.
fn assert_differential(px: &PartiX, workload: &[(&'static str, String)], label: &str) {
    for (id, query) in workload {
        let dist = px
            .execute(query)
            .unwrap_or_else(|e| panic!("{label}/{id} distributed: {e}"));
        let cent = px
            .execute_centralized(0, &centralized_text(query))
            .unwrap_or_else(|e| panic!("{label}/{id} centralized: {e}"));
        assert_eq!(
            canonical(&dist.items),
            canonical(&cent.items),
            "{label}/{id}: distributed answer diverges from the oracle",
        );
    }
}

#[test]
fn horizontal_matches_oracle_across_fragment_counts() {
    let docs = setup::quick_items(80);
    for n in [2, 4, 8] {
        let px = setup::horizontal(&docs, n);
        assert_differential(&px, &queries::horizontal(setup::DIST), &format!("hor{n}"));
    }
}

#[test]
fn vertical_matches_oracle() {
    let docs = partix::gen::gen_articles(10, ArticleProfile::SMALL, 29);
    let px = setup::vertical(&docs);
    assert_differential(&px, &queries::vertical(setup::DIST), "vert");
}

#[test]
fn hybrid_matches_oracle_both_frag_modes() {
    let store = partix::gen::gen_store(40, ItemProfile::Small, 31);
    for mode in [FragMode::SingleDoc, FragMode::ManySmallDocs] {
        let px = setup::hybrid(&store, mode);
        assert_differential(&px, &queries::hybrid(setup::DIST), &format!("{mode:?}"));
    }
}

// ------------------------------------------------------ faulted runs --

/// Run `workload` on a faulted middleware: every query must either
/// reproduce `oracle`'s canonical answer or fail with a typed error.
/// Returns how many queries succeeded.
fn assert_no_wrong_data(
    px: &PartiX,
    oracle: &[String],
    workload: &[(&'static str, String)],
    label: &str,
) -> usize {
    let mut ok = 0;
    for (k, (id, query)) in workload.iter().enumerate() {
        match px.execute_with(query, ExecOptions::default()) {
            Ok(result) => {
                assert_eq!(
                    canonical(&result.items),
                    oracle[k],
                    "{label}/{id}: faulted run returned wrong data",
                );
                ok += 1;
            }
            // a typed error is an acceptable outcome under faults —
            // wrong data never is
            Err(_) => {}
        }
    }
    ok
}

/// Replicated horizontal repository under seeded fault schedules: the
/// schedule is identical per seed, answered queries are byte-identical
/// to the oracle, and with 2 replicas per fragment a single faulty node
/// cannot fail the workload.
#[test]
fn horizontal_under_faults_returns_oracle_answer_or_typed_error() {
    let docs = setup::quick_items(60);
    let workload = queries::horizontal(setup::DIST);
    let clean = setup::horizontal(&docs, 4);
    let oracle: Vec<String> = workload
        .iter()
        .map(|(id, q)| {
            canonical(&clean.execute(q).unwrap_or_else(|e| panic!("{id}: {e}")).items)
        })
        .collect();

    for seed in [3u64, 0xBAD5EED, 0xC4A0_5EED] {
        let plan = FaultPlan::from_seed(seed, 4, 0.8);
        assert_eq!(
            plan.describe(),
            FaultPlan::from_seed(seed, 4, 0.8).describe(),
            "schedule not reproducible for seed {seed:#x}",
        );
        // full cluster faulted: errors are allowed, wrong data is not
        let px = setup::horizontal_replicated(&docs, 4, 2);
        px.set_retry_policy(RetryPolicy {
            timeout: Some(Duration::from_millis(200)),
            ..RetryPolicy::default()
        });
        plan.install(&px);
        assert_no_wrong_data(&px, &oracle, &workload, &format!("faulted-{seed:#x}"));

        // a single faulty node against 2 replicas: failover must answer
        // every query
        let single = setup::horizontal_replicated(&docs, 4, 2);
        single.set_retry_policy(RetryPolicy {
            timeout: Some(Duration::from_millis(200)),
            ..RetryPolicy::default()
        });
        let mut one_node = plan.clone();
        for (node, faults) in one_node.node_faults.iter_mut().enumerate() {
            if node != 0 {
                faults.clear();
            }
        }
        one_node.node_faults[0] = FaultPlan::from_seed(seed, 4, 1.0).node_faults[0].clone();
        one_node.install(&single);
        let ok = assert_no_wrong_data(
            &single,
            &oracle,
            &workload,
            &format!("single-{seed:#x}"),
        );
        assert_eq!(
            ok,
            workload.len(),
            "seed {seed:#x}: a single faulty node failed queries despite replication",
        );
    }
}

/// Unreplicated vertical design under faults: degraded availability may
/// surface as typed errors, but answered queries still match the oracle.
#[test]
fn vertical_under_faults_never_returns_wrong_data() {
    let docs = partix::gen::gen_articles(8, ArticleProfile::SMALL, 41);
    let workload = queries::vertical(setup::DIST);
    let clean = setup::vertical(&docs);
    let oracle: Vec<String> = workload
        .iter()
        .map(|(id, q)| {
            canonical(&clean.execute(q).unwrap_or_else(|e| panic!("{id}: {e}")).items)
        })
        .collect();
    let px = setup::vertical(&docs);
    px.set_retry_policy(RetryPolicy {
        timeout: Some(Duration::from_millis(200)),
        ..RetryPolicy::default()
    });
    FaultPlan::from_seed(0xD1FF, 3, 0.7).install(&px);
    assert_no_wrong_data(&px, &oracle, &workload, "vert-faulted");
}
