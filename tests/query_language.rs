//! Broad coverage of the XQuery subset through the storage engine —
//! the query-language surface a downstream user would rely on.

use partix::query::Item;
use partix::storage::Database;
use partix::xml::parse;

fn db() -> Database {
    let db = Database::new();
    let docs = [
        (
            "b1",
            r#"<book year="2003"><title>Data on the Web</title><price>39.95</price>
               <authors><author>Abiteboul</author><author>Buneman</author></authors>
               <topic>databases</topic></book>"#,
        ),
        (
            "b2",
            r#"<book year="1999"><title>XML Handbook</title><price>49.50</price>
               <authors><author>Goldfarb</author></authors>
               <topic>markup</topic></book>"#,
        ),
        (
            "b3",
            r#"<book year="2003"><title>Querying XML</title><price>65.00</price>
               <authors><author>Melton</author><author>Buxton</author></authors>
               <topic>databases</topic></book>"#,
        ),
    ];
    for (name, xml) in docs {
        let mut d = parse(xml).unwrap();
        d.name = Some(name.to_owned());
        db.store("books", d);
    }
    db
}

fn run(q: &str) -> Vec<String> {
    db().execute(q)
        .unwrap_or_else(|e| panic!("{q}: {e}"))
        .items
        .iter()
        .map(Item::serialize)
        .collect()
}

fn run1(q: &str) -> String {
    let out = run(q);
    assert_eq!(out.len(), 1, "{q} returned {out:?}");
    out.into_iter().next().unwrap()
}

#[test]
fn attribute_predicates_and_results() {
    assert_eq!(
        run(r#"for $b in collection("books")/book where $b/@year = "2003" return $b/title"#)
            .len(),
        2
    );
    assert_eq!(
        run1(r#"count(for $b in collection("books")/book where $b/@year = "1999" return $b)"#),
        "1"
    );
}

#[test]
fn string_functions_compose() {
    assert_eq!(
        run1(
            r#"string-join(for $b in collection("books")/book
                           where $b/topic = "markup"
                           return string($b/title), "; ")"#
        ),
        "XML Handbook"
    );
    assert_eq!(
        run1(r#"concat("total: ", string(count(collection("books")/book)))"#),
        "total: 3"
    );
    assert_eq!(
        run1(r#"string-length(string(min(collection("books")/book/price)))"#),
        "5" // "39.95"
    );
}

#[test]
fn distinct_values_over_topics() {
    let out = run(r#"distinct-values(collection("books")/book/topic)"#);
    assert_eq!(out, ["databases", "markup"]);
}

#[test]
fn nested_element_construction() {
    let out = run1(
        r#"for $b in collection("books")/book
           where $b/title = "XML Handbook"
           return <entry lang="en"><t>{$b/title}</t><y>{string($b/@year)}</y></entry>"#,
    );
    assert_eq!(
        out,
        r#"<entry lang="en"><t><title>XML Handbook</title></t><y>1999</y></entry>"#
    );
}

#[test]
fn order_by_string_and_numeric_keys() {
    let by_title = run(
        r#"for $b in collection("books")/book order by string($b/title) return $b/title"#,
    );
    assert_eq!(
        by_title,
        [
            "<title>Data on the Web</title>",
            "<title>Querying XML</title>",
            "<title>XML Handbook</title>"
        ]
    );
    let by_price_desc = run(
        r#"for $b in collection("books")/book
           order by number($b/price) descending return $b/price"#,
    );
    assert_eq!(
        by_price_desc,
        ["<price>65.00</price>", "<price>49.50</price>", "<price>39.95</price>"]
    );
}

#[test]
fn arithmetic_in_return_and_where() {
    // prices with 10% discount, cheapest first
    let discounted = run(
        r#"for $b in collection("books")/book
           where $b/price * 0.9 < 45
           order by number($b/price)
           return round($b/price * 0.9)"#,
    );
    assert_eq!(discounted, ["36", "45"]); // 39.95*0.9≈36, 49.50*0.9≈44.6
    let third: f64 = run1(r#"sum(collection("books")/book/price) div 3"#)
        .parse()
        .unwrap();
    assert!((third - 51.4833).abs() < 0.001);
}

#[test]
fn conditionals_classify() {
    let out = run(
        r#"for $b in collection("books")/book
           order by number($b/price)
           return if ($b/price > 50) then concat(string($b/title), " [pricey]")
                  else string($b/title)"#,
    );
    assert_eq!(
        out,
        ["Data on the Web", "XML Handbook", "Querying XML [pricey]"]
    );
}

#[test]
fn nested_flwor_correlated() {
    // books sharing a topic with "Data on the Web" (excluding itself)
    let out = run(
        r#"for $b in collection("books")/book
           where count(for $o in collection("books")/book
                       where $o/topic = $b/topic and $o/title != $b/title
                       return $o) > 0
           return $b/title"#,
    );
    assert_eq!(out.len(), 2);
}

#[test]
fn sequences_and_empties() {
    assert_eq!(run("()").len(), 0);
    let out = run(r#"(1, "two", count(collection("books")/book))"#);
    assert_eq!(out, ["1", "two", "3"]);
    assert_eq!(
        run(r#"for $b in collection("books")/book where $b/missing = "x" return $b"#).len(),
        0
    );
    assert_eq!(run1(r#"count(collection("books")/book/missing)"#), "0");
}

#[test]
fn let_bindings_shadow_and_reuse() {
    let out = run1(
        r#"for $b in collection("books")/book
           let $t := $b/title
           let $n := string-length(string($t))
           where $b/topic = "markup"
           return $n"#,
    );
    assert_eq!(out, "12"); // "XML Handbook"
}

#[test]
fn min_max_avg_over_prices() {
    assert_eq!(run1(r#"min(collection("books")/book/price)"#), "39.95");
    assert_eq!(run1(r#"max(collection("books")/book/price)"#), "65");
    let avg: f64 = run1(r#"avg(collection("books")/book/price)"#).parse().unwrap();
    assert!((avg - 51.483).abs() < 0.01);
}

#[test]
fn starts_with_and_contains() {
    assert_eq!(
        run1(
            r#"count(for $b in collection("books")/book
                     where starts-with($b/title, "XML") return $b)"#
        ),
        "1"
    );
    assert_eq!(
        run1(
            r#"count(for $b in collection("books")/book
                     where contains($b/authors, "Buneman") return $b)"#
        ),
        "1"
    );
}

#[test]
fn doc_function_addresses_one_document() {
    let db = db();
    let out = db.execute(r#"doc("b2")/book/title"#).unwrap();
    assert_eq!(out.items[0].serialize(), "<title>XML Handbook</title>");
    assert!(db.execute(r#"doc("nope")/book"#).is_err());
}

#[test]
fn comments_and_whitespace_tolerated() {
    assert_eq!(
        run1(
            r#"(: how many books? :)
               count( (: inline :) collection("books")/book )"#
        ),
        "3"
    );
}
