//! Concurrent execution: many client threads sharing one `PartiX` in
//! `DispatchMode::Pool` must observe exactly the answers the sequential
//! `Simulated` reference produces, and the sub-query result cache must
//! be invalidated by writes.

use partix::engine::{DispatchMode, Distribution, NetworkModel, PartiX, Placement};
use partix::frag::{FragmentDef, FragmentationSchema};
use partix::gen::{gen_items, ItemProfile};
use partix::path::{PathExpr, Predicate};
use partix::query::Item;
use partix::schema::{builtin, CollectionDef, RepoKind};

fn multiset(items: &[Item]) -> Vec<String> {
    let mut v: Vec<String> = items.iter().map(Item::serialize).collect();
    v.sort();
    v
}

/// A 4-node horizontally fragmented `items` collection loaded with
/// `docs`, in the given dispatch mode.
fn setup(docs: &[partix::xml::Document], mode: DispatchMode) -> PartiX {
    let mut px = PartiX::new(4, NetworkModel::default());
    px.set_dispatch(mode);
    let citems = CollectionDef::new(
        "items",
        std::sync::Arc::new(builtin::virtual_store()),
        PathExpr::parse("/Store/Items/Item").unwrap(),
        RepoKind::MultipleDocuments,
    );
    let groups: [&[&str]; 4] = [
        &["CD", "DVD"],
        &["BOOK", "ELECTRONICS"],
        &["TOY", "GAME"],
        &["SPORT", "GARDEN"],
    ];
    let fragments = groups
        .iter()
        .enumerate()
        .map(|(i, g)| {
            let atoms: Vec<Predicate> = g
                .iter()
                .map(|s| Predicate::parse(&format!(r#"/Item/Section = "{s}""#)).unwrap())
                .collect();
            FragmentDef::horizontal(&format!("f{i}"), Predicate::Or(atoms))
        })
        .collect();
    let design = FragmentationSchema::new(citems, fragments).unwrap();
    px.register_distribution(Distribution {
        design,
        placements: (0..4)
            .map(|i| Placement { fragment: format!("f{i}"), node: i })
            .collect(),
    })
    .unwrap();
    px.publish("items", docs).unwrap();
    px
}

const QUERIES: [&str; 6] = [
    r#"for $i in collection("items")/Item where $i/Section = "TOY" return $i/Code"#,
    r#"count(for $i in collection("items")/Item return $i)"#,
    r#"sum(for $i in collection("items")/Item return number($i/Code))"#,
    r#"avg(for $i in collection("items")/Item return number($i/Code))"#,
    r#"for $i in collection("items")/Item where contains($i//Description, "good") return $i/Name"#,
    r#"max(for $i in collection("items")/Item return number($i/Code))"#,
];

/// N threads hammering one Pool-mode middleware with a mixed workload
/// get, on every single call, the answer the Simulated reference gives.
#[test]
fn pool_mode_concurrent_results_match_simulated() {
    let docs = gen_items(120, ItemProfile::Small, 7);
    let reference = setup(&docs, DispatchMode::Simulated);
    let expected: Vec<Vec<String>> = QUERIES
        .iter()
        .map(|q| multiset(&reference.execute(q).unwrap().items))
        .collect();

    let px = setup(&docs, DispatchMode::Pool);
    const THREADS: usize = 8;
    const ROUNDS: usize = 5;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let px = &px;
            let expected = &expected;
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    // stagger so different threads hit different queries
                    // at the same time
                    let q = (t + round) % QUERIES.len();
                    let got = px.execute(QUERIES[q]).unwrap();
                    assert_eq!(
                        multiset(&got.items),
                        expected[q],
                        "thread {t} round {round}: {}",
                        QUERIES[q]
                    );
                }
            });
        }
    });
}

/// The same holds with the result cache enabled: hits must return the
/// same answers misses computed.
#[test]
fn pool_mode_cached_results_match_simulated() {
    let docs = gen_items(80, ItemProfile::Small, 11);
    let reference = setup(&docs, DispatchMode::Simulated);
    let px = setup(&docs, DispatchMode::Pool);
    px.set_result_cache_enabled(true);
    for pass in 0..3 {
        for q in QUERIES {
            let got = px.execute(q).unwrap();
            let want = reference.execute(q).unwrap();
            assert_eq!(multiset(&got.items), multiset(&want.items), "pass {pass}: {q}");
        }
    }
    let stats = px.cache_stats();
    assert!(stats.result_hits > 0, "repeated queries never hit: {stats:?}");
}

/// Count live worker-pool threads by name (`partix-pool-*`; /proc comm
/// is truncated to 15 bytes, which still covers the prefix).
fn pool_threads() -> usize {
    let mut n = 0;
    if let Ok(tasks) = std::fs::read_dir("/proc/self/task") {
        for task in tasks.flatten() {
            if let Ok(comm) = std::fs::read_to_string(task.path().join("comm")) {
                if comm.starts_with("partix-pool") {
                    n += 1;
                }
            }
        }
    }
    n
}

/// Chaos variant: 16 clients hammer a replicated Pool-mode middleware
/// while a background thread flips one node's availability at a time.
/// The run must not deadlock, answered queries must match the healthy
/// reference, cache counters must stay consistent, and dropping the
/// middleware must not leak pool workers.
#[test]
fn chaos_flapping_node_under_concurrent_clients() {
    use partix_bench::setup;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

    let docs = gen_items(100, ItemProfile::Small, 13);
    let workload = partix_bench::queries::horizontal(setup::DIST);
    // healthy Simulated reference = the oracle for every query
    let reference = setup::horizontal_replicated(&docs, 4, 2);
    let expected: Vec<Vec<String>> = workload
        .iter()
        .map(|(_, q)| multiset(&reference.execute(q).unwrap().items))
        .collect();

    let baseline_threads = pool_threads();
    let failed = AtomicUsize::new(0);
    let answered = AtomicUsize::new(0);
    {
        let mut px = setup::horizontal_replicated(&docs, 4, 2);
        px.set_dispatch(DispatchMode::Pool);
        px.set_result_cache_enabled(true);
        // a flap can land on every backoff window in a row; give the
        // retry loop enough attempts that this is vanishingly rare
        px.set_retry_policy(partix::engine::RetryPolicy {
            max_attempts: 6,
            ..partix::engine::RetryPolicy::default()
        });

        const CLIENTS: usize = 16;
        const ROUNDS: usize = 6;
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            // availability flipper: at most one node down at any moment,
            // so with 2 replicas every fragment stays answerable
            let flipper = scope.spawn(|| {
                let mut k = 0usize;
                while !stop.load(Ordering::Acquire) {
                    let node = px.cluster().node(k % 4).unwrap();
                    node.set_available(false);
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    node.set_available(true);
                    // a fully-up window between flips
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    k += 1;
                }
            });
            let clients: Vec<_> = (0..CLIENTS)
                .map(|t| {
                    let px = &px;
                    let workload = &workload;
                    let expected = &expected;
                    let failed = &failed;
                    let answered = &answered;
                    scope.spawn(move || {
                        for round in 0..ROUNDS {
                            let q = (t + round) % workload.len();
                            match px.execute(&workload[q].1) {
                                Ok(got) => {
                                    answered.fetch_add(1, Ordering::Relaxed);
                                    assert_eq!(
                                        multiset(&got.items),
                                        expected[q],
                                        "client {t} round {round}: {}",
                                        workload[q].0
                                    );
                                }
                                // a flap can exhaust the retry budget;
                                // that must surface as an error, never
                                // wrong data
                                Err(_) => {
                                    failed.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                    })
                })
                .collect();
            for client in clients {
                client.join().expect("client thread");
            }
            stop.store(true, Ordering::Release);
            flipper.join().expect("flipper thread");
        });

        let total = CLIENTS * ROUNDS;
        let failed = failed.load(Ordering::Relaxed);
        assert!(
            failed * 20 <= total,
            "{failed}/{total} queries failed despite replication"
        );
        assert!(answered.load(Ordering::Relaxed) > 0);
        // counters are monotonic sums over every lookup: each answered
        // query performed at most one lookup per fragment
        let stats = px.cache_stats();
        let lookups = stats.result_hits + stats.result_misses;
        assert!(lookups > 0, "{stats:?}");
        assert!(
            lookups <= (total as u64) * 4,
            "more cache lookups than dispatched sub-queries: {stats:?}"
        );
        assert!(stats.result_hits > 0, "repeated workload never hit: {stats:?}");
    } // px dropped: its pool must shut down
    for _ in 0..100 {
        if pool_threads() <= baseline_threads {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(
        pool_threads() <= baseline_threads,
        "pool workers leaked after drop"
    );
}

/// Remote chaos variant: the cluster's nodes sit behind loopback TCP
/// servers ([`partix_bench::remote::RemoteCluster`]) and a background
/// thread kills and restarts one node *listener* at a time — real
/// connection refusals and mid-stream hangups, not simulated flags.
/// Replica failover must keep answering with oracle-identical data, the
/// drivers' connect/reconnect accounting must reconcile, and neither
/// client connection pools nor pool workers may leak.
#[test]
fn remote_chaos_killed_listener_under_concurrent_clients() {
    use partix_bench::remote::RemoteCluster;
    use partix_bench::setup;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::Mutex;

    let docs = gen_items(80, ItemProfile::Small, 17);
    let workload = partix_bench::queries::horizontal(setup::DIST);
    let reference = setup::horizontal_replicated(&docs, 4, 2);
    let expected: Vec<Vec<String>> = workload
        .iter()
        .map(|(_, q)| multiset(&reference.execute(q).unwrap().items))
        .collect();

    let baseline_threads = pool_threads();
    let failed = AtomicUsize::new(0);
    let answered = AtomicUsize::new(0);
    {
        let mut px = setup::horizontal_replicated(&docs, 4, 2);
        px.set_dispatch(DispatchMode::Pool);
        px.set_retry_policy(partix::engine::RetryPolicy {
            max_attempts: 6,
            timeout: Some(std::time::Duration::from_secs(2)),
            ..partix::engine::RetryPolicy::default()
        });
        let wire = Mutex::new(RemoteCluster::attach(&px));

        const CLIENTS: usize = 12;
        const ROUNDS: usize = 5;
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            // listener flapper: at most one node's server down at any
            // moment, so with 2 replicas every fragment stays answerable
            let flipper = scope.spawn(|| {
                let mut k = 0usize;
                while !stop.load(Ordering::Acquire) {
                    {
                        let mut wire = wire.lock().unwrap();
                        wire.kill(k % 4);
                    }
                    std::thread::sleep(std::time::Duration::from_millis(3));
                    {
                        let mut wire = wire.lock().unwrap();
                        wire.restart(k % 4);
                    }
                    std::thread::sleep(std::time::Duration::from_millis(3));
                    k += 1;
                }
            });
            let clients: Vec<_> = (0..CLIENTS)
                .map(|t| {
                    let px = &px;
                    let workload = &workload;
                    let expected = &expected;
                    let failed = &failed;
                    let answered = &answered;
                    scope.spawn(move || {
                        for round in 0..ROUNDS {
                            let q = (t + round) % workload.len();
                            match px.execute(&workload[q].1) {
                                Ok(got) => {
                                    answered.fetch_add(1, Ordering::Relaxed);
                                    assert_eq!(
                                        multiset(&got.items),
                                        expected[q],
                                        "client {t} round {round}: {}",
                                        workload[q].0
                                    );
                                }
                                // exhausted retries surface as an error,
                                // never as wrong data
                                Err(_) => {
                                    failed.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                    })
                })
                .collect();
            for client in clients {
                client.join().expect("client thread");
            }
            stop.store(true, Ordering::Release);
            flipper.join().expect("flipper thread");
        });

        let total = CLIENTS * ROUNDS;
        let failed = failed.load(Ordering::Relaxed);
        assert!(answered.load(Ordering::Relaxed) > 0, "no query ever answered");
        assert!(
            failed * 4 <= total,
            "{failed}/{total} queries failed despite replication and retries"
        );

        let mut wire = wire.lock().unwrap();
        // every listener is back up: a fresh query round must succeed
        for i in 0..4 {
            wire.restart(i);
        }
        let (_, q) = &workload[0];
        let healed = px.execute(q).expect("healed cluster answers");
        assert_eq!(multiset(&healed.items), expected[0]);

        // accounting reconciles: reconnects are a subset of connects,
        // and the idle pools hold at most max_idle sockets per driver
        for i in 0..4 {
            let stats = wire.driver(i).stats();
            assert!(stats.connects >= 1, "node {i}: no connect recorded");
            assert!(
                stats.reconnects <= stats.connects,
                "node {i}: more reconnects than connects: {stats:?}"
            );
            assert!(
                wire.driver(i).pooled_connections() <= 4,
                "node {i}: idle pool exceeds max_idle"
            );
        }
        // flapped listeners forced at least one redial somewhere
        assert!(
            wire.connects() > 4,
            "listener flaps never forced a reconnect"
        );
        // draining the pools leaves no idle sockets behind
        for i in 0..4 {
            wire.driver(i).drain_pool();
        }
        assert_eq!(wire.pooled_connections(), 0, "connection pool leaked");
    } // px + wire dropped: pool workers and listeners must shut down
    for _ in 0..100 {
        if pool_threads() <= baseline_threads {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(
        pool_threads() <= baseline_threads,
        "pool workers leaked after drop"
    );
}

/// Publishing new documents after a cached read must invalidate the
/// cache: the next read sees the new data, not the cached answer.
#[test]
fn result_cache_invalidated_by_store() {
    let docs = gen_items(60, ItemProfile::Small, 3);
    let px = setup(&docs, DispatchMode::Pool);
    px.set_result_cache_enabled(true);

    let count_q = r#"count(for $i in collection("items")/Item return $i)"#;
    let first = px.execute(count_q).unwrap();
    assert_eq!(first.items[0].serialize(), "60");
    // second read is served from the cache
    let second = px.execute(count_q).unwrap();
    assert_eq!(second.items[0].serialize(), "60");
    assert!(second.report.result_cache_hits > 0, "{:?}", second.report);

    // a write through the publisher (node store_docs) bumps the epochs
    let more = gen_items(15, ItemProfile::Small, 4);
    px.publish("items", &more).unwrap();

    let third = px.execute(count_q).unwrap();
    assert_eq!(third.items[0].serialize(), "75", "stale cached answer survived a write");
    assert_eq!(third.report.result_cache_hits, 0, "{:?}", third.report);
}
