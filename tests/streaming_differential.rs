//! Streamed-vs-buffered differential suite: the proof that `PXN2`
//! chunked streaming changes *when* bytes move, never *what* they say.
//! Every query family runs three ways against one coordinator — streamed
//! (`ItemChunk` frames as sub-queries complete), buffered (whole answer
//! materialized first; same wire format), and the in-process engine —
//! and the item sequences must be byte-identical *in order*, with the
//! horizontal families additionally checked against the centralized
//! oracle. The deterministic [`partix_net::StreamStats`] shipped in
//! `StreamEnd` must agree between the two transport modes, hot cache and
//! cold alike.
//!
//! The faulted runs re-assert the dispatch contract through the
//! streaming stack: seeded injectors under a replicated cluster, and a
//! coordinator killed mid-workload, may fail queries with typed errors —
//! but an answered stream is always the oracle answer, never a silent
//! truncation (the `StreamEnd` totals make short streams detectable).

use partix::engine::{DispatchMode, FaultPlan, PartiX, RetryPolicy};
use partix::frag::FragMode;
use partix::gen::{ArticleProfile, ItemProfile};
use partix::query::Item;
use partix_bench::{queries, setup};
use partix_net::{
    serve_coordinator, StreamCallError, StreamClient, StreamClientConfig, StreamOpts,
    StreamResult, StreamServer, StreamServerConfig,
};
use std::sync::Arc;
use std::time::Duration;

/// Exact serialization, order preserved: streamed and buffered runs of
/// the same query must agree item-for-item, not merely as sets.
fn exact(items: &[Item]) -> String {
    items.iter().map(Item::serialize).collect::<Vec<_>>().join("\n")
}

/// Canonical (sorted) serialization for oracle comparison — fragment
/// concatenation order is not document order.
fn canonical(items: &[Item]) -> String {
    let mut lines: Vec<String> = items.iter().map(Item::serialize).collect();
    lines.sort();
    lines.join("\n")
}

/// Rewrite a query against [`setup::DIST`] to the centralized copy.
fn centralized_text(query: &str) -> String {
    query.replace(
        &format!("collection(\"{}\")", setup::DIST),
        &format!("collection(\"{}\")", setup::CENTRAL),
    )
}

const STREAMED: StreamOpts = StreamOpts { allow_partial: false, buffered: false, tenant: None };
const BUFFERED: StreamOpts = StreamOpts { allow_partial: false, buffered: true, tenant: None };

/// Put one coordinator in front of `px` and hand back a connected
/// client. Dispatch goes to worker pools so the streamed path really
/// streams (simulated dispatch falls back to buffered emission).
fn serve(mut px: PartiX) -> (Arc<PartiX>, StreamServer, StreamClient) {
    px.set_dispatch(DispatchMode::Pool);
    let px = Arc::new(px);
    let server = serve_coordinator(
        "127.0.0.1:0",
        Arc::clone(&px),
        StreamServerConfig::default(),
    )
    .expect("bind coordinator");
    let client = StreamClient::connect(&server.addr().to_string(), StreamClientConfig::default())
        .expect("connect to coordinator");
    (px, server, client)
}

/// The differential proper: streamed ≡ buffered ≡ in-process, stats
/// deterministic across the two wire modes, oracle checked when the
/// setup publishes a centralized copy.
fn assert_streaming_differential(
    px: &PartiX,
    client: &StreamClient,
    workload: &[(&'static str, String)],
    label: &str,
    against_oracle: bool,
) {
    for (id, query) in workload {
        let streamed = client
            .query(query, STREAMED)
            .unwrap_or_else(|e| panic!("{label}/{id} streamed: {e}"));
        let buffered = client
            .query(query, BUFFERED)
            .unwrap_or_else(|e| panic!("{label}/{id} buffered: {e}"));
        let local = px
            .execute(query)
            .unwrap_or_else(|e| panic!("{label}/{id} local: {e}"));

        assert_eq!(
            exact(&streamed.items),
            exact(&buffered.items),
            "{label}/{id}: streamed and buffered item sequences diverge",
        );
        assert_eq!(
            exact(&streamed.items),
            exact(&local.items),
            "{label}/{id}: wire answer diverges from the in-process run",
        );
        if against_oracle {
            let oracle = px
                .execute_centralized(0, &centralized_text(query))
                .unwrap_or_else(|e| panic!("{label}/{id} centralized: {e}"));
            assert_eq!(
                canonical(&streamed.items),
                canonical(&oracle.items),
                "{label}/{id}: streamed answer diverges from the oracle",
            );
        }

        // the deterministic stats must not depend on the transport mode
        let (s, b) = (&streamed.stats, &buffered.stats);
        assert_eq!(s.sites, b.sites, "{label}/{id}: sites diverge across modes");
        assert_eq!(
            s.fragments_pruned, b.fragments_pruned,
            "{label}/{id}: pruning diverges across modes",
        );
        assert_eq!(
            s.docs_scanned, b.docs_scanned,
            "{label}/{id}: docs_scanned diverges across modes",
        );
        assert_eq!(s.partial, b.partial, "{label}/{id}: partial flag diverges");
        assert_eq!(
            s.catalog_epoch, b.catalog_epoch,
            "{label}/{id}: catalog epoch diverges across modes",
        );
        assert!(!s.partial, "{label}/{id}: fault-free run reported a partial answer");
    }
}

#[test]
fn horizontal_streamed_matches_buffered_and_oracle_cold_and_hot() {
    let docs = setup::quick_items(80);
    let workload = queries::horizontal(setup::DIST);
    for n in [2, 4, 8] {
        let (px, _server, client) = serve(setup::horizontal(&docs, n));

        // cold: no plan reuse, no result cache — every chunk is computed
        px.set_plan_cache_enabled(false);
        px.set_result_cache_enabled(false);
        assert_streaming_differential(&px, &client, &workload, &format!("hor{n}-cold"), true);

        // hot: caches on and warmed — chunks come out of the result
        // cache, and must still be byte-identical with equal stats
        px.set_plan_cache_enabled(true);
        px.set_result_cache_enabled(true);
        for (_, query) in &workload {
            client.query(query, STREAMED).expect("warm-up");
        }
        assert_streaming_differential(&px, &client, &workload, &format!("hor{n}-hot"), true);
    }
}

#[test]
fn vertical_streamed_matches_buffered() {
    let docs = partix::gen::gen_articles(10, ArticleProfile::SMALL, 29);
    let workload = queries::vertical(setup::DIST);
    let (px, _server, client) = serve(setup::vertical(&docs));
    assert_streaming_differential(&px, &client, &workload, "vert-streamed", false);
}

#[test]
fn hybrid_streamed_matches_buffered_both_frag_modes() {
    let store = partix::gen::gen_store(40, ItemProfile::Small, 31);
    for mode in [FragMode::SingleDoc, FragMode::ManySmallDocs] {
        let label = format!("{mode:?}-streamed");
        let (px, _server, client) = serve(setup::hybrid(&store, mode));
        let workload = queries::hybrid(setup::DIST);
        assert_streaming_differential(&px, &client, &workload, &label, false);
    }
}

// ------------------------------------------------------ faulted runs --

/// Seeded injectors under the streaming transport: every answered stream
/// is the oracle answer; failures are typed; truncation cannot pass as
/// success (`StreamEnd` totals are validated by the client assembler).
#[test]
fn streamed_under_faults_returns_oracle_answer_or_typed_error() {
    let docs = setup::quick_items(60);
    let workload = queries::horizontal(setup::DIST);
    let clean = setup::horizontal(&docs, 4);
    let oracle: Vec<String> = workload
        .iter()
        .map(|(id, q)| {
            canonical(&clean.execute(q).unwrap_or_else(|e| panic!("{id}: {e}")).items)
        })
        .collect();

    for seed in [3u64, 0xBAD5EED, 0xC4A0_5EED] {
        let plan = FaultPlan::from_seed(seed, 4, 0.8);
        let px = setup::horizontal_replicated(&docs, 4, 2);
        px.set_retry_policy(RetryPolicy {
            timeout: Some(Duration::from_millis(500)),
            ..RetryPolicy::default()
        });
        let (px, _server, client) = serve(px);
        plan.install(&px);
        let label = format!("stream-faulted-{seed:#x}");
        for (k, (id, query)) in workload.iter().enumerate() {
            match client.query(query, STREAMED) {
                Ok(result) => assert_eq!(
                    canonical(&result.items),
                    oracle[k],
                    "{label}/{id}: faulted streamed run returned wrong data",
                ),
                // a typed error is acceptable under faults — wrong or
                // truncated data is not
                Err(StreamCallError::Remote { .. } | StreamCallError::Protocol(_)) => {}
            }
        }
    }
}

/// Killing the coordinator mid-workload: in-flight and subsequent
/// streams fail with typed errors; every stream that *did* complete
/// carries the full oracle answer — a dead server can truncate streams
/// but can never make a short stream look complete.
#[test]
fn killed_coordinator_mid_workload_yields_typed_error_never_truncation() {
    let docs = setup::quick_items(80);
    let (px, mut server, client) = serve(setup::horizontal(&docs, 4));
    let query = format!(r#"for $i in collection("{}")/Item return $i"#, setup::DIST);
    let expected = exact(&px.execute(&query).expect("healthy run").items);

    let outcomes: Vec<Result<StreamResult, StreamCallError>> = std::thread::scope(|scope| {
        let worker = {
            let client = &client;
            let query = &query;
            scope.spawn(move || {
                let mut outcomes = Vec::new();
                for _ in 0..200 {
                    let outcome = client.query(query, STREAMED);
                    let dead = outcome.is_err();
                    outcomes.push(outcome);
                    if dead {
                        break;
                    }
                }
                outcomes
            })
        };
        std::thread::sleep(Duration::from_millis(50));
        server.shutdown();
        worker.join().expect("client worker")
    });

    let (ok, failed): (Vec<_>, Vec<_>) = outcomes.into_iter().partition(Result::is_ok);
    assert!(
        !failed.is_empty(),
        "killing the coordinator mid-workload must fail at least the in-flight stream"
    );
    for result in ok {
        let result = result.expect("partitioned Ok");
        assert_eq!(
            exact(&result.items),
            expected,
            "a stream that completed around the kill must carry the full answer",
        );
    }
    // and the failures are typed transport/remote errors, which the
    // type system already guarantees — the one outlawed outcome, an
    // `Ok` with a prefix of the answer, was ruled out above
}
