//! Observability invariants and coordinator panic hardening:
//!
//! * the per-query [`StageBreakdown`] is internally consistent — the
//!   coordinator stages sum to no more than the wall-clock elapsed, every
//!   dispatched sub-query is attributed exactly once, and the per-stage
//!   retry/failover/timeout counters reconcile with the report totals —
//!   fault-free and under a seeded fault plan alike;
//! * a panicking sub-query (a driver that unwinds mid-call) fails only
//!   its own query: concurrent queries keep answering, and the
//!   coordinator recovers fully once the bad driver is removed.

use partix::engine::{
    metrics, DispatchMode, DriverError, ExecOptions, FaultPlan, PartixDriver, PartixError,
    RetryPolicy,
};
use partix::gen::{gen_items, ItemProfile};
use partix::query::Query;
use partix::storage::QueryOutput;
use partix::xml::Document;
use partix_bench::{queries, setup};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One query's stage-attribution invariants against its own report.
fn assert_breakdown_consistent(
    result: &partix::engine::DistributedResult,
    wall_s: f64,
    context: &str,
) {
    let report = &result.report;
    let stages = &report.stages;
    assert!(stages.is_measured(), "{context}: no stage breakdown recorded");

    // the four coordinator stages are disjoint sub-intervals of the
    // query's wall time: their sum can never exceed it
    assert!(
        stages.stage_total() <= wall_s + 1e-9,
        "{context}: stage sum {:.6}s exceeds wall {:.6}s",
        stages.stage_total(),
        wall_s
    );

    // every dispatched sub-query is attributed exactly once: the
    // answered non-cached sites plus the degraded-mode skips
    let mut attributed: Vec<&str> =
        stages.subqueries.iter().map(|s| s.fragment.as_str()).collect();
    attributed.sort_unstable();
    let mut dispatched: Vec<&str> = report
        .sites
        .iter()
        .filter(|s| !s.from_cache)
        .map(|s| s.fragment.as_str())
        .chain(report.skipped.iter().map(|s| s.fragment.as_str()))
        .collect();
    dispatched.sort_unstable();
    assert_eq!(attributed, dispatched, "{context}: attribution mismatch");

    // the per-sub-query fault counters reconcile with the report totals
    let sum = |f: fn(&partix::engine::SubQueryStage) -> usize| {
        stages.subqueries.iter().map(f).sum::<usize>()
    };
    assert_eq!(sum(|s| s.retries), report.retries, "{context}: retries");
    assert_eq!(sum(|s| s.failovers), report.failovers, "{context}: failovers");
    assert_eq!(sum(|s| s.timeouts), report.timeouts, "{context}: timeouts");

    for sub in &stages.subqueries {
        // the retry loop counts one retry per attempt past the first
        assert_eq!(
            sub.retries,
            sub.attempts.saturating_sub(1),
            "{context} [{}]: {} attempt(s) but {} retries",
            sub.fragment,
            sub.attempts,
            sub.retries
        );
        assert!(sub.execute_s >= 0.0 && sub.backoff_s >= 0.0 && sub.queue_wait_s >= 0.0);
    }
}

/// Fault-free: the breakdown is consistent in every dispatch mode and
/// attributes one sub-query per fragment with zero fault counters.
#[test]
fn stage_breakdown_consistent_fault_free() {
    let docs = gen_items(80, ItemProfile::Small, 23);
    let workload = queries::horizontal(setup::DIST);
    for mode in [DispatchMode::Simulated, DispatchMode::Threads, DispatchMode::Pool] {
        let mut px = setup::horizontal_replicated(&docs, 4, 2);
        px.set_dispatch(mode);
        for (id, query) in &workload {
            let begun = Instant::now();
            let result = px.execute(query).expect("fault-free query");
            let wall_s = begun.elapsed().as_secs_f64();
            let context = format!("{mode:?}/{id}");
            assert_breakdown_consistent(&result, wall_s, &context);
            assert_eq!(result.report.retries, 0, "{context}");
            // every answered site has a matching attribution entry with
            // real execution time behind it
            assert_eq!(
                result.report.stages.subqueries.len(),
                result.report.sites.len(),
                "{context}"
            );
            assert!(
                result.report.stages.dispatch_s > 0.0,
                "{context}: dispatch stage unmeasured"
            );
        }
    }
}

/// Under a seeded fault plan the same invariants hold, now with live
/// retry/failover/timeout counters, and the global metrics registry
/// observes at least the dispatches this test performed.
#[test]
fn stage_breakdown_consistent_under_faults() {
    let docs = gen_items(80, ItemProfile::Small, 29);
    let workload = queries::horizontal(setup::DIST);
    let mut px = setup::horizontal_replicated(&docs, 4, 2);
    px.set_dispatch(DispatchMode::Pool);
    px.set_retry_policy(RetryPolicy {
        timeout: Some(Duration::from_millis(75)),
        ..RetryPolicy::default()
    });
    let plan = FaultPlan::from_seed(0xD1FF, 4, 1.0);
    plan.install(&px);

    let reg = metrics::global();
    let dispatched_before = reg.counter("dispatch.subqueries").get();
    let mut dispatched = 0u64;
    for round in 0..3 {
        for (id, query) in &workload {
            let begun = Instant::now();
            // rate-1.0 faults can exhaust a fragment's replicas; degraded
            // answers must still carry a consistent breakdown
            let result = px
                .execute_with(query, ExecOptions { allow_partial: true, ..ExecOptions::default() })
                .expect("allow_partial run");
            let wall_s = begun.elapsed().as_secs_f64();
            assert_breakdown_consistent(&result, wall_s, &format!("round {round}/{id}"));
            dispatched += result.report.stages.subqueries.len() as u64;
        }
    }
    // the registry is process-global (other tests add to it too), so the
    // observed delta is a lower bound, never an exact count
    assert!(
        reg.counter("dispatch.subqueries").get() >= dispatched_before + dispatched,
        "metrics registry missed dispatches"
    );
}

/// A driver whose every query unwinds — the sharpest failure a node-side
/// DBMS binding can inflict on the coordinator.
struct PanickingDriver;

impl PartixDriver for PanickingDriver {
    fn execute(&self, _query: &Query) -> Result<Option<QueryOutput>, DriverError> {
        panic!("injected driver panic");
    }

    fn store(&self, _collection: &str, _docs: Vec<Document>) {}

    fn fetch_collection(&self, _collection: &str) -> Vec<Arc<Document>> {
        Vec::new()
    }

    fn collections(&self) -> Vec<String> {
        Vec::new()
    }
}

/// A panicking sub-query fails only its own query — concurrent clients
/// on untouched fragments keep answering — and removing the bad driver
/// restores full service: no poisoned locks, no dead workers, no state
/// the panic left behind.
#[test]
fn panicking_query_does_not_poison_the_coordinator() {
    // the injected panics are expected: silence their backtraces
    let prior = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    for mode in [DispatchMode::Simulated, DispatchMode::Pool] {
        let docs = gen_items(80, ItemProfile::Small, 31);
        // 4 unreplicated fragments: node 0's fragment has no failover,
        // so its panic must surface as this query's typed error
        let mut px = setup::horizontal(&docs, 4);
        px.set_dispatch(mode);
        let full_count = {
            let out = px.execute(r#"count(collection("data")/Item)"#).unwrap();
            out.items[0].serialize()
        };
        px.cluster().node(0).unwrap().set_driver(Arc::new(PanickingDriver));

        let all = r#"count(collection("data")/Item)"#;
        // localization prunes this to fragment f2 (TOY/GAME) — node 2,
        // nowhere near the panicking node 0
        let elsewhere =
            r#"count(for $i in collection("data")/Item where $i/Section = "TOY" return $i)"#;
        let expected_elsewhere = {
            let clean = setup::horizontal(&docs, 4);
            clean.execute(elsewhere).unwrap().items[0].serialize()
        };

        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|t| {
                    let px = &px;
                    let expected_elsewhere = &expected_elsewhere;
                    scope.spawn(move || {
                        for _ in 0..3 {
                            if t % 2 == 0 {
                                // touches node 0: must fail with a typed
                                // error, never unwind the client
                                let err = px.execute(all).expect_err("node 0 panics");
                                assert!(
                                    matches!(
                                        err,
                                        PartixError::SubQuery { .. }
                                            | PartixError::NodeUnavailable { .. }
                                    ),
                                    "unexpected error shape: {err}"
                                );
                            } else {
                                // avoids node 0: must keep answering
                                let out = px.execute(elsewhere).expect("localized query");
                                assert_eq!(&out.items[0].serialize(), expected_elsewhere);
                            }
                        }
                    })
                })
                .collect();
            for handle in handles {
                handle.join().expect("a client thread itself panicked");
            }
        });

        // Simulated dispatch runs the sub-query inline, so the panic
        // firewall itself (not a dropped channel) reports the unwind
        if mode == DispatchMode::Simulated {
            let err = px.execute(all).expect_err("node 0 panics");
            assert!(err.to_string().contains("panicked"), "{err}");
        }

        // removing the bad driver restores full service on the same
        // coordinator instance — nothing was poisoned by the unwinds
        let node = px.cluster().node(0).unwrap();
        node.clear_driver();
        node.clear_suspect();
        let recovered = px.execute(all).expect("recovered query");
        assert_eq!(recovered.items[0].serialize(), full_count, "{mode:?}");
    }

    std::panic::set_hook(prior);
}
