//! Cross-crate integration: generate → fragment → publish → query, for
//! all three fragmentation families, with equivalence against the
//! centralized baseline at every step.

use partix::engine::{Distribution, NetworkModel, PartiX, Placement};
use partix::frag::{FragMode, FragmentDef, FragmentationSchema};
use partix::gen::{gen_articles, gen_items, gen_store, ArticleProfile, ItemProfile};
use partix::path::{PathExpr, Predicate};
use partix::query::Item;
use partix::schema::{builtin, CollectionDef, RepoKind};
use partix::xml::Document;
use std::sync::Arc;

fn p(s: &str) -> PathExpr {
    PathExpr::parse(s).unwrap()
}

fn pr(s: &str) -> Predicate {
    Predicate::parse(s).unwrap()
}

fn multiset(items: &[Item]) -> Vec<String> {
    let mut v: Vec<String> = items.iter().map(Item::serialize).collect();
    v.sort();
    v
}

/// Distributed answers must equal centralized answers for a spread of
/// query shapes over a horizontally fragmented collection.
#[test]
fn horizontal_distributed_equals_centralized() {
    let docs = gen_items(200, ItemProfile::Small, 1);
    let px = PartiX::new(4, NetworkModel::default());
    let citems = CollectionDef::new(
        "items",
        Arc::new(builtin::virtual_store()),
        p("/Store/Items/Item"),
        RepoKind::MultipleDocuments,
    );
    let groups: [&[&str]; 4] = [
        &["CD", "DVD"],
        &["BOOK", "ELECTRONICS"],
        &["TOY", "GAME"],
        &["SPORT", "GARDEN"],
    ];
    let fragments = groups
        .iter()
        .enumerate()
        .map(|(i, g)| {
            let atoms: Vec<Predicate> = g
                .iter()
                .map(|s| pr(&format!(r#"/Item/Section = "{s}""#)))
                .collect();
            FragmentDef::horizontal(&format!("f{i}"), Predicate::Or(atoms))
        })
        .collect();
    let design = FragmentationSchema::new(citems, fragments).unwrap();
    px.register_distribution(Distribution {
        design,
        placements: (0..4)
            .map(|i| Placement { fragment: format!("f{i}"), node: i })
            .collect(),
    })
    .unwrap();
    px.publish("items", &docs).unwrap();
    px.publish_centralized(0, "central", &docs).unwrap();

    let queries = [
        r#"for $i in collection("items")/Item where $i/Section = "TOY" return $i/Code"#,
        r#"for $i in collection("items")/Item where contains($i//Description, "good") return $i/Name"#,
        r#"count(for $i in collection("items")/Item return $i)"#,
        r#"sum(for $i in collection("items")/Item return number($i/Code))"#,
        r#"min(for $i in collection("items")/Item return number($i/Code))"#,
        r#"max(for $i in collection("items")/Item return number($i/Code))"#,
        r#"avg(for $i in collection("items")/Item return number($i/Code))"#,
        r#"for $i in collection("items")/Item where exists($i/Release) return $i/Code"#,
        r#"for $i in collection("items")/Item
           where $i/Section = "CD" and contains($i//Description, "good")
           return <hit>{$i/Name}</hit>"#,
        r#"count(collection("items")//Description)"#,
    ];
    for q in queries {
        let dist = px.execute(q).unwrap_or_else(|e| panic!("{q}: {e}"));
        let cent = px
            .execute_centralized(0, &q.replace("\"items\"", "\"central\""))
            .unwrap();
        assert_eq!(multiset(&dist.items), multiset(&cent.items), "{q}");
    }
}

/// Vertical fragmentation: every query shape agrees with centralized,
/// whether answered by rewrite or by reconstruction.
#[test]
fn vertical_distributed_equals_centralized() {
    let docs = gen_articles(25, ArticleProfile::SMALL, 2);
    let px = PartiX::new(3, NetworkModel::default());
    let articles = CollectionDef::new(
        "articles",
        Arc::new(builtin::xbench_article()),
        p("/article"),
        RepoKind::MultipleDocuments,
    );
    let design = FragmentationSchema::new(
        articles,
        vec![
            FragmentDef::vertical(
                "f_spine",
                p("/article"),
                vec![p("/article/prolog"), p("/article/body"), p("/article/epilog")],
            ),
            FragmentDef::vertical("f_prolog", p("/article/prolog"), vec![]),
            FragmentDef::vertical("f_body", p("/article/body"), vec![]),
            FragmentDef::vertical("f_epilog", p("/article/epilog"), vec![]),
        ],
    )
    .unwrap();
    px.register_distribution(Distribution {
        design,
        placements: vec![
            Placement { fragment: "f_spine".into(), node: 0 },
            Placement { fragment: "f_prolog".into(), node: 0 },
            Placement { fragment: "f_body".into(), node: 1 },
            Placement { fragment: "f_epilog".into(), node: 2 },
        ],
    })
    .unwrap();
    px.publish("articles", &docs).unwrap();
    px.publish_centralized(0, "central", &docs).unwrap();

    let queries = [
        r#"for $t in collection("articles")/article/prolog/title return $t"#,
        r#"count(collection("articles")/article/prolog/authors/author)"#,
        r#"for $p in collection("articles")/article/prolog where $p/genre = "science" return $p/title"#,
        r#"for $a in collection("articles")/article return ($a/prolog/title, $a/epilog/country)"#,
        r#"for $a in collection("articles")/article
           where contains($a/body/abstract, "good") return $a/prolog/title"#,
        r#"sum(for $e in collection("articles")/article/epilog return number($e/word_count))"#,
        r#"count(collection("articles")//p)"#,
        r#"for $a in collection("articles")/article where $a/@id = "a3" return $a/prolog/title"#,
    ];
    for q in queries {
        let dist = px.execute(q).unwrap_or_else(|e| panic!("{q}: {e}"));
        let cent = px
            .execute_centralized(0, &q.replace("\"articles\"", "\"central\""))
            .unwrap();
        assert_eq!(multiset(&dist.items), multiset(&cent.items), "{q}");
    }
}

/// Hybrid fragmentation, both storage modes, agrees with centralized.
#[test]
fn hybrid_distributed_equals_centralized() {
    let store = gen_store(80, ItemProfile::Small, 3);
    for mode in [FragMode::SingleDoc, FragMode::ManySmallDocs] {
        let px = PartiX::new(3, NetworkModel::default());
        let cstore = CollectionDef::new(
            "store",
            Arc::new(builtin::virtual_store()),
            p("/Store"),
            RepoKind::SingleDocument,
        );
        let design = FragmentationSchema::new(
            cstore,
            vec![
                FragmentDef::hybrid(
                    "f_cd",
                    p("/Store/Items/Item"),
                    pr(r#"/Item/Section = "CD""#),
                    mode,
                ),
                FragmentDef::hybrid(
                    "f_rest",
                    p("/Store/Items/Item"),
                    pr(r#"not(/Item/Section = "CD")"#),
                    mode,
                ),
                FragmentDef::vertical("f_spine", p("/Store"), vec![p("/Store/Items")]),
            ],
        )
        .unwrap();
        px.register_distribution(Distribution {
            design,
            placements: vec![
                Placement { fragment: "f_cd".into(), node: 0 },
                Placement { fragment: "f_rest".into(), node: 1 },
                Placement { fragment: "f_spine".into(), node: 2 },
            ],
        })
        .unwrap();
        px.publish("store", std::slice::from_ref(&store)).unwrap();
        px.publish_centralized(0, "central", std::slice::from_ref(&store)).unwrap();

        let queries = [
            r#"for $i in collection("store")/Store/Items/Item where $i/Section = "CD" return $i/Name"#,
            r#"count(for $i in collection("store")/Store/Items/Item return $i)"#,
            r#"for $s in collection("store")/Store/Sections/Section return $s/Name"#,
            r#"for $e in collection("store")/Store/Employees/Employee return $e/Name"#,
            r#"count(for $i in collection("store")/Store/Items/Item
                     where contains($i//Description, "good") return $i)"#,
        ];
        for q in queries {
            let dist = px.execute(q).unwrap_or_else(|e| panic!("{mode:?} {q}: {e}"));
            let cent = px
                .execute_centralized(0, &q.replace("\"store\"", "\"central\""))
                .unwrap();
            assert_eq!(
                multiset(&dist.items),
                multiset(&cent.items),
                "{mode:?} {q}"
            );
        }
    }
}

/// A fragmented node database survives a save/load cycle and still
/// answers distributed queries identically.
#[test]
fn persistence_of_fragmented_nodes() {
    let docs = gen_items(60, ItemProfile::Small, 4);
    let px = PartiX::new(2, NetworkModel::default());
    let citems = CollectionDef::new(
        "items",
        Arc::new(builtin::virtual_store()),
        p("/Store/Items/Item"),
        RepoKind::MultipleDocuments,
    );
    let design = FragmentationSchema::new(
        citems,
        vec![
            FragmentDef::horizontal("f_cd", pr(r#"/Item/Section = "CD""#)),
            FragmentDef::horizontal("f_rest", pr(r#"not(/Item/Section = "CD")"#)),
        ],
    )
    .unwrap();
    px.register_distribution(Distribution {
        design,
        placements: vec![
            Placement { fragment: "f_cd".into(), node: 0 },
            Placement { fragment: "f_rest".into(), node: 1 },
        ],
    })
    .unwrap();
    px.publish("items", &docs).unwrap();

    let dir = std::env::temp_dir().join(format!("partix-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    px.cluster().node(0).unwrap().db.save_to(&dir).unwrap();
    let reloaded = partix::storage::Database::load_from(&dir).unwrap();
    let before = px
        .cluster()
        .node(0)
        .unwrap()
        .db
        .execute(r#"count(collection("f_cd")/Item)"#)
        .unwrap();
    let after = reloaded.execute(r#"count(collection("f_cd")/Item)"#).unwrap();
    assert_eq!(before.items, after.items);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// XML text → parse → fragment → reconstruct → serialize: the full data
/// path preserves content exactly (vertical, exact-order reconstruction).
#[test]
fn full_data_path_lossless() {
    let docs = gen_items(30, ItemProfile::Large, 5);
    let citems = CollectionDef::new(
        "items",
        Arc::new(builtin::virtual_store()),
        p("/Store/Items/Item"),
        RepoKind::MultipleDocuments,
    );
    let design = FragmentationSchema::new(
        citems,
        vec![
            FragmentDef::vertical(
                "f_main",
                p("/Item"),
                vec![p("/Item/PictureList"), p("/Item/PricesHistory")],
            ),
            FragmentDef::vertical("f_pics", p("/Item/PictureList"), vec![]),
            FragmentDef::vertical("f_prices", p("/Item/PricesHistory"), vec![]),
        ],
    )
    .unwrap();
    // round-trip each document through XML text first
    let reparsed: Vec<Document> = docs
        .iter()
        .map(|d| {
            let text = partix::xml::to_string(d);
            let mut back = partix::xml::parse(&text).unwrap();
            back.name = d.name.clone();
            back
        })
        .collect();
    for (a, b) in docs.iter().zip(&reparsed) {
        assert_eq!(a, b, "XML round-trip must be lossless");
    }
    let fragmenter = partix::frag::Fragmenter::new(design.clone());
    let fragments = fragmenter.fragment_all(&reparsed);
    let report = partix::frag::check_correctness(&design, &reparsed, &fragments);
    assert!(report.is_correct(), "{:?}", report.violations);
    let rebuilt = partix::frag::correctness::reconstruct_any(&design, &fragments).unwrap();
    assert_eq!(rebuilt.len(), docs.len());
    for (orig, back) in docs.iter().zip(&rebuilt) {
        assert_eq!(orig, back);
    }
}

/// Failure injection: a downed node fails queries that need it, leaves
/// localized queries untouched, and recovers.
#[test]
fn node_failure_and_recovery() {
    let docs = gen_items(40, ItemProfile::Small, 6);
    let px = PartiX::new(2, NetworkModel::default());
    let citems = CollectionDef::new(
        "items",
        Arc::new(builtin::virtual_store()),
        p("/Store/Items/Item"),
        RepoKind::MultipleDocuments,
    );
    let design = FragmentationSchema::new(
        citems,
        vec![
            FragmentDef::horizontal("f_cd", pr(r#"/Item/Section = "CD""#)),
            FragmentDef::horizontal("f_rest", pr(r#"not(/Item/Section = "CD")"#)),
        ],
    )
    .unwrap();
    px.register_distribution(Distribution {
        design,
        placements: vec![
            Placement { fragment: "f_cd".into(), node: 0 },
            Placement { fragment: "f_rest".into(), node: 1 },
        ],
    })
    .unwrap();
    px.publish("items", &docs).unwrap();

    px.cluster().node(1).unwrap().set_available(false);
    let all = r#"count(for $i in collection("items")/Item return $i)"#;
    let localized =
        r#"count(for $i in collection("items")/Item where $i/Section = "CD" return $i)"#;
    assert!(px.execute(all).is_err());
    px.execute(localized).expect("localized query avoids the dead node");
    px.cluster().node(1).unwrap().set_available(true);
    px.execute(all).expect("recovered");
}

/// A custom DBMS driver (the paper's "PartiX Driver" pluggability):
/// instrument one node with fault injection and verify the middleware
/// surfaces the failure, then recovers when the DBMS does.
#[test]
fn pluggable_driver_with_fault_injection() {
    use partix::engine::{InstrumentedDriver, PartixDriver};

    let docs = gen_items(20, ItemProfile::Small, 9);
    let px = PartiX::new(2, NetworkModel::default());
    let citems = CollectionDef::new(
        "items",
        Arc::new(builtin::virtual_store()),
        p("/Store/Items/Item"),
        RepoKind::MultipleDocuments,
    );
    let design = FragmentationSchema::new(
        citems,
        vec![
            FragmentDef::horizontal("f_cd", pr(r#"/Item/Section = "CD""#)),
            FragmentDef::horizontal("f_rest", pr(r#"not(/Item/Section = "CD")"#)),
        ],
    )
    .unwrap();
    px.register_distribution(Distribution {
        design,
        placements: vec![
            Placement { fragment: "f_cd".into(), node: 0 },
            Placement { fragment: "f_rest".into(), node: 1 },
        ],
    })
    .unwrap();

    // install an instrumented driver over a standalone database on node 1
    // BEFORE publishing, so the publisher ships through it as well
    let backing = Arc::new(partix::storage::Database::new());
    let instrumented = Arc::new(InstrumentedDriver::new(
        Arc::clone(&backing) as Arc<dyn PartixDriver>
    ));
    px.cluster()
        .node(1)
        .unwrap()
        .set_driver(Arc::clone(&instrumented) as Arc<dyn PartixDriver>);
    px.publish("items", &docs).unwrap();
    // the fragment went into the custom backing store, not the node's db
    assert!(backing.collection_len("f_rest").unwrap() > 0);
    assert!(px.cluster().node(1).unwrap().db.collection_len("f_rest").is_err());

    let q = r#"count(for $i in collection("items")/Item return $i)"#;
    let ok = px.execute(q).unwrap();
    assert_eq!(ok.items, vec![partix::query::Item::Num(20.0)]);
    assert!(instrumented.calls() >= 1);

    // injected DBMS failure surfaces as a sub-query error…
    instrumented.set_failing(true);
    assert!(matches!(
        px.execute(q),
        Err(partix::engine::PartixError::SubQuery { node: 1, .. })
    ));
    // …and recovery is transparent
    instrumented.set_failing(false);
    assert_eq!(px.execute(q).unwrap().items, vec![partix::query::Item::Num(20.0)]);
}
