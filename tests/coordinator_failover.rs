//! Coordinator-replication failover differential: three stateless
//! coordinators front one shared cluster through an epoch-versioned
//! [`partix::engine::MetaService`]. One coordinator is killed
//! mid-workload while seeded fault injectors gnaw at the DBMS nodes;
//! [`partix_net::CoordinatorPool`] clients must fail over to the
//! survivors, every answered query must match the centralized oracle
//! (typed errors are allowed, wrong or truncated data is not), and after
//! a catalog rebalance every coordinator — including the one whose
//! transport died — must converge to the same meta epoch.

use partix::engine::{
    DispatchMode, Distribution, FaultPlan, MetaService, NetworkModel, PartiX, RetryPolicy,
};
use partix::query::Item;
use partix_bench::{queries, setup};
use partix_net::{
    serve_coordinator, CoordinatorPool, StreamClientConfig, StreamOpts, StreamServer,
    StreamServerConfig,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const COORDINATORS: usize = 3;
const CLIENTS: usize = 6;
const QUERIES_PER_CLIENT: usize = 30;
const FRAGMENTS: usize = 4;
const REPLICAS: usize = 2;

fn canonical(items: &[Item]) -> String {
    let mut lines: Vec<String> = items.iter().map(Item::serialize).collect();
    lines.sort();
    lines.join("\n")
}

/// Build the replica fleet: the base engine (which owns publishing)
/// plus `COORDINATORS - 1` stateless clones over the shared cluster,
/// all attached to one meta service.
fn coordinator_fleet(base: PartiX, meta: &Arc<MetaService>) -> Vec<Arc<PartiX>> {
    let mut base = base;
    base.set_dispatch(DispatchMode::Pool);
    base.attach_meta(Arc::clone(meta));
    let base = Arc::new(base);
    let mut engines = vec![Arc::clone(&base)];
    for _ in 1..COORDINATORS {
        let mut px = PartiX::with_cluster(base.cluster().share(), NetworkModel::default());
        px.set_dispatch(DispatchMode::Pool);
        px.attach_meta(Arc::clone(meta));
        engines.push(Arc::new(px));
    }
    engines
}

#[test]
fn killing_a_coordinator_mid_workload_fails_over_without_wrong_data() {
    let docs = setup::quick_items(60);
    let workload = queries::horizontal(setup::DIST);

    // oracle answers from an independent, fault-free engine
    let clean = setup::horizontal(&docs, FRAGMENTS);
    let oracle: Vec<String> = workload
        .iter()
        .map(|(id, q)| {
            canonical(&clean.execute(q).unwrap_or_else(|e| panic!("oracle {id}: {e}")).items)
        })
        .collect();

    let base = setup::horizontal_replicated(&docs, FRAGMENTS, REPLICAS);
    base.set_retry_policy(RetryPolicy {
        timeout: Some(Duration::from_millis(500)),
        ..RetryPolicy::default()
    });
    let meta = MetaService::with_catalog(base.catalog_snapshot());
    let engines = coordinator_fleet(base, &meta);
    for px in &engines[1..] {
        px.set_retry_policy(RetryPolicy {
            timeout: Some(Duration::from_millis(500)),
            ..RetryPolicy::default()
        });
    }

    // seeded node faults on the shared cluster — every coordinator sees
    // the same flaky DBMS nodes; the replicated placement keeps each
    // fragment answerable. Keep the clean drivers so the convergence
    // phase can run on a genuinely healthy cluster.
    let clean_drivers: Vec<_> = (0..FRAGMENTS)
        .map(|i| engines[0].cluster().node(i).expect("node").active_driver())
        .collect();
    let injectors = FaultPlan::from_seed(0xBAD5EED, FRAGMENTS, 0.8).install(&engines[0]);

    let mut servers: Vec<StreamServer> = engines
        .iter()
        .map(|px| {
            serve_coordinator("127.0.0.1:0", Arc::clone(px), StreamServerConfig::default())
                .expect("bind coordinator")
        })
        .collect();
    let addrs: Vec<String> = servers.iter().map(|s| s.addr().to_string()).collect();

    let successes = AtomicU64::new(0);
    let failures = AtomicU64::new(0);
    let failovers = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let addrs = {
                // rotate so the fleet spreads first connections evenly
                let mut a = addrs.clone();
                a.rotate_left(client % COORDINATORS);
                a
            };
            let (workload, oracle) = (&workload, &oracle);
            let (successes, failures, failovers) = (&successes, &failures, &failovers);
            scope.spawn(move || {
                let pool = CoordinatorPool::new(addrs, StreamClientConfig::default());
                for k in 0..QUERIES_PER_CLIENT {
                    let (id, query) = &workload[k % workload.len()];
                    match pool.query(query, StreamOpts::default()) {
                        Ok(result) => {
                            assert_eq!(
                                canonical(&result.items),
                                oracle[k % oracle.len()],
                                "client {client}/{id}: failover run returned wrong data",
                            );
                            successes.fetch_add(1, Ordering::Relaxed);
                        }
                        // a typed error under faults + a dying
                        // coordinator is within contract
                        Err(_) => {
                            failures.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                failovers.fetch_add(pool.failovers(), Ordering::Relaxed);
            });
        }

        // kill the last coordinator while the fleet is mid-workload
        std::thread::sleep(Duration::from_millis(60));
        servers.last_mut().expect("three servers").shutdown();
    });

    let ok = successes.load(Ordering::Relaxed);
    assert!(
        ok > 0,
        "the surviving coordinators must keep answering (saw {} failures, 0 successes)",
        failures.load(Ordering::Relaxed),
    );
    assert!(
        failovers.load(Ordering::Relaxed) > 0,
        "killing a coordinator under load must trip at least one pool failover",
    );

    // -------------------------------------------- epoch convergence --
    // heal the cluster (uninstall the injectors), then rebalance:
    // re-register the collection's distribution through the meta service
    // (an epoch bump, exactly what a placement swap does)
    let injected: usize = injectors
        .iter()
        .flatten()
        .map(|inj| inj.stats().injected_errors + inj.stats().injected_outages)
        .sum();
    assert!(injected > 0, "the seeded fault plan never fired — the chaos run was a no-op");
    for (i, driver) in clean_drivers.into_iter().enumerate() {
        engines[0].cluster().node(i).expect("node").set_driver(driver);
    }
    let before = meta.epoch();
    let dist: Distribution = {
        let catalog = engines[0].catalog_snapshot();
        let dist = catalog.distribution(setup::DIST).expect("registered distribution");
        (**dist).clone()
    };
    engines[0].register_distribution(dist).expect("rebalance re-registration");
    let epoch = meta.wait_for(before + 1, Duration::from_secs(5));
    assert!(epoch > before, "the rebalance must bump the meta epoch");

    // survivors observe the new epoch on their next served query; the
    // killed coordinator's *engine* is stateless and converges the same
    // way once it executes again (as it would after a restart)
    for (i, px) in engines.iter().enumerate() {
        if i + 1 < COORDINATORS {
            let client = partix_net::StreamClient::connect(
                &addrs[i],
                StreamClientConfig::default(),
            )
            .expect("surviving coordinator accepts connections");
            let result = client
                .query(&workload[0].1, StreamOpts::default())
                .expect("post-rebalance query on a healthy cluster");
            assert_eq!(canonical(&result.items), oracle[0]);
            assert_eq!(
                result.stats.catalog_epoch, epoch,
                "coordinator {i} served a query without syncing to the rebalance epoch",
            );
        } else {
            px.execute(&workload[0].1).expect("killed coordinator's engine still executes");
        }
        assert_eq!(
            px.meta_epoch_seen(),
            epoch,
            "coordinator {i} did not converge to the rebalance epoch",
        );
    }
}
