//! Property-based tests over the core invariants:
//!
//! * parse ∘ serialize = id and binary encode ∘ decode = id for random
//!   documents;
//! * fragmentation correctness (completeness / disjointness /
//!   reconstruction) for random documents and random fragment designs;
//! * distributed query answers equal centralized answers for random
//!   workloads;
//! * fault tolerance: random fault schedules against replicated
//!   repositories never fail (replication ≥ 2, one faulty node) and
//!   `allow_partial` reports exactly the fragments that lost every
//!   replica.
//!
//! `PARTIX_PROPTEST_CASES` overrides every block's case count so CI can
//! dial the effort.

use partix::engine::{
    Distribution, ExecOptions, Fault, FaultPlan, NetworkModel, PartiX, Placement,
};
use partix::frag::{check_correctness, FragmentDef, Fragmenter, FragmentationSchema};
use partix::path::{PathExpr, Predicate};
use partix::query::Item;
use partix::schema::{builtin, CollectionDef, RepoKind};
use partix::xml::{binary, parse, to_string, to_string_pretty, DocBuilder, Document};
use proptest::prelude::*;
use std::sync::Arc;

/// Per-block case budget, overridable with `PARTIX_PROPTEST_CASES`.
fn cases(default_cases: u32) -> ProptestConfig {
    std::env::var("PARTIX_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .map(ProptestConfig::with_cases)
        .unwrap_or_else(|| ProptestConfig::with_cases(default_cases))
}

// ---------------------------------------------------------------- XML --

/// Strategy: a random labelled tree, depth ≤ 3, fanout ≤ 4.
fn arb_document() -> impl Strategy<Value = Document> {
    fn label() -> impl Strategy<Value = String> {
        prop::sample::select(vec!["a", "b", "c", "Item", "Seção"])
            .prop_map(str::to_owned)
    }
    fn text() -> impl Strategy<Value = String> {
        // includes XML-hostile characters
        prop::collection::vec(
            prop::sample::select(vec![
                "x", "hello", "<", ">", "&", "\"", "'", "maçã", " ", "0", "good",
            ]),
            1..5,
        )
        // the default parser options trim surrounding whitespace from
        // text nodes (no mixed content in the data model), so the
        // round-trip contract is over trimmed text
        .prop_map(|parts| parts.concat().trim().to_owned())
        .prop_filter("parser drops whitespace-only text", |s| !s.is_empty())
    }
    #[derive(Debug, Clone)]
    enum Node {
        Leaf(String, String),
        Attr(String, String),
        Elem(String, Vec<Node>),
    }
    fn arb_node() -> impl Strategy<Value = Node> {
        let leaf = (label(), text()).prop_map(|(l, t)| Node::Leaf(l, t)).boxed();
        let attr = (label(), text()).prop_map(|(l, t)| Node::Attr(l, t)).boxed();
        prop_oneof![leaf, attr].prop_recursive(3, 24, 4, move |inner| {
            (label(), prop::collection::vec(inner, 0..4))
                .prop_map(|(l, kids)| Node::Elem(l, kids))
        })
    }
    /// Attributes must precede content and be unique per element — the
    /// invariants parsed XML always satisfies.
    fn build_children(mut b: DocBuilder, kids: &[Node]) -> DocBuilder {
        let mut seen_attrs = std::collections::HashSet::new();
        for kid in kids {
            if let Node::Attr(l, t) = kid {
                if seen_attrs.insert(l.clone()) {
                    b = b.attr(l, t);
                }
            }
        }
        for kid in kids {
            match kid {
                Node::Attr(..) => {}
                Node::Leaf(l, t) => b = b.leaf(l, t),
                Node::Elem(l, inner) => {
                    b = build_children(b.open(l), inner).close();
                }
            }
        }
        b
    }
    (label(), prop::collection::vec(arb_node(), 0..5)).prop_map(|(root, kids)| {
        build_children(DocBuilder::new(&root), &kids).build()
    })
}

proptest! {
    #![proptest_config(cases(64))]

    #[test]
    fn serialize_parse_roundtrip(doc in arb_document()) {
        let compact = to_string(&doc);
        let back = parse(&compact).expect("own output parses");
        prop_assert_eq!(&back, &doc);
        let pretty = to_string_pretty(&doc);
        let back2 = parse(&pretty).expect("pretty output parses");
        prop_assert_eq!(&back2, &doc);
    }

    #[test]
    fn binary_roundtrip(doc in arb_document()) {
        let bytes = binary::encode(&doc);
        let back = binary::decode(&bytes).expect("own pages decode");
        prop_assert_eq!(back, doc);
    }

    #[test]
    fn dewey_resolves_every_node(doc in arb_document()) {
        for id in doc.ids() {
            let dewey = doc.dewey_of(id);
            prop_assert_eq!(doc.node_at_dewey(&dewey), Some(id));
        }
    }
}

// ------------------------------------------------------- fragmentation --

/// A small random item document shaped like the paper's `Item` type.
fn arb_item(i: usize, section: &str, good: bool, pictures: usize) -> Document {
    let mut b = DocBuilder::new("Item")
        .named(&format!("i{i:03}"))
        .leaf("Code", &i.to_string())
        .leaf("Name", &format!("item {i}"))
        .leaf(
            "Description",
            if good { "a good thing" } else { "a plain thing" },
        )
        .leaf("Section", section);
    if pictures > 0 {
        b = b.open("PictureList");
        for p in 0..pictures {
            b = b
                .open("Picture")
                .leaf("Name", &format!("p{p}"))
                .leaf("Description", "pic")
                .leaf("ModificationDate", "2005-01-01")
                .leaf("OriginalPath", &format!("/o/{p}"))
                .leaf("ThumbPath", &format!("/t/{p}"))
                .close();
        }
        b = b.close();
    }
    b.build()
}

fn arb_items() -> impl Strategy<Value = Vec<Document>> {
    prop::collection::vec(
        (
            prop::sample::select(vec!["CD", "DVD", "BOOK", "TOY"]),
            any::<bool>(),
            0usize..3,
        ),
        1..20,
    )
    .prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (section, good, pictures))| arb_item(i, section, good, pictures))
            .collect()
    })
}

fn citems() -> CollectionDef {
    CollectionDef::new(
        "items",
        Arc::new(builtin::virtual_store()),
        PathExpr::parse("/Store/Items/Item").unwrap(),
        RepoKind::MultipleDocuments,
    )
}

proptest! {
    #![proptest_config(cases(48))]

    /// Any partition of the section space yields a correct horizontal
    /// fragmentation, and reconstruction restores the collection.
    #[test]
    fn horizontal_correctness_holds(docs in arb_items(), split in 1usize..4) {
        let sections = ["CD", "DVD", "BOOK", "TOY"];
        let (left, right) = sections.split_at(split);
        let make = |name: &str, group: &[&str]| {
            let atoms: Vec<Predicate> = group
                .iter()
                .map(|s| Predicate::parse(&format!(r#"/Item/Section = "{s}""#)).unwrap())
                .collect();
            FragmentDef::horizontal(
                name,
                if atoms.len() == 1 { atoms[0].clone() } else { Predicate::Or(atoms) },
            )
        };
        let design = FragmentationSchema::new(
            citems(),
            vec![make("f_left", left), make("f_right", right)],
        ).unwrap();
        let fragments = Fragmenter::new(design.clone()).fragment_all(&docs);
        let report = check_correctness(&design, &docs, &fragments);
        prop_assert!(report.is_correct(), "{:?}", report.violations);
    }

    /// Vertical prune/project pairs are correct and reconstruct exactly,
    /// for documents with and without the optional subtree.
    #[test]
    fn vertical_correctness_holds(docs in arb_items()) {
        let design = FragmentationSchema::new(
            citems(),
            vec![
                FragmentDef::vertical(
                    "f_main",
                    PathExpr::parse("/Item").unwrap(),
                    vec![PathExpr::parse("/Item/PictureList").unwrap()],
                ),
                FragmentDef::vertical(
                    "f_pics",
                    PathExpr::parse("/Item/PictureList").unwrap(),
                    vec![],
                ),
            ],
        ).unwrap();
        let fragments = Fragmenter::new(design.clone()).fragment_all(&docs);
        let report = check_correctness(&design, &docs, &fragments);
        prop_assert!(report.is_correct(), "{:?}", report.violations);
        let rebuilt =
            partix::frag::correctness::reconstruct_any(&design, &fragments).unwrap();
        prop_assert_eq!(rebuilt.len(), docs.len());
        for (a, b) in docs.iter().zip(&rebuilt) {
            prop_assert_eq!(a, b);
        }
    }
}

// ------------------------------------------------- distributed queries --

#[derive(Debug, Clone)]
enum QueryShape {
    SectionEq(&'static str),
    ContainsGood,
    CountBySection(&'static str),
    SumCodes,
    HasPictures,
    Everything,
}

fn arb_query() -> impl Strategy<Value = QueryShape> {
    prop_oneof![
        prop::sample::select(vec!["CD", "DVD", "BOOK", "TOY"]).prop_map(QueryShape::SectionEq),
        Just(QueryShape::ContainsGood),
        prop::sample::select(vec!["CD", "TOY"]).prop_map(QueryShape::CountBySection),
        Just(QueryShape::SumCodes),
        Just(QueryShape::HasPictures),
        Just(QueryShape::Everything),
    ]
}

impl QueryShape {
    fn text(&self, coll: &str) -> String {
        match self {
            QueryShape::SectionEq(s) => format!(
                r#"for $i in collection("{coll}")/Item where $i/Section = "{s}" return $i/Code"#
            ),
            QueryShape::ContainsGood => format!(
                r#"for $i in collection("{coll}")/Item
                   where contains($i/Description, "good") return $i/Name"#
            ),
            QueryShape::CountBySection(s) => format!(
                r#"count(for $i in collection("{coll}")/Item
                         where $i/Section = "{s}" return $i)"#
            ),
            QueryShape::SumCodes => format!(
                r#"sum(for $i in collection("{coll}")/Item return number($i/Code))"#
            ),
            QueryShape::HasPictures => format!(
                r#"for $i in collection("{coll}")/Item
                   where exists($i/PictureList) return $i/Code"#
            ),
            QueryShape::Everything => {
                format!(r#"for $i in collection("{coll}")/Item return $i"#)
            }
        }
    }
}

proptest! {
    #![proptest_config(cases(32))]

    /// For random data and random queries, the distributed answer always
    /// equals the centralized answer (as multisets).
    #[test]
    fn distributed_equals_centralized(docs in arb_items(), shape in arb_query()) {
        let px = PartiX::new(2, NetworkModel::default());
        let design = FragmentationSchema::new(
            citems(),
            vec![
                FragmentDef::horizontal(
                    "f_media",
                    Predicate::parse(
                        r#"/Item/Section = "CD" or /Item/Section = "DVD""#
                    ).unwrap(),
                ),
                FragmentDef::horizontal(
                    "f_other",
                    Predicate::parse(
                        r#"/Item/Section != "CD" and /Item/Section != "DVD""#
                    ).unwrap(),
                ),
            ],
        ).unwrap();
        px.register_distribution(Distribution {
            design,
            placements: vec![
                Placement { fragment: "f_media".into(), node: 0 },
                Placement { fragment: "f_other".into(), node: 1 },
            ],
        }).unwrap();
        px.publish("items", &docs).unwrap();
        px.publish_centralized(0, "central", &docs).unwrap();

        let dist = px.execute(&shape.text("items")).unwrap();
        let cent = px.execute_centralized(0, &shape.text("central")).unwrap();
        let mut a: Vec<String> = dist.items.iter().map(Item::serialize).collect();
        let mut b: Vec<String> = cent.items.iter().map(Item::serialize).collect();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b, "{:?}", shape);
    }
}

// --------------------------------------------------- fault schedules --

/// 3-node middleware with both fragments replicated twice:
/// `f_media` on nodes {0, 2}, `f_other` on nodes {1, 2}. Any single
/// node failure leaves every fragment answerable.
fn replicated_px(docs: &[partix::xml::Document]) -> PartiX {
    let px = PartiX::new(3, NetworkModel::default());
    let design = FragmentationSchema::new(
        citems(),
        vec![
            FragmentDef::horizontal(
                "f_media",
                Predicate::parse(r#"/Item/Section = "CD" or /Item/Section = "DVD""#).unwrap(),
            ),
            FragmentDef::horizontal(
                "f_other",
                Predicate::parse(r#"/Item/Section != "CD" and /Item/Section != "DVD""#)
                    .unwrap(),
            ),
        ],
    )
    .unwrap();
    px.register_distribution(Distribution {
        design,
        placements: vec![
            Placement { fragment: "f_media".into(), node: 0 },
            Placement { fragment: "f_media".into(), node: 2 },
            Placement { fragment: "f_other".into(), node: 1 },
            Placement { fragment: "f_other".into(), node: 2 },
        ],
    })
    .unwrap();
    px.publish("items", docs).unwrap();
    px
}

fn multiset(items: &[Item]) -> Vec<String> {
    let mut v: Vec<String> = items.iter().map(Item::serialize).collect();
    v.sort();
    v
}

proptest! {
    #![proptest_config(cases(24))]

    /// With replication ≥ 2 and any seeded fault schedule on a single
    /// node, the retry/failover dispatcher always answers, and the
    /// answer equals the fault-free result. Latency faults are stripped
    /// (they only slow calls down and would dominate the test's wall
    /// clock); error, crash and flip-flop faults stay.
    #[test]
    fn single_node_faults_never_fail_replicated_queries(
        docs in arb_items(),
        shape in arb_query(),
        seed in any::<u64>(),
        faulty in 0usize..3,
    ) {
        let clean = replicated_px(&docs);
        let expected = multiset(&clean.execute(&shape.text("items")).unwrap().items);

        let px = replicated_px(&docs);
        let mut plan = FaultPlan::from_seed(seed, 3, 1.0);
        for (node, faults) in plan.node_faults.iter_mut().enumerate() {
            faults.retain(|f| !matches!(f, Fault::Latency { .. }));
            if node != faulty {
                faults.clear();
            }
        }
        plan.install(&px);
        // repeated execution: later calls walk deeper into call-counter
        // keyed schedules (error-after-N, flip-flops)
        for round in 0..3 {
            let got = px
                .execute_with(&shape.text("items"), ExecOptions::default())
                .unwrap_or_else(|e| {
                    panic!("round {round}, seed {seed:#x}, node {faulty} faulty: {e}")
                });
            prop_assert_eq!(multiset(&got.items), expected.clone(), "round {}", round);
        }
    }

    /// Any suspect cooldown — zero, sub-microsecond, or effectively
    /// infinite ([`Duration::MAX`]) — must never panic the dispatcher:
    /// the cooldown check is `marked_at.elapsed() < cooldown`, which
    /// cannot overflow, where the naive `marked_at + cooldown` would.
    /// With replication ≥ 2 and one faulty node, queries still answer
    /// (an eternally-suspect replica is deprioritized, not abandoned).
    #[test]
    fn extreme_suspect_cooldowns_never_panic(
        docs in arb_items(),
        seed in any::<u64>(),
        faulty in 0usize..3,
        cooldown_exp in 0u32..64,
    ) {
        use partix::engine::RetryPolicy;
        use std::time::Duration;
        let cooldown = if cooldown_exp >= 63 {
            Duration::MAX
        } else {
            Duration::from_nanos(1u64 << cooldown_exp)
        };
        let clean = replicated_px(&docs);
        let query = r#"count(collection("items")/Item)"#;
        let expected = multiset(&clean.execute(query).unwrap().items);

        let px = replicated_px(&docs);
        px.set_retry_policy(RetryPolicy {
            suspect_cooldown: cooldown,
            ..RetryPolicy::default()
        });
        let mut plan = FaultPlan::from_seed(seed, 3, 1.0);
        for (node, faults) in plan.node_faults.iter_mut().enumerate() {
            faults.retain(|f| !matches!(f, Fault::Latency { .. }));
            if node != faulty {
                faults.clear();
            }
        }
        plan.install(&px);
        for round in 0..3 {
            let got = px
                .execute_with(query, ExecOptions::default())
                .unwrap_or_else(|e| {
                    panic!(
                        "round {round}, seed {seed:#x}, cooldown {cooldown:?}, \
                         node {faulty} faulty: {e}"
                    )
                });
            prop_assert_eq!(multiset(&got.items), expected.clone(), "round {}", round);
        }
    }

    /// `allow_partial` reports exactly the fragments whose every replica
    /// is down — no more, no fewer — and answers from the rest.
    #[test]
    fn allow_partial_skips_exactly_dead_fragments(
        docs in arb_items(),
        mask in prop::collection::vec(any::<bool>(), 3..4),
    ) {
        let px = replicated_px(&docs);
        for (node, &up) in mask.iter().enumerate() {
            px.cluster().node(node).unwrap().set_available(up);
        }
        let replicas: [(&str, [usize; 2]); 2] =
            [("f_media", [0, 2]), ("f_other", [1, 2])];
        let mut expected: Vec<&str> = replicas
            .iter()
            .filter(|(_, nodes)| nodes.iter().all(|&n| !mask[n]))
            .map(|(frag, _)| *frag)
            .collect();
        expected.sort();

        let query = r#"for $i in collection("items")/Item return $i/Code"#;
        let result = px
            .execute_with(query, ExecOptions { allow_partial: true, ..ExecOptions::default() })
            .unwrap();
        let mut skipped: Vec<&str> = result
            .report
            .skipped
            .iter()
            .map(|s| s.fragment.as_str())
            .collect();
        skipped.sort();
        prop_assert_eq!(skipped, expected.clone(), "mask {:?}", mask);
        prop_assert_eq!(result.report.partial, !expected.is_empty());

        // the fragments that did answer contribute exactly their data:
        // with nothing skipped the answer is the full collection
        if expected.is_empty() {
            let clean = replicated_px(&docs);
            prop_assert_eq!(
                multiset(&result.items),
                multiset(&clean.execute(query).unwrap().items)
            );
        }
    }
}
