//! Multi-tenant differential suite: the serving-layer contract under
//! shared tenancy. Whatever two tenants do to each other — flooding,
//! suspended quotas, seeded node faults — every *admitted* query must
//! return the centralized oracle's answer byte-for-byte, every refusal
//! must be a *typed* admission error (code + retry hint), and the
//! result cache must never leak a wrong answer across tenants. Both
//! transports are covered: the in-process engine path and loopback TCP
//! on the `PXN1` node protocol and the `PXN2` streaming protocol.

use partix::engine::{
    AdmissionConfig, AdmissionController, ExecOptions, FaultPlan, PartiX, PartixError,
    PriorityClass, RetryPolicy, Tenancy, TenantId, TenantQuotas, TenantRegistry, TenantSpec,
};
use partix::query::Item;
use partix_bench::setup;
use std::sync::Arc;
use std::time::Duration;

/// Canonical serialization: one line per item, sorted (fragment
/// concatenation order is not document order).
fn canonical(items: &[Item]) -> String {
    let mut lines: Vec<String> = items.iter().map(Item::serialize).collect();
    lines.sort();
    lines.join("\n")
}

/// Rewrite a query against [`setup::DIST`] to the centralized copy.
fn centralized_text(query: &str) -> String {
    query.replace(
        &format!("collection(\"{}\")", setup::DIST),
        &format!("collection(\"{}\")", setup::CENTRAL),
    )
}

/// The two-tenant registry every test uses: a generous interactive
/// tenant and a tightly quota-capped batch tenant.
fn registry() -> Arc<TenantRegistry> {
    let registry = Arc::new(TenantRegistry::new());
    registry
        .register(TenantSpec::new("frontend", PriorityClass::Interactive))
        .expect("register frontend");
    registry
        .register(TenantSpec {
            name: "analytics".to_owned(),
            class: PriorityClass::Batch,
            quotas: TenantQuotas {
                max_concurrent: 1,
                max_queued: 1,
                ..TenantQuotas::default()
            },
        })
        .expect("register analytics");
    registry
}

fn attach_two_tenants(px: &PartiX) -> (TenantId, TenantId, Arc<TenantRegistry>) {
    let registry = registry();
    let frontend = registry.by_name("frontend").expect("frontend").id;
    let analytics = registry.by_name("analytics").expect("analytics").id;
    px.attach_tenancy(Tenancy {
        registry: Arc::clone(&registry),
        controller: AdmissionController::new(AdmissionConfig {
            queue_wait: Duration::from_millis(100),
            retry_after_ms: 25,
            worker_capacity: 0,
        }),
    });
    (frontend, analytics, registry)
}

fn as_tenant(tenant: TenantId) -> ExecOptions {
    ExecOptions { tenant: Some(tenant), ..ExecOptions::default() }
}

/// Concurrent flood from both tenants over the in-process engine:
/// every admitted answer must equal the oracle, every refusal must be
/// [`PartixError::AdmissionRejected`] with the controller's retry hint.
#[test]
fn flooded_tenants_get_oracle_answers_or_typed_rejections() {
    let docs = setup::quick_items(60);
    let px = setup::horizontal(&docs, 4);
    let (frontend, analytics, _) = attach_two_tenants(&px);
    let workload = partix_bench::queries::horizontal(setup::DIST);
    let oracle: Vec<String> = workload
        .iter()
        .map(|(id, q)| {
            canonical(
                &px.execute_centralized(0, &centralized_text(q))
                    .unwrap_or_else(|e| panic!("{id} oracle: {e}"))
                    .items,
            )
        })
        .collect();

    let run_clients = |tenant: TenantId, clients: usize| -> (usize, usize) {
        let admitted = std::sync::atomic::AtomicUsize::new(0);
        let rejected = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for client in 0..clients {
                let (px, workload, oracle) = (&px, &workload, &oracle);
                let (admitted, rejected) = (&admitted, &rejected);
                scope.spawn(move || {
                    for k in 0..workload.len() {
                        let idx = (client + k) % workload.len();
                        match px.execute_with(&workload[idx].1, as_tenant(tenant)) {
                            Ok(result) => {
                                admitted.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                assert_eq!(
                                    canonical(&result.items),
                                    oracle[idx],
                                    "{}: admitted answer diverges from oracle",
                                    workload[idx].0,
                                );
                            }
                            Err(PartixError::AdmissionRejected {
                                tenant, retry_after_ms, reason,
                            }) => {
                                rejected.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                assert_eq!(tenant, "analytics", "only the capped tenant rejects");
                                assert!(retry_after_ms > 0, "rejection lost its retry hint");
                                assert!(!reason.is_empty());
                            }
                            Err(other) => panic!("untyped failure: {other}"),
                        }
                    }
                });
            }
        });
        (
            admitted.load(std::sync::atomic::Ordering::Relaxed),
            rejected.load(std::sync::atomic::Ordering::Relaxed),
        )
    };

    std::thread::scope(|scope| {
        let fe = scope.spawn(|| run_clients(frontend, 3));
        let an = scope.spawn(|| run_clients(analytics, 8));
        let (fe_admitted, fe_rejected) = fe.join().expect("frontend clients");
        let (an_admitted, an_rejected) = an.join().expect("analytics clients");
        assert_eq!(fe_rejected, 0, "the generous tenant must never be rejected");
        assert_eq!(fe_admitted, 3 * workload.len());
        assert!(an_admitted > 0, "the capped tenant must still make progress");
        assert!(an_rejected > 0, "8 clients against a 1+1 quota must overflow");
    });
}

/// Unknown tenants and unconfigured tenancy are typed errors, not
/// panics or silent anonymous execution.
#[test]
fn unknown_tenant_and_missing_tenancy_are_typed() {
    let docs = setup::quick_items(12);
    let q = format!(r#"count(collection("{}")/Item)"#, setup::DIST);

    let bare = setup::horizontal(&docs, 2);
    match bare.resolve_tenant("frontend") {
        Err(PartixError::AdmissionRejected { reason, .. }) => {
            assert!(reason.contains("no tenancy"), "{reason}");
        }
        other => panic!("expected typed rejection, got {other:?}"),
    }

    let px = setup::horizontal(&docs, 2);
    let (frontend, _, _) = attach_two_tenants(&px);
    assert!(px.resolve_tenant("nobody").is_err());
    // a dangling tenant id (registry from another server) is typed too
    let bogus = TenantId(7);
    match px.execute_with(&q, as_tenant(bogus)) {
        Err(PartixError::AdmissionRejected { reason, .. }) => {
            assert!(reason.contains("unknown tenant"), "{reason}");
        }
        other => panic!("expected typed rejection, got {other:?}"),
    }
    // sanity: the real tenant still runs
    px.execute_with(&q, as_tenant(frontend)).expect("frontend query");
}

/// Seeded node faults on top of tenancy: an admitted tenant query
/// returns the oracle answer or a typed error — never wrong data, and
/// never an untyped hang-equivalent.
#[test]
fn faulted_multitenant_returns_oracle_answer_or_typed_error() {
    let docs = setup::quick_items(48);
    let px = setup::horizontal_replicated(&docs, 4, 2);
    px.set_retry_policy(RetryPolicy {
        timeout: Some(Duration::from_millis(60)),
        ..RetryPolicy::default()
    });
    let (frontend, analytics, _) = attach_two_tenants(&px);
    let workload = partix_bench::queries::horizontal(setup::DIST);
    let oracle: Vec<String> = workload
        .iter()
        .map(|(id, q)| {
            canonical(
                &px.execute_centralized(0, &centralized_text(q))
                    .unwrap_or_else(|e| panic!("{id} oracle: {e}"))
                    .items,
            )
        })
        .collect();

    let plan = FaultPlan::from_seed(0x007E_4A17, 4, 0.5);
    let _injectors = plan.install(&px);
    let mut answered = 0usize;
    for (round, tenant) in [frontend, analytics, frontend].into_iter().enumerate() {
        for (k, (id, q)) in workload.iter().enumerate() {
            match px.execute_with(q, as_tenant(tenant)) {
                Ok(result) => {
                    answered += 1;
                    assert_eq!(
                        canonical(&result.items),
                        oracle[k],
                        "round {round}/{id}: faulted answer diverges from oracle",
                    );
                }
                // typed engine errors are the accepted outcome under
                // faults; admission rejections stay possible for the
                // capped tenant
                Err(PartixError::AdmissionRejected { tenant, .. }) => {
                    assert_eq!(tenant, "analytics");
                }
                Err(_typed) => {}
            }
        }
    }
    assert!(answered > 0, "the fault schedule silenced every query");
}

/// The result cache is shared across tenants by design (same data, same
/// query → same bytes); what must never happen is a tenant observing an
/// answer that differs from the oracle because another tenant warmed
/// the cache. Admission rejections must not populate the cache either.
#[test]
fn shared_result_cache_never_serves_wrong_bytes_across_tenants() {
    let docs = setup::quick_items(36);
    let px = setup::horizontal(&docs, 2);
    px.set_result_cache_enabled(true);
    let (frontend, analytics, registry) = attach_two_tenants(&px);
    let q = format!(
        r#"count(for $i in collection("{}")/Item where $i/Section = "CD" return $i)"#,
        setup::DIST
    );
    let oracle = canonical(
        &px.execute_centralized(0, &centralized_text(&q)).expect("oracle").items,
    );

    let first = px.execute_with(&q, as_tenant(frontend)).expect("frontend warms");
    assert_eq!(canonical(&first.items), oracle);
    let before = px.cache_stats();
    let second = px.execute_with(&q, as_tenant(analytics)).expect("analytics reads");
    let after = px.cache_stats();
    assert_eq!(canonical(&second.items), oracle, "cache-served bytes diverge");
    assert!(
        after.result_hits > before.result_hits,
        "the shared cache should have served the second tenant",
    );

    // a rejected query must not touch the cache: pin the analytics
    // tenant's only concurrency slot with a side-door permit (the
    // controller gates purely on shared per-tenant state, so any
    // controller over the same registry contends for the same slot),
    // reject a query deterministically, then confirm a fresh query key
    // still gets the oracle answer
    let q2 = format!(r#"count(collection("{}")/Item)"#, setup::DIST);
    let side = AdmissionController::new(AdmissionConfig {
        queue_wait: Duration::from_millis(100),
        retry_after_ms: 25,
        worker_capacity: 0,
    });
    let held = side
        .admit(&registry.by_name("analytics").expect("analytics"), 0)
        .expect("hold the single analytics slot");
    match px.execute_with(&q2, as_tenant(analytics)) {
        Err(PartixError::AdmissionRejected { tenant, retry_after_ms, .. }) => {
            assert_eq!(tenant, "analytics");
            assert!(retry_after_ms > 0, "rejection must carry a retry hint");
        }
        other => panic!("held slot must trip the quota, got {other:?}"),
    }
    drop(held);
    let verdict = px.execute_with(&q2, as_tenant(frontend)).expect("frontend after flood");
    assert_eq!(
        canonical(&verdict.items),
        canonical(&px.execute_centralized(0, &centralized_text(&q2)).expect("oracle").items),
        "answer after the rejection storm diverges from oracle",
    );
}

/// Loopback TCP, `PXN1` node protocol: `ExecuteAs` admitted answers are
/// byte-identical to direct database execution; over-quota and unknown
/// tenants get typed wire errors with the right code and retry hint.
#[test]
fn pxn1_loopback_gates_tenants_with_typed_wire_errors() {
    use partix::storage::Database;
    use partix_net::{ErrorCode, NodeServer, RemoteDriver, ServerConfig, ServerTenancy};

    let docs = setup::quick_items(24);
    let db = Database::new();
    db.store_all("items", docs.iter().cloned());
    let oracle = canonical(
        &db.execute(r#"count(collection("items")/Item)"#).expect("oracle").items,
    );

    let registry = registry();
    // a suspended tenant: registered, zero concurrency
    registry
        .register(TenantSpec {
            name: "suspended".to_owned(),
            class: PriorityClass::Batch,
            quotas: TenantQuotas { max_concurrent: 0, max_queued: 0, ..TenantQuotas::default() },
        })
        .expect("register suspended");
    let server = NodeServer::bind_driver(
        "127.0.0.1:0",
        Arc::new(db),
        ServerConfig {
            tenancy: Some(Arc::new(ServerTenancy {
                registry,
                controller: AdmissionController::default(),
            })),
            ..ServerConfig::default()
        },
    )
    .expect("bind node server");
    let driver = RemoteDriver::connect(server.local_addr()).expect("dial");
    let query = partix::query::parse_query(r#"count(collection("items")/Item)"#).expect("parse");

    let out = driver
        .execute_as("frontend", &query)
        .expect("frontend admitted")
        .expect("collection exists");
    assert_eq!(canonical(&out.items), oracle);

    let err = driver.execute_as("suspended", &query).expect_err("suspended rejected");
    assert_eq!(err.code, ErrorCode::AdmissionRejected);
    assert!(!err.retryable, "admission rejections are not transport-retryable");
    assert!(err.retry_after_ms > 0, "rejection lost its retry hint");
    assert!(err.message.contains("quota"), "{}", err.message);

    let err = driver.execute_as("nobody", &query).expect_err("unknown rejected");
    assert_eq!(err.code, ErrorCode::UnknownTenant);
    assert!(err.message.contains("unknown tenant"), "{}", err.message);
}

/// Loopback TCP, `PXN2` streaming protocol: the tenant header flows to
/// the coordinator's engine-side admission, and rejections surface as
/// typed [`StreamCallError::Remote`] verdicts with the right code.
#[test]
fn pxn2_loopback_gates_tenants_with_typed_stream_errors() {
    use partix::storage::Database;
    use partix_net::{
        serve_coordinator, CoordinatorPool, ErrorCode, StreamCallError, StreamClientConfig,
        StreamOpts, StreamServerConfig,
    };

    let docs = setup::quick_items(24);
    let db = Database::new();
    db.store_all("items", docs.iter().cloned());
    let oracle = canonical(
        &db.execute(r#"count(collection("items")/Item)"#).expect("oracle").items,
    );

    let px = PartiX::new(1, partix::engine::NetworkModel::instantaneous());
    px.cluster().node(0).expect("node 0").set_driver(Arc::new(db));
    let registry = registry();
    registry
        .register(TenantSpec {
            name: "suspended".to_owned(),
            class: PriorityClass::Batch,
            quotas: TenantQuotas { max_concurrent: 0, max_queued: 0, ..TenantQuotas::default() },
        })
        .expect("register suspended");
    px.attach_tenancy(Tenancy::new(registry));
    let server =
        serve_coordinator("127.0.0.1:0", Arc::new(px), StreamServerConfig::default())
            .expect("bind coordinator");
    let pool =
        CoordinatorPool::new(vec![server.addr().to_string()], StreamClientConfig::default());
    let q = r#"count(collection("items")/Item)"#;
    let with_tenant = |tenant: &str| StreamOpts {
        tenant: Some(tenant.to_owned()),
        ..StreamOpts::default()
    };

    let result = pool.query(q, with_tenant("frontend")).expect("frontend admitted");
    assert_eq!(canonical(&result.items), oracle);
    // the anonymous path must keep working next to tenancy
    let result = pool.query(q, StreamOpts::default()).expect("anonymous admitted");
    assert_eq!(canonical(&result.items), oracle);

    match pool.query(q, with_tenant("suspended")) {
        Err(StreamCallError::Remote { retryable, code, message, .. }) => {
            assert_eq!(code, ErrorCode::AdmissionRejected);
            assert!(!retryable);
            assert!(message.contains("quota"), "{message}");
        }
        other => panic!("expected typed admission rejection, got {other:?}"),
    }
    match pool.query(q, with_tenant("nobody")) {
        Err(StreamCallError::Remote { code, message, .. }) => {
            assert_eq!(code, ErrorCode::UnknownTenant);
            assert!(message.contains("unknown tenant"), "{message}");
        }
        other => panic!("expected typed unknown-tenant error, got {other:?}"),
    }
}
