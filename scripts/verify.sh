#!/usr/bin/env bash
# Full verification gate: release build, test suite, lint-clean.
set -euo pipefail
cd "$(dirname "$0")/.."

# --offline: the workspace is fully self-contained (path deps only)
cargo build --release --workspace --offline
cargo test -q --workspace --offline
cargo clippy --workspace --offline -- -D warnings

echo "verify: OK"
