#!/usr/bin/env bash
# Full verification gate: release build, test suite, lint-clean.
set -euo pipefail
cd "$(dirname "$0")/.."

# Property-test effort is dialable for CI; default keeps the full gate
# under a couple of minutes while still exercising every property.
export PARTIX_PROPTEST_CASES="${PARTIX_PROPTEST_CASES:-32}"

# --offline: the workspace is fully self-contained (path deps only)
cargo build --release --workspace --offline
cargo test -q --workspace --offline

# fault-tolerance gate, run explicitly so a filtered/partial test
# invocation can never silently skip it: the differential oracle suite
# (centralized vs every fragmentation design, with and without injected
# faults) and the chaos suites (seeded fault schedules, property tests,
# flapping-node concurrency).
cargo test -q --test differential --offline
cargo test -q --test properties --offline
cargo test -q --test concurrency --offline chaos
cargo test -q -p partix-bench --offline chaos
cargo test -q -p partix-engine --offline faults

# observability gate: span/metrics units, stage-breakdown consistency
# (fault-free and under a seeded fault plan), panic containment.
cargo test -q -p partix-engine --offline trace
cargo test -q -p partix-engine --offline metrics
cargo test -q --test observability --offline

# any clippy warning fails the gate
cargo clippy --workspace --offline -- -D warnings

# the throughput JSON must carry per-stage attribution and the measured
# tracing overhead — a quick 2-client run regenerates a scratch copy
STAGE_JSON="$(mktemp /tmp/partix-verify-throughput.XXXXXX.json)"
trap 'rm -f "$STAGE_JSON"' EXIT
./target/release/harness throughput --clients 2 --queries 10 \
    --out "$STAGE_JSON" > /dev/null
for field in parse_p50_ms localize_p99_ms dispatch_p99_ms compose_p50_ms \
    trace_overhead_pct; do
    if ! grep -q "\"$field\":" "$STAGE_JSON"; then
        echo "verify: FAIL — $field missing from throughput JSON" >&2
        exit 1
    fi
done

echo "verify: OK"
