#!/usr/bin/env bash
# Full verification gate: release build, test suite, lint-clean.
set -euo pipefail
cd "$(dirname "$0")/.."

# Property-test effort is dialable for CI; default keeps the full gate
# under a couple of minutes while still exercising every property.
export PARTIX_PROPTEST_CASES="${PARTIX_PROPTEST_CASES:-32}"

# --offline: the workspace is fully self-contained (path deps only)
cargo build --release --workspace --offline
cargo test -q --workspace --offline

# fault-tolerance gate, run explicitly so a filtered/partial test
# invocation can never silently skip it: the differential oracle suite
# (centralized vs every fragmentation design, with and without injected
# faults) and the chaos suites (seeded fault schedules, property tests,
# flapping-node concurrency).
cargo test -q --test differential --offline
cargo test -q --test properties --offline
cargo test -q --test concurrency --offline chaos
cargo test -q -p partix-bench --offline chaos
cargo test -q -p partix-engine --offline faults

# any clippy warning fails the gate
cargo clippy --workspace --offline -- -D warnings

echo "verify: OK"
