#!/usr/bin/env bash
# Full verification gate: release build, test suite, lint-clean.
set -euo pipefail
cd "$(dirname "$0")/.."

# Property-test effort is dialable for CI; default keeps the full gate
# under a couple of minutes while still exercising every property.
export PARTIX_PROPTEST_CASES="${PARTIX_PROPTEST_CASES:-32}"

# --offline: the workspace is fully self-contained (path deps only)
cargo build --release --workspace --offline
cargo test -q --workspace --offline

# fault-tolerance gate, run explicitly so a filtered/partial test
# invocation can never silently skip it: the differential oracle suite
# (centralized vs every fragmentation design, with and without injected
# faults) and the chaos suites (seeded fault schedules, property tests,
# flapping-node concurrency).
cargo test -q --test differential --offline
cargo test -q --test properties --offline
cargo test -q --test concurrency --offline chaos
cargo test -q -p partix-bench --offline chaos
cargo test -q -p partix-engine --offline faults

# observability gate: span/metrics units, stage-breakdown consistency
# (fault-free and under a seeded fault plan), panic containment.
cargo test -q -p partix-engine --offline trace
cargo test -q -p partix-engine --offline metrics
cargo test -q --test observability --offline

# network gate: the wire protocol's property tests (round-trips plus
# hostile frames), the local-vs-remote differential suite over loopback
# TCP, and the listener kill/restart chaos test.
cargo test -q -p partix-net --offline
cargo test -q --test remote_differential --offline
cargo test -q --test concurrency --offline remote_chaos

# streaming gate: the PXN2 streamed-vs-buffered differential (every
# query family, hot and cold caches, seeded faults, coordinator killed
# mid-stream), the coordinator-replication failover differential (three
# coordinators, one killed mid-workload, epoch convergence after a
# rebalance), and the slow-reader backpressure suite (bounded send
# queues, per-stream isolation). The PXN2 frame/assembler property
# tests run inside `-p partix-net` above.
cargo test -q --test streaming_differential --offline
cargo test -q --test coordinator_failover --offline
cargo test -q -p partix-net --test backpressure --offline

# rebalance gate: the advisor/rebalancer unit suites and the migration
# differential suite (before/during/after answers vs the centralized
# oracle — in-process, over TCP, and under seeded query-path faults).
cargo test -q -p partix-advisor --offline
cargo test -q --test rebalance_differential --offline

# write gate: the WAL crash-recovery unit suite (torn tails at every
# offset, double-replay idempotence, checkpoint equivalence) and the
# write differential suite (coordinator-routed writes vs the
# centralized oracle across seeded kill-points, interleaved schedules,
# in-process and over loopback TCP).
cargo test -q -p partix-storage --offline wal
cargo test -q --test write_differential --offline

# multi-tenant gate: the tenant-layer unit suites (registry, quotas,
# DRR scheduler, admission controller), the multitenant differential
# suite (admitted answers vs the centralized oracle under floods and
# seeded faults, typed rejections with retry hints, result-cache
# hygiene — in-process and over both wire protocols), and the
# warehouse→advisor suite (frequency mining over the star-query log
# feeding re-split candidates that pass the formal
# completeness/disjointness check and migrate live).
cargo test -q -p partix-tenant --offline
cargo test -q --test multitenant_differential --offline
cargo test -q --test warehouse_advisor --offline

# morsel gate: intra-fragment parallel execution must be invisible
# except for speed — the differential suite (every query family, hot
# and cold, distributed vs centralized oracle, proptest geometry fuzz)
# plus the query/storage unit suites, run explicitly.
cargo test -q --test morsel_differential --offline
cargo test -q -p partix-query --offline morsel
cargo test -q -p partix-storage --offline morsel

# storage gate: the arena/page round-trip property suite (random
# documents with attributes, mixed content, deep nesting, empty
# elements — decode(encode(doc)) and the zero-copy view must agree
# node-for-node with Dewey ids intact) and the write-path regressions
# (name-map scale churn, tombstone compaction, value-index soundness).
cargo test -q -p partix-xml --test arena_page_props --offline
cargo test -q -p partix-storage --test write_path --offline

# any clippy warning fails the gate
cargo clippy --workspace --offline -- -D warnings

# the throughput JSON must carry per-stage attribution and the measured
# tracing overhead — a quick 2-client run regenerates a scratch copy
STAGE_JSON="$(mktemp /tmp/partix-verify-throughput.XXXXXX.json)"
trap 'rm -f "$STAGE_JSON"' EXIT
./target/release/harness throughput --clients 2 --queries 10 \
    --out "$STAGE_JSON" > /dev/null
for field in parse_p50_ms localize_p99_ms dispatch_p99_ms compose_p50_ms \
    trace_overhead_pct; do
    if ! grep -q "\"$field\":" "$STAGE_JSON"; then
        echo "verify: FAIL — $field missing from throughput JSON" >&2
        exit 1
    fi
done

# serve/ping smoke test: two node servers on ephemeral loopback ports
# must come up, answer a health ping each, and die cleanly.
SERVE_LOG1="$(mktemp /tmp/partix-verify-serve1.XXXXXX.log)"
SERVE_LOG2="$(mktemp /tmp/partix-verify-serve2.XXXXXX.log)"
trap 'rm -f "$STAGE_JSON" "$SERVE_LOG1" "$SERVE_LOG2"; kill "${SERVE_PID1:-}" "${SERVE_PID2:-}" 2>/dev/null || true' EXIT
./target/release/partix serve --node 0 --addr 127.0.0.1:0 > "$SERVE_LOG1" &
SERVE_PID1=$!
./target/release/partix serve --node 1 --addr 127.0.0.1:0 > "$SERVE_LOG2" &
SERVE_PID2=$!
for log in "$SERVE_LOG1" "$SERVE_LOG2"; do
    for _ in $(seq 50); do
        grep -q "listening on" "$log" && break
        sleep 0.1
    done
    addr="$(sed -n 's/.*listening on //p' "$log" | head -n1)"
    if [ -z "$addr" ]; then
        echo "verify: FAIL — node server never reported its address" >&2
        exit 1
    fi
    ./target/release/partix ping "$addr" > /dev/null
done
kill "$SERVE_PID1" "$SERVE_PID2"
wait "$SERVE_PID1" "$SERVE_PID2" 2>/dev/null || true

# the remote throughput run must ship real bytes over TCP and say so in
# its JSON: "remote":true plus a nonzero bytes_shipped.
REMOTE_JSON="$(mktemp /tmp/partix-verify-remote.XXXXXX.json)"
trap 'rm -f "$STAGE_JSON" "$REMOTE_JSON" "$SERVE_LOG1" "$SERVE_LOG2"' EXIT
./target/release/harness throughput --remote --clients 2 --queries 10 \
    --out "$REMOTE_JSON" > /dev/null
if ! grep -q '"remote":true' "$REMOTE_JSON"; then
    echo "verify: FAIL — remote run not flagged in throughput JSON" >&2
    exit 1
fi
if ! grep -q '"bytes_shipped":' "$REMOTE_JSON"; then
    echo "verify: FAIL — bytes_shipped missing from throughput JSON" >&2
    exit 1
fi
if ! grep -Eq '"bytes_shipped":[1-9][0-9]*' "$REMOTE_JSON"; then
    echo "verify: FAIL — remote run shipped zero wire bytes" >&2
    exit 1
fi

# advisor determinism: the advise demo's output is timing-free by
# construction, so two runs with the same seed must be byte-identical.
ADVISE_A="$(mktemp /tmp/partix-verify-advise-a.XXXXXX.txt)"
ADVISE_B="$(mktemp /tmp/partix-verify-advise-b.XXXXXX.txt)"
REBALANCE_JSON="$(mktemp /tmp/partix-verify-rebalance.XXXXXX.json)"
trap 'rm -f "$STAGE_JSON" "$REMOTE_JSON" "$SERVE_LOG1" "$SERVE_LOG2" \
    "$ADVISE_A" "$ADVISE_B" "$REBALANCE_JSON"' EXIT
./target/release/partix advise 7 > "$ADVISE_A"
./target/release/partix advise 7 > "$ADVISE_B"
if ! diff -q "$ADVISE_A" "$ADVISE_B" > /dev/null; then
    echo "verify: FAIL — partix advise is not deterministic under a seed" >&2
    diff "$ADVISE_A" "$ADVISE_B" >&2 || true
    exit 1
fi

# the rebalance benchmark must move real bytes, pass its own
# completeness/disjointness re-validation, keep every mid-migration
# probe answer correct, and record a p99 improvement.
./target/release/harness rebalance --clients 8 --queries 30 \
    --out "$REBALANCE_JSON" > /dev/null
for field in before_p99_ms after_p99_ms before_qps after_qps \
    migrated_fragments migrated_bytes rebalance_s during_queries; do
    if ! grep -q "\"$field\":" "$REBALANCE_JSON"; then
        echo "verify: FAIL — $field missing from rebalance JSON" >&2
        exit 1
    fi
done
if ! grep -Eq '"migrated_bytes":[1-9][0-9]*' "$REBALANCE_JSON"; then
    echo "verify: FAIL — rebalance migrated zero bytes" >&2
    exit 1
fi
if ! grep -q '"verified":true' "$REBALANCE_JSON"; then
    echo "verify: FAIL — rebalance verification did not pass" >&2
    exit 1
fi
if ! grep -q '"during_errors":0' "$REBALANCE_JSON"; then
    echo "verify: FAIL — queries diverged during the live migration" >&2
    exit 1
fi
if ! grep -q '"p99_improved":true' "$REBALANCE_JSON"; then
    echo "verify: FAIL — rebalance did not improve p99 latency" >&2
    exit 1
fi

# the morsel benchmark gates on answer identity, not speedup: a
# single-core CI host runs the full split/merge machinery with no
# parallel gain, so "identical":true (plus the recorded host_cores
# context and a genuine ≥2-way split somewhere) is the contract.
MORSEL_JSON="$(mktemp /tmp/partix-verify-morsel.XXXXXX.json)"
trap 'rm -f "$STAGE_JSON" "$REMOTE_JSON" "$SERVE_LOG1" "$SERVE_LOG2" \
    "$ADVISE_A" "$ADVISE_B" "$REBALANCE_JSON" "$MORSEL_JSON"' EXIT
./target/release/harness morsel --reps 1 --out "$MORSEL_JSON" > /dev/null
for field in host_cores workers seq_ms par_ms speedup best_speedup; do
    if ! grep -q "\"$field\":" "$MORSEL_JSON"; then
        echo "verify: FAIL — $field missing from morsel JSON" >&2
        exit 1
    fi
done
if ! grep -q '"identical":true}$' "$MORSEL_JSON"; then
    echo "verify: FAIL — a morsel-split answer diverged from sequential" >&2
    exit 1
fi
if ! grep -Eq '"morsels":[2-9]' "$MORSEL_JSON"; then
    echo "verify: FAIL — no query split into morsels" >&2
    exit 1
fi

# the storage benchmark gates on answer identity across storage
# configurations: hot, cold-with-indexes, and cold-full-scan must
# serialize byte-identical answers on both document classes; the
# speedup fields must be present (their magnitude is host-dependent).
STORAGE_JSON="$(mktemp /tmp/partix-verify-storage.XXXXXX.json)"
trap 'rm -f "$STAGE_JSON" "$REMOTE_JSON" "$SERVE_LOG1" "$SERVE_LOG2" \
    "$ADVISE_A" "$ADVISE_B" "$REBALANCE_JSON" "$MORSEL_JSON" \
    "$STORAGE_JSON"' EXIT
./target/release/harness storage --reps 1 --out "$STORAGE_JSON" > /dev/null
for field in hot_ms cold_indexed_ms cold_scan_ms cold_speedup \
    cold_selection_speedup decode_speedup v1_over_v2 v1_over_view; do
    if ! grep -q "\"$field\":" "$STORAGE_JSON"; then
        echo "verify: FAIL — $field missing from storage JSON" >&2
        exit 1
    fi
done
if ! grep -q '"identical":true}$' "$STORAGE_JSON"; then
    echo "verify: FAIL — a storage-configuration answer diverged" >&2
    exit 1
fi

# the writes benchmark must push a mixed read/write workload through
# the WAL-backed nodes, fsync every append, and leave a final state
# byte-identical to the centralized oracle at every write ratio.
WRITES_JSON="$(mktemp /tmp/partix-verify-writes.XXXXXX.json)"
trap 'rm -f "$STAGE_JSON" "$REMOTE_JSON" "$SERVE_LOG1" "$SERVE_LOG2" \
    "$ADVISE_A" "$ADVISE_B" "$REBALANCE_JSON" "$MORSEL_JSON" \
    "$STORAGE_JSON" "$WRITES_JSON"' EXIT
./target/release/harness writes --queries 20 --out "$WRITES_JSON" > /dev/null
for field in write_ratio qps read_p99_ms write_p99_ms wal_appends \
    wal_fsyncs; do
    if ! grep -q "\"$field\":" "$WRITES_JSON"; then
        echo "verify: FAIL — $field missing from writes JSON" >&2
        exit 1
    fi
done
if grep -q '"verified":false' "$WRITES_JSON"; then
    echo "verify: FAIL — a writes run diverged from the oracle" >&2
    exit 1
fi
if ! grep -q '"verified":true' "$WRITES_JSON"; then
    echo "verify: FAIL — no verified writes run in the JSON" >&2
    exit 1
fi
if ! grep -Eq '"wal_fsyncs":[1-9][0-9]*' "$WRITES_JSON"; then
    echo "verify: FAIL — writes run recorded zero WAL fsyncs" >&2
    exit 1
fi

# the scale-out benchmark must sweep coordinator counts in both
# transport modes with every answer oracle-verified. The scratch run is
# deliberately small, so only shape and correctness gate here — the
# committed BENCH_scaleout.json carries the full-scale scaling gates.
SCALEOUT_JSON="$(mktemp /tmp/partix-verify-scaleout.XXXXXX.json)"
trap 'rm -f "$STAGE_JSON" "$REMOTE_JSON" "$SERVE_LOG1" "$SERVE_LOG2" \
    "$ADVISE_A" "$ADVISE_B" "$REBALANCE_JSON" "$MORSEL_JSON" \
    "$STORAGE_JSON" "$WRITES_JSON" "$SCALEOUT_JSON"' EXIT
./target/release/harness scaleout --sizes 1 --scale 0.1 --clients 8 \
    --queries 4 --out "$SCALEOUT_JSON" > /dev/null
for field in coordinators mode qps p50_ms p99_ms failovers repeats \
    qps_scales streamed_p99_le_buffered; do
    if ! grep -q "\"$field\":" "$SCALEOUT_JSON"; then
        echo "verify: FAIL — $field missing from scaleout JSON" >&2
        exit 1
    fi
done
if grep -q '"verified":false' "$SCALEOUT_JSON"; then
    echo "verify: FAIL — a scaleout run diverged from the oracle" >&2
    exit 1
fi
if ! grep -q '"mode":"streamed"' "$SCALEOUT_JSON"; then
    echo "verify: FAIL — scaleout never ran the streamed transport" >&2
    exit 1
fi

# the multitenant benchmark gates on its correctness fields, never on
# timing: every admitted answer must match the centralized oracle
# ("verified":true with zero mismatches) and the isolation bound must
# hold. The scratch run is tiny; the committed BENCH_multitenant.json
# carries the full-scale isolation numbers and must gate too.
MT_JSON="$(mktemp /tmp/partix-verify-multitenant.XXXXXX.json)"
trap 'rm -f "$STAGE_JSON" "$REMOTE_JSON" "$SERVE_LOG1" "$SERVE_LOG2" \
    "$ADVISE_A" "$ADVISE_B" "$REBALANCE_JSON" "$MORSEL_JSON" \
    "$STORAGE_JSON" "$WRITES_JSON" "$SCALEOUT_JSON" "$MT_JSON"' EXIT
./target/release/harness multitenant --clients 2 --queries 10 \
    --out "$MT_JSON" > /dev/null
for field in p99_alone_ms p99_contended_ms isolation_factor \
    oracle_checks oracle_mismatches; do
    if ! grep -q "\"$field\":" "$MT_JSON"; then
        echo "verify: FAIL — $field missing from multitenant JSON" >&2
        exit 1
    fi
done
for json in "$MT_JSON" BENCH_multitenant.json; do
    if ! grep -q '"isolation_held":true' "$json"; then
        echo "verify: FAIL — tenant isolation bound not held in $json" >&2
        exit 1
    fi
    if ! grep -q '"verified":true' "$json"; then
        echo "verify: FAIL — multitenant answers diverged from oracle in $json" >&2
        exit 1
    fi
    if ! grep -q '"oracle_mismatches":0' "$json"; then
        echo "verify: FAIL — multitenant oracle mismatches in $json" >&2
        exit 1
    fi
done

# two-tenant serve smoke: a node server with a generous tenant and a
# quota-zero tenant must serve the former and reject the latter with a
# typed admission error on the wire.
MT_LOG="$(mktemp /tmp/partix-verify-mtserve.XXXXXX.log)"
MT_ERR="$(mktemp /tmp/partix-verify-mtserve-err.XXXXXX.log)"
trap 'rm -f "$STAGE_JSON" "$REMOTE_JSON" "$SERVE_LOG1" "$SERVE_LOG2" \
    "$ADVISE_A" "$ADVISE_B" "$REBALANCE_JSON" "$MORSEL_JSON" \
    "$STORAGE_JSON" "$WRITES_JSON" "$SCALEOUT_JSON" "$MT_JSON" \
    "$MT_LOG" "$MT_ERR"; kill "${MT_PID:-}" 2>/dev/null || true' EXIT
./target/release/partix serve --node 0 --addr 127.0.0.1:0 \
    --tenant frontend:interactive:8 --tenant suspended:batch:0:0 \
    > "$MT_LOG" &
MT_PID=$!
for _ in $(seq 50); do
    grep -q "listening on" "$MT_LOG" && break
    sleep 0.1
done
mt_addr="$(sed -n 's/.*listening on //p' "$MT_LOG" | head -n1)"
if [ -z "$mt_addr" ]; then
    echo "verify: FAIL — tenant-gated server never reported its address" >&2
    exit 1
fi
./target/release/partix exec "$mt_addr" 'count(collection("items")/Item)' \
    --tenant frontend > /dev/null
if ./target/release/partix exec "$mt_addr" 'count(collection("items")/Item)' \
    --tenant suspended > /dev/null 2> "$MT_ERR"; then
    echo "verify: FAIL — quota-zero tenant was admitted" >&2
    exit 1
fi
if ! grep -q "AdmissionRejected" "$MT_ERR"; then
    echo "verify: FAIL — quota rejection was not a typed admission error" >&2
    cat "$MT_ERR" >&2
    exit 1
fi
kill "$MT_PID"
wait "$MT_PID" 2>/dev/null || true

echo "verify: OK"
