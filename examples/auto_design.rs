//! Automatic fragmentation design + balanced allocation + replication —
//! the paper's *future work* ("a methodology for fragmenting XML
//! databases … tools to automate this fragmentation process"),
//! implemented as `partix::frag::design`.
//!
//! A skewed item collection is analyzed, partitioned into
//! document-count-balanced horizontal fragments, allocated to nodes by
//! size, replicated, and queried through node failures.
//!
//! ```sh
//! cargo run --release --example auto_design
//! ```

use partix::engine::{Distribution, NetworkModel, PartiX, Placement};
use partix::frag::{allocate_balanced, check_correctness, horizontal_by_values, Fragmenter};
use partix::gen::{gen_items, ItemProfile};
use partix::path::PathExpr;
use partix::schema::{builtin, CollectionDef, RepoKind};
use partix::xml::Document;
use std::sync::Arc;

fn main() {
    // a skewed sample: sections follow the generator's 30/20/15/… split
    let docs = gen_items(800, ItemProfile::Small, 2026);
    let citems = CollectionDef::new(
        "items",
        Arc::new(builtin::virtual_store()),
        PathExpr::parse("/Store/Items/Item").expect("valid path"),
        RepoKind::MultipleDocuments,
    );

    // 1. derive a balanced design from the observed /Item/Section values
    let design = horizontal_by_values(
        citems,
        &PathExpr::parse("/Item/Section").expect("valid path"),
        &docs,
        3,
    )
    .expect("derivable design");
    println!("derived design:");
    for frag in &design.fragments {
        println!("  {frag}");
    }

    // 2. the design passes the paper's correctness rules on the data
    let fragments = Fragmenter::new(design.clone()).fragment_all(&docs);
    let report = check_correctness(&design, &docs, &fragments);
    assert!(report.is_correct(), "{:?}", report.violations);
    let sizes: Vec<(String, usize)> = fragments
        .iter()
        .map(|(name, d)| (name.clone(), d.iter().map(Document::approx_size).sum()))
        .collect();
    for (name, bytes) in &sizes {
        println!("  {name}: {bytes} B");
    }

    // 3. allocate fragments to two nodes balancing bytes, replicating the
    //    largest fragment on both nodes for availability
    let allocation = allocate_balanced(&sizes, 2);
    let largest = sizes
        .iter()
        .max_by_key(|(_, b)| *b)
        .map(|(n, _)| n.clone())
        .expect("non-empty");
    let mut placements: Vec<Placement> = allocation
        .iter()
        .map(|(fragment, node)| Placement { fragment: fragment.clone(), node: *node })
        .collect();
    let primary = allocation
        .iter()
        .find(|(f, _)| *f == largest)
        .map(|(_, n)| *n)
        .expect("placed");
    placements.push(Placement { fragment: largest.clone(), node: 1 - primary });
    println!("allocation (fragment → node): {allocation:?}");
    println!("replicating {largest} on both nodes");

    // 4. publish and query through a node failure
    let px = PartiX::new(2, NetworkModel::default());
    px.register_distribution(Distribution { design, placements })
        .expect("valid placement");
    px.publish("items", &docs).expect("publish");

    let q = r#"count(for $i in collection("items")/Item where $i/Section = "CD" return $i)"#;
    let before = px.execute(q).expect("query runs");
    println!("CD count with all nodes up: {}", before.items[0]);

    px.cluster().node(primary).expect("node").set_available(false);
    let after = px.execute(q).expect("replica answers");
    println!(
        "CD count with node{primary} down: {} (failed over to node{})",
        after.items[0],
        after.report.sites[0].node,
    );
    assert_eq!(before.items, after.items);
}
