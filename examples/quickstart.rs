//! Quickstart: parse XML, query it, then fragment a collection across a
//! two-node PartiX cluster and watch the middleware decompose a query.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use partix::engine::{Distribution, NetworkModel, PartiX, Placement};
use partix::frag::{FragmentDef, FragmentationSchema};
use partix::path::{PathExpr, Predicate};
use partix::query::Item;
use partix::schema::{builtin, CollectionDef, RepoKind};
use partix::storage::Database;
use partix::xml;
use std::sync::Arc;

fn main() {
    // 1. Parse an XML document with the from-scratch parser.
    let doc = xml::parse(
        r#"<Item><Code>1</Code><Name>Kind of Blue</Name>
           <Section>CD</Section>
           <Characteristics><Description>a very good jazz record</Description></Characteristics>
           </Item>"#,
    )
    .expect("well-formed XML");
    println!("parsed <{}> with {} nodes", doc.root_label(), doc.len());

    // 2. Store documents in the sequential XML DBMS and run XQuery.
    let db = Database::new();
    for i in 0..100 {
        let section = if i % 3 == 0 { "CD" } else { "DVD" };
        let mut item = xml::parse(&format!(
            "<Item><Code>{i}</Code><Name>item {i}</Name><Section>{section}</Section>\
             <Characteristics><Description>{} item</Description></Characteristics></Item>",
            if i % 2 == 0 { "a good" } else { "an ordinary" },
        ))
        .expect("well-formed");
        item.name = Some(format!("i{i:03}"));
        db.store("items", item);
    }
    let out = db
        .execute(
            r#"count(for $i in collection("items")/Item
                     where $i/Section = "CD" and contains($i//Description, "good")
                     return $i)"#,
        )
        .expect("query runs");
    println!(
        "single-node query: {} matching items ({} of {} docs scanned, index: {})",
        out.items[0],
        out.stats.docs_scanned,
        out.stats.collection_size,
        out.stats.index_used,
    );

    // 3. Fragment the same collection horizontally across two nodes.
    let px = PartiX::new(2, NetworkModel::default());
    let citems = CollectionDef::new(
        "items",
        Arc::new(builtin::virtual_store()),
        PathExpr::parse("/Store/Items/Item").expect("valid path"),
        RepoKind::MultipleDocuments,
    );
    let design = FragmentationSchema::new(
        citems,
        vec![
            FragmentDef::horizontal(
                "f_cd",
                Predicate::parse(r#"/Item/Section = "CD""#).expect("valid predicate"),
            ),
            FragmentDef::horizontal(
                "f_rest",
                Predicate::parse(r#"not(/Item/Section = "CD")"#).expect("valid predicate"),
            ),
        ],
    )
    .expect("correct design");
    px.register_distribution(Distribution {
        design,
        placements: vec![
            Placement { fragment: "f_cd".into(), node: 0 },
            Placement { fragment: "f_rest".into(), node: 1 },
        ],
    })
    .expect("valid placement");

    let docs: Vec<xml::Document> = (0..100)
        .map(|i| {
            let section = if i % 3 == 0 { "CD" } else { "DVD" };
            let mut d = xml::parse(&format!(
                "<Item><Code>{i}</Code><Name>item {i}</Name><Section>{section}</Section>\
                 <Characteristics><Description>desc</Description></Characteristics></Item>"
            ))
            .expect("well-formed");
            d.name = Some(format!("i{i:03}"));
            d
        })
        .collect();
    let report = px.publish("items", &docs).expect("publish succeeds");
    for (fragment, node, count, bytes) in &report.shipped {
        println!("shipped {count} docs ({bytes} B) of fragment {fragment} to node {node}");
    }

    // 4. A query matching one fragment's predicate is localized to it.
    let result = px
        .execute(r#"for $i in collection("items")/Item where $i/Section = "CD" return $i/Code"#)
        .expect("distributed query runs");
    println!(
        "distributed query returned {} items from {} site(s), {} fragment(s) pruned",
        result.items.len(),
        result.report.sites.len(),
        result.report.fragments_pruned,
    );
    println!("timing breakdown:\n{}", result.report);
    assert!(result.items.iter().all(|i| matches!(i, Item::Node(..))));
}
