//! Hybrid fragmentation of a single-document (SD) store — the paper's
//! *StoreHyb* scenario: the store's items are split by `Section` into
//! unit-level fragments while a vertical prune fragment keeps everything
//! else. Shows FragMode1 vs FragMode2 and the effect of the
//! transmission-time model.
//!
//! ```sh
//! cargo run --release --example hybrid_store
//! ```

use partix::engine::{Distribution, NetworkModel, PartiX, Placement};
use partix::frag::{FragMode, FragmentDef, FragmentationSchema};
use partix::gen::{gen_store, ItemProfile};
use partix::path::{PathExpr, Predicate};
use partix::schema::{builtin, CollectionDef, RepoKind};
use std::sync::Arc;

fn build(mode: FragMode) -> PartiX {
    let p = |s: &str| PathExpr::parse(s).expect("valid path");
    let pr = |s: &str| Predicate::parse(s).expect("valid predicate");
    let cstore = CollectionDef::new(
        "store",
        Arc::new(builtin::virtual_store()),
        p("/Store"),
        RepoKind::SingleDocument,
    );
    // Figure 4 of the paper: hybrid item fragments + the prune fragment.
    let design = FragmentationSchema::new(
        cstore,
        vec![
            FragmentDef::hybrid(
                "F1items",
                p("/Store/Items/Item"),
                pr(r#"/Item/Section = "CD""#),
                mode,
            ),
            FragmentDef::hybrid(
                "F2items",
                p("/Store/Items/Item"),
                pr(r#"/Item/Section = "DVD""#),
                mode,
            ),
            FragmentDef::hybrid(
                "F3items",
                p("/Store/Items/Item"),
                pr(r#"/Item/Section != "CD" and /Item/Section != "DVD""#),
                mode,
            ),
            FragmentDef::vertical("F4items", p("/Store"), vec![p("/Store/Items")]),
        ],
    )
    .expect("valid design");
    let px = PartiX::new(4, NetworkModel::default());
    px.register_distribution(Distribution {
        design,
        placements: vec![
            Placement { fragment: "F1items".into(), node: 0 },
            Placement { fragment: "F2items".into(), node: 1 },
            Placement { fragment: "F3items".into(), node: 2 },
            Placement { fragment: "F4items".into(), node: 3 },
        ],
    })
    .expect("valid placement");
    let store = gen_store(600, ItemProfile::Small, 99);
    px.publish("store", &[store]).expect("publish");
    px
}

fn main() {
    for (mode, label) in [
        (FragMode::ManySmallDocs, "FragMode1: one document per selected item"),
        (FragMode::SingleDoc, "FragMode2: one spine document per fragment"),
    ] {
        println!("== {label} ==");
        let mut px = build(mode);
        for i in 0..3 {
            let node = px.cluster().node(i).expect("node exists");
            let count = node
                .db
                .collection_len(&format!("F{}items", i + 1))
                .unwrap_or(0);
            println!("  node{i} holds {count} fragment document(s)");
        }

        // A section-localized query hits exactly one node.
        let result = px
            .execute(
                r#"for $i in collection("store")/Store/Items/Item
                   where $i/Section = "CD" return $i/Name"#,
            )
            .expect("query runs");
        println!(
            "  CD query: {} names from {} site(s), {} pruned, {:.6}s modelled response",
            result.items.len(),
            result.report.sites.len(),
            result.report.fragments_pruned,
            result.report.total(),
        );

        // Returning whole items makes transmission the bottleneck —
        // compare the Gigabit model against an instantaneous network.
        let with_net = px
            .execute(r#"for $i in collection("store")/Store/Items/Item return $i"#)
            .expect("query runs");
        px.set_network(NetworkModel::instantaneous());
        let no_net = px
            .execute(r#"for $i in collection("store")/Store/Items/Item return $i"#)
            .expect("query runs");
        println!(
            "  full-item scan: {:.6}s with transmission vs {:.6}s without ({} B shipped)",
            with_net.report.total(),
            no_net.report.total(),
            with_net.report.total_result_bytes(),
        );
        px.set_network(NetworkModel::default());

        // Queries on the pruned spine touch only F4items.
        let spine = px
            .execute(
                r#"for $s in collection("store")/Store/Sections/Section return $s/Name"#,
            )
            .expect("query runs");
        println!(
            "  spine query: {} sections from fragment {}\n",
            spine.items.len(),
            spine.report.sites[0].fragment,
        );
        assert_eq!(spine.report.sites.len(), 1);
    }
}
