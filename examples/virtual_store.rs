//! The paper's running example end-to-end: the `virtual_store` schema
//! (Figure 1), the horizontal fragment definitions of Figure 2, the
//! correctness rules of Section 3.3, and distributed query processing
//! over the fragmented `C_items` collection.
//!
//! ```sh
//! cargo run --release --example virtual_store
//! ```

use partix::engine::{Distribution, NetworkModel, PartiX, Placement};
use partix::frag::{check_correctness, FragmentDef, Fragmenter, FragmentationSchema};
use partix::gen::{gen_items, ItemProfile};
use partix::path::{PathExpr, Predicate};
use partix::schema::{builtin, CollectionDef, RepoKind};
use std::sync::Arc;

fn main() {
    // C_items := ⟨S_virtual_store, /Store/Items/Item⟩, an MD repository
    // (paper Figure 1(b)).
    let schema = Arc::new(builtin::virtual_store());
    let citems = CollectionDef::new(
        "Citems",
        Arc::clone(&schema),
        PathExpr::parse("/Store/Items/Item").expect("valid path"),
        RepoKind::MultipleDocuments,
    );
    println!(
        "collection {} := ⟨{}, {}⟩ ({})",
        citems.name, schema.name, citems.root_path, citems.kind
    );

    // Figure 2(a): F1CD selects CD items, F2CD the complement.
    let f1 = FragmentDef::horizontal(
        "F1CD",
        Predicate::parse(r#"/Item/Section = "CD""#).expect("valid"),
    );
    let f2 = FragmentDef::horizontal(
        "F2CD",
        Predicate::parse(r#"not(/Item/Section = "CD")"#).expect("valid"),
    );
    println!("{f1}");
    println!("{f2}");
    let design = FragmentationSchema::new(citems, vec![f1, f2]).expect("valid design");

    // Generate ToXgene-style items and fragment them.
    let docs = gen_items(500, ItemProfile::Small, 42);
    let fragmenter = Fragmenter::new(design.clone());
    let fragments = fragmenter.fragment_all(&docs);
    for (name, frag_docs) in &fragments {
        println!("fragment {name}: {} documents", frag_docs.len());
    }

    // Section 3.3: completeness, disjointness, reconstruction.
    let report = check_correctness(&design, &docs, &fragments);
    println!(
        "correctness check: {}",
        if report.is_correct() { "complete, disjoint, reconstructible ✓" } else { "VIOLATED" }
    );
    for violation in &report.violations {
        println!("  {violation}");
    }
    assert!(report.is_correct());

    // A deliberately broken design is caught: CD and ¬DVD overlap.
    let broken = FragmentationSchema::new(
        design.collection.clone(),
        vec![
            FragmentDef::horizontal(
                "F1",
                Predicate::parse(r#"/Item/Section = "CD""#).expect("valid"),
            ),
            FragmentDef::horizontal(
                "F2",
                Predicate::parse(r#"not(/Item/Section = "DVD")"#).expect("valid"),
            ),
        ],
    )
    .expect("passes design rules — data-level check catches it");
    let broken_frags = Fragmenter::new(broken.clone()).fragment_all(&docs);
    let broken_report = check_correctness(&broken, &docs, &broken_frags);
    println!(
        "broken design violations detected: {}",
        broken_report.violations.len()
    );
    assert!(!broken_report.is_correct());

    // Distribute across two nodes and query.
    let px = PartiX::new(2, NetworkModel::default());
    px.register_schema(schema);
    px.register_distribution(Distribution {
        design,
        placements: vec![
            Placement { fragment: "F1CD".into(), node: 0 },
            Placement { fragment: "F2CD".into(), node: 1 },
        ],
    })
    .expect("valid placement");
    px.publish("Citems", &docs).expect("publish");

    for (label, query) in [
        (
            "localized to F1CD",
            r#"for $i in collection("Citems")/Item
               where $i/Section = "CD" and contains($i//Description, "good")
               return $i/Name"#,
        ),
        (
            "distributive aggregate over both fragments",
            r#"count(for $i in collection("Citems")/Item
                     where contains($i//Description, "good") return $i)"#,
        ),
    ] {
        let result = px.execute(query).expect("query runs");
        println!(
            "\n[{label}] {} item(s), {} site(s), {} pruned\n{}",
            result.items.len(),
            result.report.sites.len(),
            result.report.fragments_pruned,
            result.report,
        );
    }
}
