//! Vertical fragmentation of an XBench-style article collection — the
//! paper's *XBenchVer* scenario: `/article/prolog`, `/article/body` and
//! `/article/epilog` live on different nodes; queries confined to one
//! part are re-rooted and answered by a single site, while queries
//! spanning parts trigger the reconstruction join.
//!
//! ```sh
//! cargo run --release --example xbench_vertical
//! ```

use partix::engine::{Distribution, NetworkModel, PartiX, Placement};
use partix::frag::{FragmentDef, FragmentationSchema};
use partix::gen::{gen_articles, ArticleProfile};
use partix::path::PathExpr;
use partix::schema::{builtin, CollectionDef, RepoKind};
use std::sync::Arc;

fn main() {
    let p = |s: &str| PathExpr::parse(s).expect("valid path");
    let articles = CollectionDef::new(
        "articles",
        Arc::new(builtin::xbench_article()),
        p("/article"),
        RepoKind::MultipleDocuments,
    );
    // F1..F3papers of the paper, plus the spine holding the article root.
    let design = FragmentationSchema::new(
        articles,
        vec![
            FragmentDef::vertical(
                "f_spine",
                p("/article"),
                vec![p("/article/prolog"), p("/article/body"), p("/article/epilog")],
            ),
            FragmentDef::vertical("f_prolog", p("/article/prolog"), vec![]),
            FragmentDef::vertical("f_body", p("/article/body"), vec![]),
            FragmentDef::vertical("f_epilog", p("/article/epilog"), vec![]),
        ],
    )
    .expect("valid design");
    for frag in &design.fragments {
        println!("{frag}");
    }

    let px = PartiX::new(3, NetworkModel::default());
    px.register_distribution(Distribution {
        design,
        placements: vec![
            Placement { fragment: "f_spine".into(), node: 0 },
            Placement { fragment: "f_prolog".into(), node: 0 },
            Placement { fragment: "f_body".into(), node: 1 },
            Placement { fragment: "f_epilog".into(), node: 2 },
        ],
    })
    .expect("valid placement");

    let docs = gen_articles(40, ArticleProfile::SMALL, 7);
    px.publish("articles", &docs).expect("publish");

    // Single-fragment query: rewritten onto the prolog fragment's
    // re-rooted documents and answered by one node.
    let single = px
        .execute(
            r#"for $p in collection("articles")/article/prolog
               where contains($p/title, "XML")
               return $p/title"#,
        )
        .expect("query runs");
    println!(
        "\nprolog-only query: {} titles from {} site(s) — reconstructed: {}",
        single.items.len(),
        single.report.sites.len(),
        single.report.reconstructed,
    );
    assert!(!single.report.reconstructed);
    assert_eq!(single.report.sites.len(), 1);

    // Multi-fragment query: needs prolog AND epilog — the middleware
    // fetches the fragments, re-nests them with the Dewey join, and
    // evaluates at the coordinator (the paper's expensive case).
    let multi = px
        .execute(
            r#"for $a in collection("articles")/article
               where $a/epilog/country = "BR"
               return $a/prolog/title"#,
        )
        .expect("query runs");
    println!(
        "cross-fragment query: {} titles — reconstructed: {} ({} fragments fetched)",
        multi.items.len(),
        multi.report.reconstructed,
        multi.report.sites.len(),
    );
    assert!(multi.report.reconstructed);

    // Distributive aggregates still run fragment-locally.
    let agg = px
        .execute(r#"count(collection("articles")/article/epilog/references/reference)"#)
        .expect("query runs");
    println!(
        "reference count: {} (answered by fragment {})",
        agg.items[0],
        agg.report.sites[0].fragment,
    );
}
