//! # PartiX
//!
//! A Rust implementation of **PartiX** (Andrade et al., *Efficiently
//! Processing XML Queries over Fragmented Repositories with PartiX*,
//! EDBT 2006 workshops): a middleware for fragmenting XML repositories —
//! horizontally, vertically, or hybrid — across a cluster of nodes each
//! running a sequential XQuery engine, with transparent query
//! decomposition, parallel execution, and result reconstruction.
//!
//! This facade crate re-exports the public API of every subsystem. See the
//! individual crates for details:
//!
//! * [`xml`] — XML data model, parser, serializer, Dewey node identifiers.
//! * [`schema`] — schema trees, typed collections (`C := ⟨S, τ_root⟩`),
//!   SD/MD repositories, validation.
//! * [`path`] — path expressions and simple predicates (paper Sec. 3.1).
//! * [`algebra`] — TLC-style tree algebra: σ, π, ∪, ⋈.
//! * [`query`] — the XQuery subset engine.
//! * [`storage`] — the sequential XML DBMS (collections, indexes).
//! * [`frag`] — the fragmentation model and correctness rules (Sec. 3.2–3.3).
//! * [`engine`] — the PartiX middleware itself (Sec. 4).
//! * [`gen`] — ToXgene-style synthetic data generation.

pub use partix_algebra as algebra;
pub use partix_engine as engine;
pub use partix_frag as frag;
pub use partix_gen as gen;
pub use partix_path as path;
pub use partix_query as query;
pub use partix_schema as schema;
pub use partix_storage as storage;
pub use partix_xml as xml;
