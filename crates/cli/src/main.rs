//! The `partix` binary — see [`partix_cli::USAGE`].

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("load") if args.len() >= 4 => {
            partix_cli::load(Path::new(&args[1]), &args[2], &args[3..])
        }
        Some("query") if args.len() == 3 => partix_cli::query(Path::new(&args[1]), &args[2]),
        Some("put") if args.len() == 4 => {
            partix_cli::put(Path::new(&args[1]), &args[2], &args[3])
        }
        Some("delete") if args.len() == 4 => {
            partix_cli::delete(Path::new(&args[1]), &args[2], &args[3])
        }
        Some("collections") if args.len() == 2 => {
            partix_cli::collections(Path::new(&args[1]))
        }
        Some("drop") if args.len() == 3 => partix_cli::drop(Path::new(&args[1]), &args[2]),
        Some("fragment") if args.len() == 5 => {
            let n: usize = match args[4].parse() {
                Ok(n) => n,
                Err(_) => {
                    eprintln!("fragment: <n> must be a number");
                    return ExitCode::FAILURE;
                }
            };
            partix_cli::fragment(Path::new(&args[1]), &args[2], &args[3], n)
        }
        Some("stats") if args.len() == 3 || args.len() == 5 => {
            let trace_out = match args.get(3).map(String::as_str) {
                None => None,
                Some("--trace") => Some(Path::new(&args[4])),
                Some(other) => {
                    eprintln!("stats: unknown flag {other} (expected --trace FILE)");
                    return ExitCode::FAILURE;
                }
            };
            partix_cli::stats(Path::new(&args[1]), &args[2], trace_out)
        }
        Some("chaos") if args.len() <= 2 => {
            match parse_seed("chaos", args.get(1), 0xC4A0_5EED) {
                Some(seed) => partix_cli::chaos(seed),
                None => return ExitCode::FAILURE,
            }
        }
        Some("advise") if args.len() <= 2 => {
            match parse_seed("advise", args.get(1), 0xAD_115E) {
                Some(seed) => partix_cli::advise(seed),
                None => return ExitCode::FAILURE,
            }
        }
        Some("rebalance") if args.len() <= 2 => {
            match parse_seed("rebalance", args.get(1), 0xAD_115E) {
                Some(seed) => partix_cli::rebalance(seed),
                None => return ExitCode::FAILURE,
            }
        }
        Some("serve") => return serve(&args[1..]),
        Some("exec") if args.len() == 3 || args.len() == 5 => {
            match tenant_flag("exec", &args[3..]) {
                Ok(tenant) => partix_cli::exec(&args[1], &args[2], tenant.as_deref()),
                Err(()) => return ExitCode::FAILURE,
            }
        }
        Some("stream") if args.len() == 3 || args.len() == 5 => {
            match tenant_flag("stream", &args[3..]) {
                Ok(tenant) => {
                    partix_cli::stream_query(&args[1], &args[2], tenant.as_deref())
                }
                Err(()) => return ExitCode::FAILURE,
            }
        }
        Some("ping") if args.len() == 2 => partix_cli::ping(&args[1]),
        _ => {
            println!("{}", partix_cli::USAGE);
            return ExitCode::SUCCESS;
        }
    };
    match result {
        Ok(report) => {
            println!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Parse an optional trailing `--tenant NAME` flag pair.
fn tenant_flag(command: &str, rest: &[String]) -> Result<Option<String>, ()> {
    match rest {
        [] => Ok(None),
        [flag, name] if flag == "--tenant" => Ok(Some(name.clone())),
        _ => {
            eprintln!("{command}: unknown trailing flags (expected --tenant NAME)");
            Err(())
        }
    }
}

/// Parse an optional decimal or 0x-hex seed argument, falling back to
/// `default` when absent. Prints an error and returns `None` on bad
/// input.
fn parse_seed(command: &str, raw: Option<&String>, default: u64) -> Option<u64> {
    let raw = match raw {
        None => return Some(default),
        Some(raw) => raw,
    };
    let parsed = match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => raw.parse(),
    };
    match parsed {
        Ok(seed) => Some(seed),
        Err(_) => {
            eprintln!("{command}: <seed> must be a decimal or 0x-hex number");
            None
        }
    }
}

/// `partix serve --node <N> --addr <HOST:PORT> [--data <db-dir>]
/// [--morsel-workers <N>] [--tenant SPEC]...`:
/// bind a node server, announce the chosen address (flushed, so
/// supervising scripts can scrape it even through a pipe), then serve
/// until killed.
fn serve(args: &[String]) -> ExitCode {
    let mut node: Option<usize> = None;
    let mut addr: Option<&str> = None;
    let mut data: Option<&Path> = None;
    let mut morsel_workers: Option<usize> = None;
    let mut tenants: Vec<String> = Vec::new();
    let mut coordinator = false;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--coordinator" {
            coordinator = true;
            i += 1;
            continue;
        }
        let value = match args.get(i + 1) {
            Some(value) => value,
            None => {
                eprintln!("serve: {} needs a value", args[i]);
                return ExitCode::FAILURE;
            }
        };
        match args[i].as_str() {
            "--node" => match value.parse() {
                Ok(n) => node = Some(n),
                Err(_) => {
                    eprintln!("serve: --node must be a number");
                    return ExitCode::FAILURE;
                }
            },
            "--addr" => addr = Some(value),
            "--data" => data = Some(Path::new(value)),
            "--morsel-workers" => match value.parse() {
                Ok(n) => morsel_workers = Some(n),
                Err(_) => {
                    eprintln!("serve: --morsel-workers must be a number");
                    return ExitCode::FAILURE;
                }
            },
            "--tenant" => tenants.push(value.clone()),
            other => {
                eprintln!(
                    "serve: unknown flag {other} (expected \
                     --coordinator/--node/--addr/--data/--morsel-workers/--tenant)"
                );
                return ExitCode::FAILURE;
            }
        }
        i += 2;
    }
    if coordinator {
        let Some(addr) = addr else {
            eprintln!("serve: --addr <HOST:PORT> is required");
            return ExitCode::FAILURE;
        };
        return match partix_cli::serve_coordinator(addr, data, &tenants) {
            Ok((_server, local)) => {
                use std::io::Write as _;
                println!("coordinator listening on {local}");
                let _ = std::io::stdout().flush();
                // park until killed; `_server` keeps the listener alive
                loop {
                    std::thread::park();
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let (Some(node), Some(addr)) = (node, addr) else {
        eprintln!("serve: --node <N> and --addr <HOST:PORT> are required");
        return ExitCode::FAILURE;
    };
    match partix_cli::serve(node, addr, data, morsel_workers, &tenants) {
        Ok((_server, local)) => {
            use std::io::Write as _;
            println!("node {node} listening on {local}");
            let _ = std::io::stdout().flush();
            // Park until killed; the server threads carry the work.
            // `_server` stays in scope so its listener lives as long as
            // the process does.
            loop {
                std::thread::park();
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
