//! # partix-cli
//!
//! Command implementations behind the `partix` binary: a small
//! single-node workflow for loading XML files into a persistent
//! database, querying it, and experimenting with fragmentation designs.
//!
//! ```text
//! partix load  <db-dir> <collection> <file.xml>...   load documents
//! partix query <db-dir> '<xquery>'                   run a query
//! partix collections <db-dir>                        list collections
//! partix fragment <db-dir> <collection> <path> <n>   auto-design + apply
//! partix stats <db-dir> '<xquery>' [--trace FILE]    traced run + metrics
//! partix chaos [seed]                                fault-tolerance demo
//! ```
//!
//! Every command is a plain function returning its report as a string, so
//! the binary stays a thin argument-parsing shell and the behaviour is
//! unit-testable.

use partix_frag::Fragmenter;
use partix_path::PathExpr;
use partix_schema::{CollectionDef, RepoKind};
use partix_storage::{Database, DurableDb, WriteOp};
use partix_xml::Document;
use std::fmt::Write as _;
use std::path::Path;

/// CLI-level failure: message already formatted for the user.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Open an existing database directory, or start a fresh one. A crash
/// between a logged `put`/`delete` and its checkpoint leaves durable
/// records in the directory's write-ahead log; replaying them here means
/// every command sees the same recovered state [`DurableDb::open`]
/// would.
pub fn open_or_new(dir: &Path) -> Result<Database, CliError> {
    let db = if dir.join("MANIFEST").exists() {
        Database::load_from(dir).map_err(|e| err(format!("cannot open {}: {e}", dir.display())))?
    } else {
        Database::new()
    };
    let wal_path = dir.join(partix_storage::wal::WAL_FILE);
    if wal_path.exists() {
        let (ops, _) = partix_storage::wal::replay_file(&wal_path)
            .map_err(|e| err(format!("cannot replay {}: {e}", wal_path.display())))?;
        for op in &ops {
            db.apply_write(op);
        }
    }
    Ok(db)
}

/// `partix put`: upsert one XML document into `collection` through the
/// write-ahead log (append → fsync → apply → checkpoint). The document
/// name defaults to the file stem — putting the same file again replaces
/// the previous version. A crash at any point leaves the directory
/// recoverable: either the old state or the new one, never a torn mix.
pub fn put(dir: &Path, collection: &str, file: &str) -> Result<String, CliError> {
    let text =
        std::fs::read_to_string(file).map_err(|e| err(format!("cannot read {file}: {e}")))?;
    let mut doc = partix_xml::parse(&text).map_err(|e| err(format!("{file}: {e}")))?;
    doc.name = Some(
        Path::new(file)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "doc".to_owned()),
    );
    let name = doc.name.clone().unwrap_or_default();
    let bytes = doc.approx_size();
    let durable = DurableDb::open(dir)
        .map_err(|e| err(format!("cannot open {}: {e}", dir.display())))?;
    let replaced = durable
        .apply(&WriteOp::Put { collection: collection.into(), doc })
        .map_err(|e| err(format!("put: {e}")))?;
    durable
        .checkpoint()
        .map_err(|e| err(format!("cannot checkpoint {}: {e}", dir.display())))?;
    Ok(format!(
        "{} {name:?} ({bytes} B) in collection {collection:?} at {}",
        if replaced > 0 { "replaced" } else { "stored" },
        dir.display()
    ))
}

/// `partix delete`: remove the named document from `collection` through
/// the write-ahead log.
pub fn delete(dir: &Path, collection: &str, name: &str) -> Result<String, CliError> {
    let durable = DurableDb::open(dir)
        .map_err(|e| err(format!("cannot open {}: {e}", dir.display())))?;
    let removed = durable
        .apply(&WriteOp::Delete { collection: collection.into(), name: name.into() })
        .map_err(|e| err(format!("delete: {e}")))?;
    if removed == 0 {
        return Err(err(format!(
            "delete: no document {name:?} in collection {collection:?}"
        )));
    }
    durable
        .checkpoint()
        .map_err(|e| err(format!("cannot checkpoint {}: {e}", dir.display())))?;
    Ok(format!("deleted {name:?} from collection {collection:?} at {}", dir.display()))
}

/// `partix load`: parse XML files and store them into `collection`.
/// Document names default to the file stem.
pub fn load(dir: &Path, collection: &str, files: &[String]) -> Result<String, CliError> {
    if files.is_empty() {
        return Err(err("load: no input files given"));
    }
    let db = open_or_new(dir)?;
    let mut count = 0usize;
    let mut bytes = 0usize;
    for file in files {
        let text = std::fs::read_to_string(file)
            .map_err(|e| err(format!("cannot read {file}: {e}")))?;
        let mut doc = partix_xml::parse(&text)
            .map_err(|e| err(format!("{file}: {e}")))?;
        doc.name = Some(
            Path::new(file)
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| format!("doc{count}")),
        );
        bytes += doc.approx_size();
        db.store(collection, doc);
        count += 1;
    }
    db.save_to(dir)
        .map_err(|e| err(format!("cannot save {}: {e}", dir.display())))?;
    Ok(format!(
        "loaded {count} document(s) ({bytes} B) into collection {collection:?} at {}",
        dir.display()
    ))
}

/// `partix query`: run an XQuery against the database and render the
/// result plus execution statistics.
pub fn query(dir: &Path, text: &str) -> Result<String, CliError> {
    let db = open_or_new(dir)?;
    let out = db.execute(text).map_err(|e| err(e.to_string()))?;
    let mut rendered = out.serialize();
    if rendered.is_empty() {
        rendered.push_str("(empty sequence)");
    }
    let _ = write!(
        rendered,
        "\n-- {} item(s) in {:.6}s, {} of {} document(s) scanned{}",
        out.items.len(),
        out.stats.elapsed,
        out.stats.docs_scanned,
        out.stats.collection_size,
        if out.stats.index_used { ", index-assisted" } else { "" },
    );
    if out.stats.morsels > 0 {
        let _ = write!(rendered, ", {} parallel morsel(s)", out.stats.morsels);
    }
    Ok(rendered)
}

/// `partix collections`: list stored collections with document counts and
/// sizes.
pub fn collections(dir: &Path) -> Result<String, CliError> {
    let db = open_or_new(dir)?;
    let names = db.collection_names();
    if names.is_empty() {
        return Ok("(no collections)".to_owned());
    }
    let mut out = String::new();
    for name in names {
        let docs = db.collection_len(&name).unwrap_or(0);
        let bytes = db.collection_bytes(&name).unwrap_or(0);
        let _ = writeln!(out, "{name}: {docs} document(s), {bytes} B");
    }
    Ok(out.trim_end().to_owned())
}

/// `partix drop`: remove a collection and persist the database.
pub fn drop(dir: &Path, collection: &str) -> Result<String, CliError> {
    let db = open_or_new(dir)?;
    if !db.collection_names().iter().any(|n| n == collection) {
        return Err(err(format!("drop: no collection {collection:?}")));
    }
    let docs = db.collection_len(collection).unwrap_or(0);
    db.drop_collection(collection);
    db.save_to(dir)
        .map_err(|e| err(format!("cannot save {}: {e}", dir.display())))?;
    Ok(format!("dropped collection {collection:?} ({docs} document(s))"))
}

/// `partix fragment`: derive a balanced horizontal design for
/// `collection` over the values of `by_path`, apply it, store each
/// fragment as `<collection>.<fragment>`, verify the correctness rules,
/// and persist.
pub fn fragment(
    dir: &Path,
    collection: &str,
    by_path: &str,
    n: usize,
) -> Result<String, CliError> {
    let db = open_or_new(dir)?;
    let docs_arc = partix_query::CollectionProvider::collection(&db, collection)
        .map_err(|e| err(e.to_string()))?;
    let docs: Vec<Document> = docs_arc.iter().map(|d| (**d).clone()).collect();
    let path = PathExpr::parse(by_path).map_err(|e| err(e.to_string()))?;
    // an on-the-fly schema is not available for ad-hoc data: build the
    // collection descriptor without one (single-valuedness is then the
    // caller's responsibility, checked at the data level below)
    let root_label = docs
        .first()
        .map(|d| d.root_label().to_owned())
        .ok_or_else(|| err(format!("collection {collection:?} is empty")))?;
    let coll_def = CollectionDef::new(
        collection,
        std::sync::Arc::new(partix_schema::Schema::new(
            collection,
            infer_schema(&docs, &root_label),
        )),
        PathExpr::parse(&format!("/{root_label}")).map_err(|e| err(e.to_string()))?,
        RepoKind::MultipleDocuments,
    );
    let design = partix_frag::horizontal_by_values(coll_def, &path, &docs, n)
        .map_err(|e| err(e.to_string()))?;
    let fragments = Fragmenter::new(design.clone()).fragment_all(&docs);
    let report = partix_frag::check_correctness(&design, &docs, &fragments);
    let mut out = String::new();
    for frag in &design.fragments {
        let _ = writeln!(out, "{frag}");
    }
    for (name, frag_docs) in &fragments {
        let stored = format!("{collection}.{name}");
        db.drop_collection(&stored);
        db.store_all(&stored, frag_docs.iter().cloned());
        let _ = writeln!(out, "stored {} document(s) as {stored:?}", frag_docs.len());
    }
    if report.is_correct() {
        let _ = writeln!(out, "correctness: complete, disjoint, reconstructible ✓");
    } else {
        for v in &report.violations {
            let _ = writeln!(out, "correctness violation: {v}");
        }
    }
    db.save_to(dir)
        .map_err(|e| err(format!("cannot save {}: {e}", dir.display())))?;
    Ok(out.trim_end().to_owned())
}

/// `partix stats`: run a query through the PartiX coordinator (single
/// node, passthrough dispatch) with tracing on, then render the result,
/// the per-stage breakdown, and a snapshot of the process-wide metrics
/// registry. With `trace_out`, additionally export the query's spans as
/// a chrome://tracing / Perfetto JSON file.
pub fn stats(dir: &Path, text: &str, trace_out: Option<&Path>) -> Result<String, CliError> {
    use partix_engine::{NetworkModel, PartiX};

    let db = open_or_new(dir)?;
    let px = PartiX::new(1, NetworkModel::instantaneous());
    px.set_tracing_enabled(true);
    // the database serves node 0 directly: with no registered
    // distribution, every query takes the coordinator's passthrough
    // path, which is still parsed, dispatched, and traced
    px.cluster()
        .node(0)
        .ok_or_else(|| err("stats: coordinator has no node 0"))?
        .set_driver(std::sync::Arc::new(db));
    let result = px.execute(text).map_err(|e| err(e.to_string()))?;
    // surface the per-node placement gauges (fragment count, resident
    // bytes) in the snapshot below
    px.refresh_node_gauges();

    let mut out = partix_query::func::serialize_sequence(&result.items);
    if out.is_empty() {
        out.push_str("(empty sequence)");
    }
    let _ = write!(out, "\n\n-- query report --\n{}", result.report);
    let _ = write!(
        out,
        "\n-- metrics registry --\n{}",
        partix_engine::metrics::global().snapshot()
    );
    if let Some(path) = trace_out {
        let json = partix_engine::trace::chrome_trace(&result.report.spans);
        std::fs::write(path, json)
            .map_err(|e| err(format!("cannot write {}: {e}", path.display())))?;
        let _ = write!(
            out,
            "\nwrote {} span(s) to {} (load in chrome://tracing or Perfetto)",
            result.report.spans.len(),
            path.display()
        );
    }
    Ok(out.trim_end().to_owned())
}

/// `partix chaos`: a self-contained fault-tolerance demo. Builds a
/// 3-node replicated horizontal repository from generated items, wraps
/// the nodes in a seeded [`partix_engine::FaultPlan`], runs a few
/// queries through the retrying/failover dispatcher and checks every
/// distributed answer against a centralized oracle. The same seed
/// always produces the same fault schedule and therefore the same
/// retry/failover story.
pub fn chaos(seed: u64) -> Result<String, CliError> {
    use partix_engine::{
        Distribution, ExecOptions, FaultPlan, NetworkModel, PartiX, Placement, RetryPolicy,
    };
    use partix_frag::{FragmentDef, FragmentationSchema};
    use partix_path::Predicate;
    use std::time::Duration;

    let docs = partix_gen::gen_items(90, partix_gen::ItemProfile::Small, seed);
    // centralized oracle: the whole collection on one healthy database
    let oracle = Database::new();
    oracle.store_all("items", docs.iter().cloned());

    let px = PartiX::new(3, NetworkModel::default());
    let citems = CollectionDef::new(
        "items",
        std::sync::Arc::new(partix_schema::builtin::virtual_store()),
        PathExpr::parse("/Store/Items/Item").map_err(|e| err(e.to_string()))?,
        RepoKind::MultipleDocuments,
    );
    let design = FragmentationSchema::new(
        citems,
        vec![
            FragmentDef::horizontal(
                "f_cd",
                Predicate::parse(r#"/Item/Section = "CD""#).map_err(|e| err(e.to_string()))?,
            ),
            FragmentDef::horizontal(
                "f_rest",
                Predicate::parse(r#"not(/Item/Section = "CD")"#)
                    .map_err(|e| err(e.to_string()))?,
            ),
        ],
    )
    .map_err(|e| err(e.to_string()))?;
    // two replicas per fragment: any single node crash stays answerable
    px.register_distribution(Distribution {
        design,
        placements: vec![
            Placement { fragment: "f_cd".into(), node: 0 },
            Placement { fragment: "f_cd".into(), node: 2 },
            Placement { fragment: "f_rest".into(), node: 1 },
            Placement { fragment: "f_rest".into(), node: 2 },
        ],
    })
    .map_err(|e| err(e.to_string()))?;
    px.publish("items", &docs).map_err(|e| err(e.to_string()))?;
    px.set_retry_policy(RetryPolicy {
        timeout: Some(Duration::from_millis(60)),
        ..RetryPolicy::default()
    });

    let plan = FaultPlan::from_seed(seed, 3, 0.7);
    let injectors = plan.install(&px);
    let mut out = String::new();
    let _ = writeln!(out, "fault schedule: {}", plan.describe());

    let queries = [
        r#"count(collection("items")/Item)"#,
        r#"count(for $i in collection("items")/Item where $i/Section = "CD" return $i)"#,
        r#"count(for $i in collection("items")/Item where contains($i/Characteristics/Description, "good") return $i)"#,
    ];
    for query in queries {
        let expected = oracle.execute(query).map_err(|e| err(e.to_string()))?.serialize();
        match px.execute_with(query, ExecOptions::default()) {
            Ok(result) => {
                let got = partix_query::func::serialize_sequence(&result.items);
                let verdict = if got == expected { "matches oracle" } else { "MISMATCH" };
                let _ = writeln!(
                    out,
                    "{query}\n  => {} ({verdict}; {} retr{}, {} failover(s), {} timeout(s))",
                    got.replace('\n', " "),
                    result.report.retries,
                    if result.report.retries == 1 { "y" } else { "ies" },
                    result.report.failovers,
                    result.report.timeouts,
                );
            }
            Err(e) => {
                let _ = writeln!(out, "{query}\n  => error: {e}");
            }
        }
    }
    for (node, injector) in injectors.iter().enumerate() {
        if let Some(injector) = injector {
            let stats = injector.stats();
            let _ = writeln!(
                out,
                "node {node}: {} call(s), {} injected error(s), {} injected outage(s), {} delayed",
                stats.calls, stats.injected_errors, stats.injected_outages, stats.delayed_calls,
            );
        }
    }
    Ok(out.trim_end().to_owned())
}

/// Build the seeded demo repository shared by `partix advise` and
/// `partix rebalance`: 3 nodes, a 3-fragment horizontal design packed
/// entirely onto node 0 (the pathology the advisor exists to fix),
/// generated items, and a workload profile recorded from a fixed query
/// mix. Everything that feeds the advisor — document contents, access
/// counts, result bytes — is deterministic under `seed`.
fn skewed_scenario(
    seed: u64,
) -> Result<(partix_engine::PartiX, partix_advisor::WorkloadProfile), CliError> {
    use partix_engine::{Distribution, NetworkModel, PartiX, Placement};
    use partix_frag::{FragmentDef, FragmentationSchema};
    use partix_path::Predicate;

    let docs = partix_gen::gen_items(120, partix_gen::ItemProfile::Small, seed);
    let px = PartiX::new(3, NetworkModel::default());
    let citems = CollectionDef::new(
        "items",
        std::sync::Arc::new(partix_schema::builtin::virtual_store()),
        PathExpr::parse("/Store/Items/Item").map_err(|e| err(e.to_string()))?,
        RepoKind::MultipleDocuments,
    );
    let parse_pred = |p: &str| Predicate::parse(p).map_err(|e| err(e.to_string()));
    let design = FragmentationSchema::new(
        citems,
        vec![
            FragmentDef::horizontal("f_cd", parse_pred(r#"/Item/Section = "CD""#)?),
            FragmentDef::horizontal("f_dvd", parse_pred(r#"/Item/Section = "DVD""#)?),
            FragmentDef::horizontal(
                "f_rest",
                parse_pred(r#"not(/Item/Section = "CD" or /Item/Section = "DVD")"#)?,
            ),
        ],
    )
    .map_err(|e| err(e.to_string()))?;
    px.register_distribution(Distribution {
        design,
        placements: vec![
            Placement { fragment: "f_cd".into(), node: 0 },
            Placement { fragment: "f_dvd".into(), node: 0 },
            Placement { fragment: "f_rest".into(), node: 0 },
        ],
    })
    .map_err(|e| err(e.to_string()))?;
    px.publish("items", &docs).map_err(|e| err(e.to_string()))?;

    // a fixed workload: broad scans plus a CD-heavy hot spot
    let profiler = partix_advisor::WorkloadProfiler::new();
    let workload: [(&str, usize); 3] = [
        (r#"count(collection("items")/Item)"#, 8),
        (r#"for $i in collection("items")/Item where $i/Section = "CD" return $i/Code"#, 12),
        (
            r#"count(for $i in collection("items")/Item
                where contains($i/Characteristics/Description, "good") return $i)"#,
            4,
        ),
    ];
    for (query, repeats) in workload {
        for _ in 0..repeats {
            let result = px.execute(query).map_err(|e| err(e.to_string()))?;
            profiler.record(&result.report);
        }
    }
    profiler.observe_placement(&px, "items");
    Ok((px, profiler.snapshot()))
}

fn render_placements(out: &mut String, placements: &[partix_engine::Placement]) {
    let mut by_fragment: std::collections::BTreeMap<&str, Vec<usize>> =
        std::collections::BTreeMap::new();
    for p in placements {
        by_fragment.entry(p.fragment.as_str()).or_default().push(p.node);
    }
    for (fragment, nodes) in by_fragment {
        let rendered: Vec<String> =
            nodes.iter().map(|n| format!("node{n}")).collect();
        let _ = writeln!(out, "  {fragment} -> {}", rendered.join(", "));
    }
}

/// `partix advise`: the workload-driven fragmentation advisor on a
/// seeded demo scenario. Profiles a fixed query mix over a skewed
/// placement (every fragment on node 0 of 3), then searches placements
/// (greedy seed + seeded local search, replica add/drop included) for
/// the cheapest way to serve that workload. All output is deterministic
/// under the seed, so repeated runs can be diffed.
pub fn advise(seed: u64) -> Result<String, CliError> {
    let (px, profile) = skewed_scenario(seed)?;
    let mut config = partix_advisor::AdvisorConfig::new(px.cluster().len());
    config.seed = seed;
    config.split_path = Some(PathExpr::parse("/Item/Section").map_err(|e| err(e.to_string()))?);
    config.candidate_counts = vec![2, 3];
    let advice = partix_advisor::advise_live(&px, "items", &profile, &config)
        .map_err(|e| err(e.to_string()))?
        .ok_or_else(|| err("advise: collection \"items\" has no distribution"))?;

    let mut out = String::new();
    let _ = writeln!(out, "workload profile (seed={seed:#x}): {} queries", profile.queries);
    for f in &profile.fragments {
        let _ = writeln!(
            out,
            "  {}: {} access(es), {} B stored, {} B shipped",
            f.fragment, f.accesses, f.size_bytes, f.shipped_bytes
        );
    }
    let _ = writeln!(out, "candidates considered: {}", advice.candidates_considered);
    let _ = writeln!(
        out,
        "current cost {:.0} (bottleneck {:.0} + ship {:.0} + imbalance {:.0})",
        advice.current.total_cost,
        advice.current.max_node_cost,
        advice.current.ship_cost,
        advice.current.imbalance_cost,
    );
    let _ = writeln!(
        out,
        "advised cost {:.0} — predicted gain {:.1}%{}",
        advice.predicted.total_cost,
        advice.predicted_gain() * 100.0,
        if advice.design_changed { " (design re-split)" } else { "" },
    );
    let _ = writeln!(out, "recommended placement:");
    render_placements(&mut out, &advice.placements);
    Ok(out.trim_end().to_owned())
}

/// `partix rebalance`: run the advisor on the seeded demo scenario and
/// then *apply* its recommendation live — dual-placement copy, atomic
/// catalog swap, old-replica retirement — while checking answers
/// against the pre-migration result.
pub fn rebalance(seed: u64) -> Result<String, CliError> {
    let (px, profile) = skewed_scenario(seed)?;
    let count_q = r#"count(collection("items")/Item)"#;
    let before = px
        .execute(count_q)
        .map_err(|e| err(e.to_string()))?
        .items
        .first()
        .map(partix_query::Item::serialize)
        .unwrap_or_default();

    let mut config = partix_advisor::AdvisorConfig::new(px.cluster().len());
    config.seed = seed;
    let advice = partix_advisor::advise_live(&px, "items", &profile, &config)
        .map_err(|e| err(e.to_string()))?
        .ok_or_else(|| err("rebalance: collection \"items\" has no distribution"))?;
    let report = partix_advisor::rebalance(
        &px,
        "items",
        &advice.placements,
        &partix_advisor::RebalanceOptions::default(),
    )
    .map_err(|e| err(e.to_string()))?;

    let after = px
        .execute(count_q)
        .map_err(|e| err(e.to_string()))?
        .items
        .first()
        .map(partix_query::Item::serialize)
        .unwrap_or_default();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "rebalance (seed={seed:#x}): {} fragment move(s), {} document(s), {} B migrated",
        report.moves.len(),
        report.migrated_docs,
        report.migrated_bytes,
    );
    for m in &report.moves {
        let from: Vec<String> = m.from.iter().map(|n| format!("node{n}")).collect();
        let to: Vec<String> = m.to.iter().map(|n| format!("node{n}")).collect();
        let _ = writeln!(
            out,
            "  {}: [{}] -> [{}] ({} doc(s), {} B)",
            m.fragment,
            from.join(", "),
            to.join(", "),
            m.docs,
            m.bytes,
        );
    }
    let _ = writeln!(
        out,
        "verification: {}",
        if report.verified {
            "placement valid, completeness/disjointness re-checked ✓"
        } else {
            "SKIPPED"
        },
    );
    let _ = writeln!(
        out,
        "query answers: before={before} after={after} ({})",
        if before == after { "consistent across migration" } else { "MISMATCH" },
    );
    let _ = writeln!(out, "final placement:");
    let final_placements = px
        .catalog()
        .distribution("items")
        .map(|d| d.placements.clone())
        .unwrap_or_default();
    render_placements(&mut out, &final_placements);
    Ok(out.trim_end().to_owned())
}

/// Parse repeatable `--tenant name[:class[:max_concurrent[:max_queued]]]`
/// specs into a registry, or `None` when no tenants were given.
fn tenant_registry(
    tenants: &[String],
) -> Result<Option<std::sync::Arc<partix_engine::TenantRegistry>>, CliError> {
    if tenants.is_empty() {
        return Ok(None);
    }
    let registry = partix_engine::TenantRegistry::new();
    for spec in tenants {
        let parsed = partix_engine::TenantSpec::parse(spec)
            .map_err(|e| err(format!("--tenant {spec}: {e}")))?;
        registry
            .register(parsed)
            .map_err(|e| err(format!("--tenant {spec}: {e}")))?;
    }
    Ok(Some(std::sync::Arc::new(registry)))
}

/// `partix serve`: expose a database directory (or a fresh in-memory
/// database) as a PartiX network node. Returns the running server and
/// the address it actually bound — port 0 picks an ephemeral one — so
/// the binary can print the address before parking, and tests can dial
/// it directly. `tenants` specs (`name[:class[:max_concurrent
/// [:max_queued]]]`) gate `ExecuteAs` frames through admission control;
/// with none given, only anonymous `Execute` frames are served
/// tenant-less, and any `ExecuteAs` answers a typed unknown-tenant
/// error.
pub fn serve(
    node: usize,
    addr: &str,
    data: Option<&Path>,
    morsel_workers: Option<usize>,
    tenants: &[String],
) -> Result<(partix_net::NodeServer, std::net::SocketAddr), CliError> {
    let db = match data {
        Some(dir) => open_or_new(dir)?,
        None => Database::new(),
    };
    if let Some(workers) = morsel_workers {
        // explicit flag beats the PARTIX_MORSEL_WORKERS env default
        let config = db.morsel_config();
        db.set_morsel_config(partix_storage::MorselConfig {
            max_workers: workers.min(partix_storage::MAX_MORSEL_WORKERS),
            ..config
        });
    }
    let config = partix_net::ServerConfig {
        tenancy: tenant_registry(tenants)?.map(|registry| {
            std::sync::Arc::new(partix_net::ServerTenancy {
                registry,
                controller: partix_engine::AdmissionController::default(),
            })
        }),
        ..partix_net::ServerConfig::default()
    };
    let server = partix_net::NodeServer::bind_driver(addr, std::sync::Arc::new(db), config)
        .map_err(|e| err(format!("serve: cannot bind {addr}: {e}")))?;
    let local = server.local_addr();
    let _ = node; // node id is presentation-only: the wire protocol is symmetric
    Ok((server, local))
}

/// `partix serve --coordinator`: expose a database directory as a `PXN2`
/// streaming coordinator. The engine runs the database as its node 0, an
/// epoch-versioned [`partix_engine::MetaService`] is attached (so more
/// coordinators could share the catalog), and sub-query results stream
/// to clients chunk-by-chunk as they complete.
pub fn serve_coordinator(
    addr: &str,
    data: Option<&Path>,
    tenants: &[String],
) -> Result<(partix_net::StreamServer, std::net::SocketAddr), CliError> {
    use partix_engine::{MetaService, NetworkModel, PartiX, Tenancy};
    let db = match data {
        Some(dir) => open_or_new(dir)?,
        None => Database::new(),
    };
    let px = PartiX::new(1, NetworkModel::instantaneous());
    px.cluster()
        .node(0)
        .ok_or_else(|| err("serve: coordinator has no node 0"))?
        .set_driver(std::sync::Arc::new(db));
    px.attach_meta(MetaService::with_catalog(px.catalog_snapshot()));
    if let Some(registry) = tenant_registry(tenants)? {
        px.attach_tenancy(Tenancy::new(registry));
    }
    let server = partix_net::serve_coordinator(
        addr,
        std::sync::Arc::new(px),
        partix_net::StreamServerConfig::default(),
    )
    .map_err(|e| err(format!("serve: cannot bind {addr}: {e}")))?;
    let local = server.addr();
    Ok((server, local))
}

/// `partix exec`: run one query against a node server over the `PXN1`
/// wire protocol, optionally as a named tenant. With `--tenant` the
/// request rides an `ExecuteAs` frame through the server's admission
/// control, and a rejection comes back as a *typed* error carrying the
/// server's verdict code and retry hint — rendered here, never a hang
/// or a silent drop.
pub fn exec(addr: &str, text: &str, tenant: Option<&str>) -> Result<String, CliError> {
    let sock: std::net::SocketAddr =
        addr.parse().map_err(|_| err(format!("exec: bad address {addr} (want HOST:PORT)")))?;
    let driver = partix_net::RemoteDriver::connect(sock)
        .map_err(|e| err(format!("exec: {addr}: {e}")))?;
    let query =
        partix_query::parse_query(text).map_err(|e| err(format!("exec: {e}")))?;
    let output = match tenant {
        Some(tenant) => driver.execute_as(tenant, &query).map_err(|e| {
            err(format!("exec: tenant {tenant:?}: {e} [{:?}]", e.code))
        })?,
        None => {
            use partix_engine::PartixDriver as _;
            driver.execute(&query).map_err(|e| err(format!("exec: {e}")))?
        }
    };
    let Some(output) = output else {
        return Ok("(collection not on this node)".to_owned());
    };
    let mut rendered = output.serialize();
    if rendered.is_empty() {
        rendered.push_str("(empty sequence)");
    }
    let _ = write!(
        rendered,
        "\n-- {} item(s) in {:.6}s{}",
        output.items.len(),
        output.stats.elapsed,
        match tenant {
            Some(tenant) => format!(", as tenant {tenant:?}"),
            None => String::new(),
        },
    );
    Ok(rendered)
}

/// `partix stream`: run one query against a pool of coordinators
/// (comma-separated addresses), streaming the answer and failing over if
/// a coordinator dies mid-call. With `tenant`, the query runs under that
/// tenant's admission quotas and priority class on the coordinator.
pub fn stream_query(addrs: &str, text: &str, tenant: Option<&str>) -> Result<String, CliError> {
    use partix_net::{CoordinatorPool, StreamClientConfig, StreamOpts};
    let list: Vec<String> = addrs
        .split(',')
        .map(|a| a.trim().to_owned())
        .filter(|a| !a.is_empty())
        .collect();
    if list.is_empty() {
        return Err(err("stream: no coordinator addresses"));
    }
    let pool = CoordinatorPool::new(list, StreamClientConfig::default());
    let opts = StreamOpts { tenant: tenant.map(str::to_owned), ..StreamOpts::default() };
    let result = pool
        .query(text, opts)
        .map_err(|e| err(format!("stream: {e}")))?;
    let mut out = partix_query::func::serialize_sequence(&result.items);
    if out.is_empty() {
        out.push_str("(empty sequence)");
    }
    let _ = write!(
        out,
        "\n\n-- stream --\n{} item(s) in {} chunk(s); {} site(s), {} fragment(s) pruned, \
         catalog epoch {}{}",
        result.items.len(),
        result.chunks,
        result.stats.sites,
        result.stats.fragments_pruned,
        result.stats.catalog_epoch,
        if result.stats.partial { " (PARTIAL)" } else { "" },
    );
    Ok(out.trim_end().to_owned())
}

/// `partix ping`: health-check a running node server over the wire.
/// [`partix_net::RemoteDriver::connect`] dials and exchanges a
/// ping/pong frame pair, so success means the server spoke the protocol.
pub fn ping(addr: &str) -> Result<String, CliError> {
    let sock: std::net::SocketAddr =
        addr.parse().map_err(|_| err(format!("ping: bad address {addr} (want HOST:PORT)")))?;
    partix_net::RemoteDriver::connect(sock).map_err(|e| err(format!("ping: {addr}: {e}")))?;
    Ok(format!("pong from {addr}"))
}

/// Infer a permissive one-level schema from sample documents: enough for
/// the auto-designer's single-valuedness check on direct children.
fn infer_schema(docs: &[Document], root_label: &str) -> partix_schema::ElementDecl {
    use partix_schema::{ElementDecl, Occurs};
    use std::collections::HashMap;
    // child label → (max occurrences in any doc, min occurrences)
    let mut stats: HashMap<String, (u32, u32)> = HashMap::new();
    for doc in docs {
        let mut counts: HashMap<&str, u32> = HashMap::new();
        for child in doc.root().child_elements() {
            *counts.entry(child.label()).or_insert(0) += 1;
        }
        for (label, &count) in &counts {
            let entry = stats.entry((*label).to_owned()).or_insert((0, u32::MAX));
            entry.0 = entry.0.max(count);
            entry.1 = entry.1.min(count);
        }
        // labels absent from this document have min 0
        for (label, entry) in stats.iter_mut() {
            if !counts.contains_key(label.as_str()) {
                entry.1 = 0;
            }
        }
    }
    let children = stats
        .into_iter()
        .map(|(label, (max, min))| {
            let occurs = Occurs {
                min: min.min(1),
                max: if max <= 1 { Some(1) } else { None },
            };
            // grandchildren are not modelled: a permissive leaf that also
            // admits text keeps validation out of the way
            (ElementDecl::leaf(&label), occurs)
        })
        .collect();
    ElementDecl { name: root_label.to_owned(), text: false, attributes: Vec::new(), children }
}

/// Usage text.
pub const USAGE: &str = "partix — fragmented XML repositories (PartiX)

USAGE
  partix load <db-dir> <collection> <file.xml>...   load XML documents
  partix query <db-dir> '<xquery>'                  run an XQuery
  partix put <db-dir> <collection> <file.xml>       upsert one document
                                                    through the write-ahead
                                                    log (crash-safe; the
                                                    file stem is the
                                                    document name)
  partix delete <db-dir> <collection> <name>        remove one document
                                                    through the write-ahead
                                                    log
  partix collections <db-dir>                       list collections
  partix drop <db-dir> <collection>                 remove a collection
  partix fragment <db-dir> <collection> <path> <n>  derive & apply a
                                                    balanced horizontal
                                                    design by <path> values
  partix stats <db-dir> '<xquery>' [--trace FILE]   run the query through the
                                                    coordinator with tracing
                                                    on: stage breakdown +
                                                    metrics snapshot; --trace
                                                    exports chrome://tracing
                                                    JSON
  partix chaos [seed]                               fault-tolerance demo:
                                                    seeded fault injection vs
                                                    retry/failover dispatch
  partix advise [seed]                              workload-driven advisor
                                                    demo: profile a skewed
                                                    placement, search designs/
                                                    placements, print the
                                                    recommendation (output is
                                                    deterministic per seed)
  partix rebalance [seed]                           apply the advisor's
                                                    recommendation live:
                                                    copy → atomic swap →
                                                    retire, with answers
                                                    checked across the
                                                    migration
  partix serve --node <N> --addr <HOST:PORT>        run a node server
                [--data <db-dir>]                   speaking the partix-net
                [--morsel-workers <N>]              wire protocol (port 0
                [--tenant SPEC]...                  binds an ephemeral port;
                                                    the chosen address is
                                                    printed); --morsel-workers
                                                    caps intra-fragment
                                                    parallel scan threads
                                                    (default: the
                                                    PARTIX_MORSEL_WORKERS env
                                                    var, else the core count);
                                                    each --tenant SPEC is
                                                    name[:class[:max_concurrent
                                                    [:max_queued]]] (class:
                                                    interactive/standard/
                                                    batch) — tenant queries
                                                    pass admission control,
                                                    over-quota ones get a
                                                    typed rejection with a
                                                    retry-after hint
  partix serve --coordinator --addr <HOST:PORT>     run a PXN2 streaming
                [--data <db-dir>] [--tenant SPEC]...  coordinator: answers
                                                    stream chunk-by-chunk
                                                    as sub-queries finish;
                                                    --tenant as above
  partix exec <HOST:PORT> '<xquery>'                run a query on a node
                [--tenant NAME]                     server (PXN1); --tenant
                                                    runs it under that
                                                    tenant's quotas and
                                                    priority class
  partix stream <HOST:PORT[,HOST:PORT...]> '<xq>'   run a query against a
                [--tenant NAME]                     coordinator pool
                                                    (round-robin + failover)
  partix ping <HOST:PORT>                           health-check a node
                                                    server over the wire

EXAMPLE
  partix load ./db items item1.xml item2.xml
  partix put ./db items item3.xml
  partix delete ./db items item3
  partix query ./db 'count(collection(\"items\")/Item)'
  partix fragment ./db items /Item/Section 2
  partix stats ./db 'count(collection(\"items\")/Item)' --trace trace.json
  partix chaos 0xBEEF
  partix advise 7
  partix rebalance 7
  partix serve --node 0 --addr 127.0.0.1:7401 --data ./db
  partix serve --node 0 --addr 127.0.0.1:7401 --data ./db \\
               --tenant frontend:interactive:8 --tenant batchy:batch:2:4
  partix exec 127.0.0.1:7401 'count(collection(\"items\")/Item)' --tenant frontend
  partix serve --coordinator --addr 127.0.0.1:7500 --data ./db
  partix stream 127.0.0.1:7500 'count(collection(\"items\")/Item)'
  partix ping 127.0.0.1:7401";

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("partix-cli-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_items(dir: &Path, n: usize) -> Vec<String> {
        (0..n)
            .map(|i| {
                let path = dir.join(format!("item{i}.xml"));
                let section = ["CD", "DVD", "BOOK"][i % 3];
                std::fs::write(
                    &path,
                    format!("<Item><Code>{i}</Code><Section>{section}</Section></Item>"),
                )
                .unwrap();
                path.to_string_lossy().into_owned()
            })
            .collect()
    }

    #[test]
    fn load_query_roundtrip() {
        let dir = tmp("loadquery");
        let db_dir = dir.join("db");
        let files = write_items(&dir, 6);
        let msg = load(&db_dir, "items", &files).unwrap();
        assert!(msg.contains("loaded 6 document(s)"));
        let out = query(
            &db_dir,
            r#"count(for $i in collection("items")/Item where $i/Section = "CD" return $i)"#,
        )
        .unwrap();
        assert!(out.starts_with('2'), "{out}");
        assert!(out.contains("1 item(s)"));
        let listing = collections(&db_dir).unwrap();
        assert!(listing.contains("items: 6 document(s)"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_is_incremental_across_invocations() {
        let dir = tmp("increment");
        let db_dir = dir.join("db");
        let files = write_items(&dir, 2);
        load(&db_dir, "items", &files[..1]).unwrap();
        load(&db_dir, "items", &files[1..]).unwrap();
        let out = query(&db_dir, r#"count(collection("items")/Item)"#).unwrap();
        assert!(out.starts_with('2'), "{out}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn put_upserts_through_the_wal_and_delete_removes() {
        let dir = tmp("putdelete");
        let db_dir = dir.join("db");
        let files = write_items(&dir, 3);
        load(&db_dir, "items", &files).unwrap();
        let extra = dir.join("item9.xml");
        std::fs::write(&extra, "<Item><Code>9</Code><Section>CD</Section></Item>").unwrap();
        let msg = put(&db_dir, "items", &extra.to_string_lossy()).unwrap();
        assert!(msg.contains("stored \"item9\""), "{msg}");
        let out = query(&db_dir, r#"count(collection("items")/Item)"#).unwrap();
        assert!(out.starts_with('4'), "{out}");
        // the same file again is an upsert keyed by name: replaced, not added
        std::fs::write(&extra, "<Item><Code>10</Code><Section>DVD</Section></Item>").unwrap();
        let msg = put(&db_dir, "items", &extra.to_string_lossy()).unwrap();
        assert!(msg.contains("replaced \"item9\""), "{msg}");
        let out = query(&db_dir, r#"count(collection("items")/Item)"#).unwrap();
        assert!(out.starts_with('4'), "{out}");
        let msg = delete(&db_dir, "items", "item9").unwrap();
        assert!(msg.contains("deleted \"item9\""), "{msg}");
        let out = query(&db_dir, r#"count(collection("items")/Item)"#).unwrap();
        assert!(out.starts_with('3'), "{out}");
        let e = delete(&db_dir, "items", "item9").unwrap_err();
        assert!(e.to_string().contains("no document"), "{e}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn query_sees_durable_writes_that_crashed_before_checkpoint() {
        let dir = tmp("walvisible");
        let db_dir = dir.join("db");
        let files = write_items(&dir, 3);
        load(&db_dir, "items", &files).unwrap();
        {
            let durable = DurableDb::open(&db_dir).unwrap();
            durable.set_kill(Some(partix_storage::WalStage::Apply));
            let mut doc =
                partix_xml::parse("<Item><Code>99</Code><Section>CD</Section></Item>").unwrap();
            doc.name = Some("crashed".into());
            let res = durable.apply(&WriteOp::Put { collection: "items".into(), doc });
            assert!(res.is_err(), "the injected crash must surface as an error");
            // no checkpoint ran: the write lives only in the WAL
        }
        let out = query(&db_dir, r#"count(collection("items")/Item)"#).unwrap();
        assert!(out.starts_with('4'), "{out}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fragment_command_partitions_and_verifies() {
        let dir = tmp("fragment");
        let db_dir = dir.join("db");
        let files = write_items(&dir, 9);
        load(&db_dir, "items", &files).unwrap();
        let out = fragment(&db_dir, "items", "/Item/Section", 2).unwrap();
        assert!(out.contains("correctness: complete, disjoint, reconstructible"), "{out}");
        // fragments were persisted as collections
        let listing = collections(&db_dir).unwrap();
        assert!(listing.contains("items.f0:"), "{listing}");
        assert!(listing.contains("items.f1:"), "{listing}");
        // fragment contents are queryable
        let c0 = query(&db_dir, r#"count(collection("items.f0")/Item)"#).unwrap();
        let c1 = query(&db_dir, r#"count(collection("items.f1")/Item)"#).unwrap();
        let n0: usize = c0.lines().next().unwrap().parse().unwrap();
        let n1: usize = c1.lines().next().unwrap().parse().unwrap();
        assert_eq!(n0 + n1, 9);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn drop_removes_collection_and_persists() {
        let dir = tmp("drop");
        let db_dir = dir.join("db");
        let files = write_items(&dir, 3);
        load(&db_dir, "items", &files).unwrap();
        load(&db_dir, "other", &files[..1]).unwrap();
        let msg = drop(&db_dir, "items").unwrap();
        assert!(msg.contains("3 document(s)"), "{msg}");
        // the drop survives a reopen, and other collections are untouched
        let listing = collections(&db_dir).unwrap();
        assert!(!listing.contains("items:"), "{listing}");
        assert!(listing.contains("other: 1 document(s)"), "{listing}");
        let e = drop(&db_dir, "items").unwrap_err();
        assert!(e.0.contains("no collection"), "{e}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn errors_are_user_readable() {
        let dir = tmp("errors");
        let db_dir = dir.join("db");
        assert!(load(&db_dir, "items", &[]).is_err());
        let bad = dir.join("bad.xml");
        std::fs::write(&bad, "<a><b></a>").unwrap();
        let e = load(&db_dir, "items", &[bad.to_string_lossy().into_owned()]).unwrap_err();
        assert!(e.0.contains("bad.xml"));
        let e = query(&db_dir, "for $").unwrap_err();
        assert!(e.0.contains("parse error"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stats_reports_stages_metrics_and_trace_file() {
        let dir = tmp("stats");
        let db_dir = dir.join("db");
        let files = write_items(&dir, 6);
        load(&db_dir, "items", &files).unwrap();
        let trace_path = dir.join("trace.json");
        let out = stats(
            &db_dir,
            r#"count(collection("items")/Item)"#,
            Some(&trace_path),
        )
        .unwrap();
        assert!(out.starts_with('6'), "{out}");
        // the stage table and a non-empty registry snapshot are rendered
        assert!(out.contains("stage        time(ms)"), "{out}");
        assert!(out.contains("partix.queries"), "{out}");
        assert!(!out.contains("(no metrics recorded)"), "{out}");
        // the exported trace is chrome://tracing complete-event JSON
        let trace = std::fs::read_to_string(&trace_path).unwrap();
        assert!(trace.starts_with('['), "{trace}");
        assert!(trace.contains("\"ph\":\"X\""), "{trace}");
        assert!(trace.contains("\"name\":\"parse\""), "{trace}");
        // without --trace nothing is written and the command still works
        let quiet = stats(&db_dir, r#"count(collection("items")/Item)"#, None).unwrap();
        assert!(quiet.contains("metrics registry"), "{quiet}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn chaos_demo_is_deterministic_and_oracle_checked() {
        let a = chaos(0xBEEF).unwrap();
        let b = chaos(0xBEEF).unwrap();
        // same seed → same schedule line (the injected-fault counters can
        // differ run to run: timing decides which attempt a fault hits)
        assert_eq!(a.lines().next(), b.lines().next());
        assert!(a.starts_with("fault schedule: seed=0xbeef"), "{a}");
        // every answered query must agree with the centralized oracle
        assert!(!a.contains("MISMATCH"), "{a}");
    }

    #[test]
    fn advise_demo_is_deterministic_and_finds_a_gain() {
        let a = advise(7).unwrap();
        let b = advise(7).unwrap();
        assert_eq!(a, b, "advise output must be reproducible under a seed");
        assert!(a.contains("recommended placement:"), "{a}");
        // the skewed scenario always leaves room to improve
        assert!(a.contains("predicted gain"), "{a}");
        assert!(!a.contains("predicted gain 0.0%"), "{a}");
        // placements mention more than one node
        assert!(a.contains("node1") || a.contains("node2"), "{a}");
    }

    #[test]
    fn rebalance_demo_migrates_and_stays_consistent() {
        let out = rebalance(11).unwrap();
        assert!(out.contains("fragment move(s)"), "{out}");
        assert!(out.contains("completeness/disjointness re-checked ✓"), "{out}");
        assert!(out.contains("consistent across migration"), "{out}");
        assert!(!out.contains("MISMATCH"), "{out}");
    }

    #[test]
    fn stats_snapshot_includes_node_gauges() {
        let dir = tmp("gauges");
        let db_dir = dir.join("db");
        let files = write_items(&dir, 4);
        load(&db_dir, "items", &files).unwrap();
        let out = stats(&db_dir, r#"count(collection("items")/Item)"#, None).unwrap();
        assert!(out.contains("node.0.fragments"), "{out}");
        assert!(out.contains("node.0.resident_bytes"), "{out}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn serve_with_tenants_admits_and_rejects_typed() {
        let dir = tmp("tenantserve");
        let db_dir = dir.join("db");
        let files = write_items(&dir, 6);
        load(&db_dir, "items", &files).unwrap();
        // frontend: generous quota; suspended: zero concurrency, every
        // query must come back as a typed rejection
        let (server, addr) = serve(
            0,
            "127.0.0.1:0",
            Some(&db_dir),
            None,
            &["frontend:interactive:8".to_owned(), "suspended:batch:0:0".to_owned()],
        )
        .unwrap();
        let addr = addr.to_string();
        let q = r#"count(collection("items")/Item)"#;

        let ok = exec(&addr, q, Some("frontend")).unwrap();
        assert!(ok.starts_with('6'), "{ok}");
        assert!(ok.contains("as tenant \"frontend\""), "{ok}");

        // anonymous Execute frames stay ungated
        let anon = exec(&addr, q, None).unwrap();
        assert!(anon.starts_with('6'), "{anon}");

        let e = exec(&addr, q, Some("suspended")).unwrap_err().to_string();
        assert!(e.contains("retry after"), "{e}");
        assert!(e.contains("AdmissionRejected"), "{e}");

        let e = exec(&addr, q, Some("nobody")).unwrap_err().to_string();
        assert!(e.contains("unknown tenant"), "{e}");
        assert!(e.contains("UnknownTenant"), "{e}");

        std::mem::drop(server);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn coordinator_with_tenants_gates_stream_queries() {
        let dir = tmp("tenantcoord");
        let db_dir = dir.join("db");
        let files = write_items(&dir, 6);
        load(&db_dir, "items", &files).unwrap();
        let (server, addr) = serve_coordinator(
            "127.0.0.1:0",
            Some(&db_dir),
            &["frontend:interactive:8".to_owned(), "suspended:batch:0:0".to_owned()],
        )
        .unwrap();
        let addr = addr.to_string();
        let q = r#"count(collection("items")/Item)"#;

        let ok = stream_query(&addr, q, Some("frontend")).unwrap();
        assert!(ok.starts_with('6'), "{ok}");
        // anonymous streaming stays available
        let anon = stream_query(&addr, q, None).unwrap();
        assert!(anon.starts_with('6'), "{anon}");

        let e = stream_query(&addr, q, Some("suspended")).unwrap_err().to_string();
        assert!(e.contains("quota"), "{e}");
        let e = stream_query(&addr, q, Some("nobody")).unwrap_err().to_string();
        assert!(e.contains("unknown tenant"), "{e}");

        std::mem::drop(server);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_tenant_specs_are_rejected_at_startup() {
        let e = serve(0, "127.0.0.1:0", None, None, &["bad name!".to_owned()])
            .err()
            .expect("invalid spec must fail")
            .to_string();
        assert!(e.contains("invalid tenant name"), "{e}");
        let e = serve(0, "127.0.0.1:0", None, None, &["a".to_owned(), "a".to_owned()])
            .err()
            .expect("duplicate spec must fail")
            .to_string();
        assert!(e.contains("duplicate") || e.contains("already"), "{e}");
    }

    #[test]
    fn fragment_too_few_values_reported() {
        let dir = tmp("fewvalues");
        let db_dir = dir.join("db");
        let path = dir.join("only.xml");
        std::fs::write(&path, "<Item><Code>1</Code><Section>CD</Section></Item>").unwrap();
        load(&db_dir, "items", &[path.to_string_lossy().into_owned()]).unwrap();
        let e = fragment(&db_dir, "items", "/Item/Section", 3).unwrap_err();
        assert!(e.0.contains("distinct"), "{e}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
