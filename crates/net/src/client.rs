//! [`RemoteDriver`]: the coordinator's end of the wire — a
//! connection-pooled [`PartixDriver`] talking to one [`NodeServer`].
//!
//! Because it implements the same trait the coordinator already
//! dispatches to, everything above it works unchanged over real
//! sockets: `DispatchMode::Pool`, retry/backoff/failover, deadlines,
//! fault injection (a `FaultInjector` can wrap a `RemoteDriver` like
//! any other driver), the result cache, and the trace/metrics layers.
//!
//! Failure mapping keeps the coordinator's recovery semantics intact:
//! * transport failures (connect refused, reset, timeout, malformed
//!   response) → [`DriverError::Unavailable`] — the dispatch loop may
//!   fail over to a replica;
//! * an `Error` frame from the node carries the node's own verdict:
//!   `retryable` → `Unavailable`, otherwise → [`DriverError::Failed`].
//!
//! A pooled connection can go stale (the server restarted between
//! requests). For *idempotent* requests the driver transparently
//! redials once and retries; a `Store` is never retried on an ambiguous
//! failure — the node may already have applied it.
//!
//! Every call records genuine wire bytes (header + payload, both
//! directions) into the global `net.wire.bytes_sent` /
//! `net.wire.bytes_recv` / `net.bytes_shipped` counters, and its
//! send/recv wall time into the dispatch loop's thread-local
//! [`wirespan`] channel, surfacing as `send`/`recv` spans in each
//! sub-query's stage breakdown.
//!
//! [`NodeServer`]: crate::server::NodeServer

use crate::frame::{read_frame, write_frame, FrameKind, ProtocolError};
use crate::message::{Request, Response, WireError};
use parking_lot::Mutex;
use partix_engine::{metrics, wirespan, DriverError, PartixDriver};
use partix_query::Query;
use partix_storage::QueryOutput;
use partix_xml::Document;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tuning knobs for a remote driver.
#[derive(Debug, Clone)]
pub struct RemoteDriverConfig {
    pub connect_timeout: Duration,
    /// Per-frame read/write deadline. Dispatch-level deadlines
    /// ([`RetryPolicy::timeout`]) are usually tighter; this is the
    /// backstop that keeps a pooled connection from hanging forever.
    ///
    /// [`RetryPolicy::timeout`]: partix_engine::RetryPolicy
    pub io_timeout: Duration,
    /// Idle connections kept for reuse; excess ones are closed on
    /// check-in.
    pub max_idle: usize,
}

impl Default for RemoteDriverConfig {
    fn default() -> RemoteDriverConfig {
        RemoteDriverConfig {
            connect_timeout: Duration::from_secs(2),
            io_timeout: Duration::from_secs(10),
            max_idle: 4,
        }
    }
}

/// Snapshot of a driver's wire accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireStats {
    pub bytes_sent: u64,
    pub bytes_recv: u64,
    pub connects: u64,
    pub reconnects: u64,
}

struct PooledConn {
    stream: TcpStream,
    /// A reused connection may be stale (server restarted since
    /// check-in); a just-dialed one cannot be.
    reused: bool,
}

/// One node's socket-backed driver.
pub struct RemoteDriver {
    addr: SocketAddr,
    config: RemoteDriverConfig,
    idle: Mutex<Vec<TcpStream>>,
    bytes_sent: AtomicU64,
    bytes_recv: AtomicU64,
    connects: AtomicU64,
    reconnects: AtomicU64,
}

impl RemoteDriver {
    /// A driver for the node at `addr`. Does not touch the network —
    /// connections are dialed lazily per call.
    pub fn new(addr: SocketAddr) -> RemoteDriver {
        RemoteDriver::with_config(addr, RemoteDriverConfig::default())
    }

    pub fn with_config(addr: SocketAddr, config: RemoteDriverConfig) -> RemoteDriver {
        RemoteDriver {
            addr,
            config,
            idle: Mutex::new(Vec::new()),
            bytes_sent: AtomicU64::new(0),
            bytes_recv: AtomicU64::new(0),
            connects: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
        }
    }

    /// Dial and health-check the node, returning the driver only if it
    /// answers a ping.
    pub fn connect(addr: SocketAddr) -> Result<Arc<RemoteDriver>, DriverError> {
        let driver = Arc::new(RemoteDriver::new(addr));
        driver.health_check()?;
        Ok(driver)
    }

    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn stats(&self) -> WireStats {
        WireStats {
            bytes_sent: self.bytes_sent.load(Ordering::Acquire),
            bytes_recv: self.bytes_recv.load(Ordering::Acquire),
            connects: self.connects.load(Ordering::Acquire),
            reconnects: self.reconnects.load(Ordering::Acquire),
        }
    }

    /// Idle connections currently pooled (for leak assertions in tests).
    pub fn pooled_connections(&self) -> usize {
        self.idle.lock().len()
    }

    /// Close every pooled connection.
    pub fn drain_pool(&self) {
        self.idle.lock().clear();
    }

    fn checkout(&self) -> Result<PooledConn, DriverError> {
        if let Some(stream) = self.idle.lock().pop() {
            return Ok(PooledConn { stream, reused: true });
        }
        self.dial().map(|stream| PooledConn { stream, reused: false })
    }

    fn dial(&self) -> Result<TcpStream, DriverError> {
        let stream = TcpStream::connect_timeout(&self.addr, self.config.connect_timeout)
            .map_err(|e| DriverError::Unavailable(format!("connect {}: {e}", self.addr)))?;
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(self.config.io_timeout));
        let _ = stream.set_write_timeout(Some(self.config.io_timeout));
        self.connects.fetch_add(1, Ordering::AcqRel);
        metrics::global().counter("net.connects").inc();
        metrics::global().gauge("net.conns.open").inc();
        Ok(stream)
    }

    fn checkin(&self, stream: TcpStream) {
        let mut idle = self.idle.lock();
        if idle.len() < self.config.max_idle {
            idle.push(stream);
            return;
        }
        drop(idle);
        metrics::global().gauge("net.conns.open").dec();
    }

    fn discard(&self, stream: TcpStream) {
        drop(stream);
        metrics::global().gauge("net.conns.open").dec();
    }

    fn account(&self, sent: u64, recv: u64, send_s: f64, recv_s: f64) {
        self.bytes_sent.fetch_add(sent, Ordering::AcqRel);
        self.bytes_recv.fetch_add(recv, Ordering::AcqRel);
        let registry = metrics::global();
        registry.counter("net.wire.bytes_sent").add(sent);
        registry.counter("net.wire.bytes_recv").add(recv);
        // Genuine shipped bytes, replacing the modeled count for this
        // site (see `PartixDriver::counts_wire_bytes`).
        registry.counter("net.bytes_shipped").add(sent + recv);
        wirespan::record(send_s, recv_s);
    }

    /// One request/response exchange on one connection.
    fn exchange(
        &self,
        stream: &mut TcpStream,
        kind: FrameKind,
        payload: &[u8],
    ) -> Result<crate::frame::Frame, ProtocolError> {
        let send_begun = Instant::now();
        let sent = write_frame(stream, kind, payload)?;
        let send_s = send_begun.elapsed().as_secs_f64();
        let recv_begun = Instant::now();
        let answer = read_frame(stream)?;
        let recv_s = recv_begun.elapsed().as_secs_f64();
        match answer {
            Some((frame, recv)) => {
                self.account(sent as u64, recv as u64, send_s, recv_s);
                Ok(frame)
            }
            None => Err(ProtocolError::Io("connection closed before answer".into())),
        }
    }

    /// Run one request with stale-connection recovery: an I/O failure
    /// on a *reused* connection retries exactly once on a fresh dial —
    /// but only for idempotent requests.
    fn roundtrip(
        &self,
        kind: FrameKind,
        payload: &[u8],
        idempotent: bool,
    ) -> Result<crate::frame::Frame, DriverError> {
        let conn = self.checkout()?;
        let PooledConn { mut stream, reused } = conn;
        match self.exchange(&mut stream, kind, payload) {
            Ok(frame) => {
                self.checkin(stream);
                Ok(frame)
            }
            Err(first_err) => {
                self.discard(stream);
                let transport_failed = matches!(
                    first_err,
                    ProtocolError::Io(_) | ProtocolError::Truncated { .. }
                );
                if !(reused && idempotent && transport_failed) {
                    return Err(unavailable(&self.addr, first_err));
                }
                self.reconnects.fetch_add(1, Ordering::AcqRel);
                metrics::global().counter("net.reconnects").inc();
                let mut fresh = self.dial()?;
                match self.exchange(&mut fresh, kind, payload) {
                    Ok(frame) => {
                        self.checkin(fresh);
                        Ok(frame)
                    }
                    Err(err) => {
                        self.discard(fresh);
                        Err(unavailable(&self.addr, err))
                    }
                }
            }
        }
    }

    /// Execute a query as a named tenant ([`Request::ExecuteAs`]),
    /// preserving the server's typed error verdict — an admission
    /// rejection arrives as a [`WireError`] whose `code` and
    /// `retry_after_ms` the caller can act on, never a silent drop or a
    /// text-only failure.
    pub fn execute_as(
        &self,
        tenant: &str,
        query: &Query,
    ) -> Result<Option<QueryOutput>, WireError> {
        let req = Request::ExecuteAs { tenant: tenant.to_owned(), query: query.clone() };
        let frame = self
            .roundtrip(FrameKind::Request, &req.encode(), req.idempotent())
            .map_err(|e| WireError::failure(true, e.to_string()))?;
        match frame.kind {
            FrameKind::Result => match Response::decode(&frame.payload) {
                Ok(Response::Output(out)) => Ok(out),
                Ok(other) => Err(WireError::failure(
                    false,
                    format!("{}: mismatched response {other:?} to ExecuteAs", self.addr),
                )),
                Err(e) => Err(WireError::failure(true, format!("{}: {e}", self.addr))),
            },
            FrameKind::Error => Err(WireError::decode(&frame.payload)
                .unwrap_or_else(|e| WireError::failure(true, format!("{}: {e}", self.addr)))),
            other => Err(WireError::failure(
                true,
                format!("{}: unexpected {other:?} frame in response", self.addr),
            )),
        }
    }

    fn request(&self, req: &Request) -> Result<Response, DriverError> {
        let frame = self.roundtrip(FrameKind::Request, &req.encode(), req.idempotent())?;
        match frame.kind {
            FrameKind::Result => Response::decode(&frame.payload)
                .map_err(|e| unavailable(&self.addr, e)),
            FrameKind::Error => {
                let wire = WireError::decode(&frame.payload)
                    .map_err(|e| unavailable(&self.addr, e))?;
                Err(if wire.retryable {
                    DriverError::Unavailable(wire.message)
                } else {
                    DriverError::Failed(wire.message)
                })
            }
            other => Err(DriverError::Unavailable(format!(
                "{}: unexpected {other:?} frame in response",
                self.addr
            ))),
        }
    }
}

fn unavailable(addr: &SocketAddr, err: impl std::fmt::Display) -> DriverError {
    DriverError::Unavailable(format!("{addr}: {err}"))
}

impl Drop for RemoteDriver {
    fn drop(&mut self) {
        for stream in self.idle.get_mut().drain(..) {
            drop(stream);
            metrics::global().gauge("net.conns.open").dec();
        }
    }
}

impl PartixDriver for RemoteDriver {
    fn execute(&self, query: &Query) -> Result<Option<QueryOutput>, DriverError> {
        match self.request(&Request::Execute { query: query.clone() })? {
            Response::Output(out) => Ok(out),
            other => Err(DriverError::Failed(format!(
                "{}: mismatched response {other:?} to Execute",
                self.addr
            ))),
        }
    }

    fn store(&self, collection: &str, docs: Vec<Document>) {
        // The trait's store is infallible (publishing is verified by
        // reading back); surface wire failures in a counter instead of
        // swallowing them invisibly.
        let req = Request::Store { collection: collection.to_owned(), docs };
        if self.request(&req).is_err() {
            metrics::global().counter("net.store_errors").inc();
        }
    }

    fn fetch_collection(&self, collection: &str) -> Vec<Arc<Document>> {
        match self.request(&Request::Fetch { collection: collection.to_owned() }) {
            Ok(Response::Docs(docs)) => docs.into_iter().map(Arc::new).collect(),
            _ => Vec::new(),
        }
    }

    fn collections(&self) -> Vec<String> {
        match self.request(&Request::Collections) {
            Ok(Response::Names(names)) => names,
            _ => Vec::new(),
        }
    }

    fn drop_collection(&self, collection: &str) {
        let _ = self.request(&Request::Drop { collection: collection.to_owned() });
    }

    fn health_check(&self) -> Result<(), DriverError> {
        let frame = self.roundtrip(FrameKind::HealthPing, &[], true)?;
        match frame.kind {
            FrameKind::HealthPong => Ok(()),
            other => Err(DriverError::Unavailable(format!(
                "{}: {other:?} frame answering ping",
                self.addr
            ))),
        }
    }

    fn counts_wire_bytes(&self) -> bool {
        true
    }

    fn write(&self, op: &partix_storage::WriteOp) -> Result<u32, DriverError> {
        // Never replayed on an ambiguous transport failure (the node may
        // have logged and applied it) — the coordinator gets a typed
        // Unavailable and decides; see Request::idempotent.
        match self.request(&Request::Write { op: op.clone() })? {
            Response::Written(affected) => Ok(affected),
            other => Err(DriverError::Failed(format!(
                "{}: mismatched response {other:?} to Write",
                self.addr
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::NodeServer;
    use partix_query::parse_query;
    use partix_storage::Database;
    use partix_xml::parse;

    fn spawn_node() -> (NodeServer, Arc<Database>) {
        let db = Database::new();
        for i in 0..6 {
            let mut d = parse(&format!("<Item><Code>{i}</Code></Item>")).unwrap();
            d.name = Some(format!("i{i}"));
            db.store("items", d);
        }
        let db = Arc::new(db);
        let server = NodeServer::bind("127.0.0.1:0", Arc::clone(&db)).unwrap();
        (server, db)
    }

    #[test]
    fn remote_matches_local_execution() {
        let (server, db) = spawn_node();
        let driver = RemoteDriver::connect(server.local_addr()).unwrap();
        assert!(driver.counts_wire_bytes());
        let q = parse_query(r#"for $i in collection("items")/Item where $i/Code > 2 return $i"#)
            .unwrap();
        let remote = driver.execute(&q).unwrap().unwrap();
        let local = PartixDriver::execute(&*db, &q).unwrap().unwrap();
        assert_eq!(remote.items, local.items);
        let stats = driver.stats();
        assert!(stats.bytes_sent > 0 && stats.bytes_recv > 0);
        // absent collection stays Ok(None) over the wire
        let q = parse_query(r#"count(collection("absent")/x)"#).unwrap();
        assert!(driver.execute(&q).unwrap().is_none());
    }

    #[test]
    fn connection_reuse_and_stale_reconnect() {
        let (mut server, db) = spawn_node();
        let addr = server.local_addr();
        let driver = RemoteDriver::connect(addr).unwrap();
        let q = parse_query(r#"count(collection("items")/Item)"#).unwrap();
        driver.execute(&q).unwrap();
        driver.execute(&q).unwrap();
        let after_two = driver.stats();
        assert_eq!(after_two.connects, 1, "calls share one pooled connection");
        assert_eq!(driver.pooled_connections(), 1);

        // Restart the listener on the same port: the pooled connection
        // is now stale, and the next idempotent call must transparently
        // reconnect.
        server.shutdown();
        let _server2 = NodeServer::bind(addr, db).unwrap();
        driver.execute(&q).unwrap();
        let after_restart = driver.stats();
        assert_eq!(after_restart.reconnects, 1);
        assert_eq!(driver.pooled_connections(), 1);
    }

    #[test]
    fn writes_apply_remotely_with_typed_errors() {
        use partix_storage::WriteOp;
        let (mut server, db) = spawn_node();
        let driver = RemoteDriver::connect(server.local_addr()).unwrap();
        // upsert an existing name, then a fresh one
        let mut d = parse("<Item><Code>99</Code></Item>").unwrap();
        d.name = Some("i0".into());
        let put = WriteOp::Put { collection: "items".into(), doc: d };
        assert_eq!(driver.write(&put).unwrap(), 1, "replaced i0");
        let mut d = parse("<Item><Code>7</Code></Item>").unwrap();
        d.name = Some("i9".into());
        let put = WriteOp::Put { collection: "items".into(), doc: d };
        assert_eq!(driver.write(&put).unwrap(), 0, "fresh insert");
        assert_eq!(db.collection_len("items").unwrap(), 7);
        let del = WriteOp::Delete { collection: "items".into(), name: "i9".into() };
        assert_eq!(driver.write(&del).unwrap(), 1);
        assert_eq!(driver.write(&del).unwrap(), 0, "idempotent re-delete");
        // a dead node answers Unavailable, not a silent drop
        server.shutdown();
        driver.drain_pool();
        match driver.write(&del) {
            Err(DriverError::Unavailable(_)) => {}
            other => panic!("expected Unavailable, got {other:?}"),
        }
    }

    #[test]
    fn down_node_is_unavailable() {
        let (mut server, _db) = spawn_node();
        let addr = server.local_addr();
        server.shutdown();
        let driver = RemoteDriver::new(addr);
        let q = parse_query(r#"count(collection("items")/Item)"#).unwrap();
        match driver.execute(&q) {
            Err(DriverError::Unavailable(_)) => {}
            other => panic!("expected Unavailable, got {other:?}"),
        }
        assert!(RemoteDriver::connect(addr).is_err());
    }
}
