//! The request/response vocabulary carried by frames — the driver trait,
//! spelled out on the wire. Each variant encodes to a frame payload and
//! decodes defensively via the [`crate::codec`] cursor.

use crate::codec::{
    get_documents, get_output, put_documents, put_output, Reader, Writer,
};
use crate::frame::ProtocolError;
use partix_query::Query;
use partix_storage::{QueryOutput, WriteOp};
use partix_xml::Document;

/// Machine-readable classification carried by [`WireError`] (PXN1) and
/// [`crate::StreamError`] (PXN2), so clients can distinguish tenancy
/// rejections from ordinary execution failures without parsing the
/// message text. Unknown code bytes decode to a typed
/// [`ProtocolError::Malformed`] — never a panic, never a silent
/// default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ErrorCode {
    /// Any failure predating (or unrelated to) tenancy.
    #[default]
    Generic,
    /// The tenant's admission quota rejected the query; honor the
    /// `retry_after_ms` hint before retrying.
    AdmissionRejected,
    /// The tenant header named a tenant this server does not know (or
    /// the server has no tenancy configured).
    UnknownTenant,
}

impl ErrorCode {
    pub fn as_u8(self) -> u8 {
        match self {
            ErrorCode::Generic => 0,
            ErrorCode::AdmissionRejected => 1,
            ErrorCode::UnknownTenant => 2,
        }
    }

    pub fn from_u8(byte: u8) -> Result<ErrorCode, ProtocolError> {
        match byte {
            0 => Ok(ErrorCode::Generic),
            1 => Ok(ErrorCode::AdmissionRejected),
            2 => Ok(ErrorCode::UnknownTenant),
            other => Err(ProtocolError::Malformed(format!("bad error code {other}"))),
        }
    }
}

/// Validate a wire-supplied tenant header before it touches any lookup:
/// hostile bytes (oversized, non-ASCII, control characters) become a
/// typed [`ProtocolError::Malformed`] at decode time.
pub(crate) fn decode_tenant_header(name: String) -> Result<String, ProtocolError> {
    if partix_tenant::valid_tenant_name(&name) {
        Ok(name)
    } else {
        Err(ProtocolError::Malformed(format!(
            "invalid tenant header ({} bytes; names are 1..={} bytes of [A-Za-z0-9._-])",
            name.len(),
            partix_tenant::MAX_TENANT_NAME
        )))
    }
}

/// Coordinator → node. One request per frame; the node answers with
/// exactly one `Result` or `Error` frame. (`Document` has no equality,
/// so neither does `Request` — tests compare re-encoded bytes.)
#[derive(Debug, Clone)]
pub enum Request {
    /// Run a (localized) sub-query against the node's fragments.
    Execute { query: Query },
    /// [`Request::Execute`] with a tenant header: the server applies the
    /// named tenant's admission quotas before running. Servers without
    /// tenancy configured answer with a typed
    /// [`ErrorCode::UnknownTenant`] error.
    ExecuteAs { tenant: String, query: Query },
    /// Publish documents into a collection (fragment placement).
    Store { collection: String, docs: Vec<Document> },
    /// Fetch every document of a collection (reconstruction reads).
    Fetch { collection: String },
    /// List hosted collection names.
    Collections,
    /// Drop a collection.
    Drop { collection: String },
    /// Apply one online write (put/delete) through the node's WAL
    /// pipeline. Carried in the WAL's own op encoding
    /// ([`partix_storage::wal::encode_op`]) so disk and wire share one
    /// canonical byte form.
    Write { op: WriteOp },
}

impl Request {
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Request::Execute { query } => {
                w.put_u8(0);
                w.put_bytes(&crate::codec::encode_query(query));
            }
            Request::Store { collection, docs } => {
                w.put_u8(1);
                w.put_str(collection);
                put_documents(&mut w, docs);
            }
            Request::Fetch { collection } => {
                w.put_u8(2);
                w.put_str(collection);
            }
            Request::Collections => w.put_u8(3),
            Request::Drop { collection } => {
                w.put_u8(4);
                w.put_str(collection);
            }
            Request::Write { op } => {
                w.put_u8(5);
                w.put_bytes(&partix_storage::wal::encode_op(op));
            }
            Request::ExecuteAs { tenant, query } => {
                w.put_u8(6);
                w.put_str(tenant);
                w.put_bytes(&crate::codec::encode_query(query));
            }
        }
        w.into_bytes()
    }

    pub fn decode(payload: &[u8]) -> Result<Request, ProtocolError> {
        let mut r = Reader::new(payload);
        let req = match r.u8("request tag")? {
            0 => {
                let raw = r.bytes("query payload")?;
                Request::Execute { query: crate::codec::decode_query(raw)? }
            }
            1 => {
                let collection = r.str("store collection")?;
                let docs = get_documents(&mut r)?;
                Request::Store { collection, docs }
            }
            2 => Request::Fetch { collection: r.str("fetch collection")? },
            3 => Request::Collections,
            4 => Request::Drop { collection: r.str("drop collection")? },
            5 => {
                let raw = r.bytes("write op payload")?;
                let op = partix_storage::wal::decode_op(raw).ok_or_else(|| {
                    ProtocolError::Malformed("undecodable write op".into())
                })?;
                Request::Write { op }
            }
            6 => {
                let tenant = decode_tenant_header(r.str("tenant header")?)?;
                let raw = r.bytes("query payload")?;
                Request::ExecuteAs { tenant, query: crate::codec::decode_query(raw)? }
            }
            other => {
                return Err(ProtocolError::Malformed(format!("bad request tag {other}")))
            }
        };
        r.finish()?;
        Ok(req)
    }

    /// Whether retrying this request on a fresh connection is safe after
    /// an ambiguous transport failure. Reads are; `Store` and `Write`
    /// are not (the node may have applied them before the connection
    /// died — for `Write` the coordinator surfaces a typed
    /// `Unavailable` instead, and recovery/retry converges because the
    /// ops themselves are idempotent upserts/deletes).
    pub fn idempotent(&self) -> bool {
        !matches!(self, Request::Store { .. } | Request::Write { .. })
    }
}

/// Node → coordinator success answer, mirroring [`Request`] one-to-one.
#[derive(Debug, Clone)]
pub enum Response {
    /// `Execute` answer. `None` preserves the driver contract for an
    /// absent collection (an empty fragment, not an error).
    Output(Option<QueryOutput>),
    /// `Store` acknowledged.
    Stored,
    /// `Fetch` answer.
    Docs(Vec<Document>),
    /// `Collections` answer.
    Names(Vec<String>),
    /// `Drop` acknowledged.
    Dropped,
    /// `Write` acknowledged: how many existing documents it affected.
    Written(u32),
}

impl Response {
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Response::Output(None) => w.put_u8(0),
            Response::Output(Some(out)) => {
                w.put_u8(1);
                put_output(&mut w, out);
            }
            Response::Stored => w.put_u8(2),
            Response::Docs(docs) => {
                w.put_u8(3);
                put_documents(&mut w, docs);
            }
            Response::Names(names) => {
                w.put_u8(4);
                w.put_u32(names.len() as u32);
                for name in names {
                    w.put_str(name);
                }
            }
            Response::Dropped => w.put_u8(5),
            Response::Written(affected) => {
                w.put_u8(6);
                w.put_u32(*affected);
            }
        }
        w.into_bytes()
    }

    pub fn decode(payload: &[u8]) -> Result<Response, ProtocolError> {
        let mut r = Reader::new(payload);
        let resp = match r.u8("response tag")? {
            0 => Response::Output(None),
            1 => Response::Output(Some(get_output(&mut r)?)),
            2 => Response::Stored,
            3 => Response::Docs(get_documents(&mut r)?),
            4 => {
                let n = r.seq_len("name list")?;
                let mut names = Vec::with_capacity(n);
                for _ in 0..n {
                    names.push(r.str("collection name")?);
                }
                Response::Names(names)
            }
            5 => Response::Dropped,
            6 => Response::Written(r.u32("written count")?),
            other => {
                return Err(ProtocolError::Malformed(format!("bad response tag {other}")))
            }
        };
        r.finish()?;
        Ok(resp)
    }
}

/// Node → coordinator failure answer. `retryable` maps back onto the
/// driver error taxonomy: `true` → `DriverError::Unavailable` (the
/// coordinator may fail over to a replica), `false` → `DriverError::
/// Failed` (the DBMS rejected the request; retrying elsewhere would
/// just fail again).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    pub retryable: bool,
    /// Typed classification (admission rejection, unknown tenant, …).
    pub code: ErrorCode,
    /// Client retry hint in milliseconds; meaningful for
    /// [`ErrorCode::AdmissionRejected`], 0 otherwise.
    pub retry_after_ms: u64,
    pub message: String,
}

impl WireError {
    /// A pre-tenancy failure: [`ErrorCode::Generic`], no retry hint.
    pub fn failure(retryable: bool, message: impl Into<String>) -> WireError {
        WireError {
            retryable,
            code: ErrorCode::Generic,
            retry_after_ms: 0,
            message: message.into(),
        }
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_bool(self.retryable);
        w.put_u8(self.code.as_u8());
        w.put_u64(self.retry_after_ms);
        w.put_str(&self.message);
        w.into_bytes()
    }

    pub fn decode(payload: &[u8]) -> Result<WireError, ProtocolError> {
        let mut r = Reader::new(payload);
        let retryable = r.bool("error retryable")?;
        let code = ErrorCode::from_u8(r.u8("error code")?)?;
        let retry_after_ms = r.u64("retry_after_ms")?;
        let message = r.str("error message")?;
        r.finish()?;
        Ok(WireError { retryable, code, retry_after_ms, message })
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)?;
        if self.retry_after_ms > 0 {
            write!(f, " (retry after {} ms)", self.retry_after_ms)?;
        }
        Ok(())
    }
}

impl std::error::Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;
    use partix_query::parse_query;
    use partix_xml::parse;

    #[test]
    fn requests_roundtrip() {
        let q = parse_query(r#"for $i in collection("c")/x where $i/y = 1 return $i"#).unwrap();
        let docs = vec![parse("<a><b>1</b></a>").unwrap(), parse("<a k=\"v\"/>").unwrap()];
        let cases = vec![
            Request::Execute { query: q.clone() },
            Request::ExecuteAs { tenant: "team-a.prod".into(), query: q },
            Request::Store { collection: "c".into(), docs },
            Request::Fetch { collection: "c".into() },
            Request::Collections,
            Request::Drop { collection: "c".into() },
            Request::Write {
                op: WriteOp::Put {
                    collection: "c".into(),
                    doc: parse("<a><b>1</b></a>").unwrap(),
                },
            },
            Request::Write {
                op: WriteOp::Delete { collection: "c".into(), name: "d1".into() },
            },
        ];
        for req in cases {
            let back = Request::decode(&req.encode()).unwrap();
            // Document lacks PartialEq; compare the re-encoded bytes
            assert_eq!(req.encode(), back.encode());
        }
    }

    #[test]
    fn idempotency_split() {
        assert!(Request::Collections.idempotent());
        assert!(Request::Fetch { collection: "c".into() }.idempotent());
        assert!(!Request::Store { collection: "c".into(), docs: vec![] }.idempotent());
        // a write may have been applied before the connection died — the
        // transport must not silently replay it
        assert!(!Request::Write {
            op: WriteOp::Delete { collection: "c".into(), name: "d".into() }
        }
        .idempotent());
    }

    #[test]
    fn responses_and_errors_roundtrip() {
        let cases = vec![
            Response::Output(None),
            Response::Stored,
            Response::Docs(vec![parse("<d/>").unwrap()]),
            Response::Names(vec!["a".into(), "b".into()]),
            Response::Dropped,
            Response::Written(0),
            Response::Written(3),
        ];
        for resp in cases {
            let back = Response::decode(&resp.encode()).unwrap();
            assert_eq!(resp.encode(), back.encode());
        }
        let err = WireError::failure(true, "node going away");
        assert_eq!(WireError::decode(&err.encode()).unwrap(), err);
        let rejected = WireError {
            retryable: false,
            code: ErrorCode::AdmissionRejected,
            retry_after_ms: 250,
            message: "quota".into(),
        };
        assert_eq!(WireError::decode(&rejected.encode()).unwrap(), rejected);
    }

    #[test]
    fn hostile_tenant_headers_are_typed_errors() {
        let q = parse_query(r#"collection("c")/x"#).unwrap();
        let ok = Request::ExecuteAs { tenant: "t1".into(), query: q.clone() };
        assert!(Request::decode(&ok.encode()).is_ok());
        for bad in [
            String::new(),
            "with space".to_string(),
            "nul\0byte".to_string(),
            "x".repeat(partix_tenant::MAX_TENANT_NAME + 1),
            "\u{7f}".to_string(),
        ] {
            let req = Request::ExecuteAs { tenant: bad, query: q.clone() };
            assert!(
                matches!(Request::decode(&req.encode()), Err(ProtocolError::Malformed(_))),
                "hostile tenant header must decode to a typed error"
            );
        }
        // unknown error-code byte is typed, not defaulted
        let mut bytes = WireError::failure(false, "x").encode();
        bytes[1] = 99;
        assert!(matches!(WireError::decode(&bytes), Err(ProtocolError::Malformed(_))));
    }

    #[test]
    fn malformed_messages_are_typed() {
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[99]).is_err());
        // write tag with an undecodable op payload
        assert!(Request::decode(&[5, 3, 0, 0, 0, 9, 9, 9]).is_err());
        assert!(Response::decode(&[99]).is_err());
        assert!(WireError::decode(&[2]).is_err());
        // trailing garbage rejected
        let mut ok = Request::Collections.encode();
        ok.push(7);
        assert!(Request::decode(&ok).is_err());
    }
}
