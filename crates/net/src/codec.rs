//! Binary encoding of the payloads that ride inside frames: queries
//! (full AST, so no re-parse on the node side), result sequences, and
//! documents (via the existing `partix-xml` binary format).
//!
//! Decoding is defensive end to end: every read is bounds-checked, every
//! collection length is validated against the bytes actually remaining,
//! and expression nesting is capped — malformed payloads yield
//! [`ProtocolError::Malformed`], never a panic or an unbounded
//! allocation.

use crate::frame::ProtocolError;
use partix_path::{Axis, CmpOp, NodeTest, PathExpr, Step};
use partix_query::ast::{ArithOp, Binding, Clause, SortDir};
use partix_query::{Expr, Item, PathSource, PathStart, Query, Sequence};
use partix_storage::{QueryOutput, QueryStats};
use partix_xml::{binary, Document, NodeId, NodeKind};
use std::sync::Arc;

/// Decoder recursion cap: deeper expression trees are rejected so a
/// hostile payload cannot overflow the stack. Real query ASTs nest a
/// handful of levels; 128 leaves two orders of magnitude of headroom
/// while keeping worst-case decode recursion well inside a 2 MiB test
/// thread stack even with debug-build frame sizes.
pub const MAX_EXPR_DEPTH: usize = 128;

fn malformed(what: &str) -> ProtocolError {
    ProtocolError::Malformed(what.to_owned())
}

// ---------------------------------------------------------------------
// Bounds-checked cursor primitives
// ---------------------------------------------------------------------

/// Append-only byte sink for payload encoding.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub fn new() -> Writer {
        Writer::default()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_u32(b.len() as u32);
        self.buf.extend_from_slice(b);
    }
}

/// Bounds-checked read cursor over a payload.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Decoding must consume the whole payload — trailing garbage is a
    /// peer bug worth surfacing, not ignoring.
    pub fn finish(&self) -> Result<(), ProtocolError> {
        if self.remaining() != 0 {
            return Err(malformed("trailing bytes after payload"));
        }
        Ok(())
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], ProtocolError> {
        if n > self.remaining() {
            return Err(ProtocolError::Malformed(format!(
                "short read: {what} needs {n} B, {} left",
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn u8(&mut self, what: &str) -> Result<u8, ProtocolError> {
        Ok(self.take(1, what)?[0])
    }

    pub fn bool(&mut self, what: &str) -> Result<bool, ProtocolError> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(ProtocolError::Malformed(format!("{what}: bad bool byte {other}"))),
        }
    }

    pub fn u32(&mut self, what: &str) -> Result<u32, ProtocolError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn u64(&mut self, what: &str) -> Result<u64, ProtocolError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    pub fn f64(&mut self, what: &str) -> Result<f64, ProtocolError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    pub fn str(&mut self, what: &str) -> Result<String, ProtocolError> {
        let len = self.u32(what)? as usize;
        let raw = self.take(len, what)?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| ProtocolError::Malformed(format!("{what}: invalid utf-8")))
    }

    pub fn bytes(&mut self, what: &str) -> Result<&'a [u8], ProtocolError> {
        let len = self.u32(what)? as usize;
        self.take(len, what)
    }

    /// A collection length, sanity-checked against the bytes left (every
    /// element costs ≥ 1 byte) so a corrupted count can't drive a huge
    /// pre-allocation.
    pub fn seq_len(&mut self, what: &str) -> Result<usize, ProtocolError> {
        let len = self.u32(what)? as usize;
        if len > self.remaining() {
            return Err(ProtocolError::Malformed(format!(
                "{what}: count {len} exceeds remaining payload"
            )));
        }
        Ok(len)
    }
}

// ---------------------------------------------------------------------
// Query AST
// ---------------------------------------------------------------------

pub fn encode_query(q: &Query) -> Vec<u8> {
    let mut w = Writer::new();
    put_expr(&mut w, &q.expr);
    w.into_bytes()
}

pub fn decode_query(payload: &[u8]) -> Result<Query, ProtocolError> {
    let mut r = Reader::new(payload);
    let expr = get_expr(&mut r, 0)?;
    r.finish()?;
    Ok(Query { expr })
}

fn put_expr(w: &mut Writer, expr: &Expr) {
    match expr {
        Expr::Flwor { clauses, where_clause, order_by, ret } => {
            w.put_u8(0);
            w.put_u32(clauses.len() as u32);
            for clause in clauses {
                match clause {
                    Clause::For(b) => {
                        w.put_u8(0);
                        put_binding(w, b);
                    }
                    Clause::Let(b) => {
                        w.put_u8(1);
                        put_binding(w, b);
                    }
                }
            }
            put_opt(w, where_clause.as_deref(), put_expr);
            match order_by {
                None => w.put_u8(0),
                Some((key, dir)) => {
                    w.put_u8(1);
                    put_expr(w, key);
                    w.put_u8(match dir {
                        SortDir::Ascending => 0,
                        SortDir::Descending => 1,
                    });
                }
            }
            put_expr(w, ret);
        }
        Expr::Path(ps) => {
            w.put_u8(1);
            put_path_source(w, ps);
        }
        Expr::Str(s) => {
            w.put_u8(2);
            w.put_str(s);
        }
        Expr::Num(n) => {
            w.put_u8(3);
            w.put_f64(*n);
        }
        Expr::Cmp { lhs, op, rhs } => {
            w.put_u8(4);
            put_expr(w, lhs);
            w.put_u8(cmp_op_tag(*op));
            put_expr(w, rhs);
        }
        Expr::Arith { lhs, op, rhs } => {
            w.put_u8(5);
            put_expr(w, lhs);
            w.put_u8(match op {
                ArithOp::Add => 0,
                ArithOp::Sub => 1,
                ArithOp::Mul => 2,
                ArithOp::Div => 3,
                ArithOp::Mod => 4,
            });
            put_expr(w, rhs);
        }
        Expr::Neg(e) => {
            w.put_u8(6);
            put_expr(w, e);
        }
        Expr::If { cond, then, els } => {
            w.put_u8(7);
            put_expr(w, cond);
            put_expr(w, then);
            put_expr(w, els);
        }
        Expr::And(es) => {
            w.put_u8(8);
            put_expr_vec(w, es);
        }
        Expr::Or(es) => {
            w.put_u8(9);
            put_expr_vec(w, es);
        }
        Expr::Call { name, args } => {
            w.put_u8(10);
            w.put_str(name);
            put_expr_vec(w, args);
        }
        Expr::Element { name, attrs, children } => {
            w.put_u8(11);
            w.put_str(name);
            w.put_u32(attrs.len() as u32);
            for (k, v) in attrs {
                w.put_str(k);
                w.put_str(v);
            }
            put_expr_vec(w, children);
        }
        Expr::Text(t) => {
            w.put_u8(12);
            w.put_str(t);
        }
        Expr::Seq(es) => {
            w.put_u8(13);
            put_expr_vec(w, es);
        }
    }
}

fn put_expr_vec(w: &mut Writer, es: &[Expr]) {
    w.put_u32(es.len() as u32);
    for e in es {
        put_expr(w, e);
    }
}

fn put_opt<T>(w: &mut Writer, v: Option<&T>, enc: impl Fn(&mut Writer, &T)) {
    match v {
        None => w.put_u8(0),
        Some(v) => {
            w.put_u8(1);
            enc(w, v);
        }
    }
}

fn put_binding(w: &mut Writer, b: &Binding) {
    w.put_str(&b.var);
    put_expr(w, &b.expr);
}

fn put_path_source(w: &mut Writer, ps: &PathSource) {
    match &ps.start {
        PathStart::Collection(name) => {
            w.put_u8(0);
            w.put_str(name);
        }
        PathStart::Doc(name) => {
            w.put_u8(1);
            w.put_str(name);
        }
        PathStart::Var(name) => {
            w.put_u8(2);
            w.put_str(name);
        }
    }
    put_path_expr(w, &ps.path);
}

fn put_path_expr(w: &mut Writer, p: &PathExpr) {
    w.put_bool(p.absolute);
    w.put_u32(p.steps.len() as u32);
    for step in &p.steps {
        w.put_u8(match step.axis {
            Axis::Child => 0,
            Axis::Descendant => 1,
        });
        match &step.test {
            NodeTest::Name(n) => {
                w.put_u8(0);
                w.put_str(n);
            }
            NodeTest::AnyElement => w.put_u8(1),
            NodeTest::Attribute(n) => {
                w.put_u8(2);
                w.put_str(n);
            }
        }
        match step.position {
            None => w.put_u8(0),
            Some(p) => {
                w.put_u8(1);
                w.put_u32(p);
            }
        }
    }
}

fn cmp_op_tag(op: CmpOp) -> u8 {
    match op {
        CmpOp::Eq => 0,
        CmpOp::Ne => 1,
        CmpOp::Lt => 2,
        CmpOp::Le => 3,
        CmpOp::Gt => 4,
        CmpOp::Ge => 5,
    }
}

fn get_expr(r: &mut Reader<'_>, depth: usize) -> Result<Expr, ProtocolError> {
    if depth > MAX_EXPR_DEPTH {
        return Err(malformed("expression nesting exceeds depth cap"));
    }
    let tag = r.u8("expr tag")?;
    Ok(match tag {
        0 => {
            let n = r.seq_len("flwor clauses")?;
            let mut clauses = Vec::with_capacity(n);
            for _ in 0..n {
                let binding_kind = r.u8("clause tag")?;
                let binding = get_binding(r, depth + 1)?;
                clauses.push(match binding_kind {
                    0 => Clause::For(binding),
                    1 => Clause::Let(binding),
                    other => {
                        return Err(ProtocolError::Malformed(format!("bad clause tag {other}")))
                    }
                });
            }
            let where_clause = if r.bool("where present")? {
                Some(Box::new(get_expr(r, depth + 1)?))
            } else {
                None
            };
            let order_by = if r.bool("order-by present")? {
                let key = Box::new(get_expr(r, depth + 1)?);
                let dir = match r.u8("sort dir")? {
                    0 => SortDir::Ascending,
                    1 => SortDir::Descending,
                    other => {
                        return Err(ProtocolError::Malformed(format!("bad sort dir {other}")))
                    }
                };
                Some((key, dir))
            } else {
                None
            };
            let ret = Box::new(get_expr(r, depth + 1)?);
            Expr::Flwor { clauses, where_clause, order_by, ret }
        }
        1 => Expr::Path(get_path_source(r)?),
        2 => Expr::Str(r.str("string literal")?),
        3 => Expr::Num(r.f64("numeric literal")?),
        4 => {
            let lhs = Box::new(get_expr(r, depth + 1)?);
            let op = get_cmp_op(r)?;
            let rhs = Box::new(get_expr(r, depth + 1)?);
            Expr::Cmp { lhs, op, rhs }
        }
        5 => {
            let lhs = Box::new(get_expr(r, depth + 1)?);
            let op = match r.u8("arith op")? {
                0 => ArithOp::Add,
                1 => ArithOp::Sub,
                2 => ArithOp::Mul,
                3 => ArithOp::Div,
                4 => ArithOp::Mod,
                other => {
                    return Err(ProtocolError::Malformed(format!("bad arith op {other}")))
                }
            };
            let rhs = Box::new(get_expr(r, depth + 1)?);
            Expr::Arith { lhs, op, rhs }
        }
        6 => Expr::Neg(Box::new(get_expr(r, depth + 1)?)),
        7 => {
            let cond = Box::new(get_expr(r, depth + 1)?);
            let then = Box::new(get_expr(r, depth + 1)?);
            let els = Box::new(get_expr(r, depth + 1)?);
            Expr::If { cond, then, els }
        }
        8 => Expr::And(get_expr_vec(r, depth)?),
        9 => Expr::Or(get_expr_vec(r, depth)?),
        10 => {
            let name = r.str("call name")?;
            let args = get_expr_vec(r, depth)?;
            Expr::Call { name, args }
        }
        11 => {
            let name = r.str("element name")?;
            let n = r.seq_len("element attrs")?;
            let mut attrs = Vec::with_capacity(n);
            for _ in 0..n {
                let k = r.str("attr name")?;
                let v = r.str("attr value")?;
                attrs.push((k, v));
            }
            let children = get_expr_vec(r, depth)?;
            Expr::Element { name, attrs, children }
        }
        12 => Expr::Text(r.str("text literal")?),
        13 => Expr::Seq(get_expr_vec(r, depth)?),
        other => return Err(ProtocolError::Malformed(format!("bad expr tag {other}"))),
    })
}

fn get_expr_vec(r: &mut Reader<'_>, depth: usize) -> Result<Vec<Expr>, ProtocolError> {
    let n = r.seq_len("expr list")?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_expr(r, depth + 1)?);
    }
    Ok(out)
}

fn get_binding(r: &mut Reader<'_>, depth: usize) -> Result<Binding, ProtocolError> {
    let var = r.str("binding var")?;
    let expr = get_expr(r, depth)?;
    Ok(Binding { var, expr })
}

fn get_path_source(r: &mut Reader<'_>) -> Result<PathSource, ProtocolError> {
    let start = match r.u8("path start tag")? {
        0 => PathStart::Collection(r.str("collection name")?),
        1 => PathStart::Doc(r.str("doc name")?),
        2 => PathStart::Var(r.str("var name")?),
        other => return Err(ProtocolError::Malformed(format!("bad path start tag {other}"))),
    };
    let path = get_path_expr(r)?;
    Ok(PathSource { start, path })
}

fn get_path_expr(r: &mut Reader<'_>) -> Result<PathExpr, ProtocolError> {
    let absolute = r.bool("path absolute")?;
    let n = r.seq_len("path steps")?;
    let mut steps = Vec::with_capacity(n);
    for _ in 0..n {
        let axis = match r.u8("axis")? {
            0 => Axis::Child,
            1 => Axis::Descendant,
            other => return Err(ProtocolError::Malformed(format!("bad axis tag {other}"))),
        };
        let test = match r.u8("node test tag")? {
            0 => NodeTest::Name(r.str("step name")?),
            1 => NodeTest::AnyElement,
            2 => NodeTest::Attribute(r.str("attribute name")?),
            other => return Err(ProtocolError::Malformed(format!("bad node test tag {other}"))),
        };
        let position = if r.bool("position present")? {
            Some(r.u32("position")?)
        } else {
            None
        };
        steps.push(Step { axis, test, position });
    }
    Ok(PathExpr { absolute, steps })
}

fn get_cmp_op(r: &mut Reader<'_>) -> Result<CmpOp, ProtocolError> {
    Ok(match r.u8("cmp op")? {
        0 => CmpOp::Eq,
        1 => CmpOp::Ne,
        2 => CmpOp::Lt,
        3 => CmpOp::Le,
        4 => CmpOp::Gt,
        5 => CmpOp::Ge,
        other => return Err(ProtocolError::Malformed(format!("bad cmp op {other}"))),
    })
}

// ---------------------------------------------------------------------
// Documents
// ---------------------------------------------------------------------

pub fn put_document(w: &mut Writer, doc: &Document) {
    let enc = binary::encode(doc);
    w.put_bytes(&enc);
}

pub fn get_document(r: &mut Reader<'_>) -> Result<Document, ProtocolError> {
    let raw = r.bytes("document")?;
    binary::decode(raw).map_err(|e| ProtocolError::Malformed(format!("document: {e}")))
}

pub fn put_documents(w: &mut Writer, docs: &[Document]) {
    w.put_u32(docs.len() as u32);
    for doc in docs {
        put_document(w, doc);
    }
}

pub fn get_documents(r: &mut Reader<'_>) -> Result<Vec<Document>, ProtocolError> {
    let n = r.seq_len("document list")?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_document(r)?);
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Items and query output
// ---------------------------------------------------------------------

/// Wrapper-document root label for shipped attribute/text items. The
/// wrapper never serializes (only the wrapped node does), so the label
/// is invisible to result equality.
const WIRE_WRAPPER: &str = "wire";

pub fn put_item(w: &mut Writer, item: &Item) {
    match item {
        Item::Node(doc, id) => {
            let node = doc.get(*id).expect("node belongs to doc");
            match node.kind() {
                NodeKind::Element => {
                    w.put_u8(0);
                    let sub = doc.subtree(*id).expect("element subtree");
                    put_document(w, &sub);
                }
                NodeKind::Attribute => {
                    w.put_u8(1);
                    w.put_str(node.label());
                    w.put_str(node.value().unwrap_or(""));
                }
                NodeKind::Text => {
                    w.put_u8(2);
                    w.put_str(node.value().unwrap_or(""));
                }
            }
        }
        Item::Str(s) => {
            w.put_u8(3);
            w.put_str(s);
        }
        Item::Num(n) => {
            w.put_u8(4);
            w.put_f64(*n);
        }
        Item::Bool(b) => {
            w.put_u8(5);
            w.put_bool(*b);
        }
    }
}

pub fn get_item(r: &mut Reader<'_>) -> Result<Item, ProtocolError> {
    Ok(match r.u8("item tag")? {
        0 => {
            let doc = get_document(r)?;
            Item::Node(Arc::new(doc), NodeId::ROOT)
        }
        1 => {
            let label = r.str("attribute label")?;
            let value = r.str("attribute value")?;
            let mut doc = Document::new(WIRE_WRAPPER);
            let id = doc.add_attribute(NodeId::ROOT, &label, &value);
            Item::Node(Arc::new(doc), id)
        }
        2 => {
            let value = r.str("text value")?;
            let mut doc = Document::new(WIRE_WRAPPER);
            let id = doc.add_text(NodeId::ROOT, &value);
            Item::Node(Arc::new(doc), id)
        }
        3 => Item::Str(r.str("string item")?),
        4 => Item::Num(r.f64("numeric item")?),
        5 => Item::Bool(r.bool("boolean item")?),
        other => return Err(ProtocolError::Malformed(format!("bad item tag {other}"))),
    })
}

pub fn put_sequence(w: &mut Writer, items: &Sequence) {
    w.put_u32(items.len() as u32);
    for item in items {
        put_item(w, item);
    }
}

pub fn get_sequence(r: &mut Reader<'_>) -> Result<Sequence, ProtocolError> {
    let n = r.seq_len("item sequence")?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_item(r)?);
    }
    Ok(out)
}

pub fn put_output(w: &mut Writer, out: &QueryOutput) {
    put_sequence(w, &out.items);
    w.put_u64(out.stats.collection_size as u64);
    w.put_u64(out.stats.docs_scanned as u64);
    w.put_bool(out.stats.index_used);
    w.put_f64(out.stats.elapsed);
    w.put_u64(out.stats.result_bytes as u64);
    w.put_u64(out.stats.morsels as u64);
}

pub fn get_output(r: &mut Reader<'_>) -> Result<QueryOutput, ProtocolError> {
    let items = get_sequence(r)?;
    let collection_size = r.u64("collection_size")? as usize;
    let docs_scanned = r.u64("docs_scanned")? as usize;
    let index_used = r.bool("index_used")?;
    let elapsed = r.f64("elapsed")?;
    let result_bytes = r.u64("result_bytes")? as usize;
    let morsels = r.u64("morsels")? as usize;
    Ok(QueryOutput {
        items,
        stats: QueryStats {
            collection_size,
            docs_scanned,
            index_used,
            elapsed,
            result_bytes,
            morsels,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use partix_query::parse_query;
    use partix_xml::parse;

    fn roundtrip_query(text: &str) {
        let q = parse_query(text).unwrap();
        let bytes = encode_query(&q);
        let back = decode_query(&bytes).unwrap();
        assert_eq!(q, back, "query codec roundtrip for {text}");
    }

    #[test]
    fn query_roundtrips() {
        roundtrip_query(r#"collection("items")/Item/Section"#);
        roundtrip_query(
            r#"for $i in collection("items")/Item
               let $s := $i/Section
               where $s = "CD" and $i/Price < 20
               order by $i/Name descending
               return <hit id="1">{$i/Name}</hit>"#,
        );
        roundtrip_query(r#"count(collection("items")//Picture[1]/@path)"#);
        roundtrip_query(r#"if (1 < 2) then -(1 + 2 div 3) else (1, 2, 3)"#);
        // the parser emits Expr::Text only inside constructors; cover the
        // tag with a hand-built AST
        let q = Query {
            expr: Expr::Element {
                name: "hit".into(),
                attrs: vec![("id".into(), "1".into())],
                children: vec![Expr::Text("label".into())],
            },
        };
        assert_eq!(decode_query(&encode_query(&q)).unwrap(), q);
    }

    #[test]
    fn item_kinds_roundtrip_by_serialization() {
        let doc = Arc::new(parse(r#"<a k="v"><b>text</b></a>"#).unwrap());
        let attr = doc
            .get(NodeId::ROOT)
            .unwrap()
            .descendants_or_self()
            .find(|n| n.kind() == NodeKind::Attribute)
            .unwrap()
            .id();
        let text = doc
            .get(NodeId::ROOT)
            .unwrap()
            .descendants_or_self()
            .find(|n| n.kind() == NodeKind::Text)
            .unwrap()
            .id();
        let items: Sequence = vec![
            Item::Node(doc.clone(), NodeId::ROOT),
            Item::Node(doc.clone(), attr),
            Item::Node(doc.clone(), text),
            Item::Str("plain".into()),
            Item::Num(12.5),
            Item::Bool(true),
        ];
        let mut w = Writer::new();
        put_sequence(&mut w, &items);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = get_sequence(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(items.len(), back.len());
        for (a, b) in items.iter().zip(back.iter()) {
            assert_eq!(a.serialize(), b.serialize());
            assert_eq!(a, b);
        }
    }

    #[test]
    fn output_roundtrips_stats() {
        let out = QueryOutput {
            items: vec![Item::Num(7.0)],
            stats: QueryStats {
                collection_size: 100,
                docs_scanned: 42,
                index_used: true,
                elapsed: 0.0125,
                result_bytes: 8,
                morsels: 3,
            },
        };
        let mut w = Writer::new();
        put_output(&mut w, &out);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = get_output(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.items, out.items);
        assert_eq!(back.stats.collection_size, 100);
        assert_eq!(back.stats.docs_scanned, 42);
        assert!(back.stats.index_used);
        assert_eq!(back.stats.result_bytes, 8);
        assert_eq!(back.stats.morsels, 3);
    }

    #[test]
    fn truncated_and_garbage_payloads_are_typed_errors() {
        let q = parse_query(r#"for $i in collection("c")/x return $i"#).unwrap();
        let bytes = encode_query(&q);
        for cut in 0..bytes.len() {
            assert!(decode_query(&bytes[..cut]).is_err(), "cut at {cut} must not decode");
        }
        assert!(decode_query(&[200, 1, 2, 3]).is_err());
        // trailing garbage is rejected too
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(decode_query(&padded).is_err());
    }

    #[test]
    fn depth_cap_stops_deep_nesting() {
        // Neg(Neg(...Num)) deeper than the cap: tag 6 repeated
        let mut bytes = vec![6u8; MAX_EXPR_DEPTH + 8];
        bytes.push(3);
        bytes.extend_from_slice(&1.0f64.to_bits().to_le_bytes());
        let err = decode_query(&bytes).unwrap_err();
        assert!(matches!(err, ProtocolError::Malformed(ref m) if m.contains("depth")), "{err}");
    }

    #[test]
    fn corrupt_count_does_not_overallocate() {
        // And-list claiming u32::MAX entries with an empty tail
        let mut bytes = vec![8u8];
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_query(&bytes).is_err());
    }
}
