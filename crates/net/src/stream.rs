//! PXN2 payloads: the chunked-streaming message layer.
//!
//! A client opens a *stream* by sending [`StreamQuery`] with a
//! client-chosen 64-bit stream id (unique per connection). The
//! coordinator answers with zero or more [`ItemChunk`] frames carrying
//! consecutive sequence numbers starting at 0, then exactly one
//! [`StreamEnd`] (success — with the total chunk/item counts so a
//! truncated stream is detectable) or [`StreamError`] (typed failure).
//! Multiple streams multiplex over one connection; frames of different
//! streams may interleave arbitrarily, but within one stream chunks are
//! ordered.
//!
//! [`StreamAssembler`] is the client-side state machine that re-checks
//! all of that: wrong stream id, duplicated / reordered / missing
//! chunks, chunks after end-of-stream, oversized chunks, and
//! end-of-stream totals that do not match what actually arrived all
//! surface as [`ProtocolError::Stream`] — never a panic, and never a
//! silently wrong or truncated reassembly.

use crate::codec::{get_sequence, put_sequence, Reader, Writer};
use crate::frame::ProtocolError;
use partix_query::Sequence;

/// Default number of items per [`ItemChunk`] when the client does not
/// ask for a specific granularity.
pub const DEFAULT_CHUNK_ITEMS: usize = 64;

/// Hard cap on items in one chunk. The frame layer already caps payload
/// *bytes*; this bounds the per-chunk allocation count independently so
/// a hostile peer cannot claim millions of tiny items in one frame.
pub const MAX_CHUNK_ITEMS: usize = 65_536;

fn stream_err(msg: String) -> ProtocolError {
    ProtocolError::Stream(msg)
}

/// Client → coordinator: open a result stream for one query.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamQuery {
    /// Client-chosen stream id, unique among this connection's live
    /// streams.
    pub stream: u64,
    /// The query text (parsed and planned by the coordinator).
    pub text: String,
    /// Forwarded to `ExecOptions::allow_partial`.
    pub allow_partial: bool,
    /// When true the coordinator materializes the full answer before
    /// sending (the pre-streaming behaviour, kept as the benchmark
    /// baseline). Chunk framing on the wire is identical either way.
    pub buffered: bool,
    /// Requested items per chunk; 0 means [`DEFAULT_CHUNK_ITEMS`].
    pub chunk_items: u32,
    /// Tenant header: empty = anonymous (the pre-tenancy behaviour),
    /// otherwise a registered tenant name whose admission quotas the
    /// coordinator applies before running. Hostile header bytes are
    /// rejected at decode time with a typed [`ProtocolError::Malformed`].
    pub tenant: String,
}

impl StreamQuery {
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u64(self.stream);
        w.put_str(&self.text);
        w.put_bool(self.allow_partial);
        w.put_bool(self.buffered);
        w.put_u32(self.chunk_items);
        w.put_str(&self.tenant);
        w.into_bytes()
    }

    pub fn decode(payload: &[u8]) -> Result<StreamQuery, ProtocolError> {
        let mut r = Reader::new(payload);
        let q = StreamQuery {
            stream: r.u64("stream id")?,
            text: r.str("query text")?,
            allow_partial: r.bool("allow_partial")?,
            buffered: r.bool("buffered")?,
            chunk_items: r.u32("chunk_items")?,
            tenant: {
                let tenant = r.str("tenant header")?;
                if tenant.is_empty() {
                    tenant
                } else {
                    crate::message::decode_tenant_header(tenant)?
                }
            },
        };
        r.finish()?;
        Ok(q)
    }

    /// Effective chunk granularity, clamped to the protocol cap.
    pub fn chunk_size(&self) -> usize {
        let n = if self.chunk_items == 0 {
            DEFAULT_CHUNK_ITEMS
        } else {
            self.chunk_items as usize
        };
        n.min(MAX_CHUNK_ITEMS)
    }
}

/// Coordinator → client: one slice of the answer, in final composition
/// order.
#[derive(Debug, Clone, PartialEq)]
pub struct ItemChunk {
    pub stream: u64,
    /// 0-based consecutive chunk sequence number within the stream.
    pub seq: u32,
    pub items: Sequence,
}

impl ItemChunk {
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u64(self.stream);
        w.put_u32(self.seq);
        put_sequence(&mut w, &self.items);
        w.into_bytes()
    }

    pub fn decode(payload: &[u8]) -> Result<ItemChunk, ProtocolError> {
        let mut r = Reader::new(payload);
        let stream = r.u64("stream id")?;
        let seq = r.u32("chunk seq")?;
        let items = get_sequence(&mut r)?;
        r.finish()?;
        if items.len() > MAX_CHUNK_ITEMS {
            return Err(stream_err(format!(
                "chunk of {} items exceeds the {MAX_CHUNK_ITEMS}-item cap",
                items.len()
            )));
        }
        Ok(ItemChunk { stream, seq, items })
    }
}

/// Deterministic per-query statistics shipped with [`StreamEnd`].
/// Everything here must be reproducible across streamed and buffered
/// executions of the same query over the same data — the streaming
/// differential suite asserts equality.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StreamStats {
    /// Sub-query sites that contributed (after localization pruning).
    pub sites: u32,
    /// Fragments the localization step pruned away.
    pub fragments_pruned: u32,
    /// Σ over sites of documents fed to node evaluators.
    pub docs_scanned: u64,
    /// True when the answer is missing fragments (`allow_partial`).
    pub partial: bool,
    /// The coordinator's catalog epoch at answer time (0 = standalone
    /// coordinator with no meta service attached).
    pub catalog_epoch: u64,
    /// Coordinator wall time in seconds (informational; not compared).
    pub elapsed: f64,
}

/// Coordinator → client: successful end of one stream.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamEnd {
    pub stream: u64,
    /// Total [`ItemChunk`] frames the coordinator sent for this stream.
    pub chunks: u32,
    /// Total items across those chunks.
    pub items: u64,
    pub stats: StreamStats,
}

impl StreamEnd {
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u64(self.stream);
        w.put_u32(self.chunks);
        w.put_u64(self.items);
        w.put_u32(self.stats.sites);
        w.put_u32(self.stats.fragments_pruned);
        w.put_u64(self.stats.docs_scanned);
        w.put_bool(self.stats.partial);
        w.put_u64(self.stats.catalog_epoch);
        w.put_f64(self.stats.elapsed);
        w.into_bytes()
    }

    pub fn decode(payload: &[u8]) -> Result<StreamEnd, ProtocolError> {
        let mut r = Reader::new(payload);
        let end = StreamEnd {
            stream: r.u64("stream id")?,
            chunks: r.u32("chunk count")?,
            items: r.u64("item count")?,
            stats: StreamStats {
                sites: r.u32("sites")?,
                fragments_pruned: r.u32("fragments_pruned")?,
                docs_scanned: r.u64("docs_scanned")?,
                partial: r.bool("partial")?,
                catalog_epoch: r.u64("catalog_epoch")?,
                elapsed: r.f64("elapsed")?,
            },
        };
        r.finish()?;
        Ok(end)
    }
}

/// Coordinator → client: typed failure of one stream. `retryable`
/// mirrors the dispatch layer's verdict — `true` means the same query
/// may succeed on a retry or on another coordinator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamError {
    pub stream: u64,
    pub retryable: bool,
    /// Typed classification shared with PXN1 — see
    /// [`crate::message::ErrorCode`]. Admission rejections arrive as
    /// [`ErrorCode::AdmissionRejected`](crate::message::ErrorCode) with
    /// a `retry_after_ms` hint, never as a hang or a dropped stream.
    pub code: crate::message::ErrorCode,
    /// Client retry hint in milliseconds (0 = none).
    pub retry_after_ms: u64,
    pub message: String,
}

impl StreamError {
    /// A failure with no tenancy classification.
    pub fn failure(stream: u64, retryable: bool, message: impl Into<String>) -> StreamError {
        StreamError {
            stream,
            retryable,
            code: crate::message::ErrorCode::Generic,
            retry_after_ms: 0,
            message: message.into(),
        }
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u64(self.stream);
        w.put_bool(self.retryable);
        w.put_u8(self.code.as_u8());
        w.put_u64(self.retry_after_ms);
        w.put_str(&self.message);
        w.into_bytes()
    }

    pub fn decode(payload: &[u8]) -> Result<StreamError, ProtocolError> {
        let mut r = Reader::new(payload);
        let e = StreamError {
            stream: r.u64("stream id")?,
            retryable: r.bool("retryable")?,
            code: crate::message::ErrorCode::from_u8(r.u8("error code")?)?,
            retry_after_ms: r.u64("retry_after_ms")?,
            message: r.str("error message")?,
        };
        r.finish()?;
        Ok(e)
    }
}

/// Client → coordinator: abandon a stream. The server stops producing
/// chunks; anything already queued may still arrive and must be ignored
/// by the client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CancelStream {
    pub stream: u64,
}

impl CancelStream {
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u64(self.stream);
        w.into_bytes()
    }

    pub fn decode(payload: &[u8]) -> Result<CancelStream, ProtocolError> {
        let mut r = Reader::new(payload);
        let c = CancelStream { stream: r.u64("stream id")? };
        r.finish()?;
        Ok(c)
    }
}

/// How one stream concluded, as validated by [`StreamAssembler`].
#[derive(Debug, Clone, PartialEq)]
pub enum StreamOutcome {
    /// All chunks arrived in order and the totals checked out.
    Complete(StreamEnd),
    /// The coordinator reported a typed failure.
    Failed(StreamError),
}

/// Client-side reassembly state machine for one stream.
#[derive(Debug)]
pub struct StreamAssembler {
    stream: u64,
    next_seq: u32,
    items: Sequence,
    outcome: Option<StreamOutcome>,
}

impl StreamAssembler {
    pub fn new(stream: u64) -> StreamAssembler {
        StreamAssembler { stream, next_seq: 0, items: Vec::new(), outcome: None }
    }

    pub fn stream(&self) -> u64 {
        self.stream
    }

    /// Items reassembled so far (final order).
    pub fn items(&self) -> &Sequence {
        &self.items
    }

    /// `Some` once [`StreamEnd`] or [`StreamError`] was accepted.
    pub fn outcome(&self) -> Option<&StreamOutcome> {
        self.outcome.as_ref()
    }

    pub fn is_done(&self) -> bool {
        self.outcome.is_some()
    }

    fn check_open(&self, what: &str, stream: u64) -> Result<(), ProtocolError> {
        if stream != self.stream {
            return Err(stream_err(format!(
                "{what} for stream {stream} routed to assembler of stream {}",
                self.stream
            )));
        }
        if self.outcome.is_some() {
            return Err(stream_err(format!(
                "{what} for stream {stream} after its end-of-stream"
            )));
        }
        Ok(())
    }

    /// Accept the next chunk. Returns the number of items it added.
    pub fn accept_chunk(&mut self, chunk: ItemChunk) -> Result<usize, ProtocolError> {
        self.check_open("chunk", chunk.stream)?;
        if chunk.items.len() > MAX_CHUNK_ITEMS {
            return Err(stream_err(format!(
                "chunk {} of stream {} carries {} items (cap {MAX_CHUNK_ITEMS})",
                chunk.seq,
                chunk.stream,
                chunk.items.len()
            )));
        }
        if chunk.seq != self.next_seq {
            let verb = if chunk.seq < self.next_seq { "duplicated or replayed" } else { "skipped ahead" };
            return Err(stream_err(format!(
                "stream {}: chunk seq {} {verb} (expected {})",
                chunk.stream, chunk.seq, self.next_seq
            )));
        }
        self.next_seq = self.next_seq.checked_add(1).ok_or_else(|| {
            stream_err(format!("stream {}: chunk seq overflow", chunk.stream))
        })?;
        let added = chunk.items.len();
        self.items.extend(chunk.items);
        Ok(added)
    }

    /// Accept end-of-stream and validate the totals against what
    /// actually arrived — the defense against silent truncation.
    pub fn finish(&mut self, end: StreamEnd) -> Result<(), ProtocolError> {
        self.check_open("end-of-stream", end.stream)?;
        if end.chunks != self.next_seq {
            return Err(stream_err(format!(
                "stream {}: end-of-stream declares {} chunks but {} arrived",
                end.stream, end.chunks, self.next_seq
            )));
        }
        if end.items != self.items.len() as u64 {
            return Err(stream_err(format!(
                "stream {}: end-of-stream declares {} items but {} arrived",
                end.stream,
                end.items,
                self.items.len()
            )));
        }
        self.outcome = Some(StreamOutcome::Complete(end));
        Ok(())
    }

    /// Accept a typed stream failure.
    pub fn fail(&mut self, err: StreamError) -> Result<(), ProtocolError> {
        self.check_open("stream error", err.stream)?;
        self.outcome = Some(StreamOutcome::Failed(err));
        Ok(())
    }

    /// Consume the assembler, returning the reassembled items and the
    /// outcome. Errors if the stream never concluded (truncation).
    pub fn into_result(self) -> Result<(Sequence, StreamOutcome), ProtocolError> {
        match self.outcome {
            Some(outcome) => Ok((self.items, outcome)),
            None => Err(ProtocolError::Truncated { context: "stream (no end-of-stream)" }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use partix_query::Item;

    fn chunk(stream: u64, seq: u32, n: usize) -> ItemChunk {
        ItemChunk {
            stream,
            seq,
            items: (0..n).map(|i| Item::Num(i as f64)).collect(),
        }
    }

    fn end(stream: u64, chunks: u32, items: u64) -> StreamEnd {
        StreamEnd { stream, chunks, items, stats: StreamStats::default() }
    }

    #[test]
    fn message_roundtrips() {
        let q = StreamQuery {
            stream: 7,
            text: "collection(\"x\")/a".into(),
            allow_partial: true,
            buffered: false,
            chunk_items: 32,
            tenant: "team-a".into(),
        };
        assert_eq!(StreamQuery::decode(&q.encode()).unwrap(), q);
        let anon = StreamQuery { tenant: String::new(), ..q };
        assert_eq!(StreamQuery::decode(&anon.encode()).unwrap(), anon);

        let c = chunk(9, 3, 5);
        assert_eq!(ItemChunk::decode(&c.encode()).unwrap(), c);

        let e = StreamEnd {
            stream: 9,
            chunks: 4,
            items: 20,
            stats: StreamStats {
                sites: 4,
                fragments_pruned: 2,
                docs_scanned: 123,
                partial: false,
                catalog_epoch: 11,
                elapsed: 0.25,
            },
        };
        assert_eq!(StreamEnd::decode(&e.encode()).unwrap(), e);

        let err = StreamError::failure(1, true, "boom");
        assert_eq!(StreamError::decode(&err.encode()).unwrap(), err);
        let rejected = StreamError {
            stream: 2,
            retryable: false,
            code: crate::message::ErrorCode::AdmissionRejected,
            retry_after_ms: 100,
            message: "quota".into(),
        };
        assert_eq!(StreamError::decode(&rejected.encode()).unwrap(), rejected);

        let cancel = CancelStream { stream: 3 };
        assert_eq!(CancelStream::decode(&cancel.encode()).unwrap(), cancel);
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = CancelStream { stream: 3 }.encode();
        bytes.push(0xFF);
        assert!(CancelStream::decode(&bytes).is_err());
        let mut bytes = chunk(1, 0, 2).encode();
        bytes.push(0x00);
        assert!(ItemChunk::decode(&bytes).is_err());
    }

    #[test]
    fn hostile_stream_tenant_headers_are_typed_errors() {
        let base = StreamQuery {
            stream: 1,
            text: "q".into(),
            allow_partial: false,
            buffered: false,
            chunk_items: 0,
            tenant: String::new(),
        };
        for bad in [
            "has space".to_string(),
            "x".repeat(partix_tenant::MAX_TENANT_NAME + 1),
            "tab\tname".to_string(),
        ] {
            let q = StreamQuery { tenant: bad, ..base.clone() };
            assert!(
                matches!(StreamQuery::decode(&q.encode()), Err(ProtocolError::Malformed(_))),
                "hostile stream tenant header must decode to a typed error"
            );
        }
        // unknown stream-error code byte is typed too
        let mut bytes = StreamError::failure(1, false, "x").encode();
        bytes[9] = 99; // u64 stream id (8) + bool retryable (1), then the code byte
        assert!(matches!(StreamError::decode(&bytes), Err(ProtocolError::Malformed(_))));
    }

    #[test]
    fn assembler_happy_path() {
        let mut a = StreamAssembler::new(5);
        assert_eq!(a.accept_chunk(chunk(5, 0, 3)).unwrap(), 3);
        assert_eq!(a.accept_chunk(chunk(5, 1, 2)).unwrap(), 2);
        a.finish(end(5, 2, 5)).unwrap();
        let (items, outcome) = a.into_result().unwrap();
        assert_eq!(items.len(), 5);
        assert!(matches!(outcome, StreamOutcome::Complete(_)));
    }

    #[test]
    fn assembler_rejects_disorder_duplication_and_truncation() {
        // duplicate
        let mut a = StreamAssembler::new(1);
        a.accept_chunk(chunk(1, 0, 1)).unwrap();
        assert!(matches!(
            a.accept_chunk(chunk(1, 0, 1)).unwrap_err(),
            ProtocolError::Stream(_)
        ));
        // gap
        let mut a = StreamAssembler::new(1);
        assert!(matches!(
            a.accept_chunk(chunk(1, 2, 1)).unwrap_err(),
            ProtocolError::Stream(_)
        ));
        // wrong stream id
        let mut a = StreamAssembler::new(1);
        assert!(matches!(
            a.accept_chunk(chunk(2, 0, 1)).unwrap_err(),
            ProtocolError::Stream(_)
        ));
        // totals lie about chunk count
        let mut a = StreamAssembler::new(1);
        a.accept_chunk(chunk(1, 0, 4)).unwrap();
        assert!(matches!(a.finish(end(1, 2, 4)).unwrap_err(), ProtocolError::Stream(_)));
        // totals lie about item count
        let mut a = StreamAssembler::new(1);
        a.accept_chunk(chunk(1, 0, 4)).unwrap();
        assert!(matches!(a.finish(end(1, 1, 5)).unwrap_err(), ProtocolError::Stream(_)));
        // chunk after end
        let mut a = StreamAssembler::new(1);
        a.finish(end(1, 0, 0)).unwrap();
        assert!(matches!(
            a.accept_chunk(chunk(1, 1, 1)).unwrap_err(),
            ProtocolError::Stream(_)
        ));
        // no end at all
        let mut a = StreamAssembler::new(1);
        a.accept_chunk(chunk(1, 0, 1)).unwrap();
        assert!(matches!(
            a.into_result().unwrap_err(),
            ProtocolError::Truncated { .. }
        ));
    }
}
