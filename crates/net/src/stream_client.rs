//! The PXN2 streaming client and the replicated-coordinator pool.
//!
//! [`StreamClient`] is one multiplexed connection: a background reader
//! thread demultiplexes incoming frames by stream id into per-call
//! channels, so any number of threads can run queries over the same
//! socket concurrently. Reassembly goes through [`StreamAssembler`], so
//! every protocol violation a hostile or truncated server can produce
//! surfaces as a typed error — a stream that never reaches its
//! end-of-stream is [`ProtocolError::Truncated`], never a silently
//! short result.
//!
//! [`CoordinatorPool`] layers coordinator replication on top: it
//! round-robins queries across N coordinator addresses and, because
//! queries are idempotent reads, transparently re-issues a query on the
//! next coordinator when one dies mid-stream (connect failure, mid-frame
//! EOF, or a retryable server verdict). Killing one coordinator
//! mid-workload costs its in-flight queries one retry each — not their
//! answers.

use crate::frame::{self, encode_frame, FrameKind, ProtocolError};
use crate::stream::{
    CancelStream, ItemChunk, StreamAssembler, StreamEnd, StreamError, StreamOutcome, StreamQuery,
    StreamStats,
};
use partix_engine::metrics;
use partix_query::{Item, Sequence};
use std::collections::HashMap;
use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Client-side tuning.
#[derive(Debug, Clone)]
pub struct StreamClientConfig {
    /// Per-query deadline: a stream that makes no progress for this long
    /// fails with a typed timeout (and counts as a transport failure for
    /// failover purposes).
    pub timeout: Duration,
    /// Requested items per chunk (0 = server default).
    pub chunk_items: u32,
}

impl Default for StreamClientConfig {
    fn default() -> StreamClientConfig {
        StreamClientConfig { timeout: Duration::from_secs(30), chunk_items: 0 }
    }
}

/// Per-query knobs.
#[derive(Debug, Clone, Default)]
pub struct StreamOpts {
    pub allow_partial: bool,
    /// Ask the coordinator to materialize the whole answer before
    /// sending (benchmark baseline; the wire format is unchanged).
    pub buffered: bool,
    /// Execute as this tenant (PXN2 tenant header). `None` is the
    /// anonymous compatibility path: no admission control applies.
    pub tenant: Option<String>,
}

/// A completed stream.
#[derive(Debug, Clone)]
pub struct StreamResult {
    pub items: Sequence,
    pub stats: StreamStats,
    /// Chunks the answer arrived in (≥ 1 stream frame even when empty).
    pub chunks: u32,
}

/// How a streamed query failed.
#[derive(Debug, Clone)]
pub enum StreamCallError {
    /// The coordinator answered with a typed [`StreamError`]. When
    /// `retryable`, the same query may succeed elsewhere. `code`
    /// distinguishes admission rejections (with a `retry_after_ms`
    /// back-off hint) from plain failures.
    Remote {
        retryable: bool,
        code: crate::message::ErrorCode,
        retry_after_ms: u64,
        message: String,
    },
    /// Transport or protocol failure — connection lost mid-stream,
    /// malformed frames, reassembly violations, timeout. Always safe to
    /// retry on another coordinator (queries are idempotent reads).
    Protocol(ProtocolError),
}

impl std::fmt::Display for StreamCallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamCallError::Remote { retryable, message, .. } => {
                write!(f, "coordinator error (retryable={retryable}): {message}")
            }
            StreamCallError::Protocol(e) => write!(f, "transport: {e}"),
        }
    }
}

impl std::error::Error for StreamCallError {}

type FrameEvent = Result<frame::Frame, ProtocolError>;
type Routes = Mutex<HashMap<u64, crossbeam::channel::Sender<FrameEvent>>>;

/// One multiplexed PXN2 connection. Cheap to share (`Arc`) across
/// threads; every concurrent query gets its own stream id.
pub struct StreamClient {
    sock: Mutex<TcpStream>,
    reader_sock: TcpStream,
    routes: Arc<Routes>,
    next_stream: AtomicU64,
    dead: Arc<AtomicBool>,
    config: StreamClientConfig,
    reader: Mutex<Option<JoinHandle<()>>>,
}

impl StreamClient {
    /// Connect and start the demultiplexing reader thread.
    pub fn connect(addr: &str, config: StreamClientConfig) -> Result<StreamClient, ProtocolError> {
        let sock = TcpStream::connect(addr).map_err(ProtocolError::from)?;
        sock.set_nodelay(true).ok();
        let reader_sock = sock.try_clone().map_err(ProtocolError::from)?;
        let routes: Arc<Routes> = Arc::new(Mutex::new(HashMap::new()));
        let dead = Arc::new(AtomicBool::new(false));
        let mut rs = reader_sock.try_clone().map_err(ProtocolError::from)?;
        let thread_routes = Arc::clone(&routes);
        let thread_dead = Arc::clone(&dead);
        let reader = std::thread::Builder::new()
            .name("pxn2-demux".to_owned())
            .spawn(move || reader_loop(&mut rs, &thread_routes, &thread_dead))
            .map_err(|e| ProtocolError::Io(e.to_string()))?;
        metrics::global().counter("net.stream.client_connects").inc();
        Ok(StreamClient {
            sock: Mutex::new(sock),
            reader_sock,
            routes,
            next_stream: AtomicU64::new(1),
            dead,
            config,
            reader: Mutex::new(Some(reader)),
        })
    }

    /// True once the connection failed; the owner should reconnect.
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Acquire)
    }

    /// Run one query, buffering the streamed chunks into a final result.
    pub fn query(&self, text: &str, opts: StreamOpts) -> Result<StreamResult, StreamCallError> {
        self.query_with(text, opts, |_| {})
    }

    /// Run one query, observing each chunk as it arrives (time-to-first-
    /// item measurements, incremental consumers).
    pub fn query_with(
        &self,
        text: &str,
        opts: StreamOpts,
        mut on_chunk: impl FnMut(&[Item]),
    ) -> Result<StreamResult, StreamCallError> {
        if self.is_dead() {
            return Err(StreamCallError::Protocol(ProtocolError::Io(
                "connection already failed".to_owned(),
            )));
        }
        let stream = self.next_stream.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = crossbeam::channel::unbounded::<FrameEvent>();
        self.routes.lock().unwrap_or_else(|e| e.into_inner()).insert(stream, tx);
        let guard = RouteGuard { routes: &self.routes, stream };

        let open = StreamQuery {
            stream,
            text: text.to_owned(),
            allow_partial: opts.allow_partial,
            buffered: opts.buffered,
            chunk_items: self.config.chunk_items,
            tenant: opts.tenant.clone().unwrap_or_default(),
        };
        {
            let mut sock = self.sock.lock().unwrap_or_else(|e| e.into_inner());
            let bytes = encode_frame(FrameKind::OpenStream, &open.encode());
            sock.write_all(&bytes).and_then(|()| sock.flush()).map_err(|e| {
                self.dead.store(true, Ordering::Release);
                StreamCallError::Protocol(ProtocolError::from(e))
            })?;
        }

        let mut asm = StreamAssembler::new(stream);
        let outcome = loop {
            let event = rx
                .recv_timeout(self.config.timeout)
                .map_err(|_| {
                    // Give up on the stream; tell the server (best effort).
                    self.cancel(stream);
                    StreamCallError::Protocol(ProtocolError::Io(format!(
                        "stream {stream} made no progress for {:?}",
                        self.config.timeout
                    )))
                })?
                .map_err(StreamCallError::Protocol)?;
            match event.kind {
                FrameKind::ItemChunk => {
                    let chunk = ItemChunk::decode(&event.payload)
                        .map_err(StreamCallError::Protocol)?;
                    let before = asm.items().len();
                    asm.accept_chunk(chunk).map_err(StreamCallError::Protocol)?;
                    on_chunk(&asm.items()[before..]);
                }
                FrameKind::StreamEnd => {
                    let end = StreamEnd::decode(&event.payload)
                        .map_err(StreamCallError::Protocol)?;
                    asm.finish(end).map_err(StreamCallError::Protocol)?;
                    break asm.into_result().map_err(StreamCallError::Protocol)?;
                }
                FrameKind::StreamError => {
                    let err = StreamError::decode(&event.payload)
                        .map_err(StreamCallError::Protocol)?;
                    asm.fail(err).map_err(StreamCallError::Protocol)?;
                    break asm.into_result().map_err(StreamCallError::Protocol)?;
                }
                other => {
                    return Err(StreamCallError::Protocol(ProtocolError::Stream(format!(
                        "unexpected {other:?} frame on a client connection"
                    ))));
                }
            }
        };
        drop(guard);
        match outcome {
            (items, StreamOutcome::Complete(end)) => Ok(StreamResult {
                items,
                stats: end.stats,
                chunks: end.chunks,
            }),
            (_, StreamOutcome::Failed(e)) => Err(StreamCallError::Remote {
                retryable: e.retryable,
                code: e.code,
                retry_after_ms: e.retry_after_ms,
                message: e.message,
            }),
        }
    }

    /// Best-effort cancel for an abandoned stream.
    fn cancel(&self, stream: u64) {
        let mut sock = self.sock.lock().unwrap_or_else(|e| e.into_inner());
        let bytes = encode_frame(FrameKind::CancelStream, &CancelStream { stream }.encode());
        let _ = sock.write_all(&bytes).and_then(|()| sock.flush());
    }
}

impl Drop for StreamClient {
    fn drop(&mut self) {
        self.dead.store(true, Ordering::Release);
        let _ = self.reader_sock.shutdown(std::net::Shutdown::Both);
        if let Some(h) = self.reader.lock().unwrap_or_else(|e| e.into_inner()).take() {
            let _ = h.join();
        }
    }
}

/// Deregisters a stream's route on scope exit (success, error, or
/// timeout alike), so the demux map cannot leak entries.
struct RouteGuard<'a> {
    routes: &'a Routes,
    stream: u64,
}

impl Drop for RouteGuard<'_> {
    fn drop(&mut self) {
        self.routes
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&self.stream);
    }
}

/// Peek the stream id every PXN2 payload starts with.
fn payload_stream_id(payload: &[u8]) -> Option<u64> {
    payload.get(..8).map(|b| {
        u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
    })
}

fn reader_loop(sock: &mut TcpStream, routes: &Routes, dead: &AtomicBool) {
    let fatal = loop {
        match frame::read_frame(sock) {
            Ok(Some((f, _))) => {
                let Some(stream) = payload_stream_id(&f.payload) else {
                    break ProtocolError::Malformed("stream frame shorter than its id".into());
                };
                // Stream id 0 is a connection-level server fault: fail
                // every stream in flight with the typed error.
                if stream == 0 && f.kind == FrameKind::StreamError {
                    let msg = StreamError::decode(&f.payload)
                        .map(|e| e.message)
                        .unwrap_or_else(|e| e.to_string());
                    break ProtocolError::Stream(msg);
                }
                let target = routes
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .get(&stream)
                    .cloned();
                match target {
                    Some(tx) => {
                        let _ = tx.send(Ok(f));
                    }
                    // Late chunks of a cancelled/timed-out stream — the
                    // protocol says to ignore them.
                    None => metrics::global().counter("net.stream.orphan_frames").inc(),
                }
            }
            Ok(None) => break ProtocolError::Truncated { context: "stream connection" },
            Err(e) => break e,
        }
    };
    dead.store(true, Ordering::Release);
    for (_, tx) in routes.lock().unwrap_or_else(|e| e.into_inner()).drain() {
        let _ = tx.send(Err(fatal.clone()));
    }
}

// ---------------------------------------------------------------------
// Replicated coordinators
// ---------------------------------------------------------------------

/// Round-robin client over N interchangeable coordinators. Stateless
/// coordinators + idempotent read queries make failover a pure retry:
/// any transport-level failure moves the query to the next coordinator.
pub struct CoordinatorPool {
    addrs: Vec<String>,
    clients: Vec<Mutex<Option<Arc<StreamClient>>>>,
    next: AtomicUsize,
    failovers: AtomicU64,
    config: StreamClientConfig,
    sticky: bool,
}

impl CoordinatorPool {
    pub fn new(addrs: Vec<String>, config: StreamClientConfig) -> CoordinatorPool {
        Self::build(addrs, config, false)
    }

    /// A pool pinned to `addrs[0]` as its primary: every query starts
    /// there and the rest of the list is failover order only. Sticky
    /// routing keeps one warm connection per client instead of one per
    /// coordinator; fleet-level balance comes from giving each client a
    /// differently rotated address list.
    pub fn new_sticky(addrs: Vec<String>, config: StreamClientConfig) -> CoordinatorPool {
        Self::build(addrs, config, true)
    }

    fn build(addrs: Vec<String>, config: StreamClientConfig, sticky: bool) -> CoordinatorPool {
        assert!(!addrs.is_empty(), "coordinator pool needs at least one address");
        let clients = addrs.iter().map(|_| Mutex::new(None)).collect();
        CoordinatorPool {
            addrs,
            clients,
            next: AtomicUsize::new(0),
            failovers: AtomicU64::new(0),
            config,
            sticky,
        }
    }

    /// Coordinator addresses this pool rotates over.
    pub fn addrs(&self) -> &[String] {
        &self.addrs
    }

    /// Times a query had to move to another coordinator (or reconnect)
    /// because its first choice failed.
    pub fn failovers(&self) -> u64 {
        self.failovers.load(Ordering::Relaxed)
    }

    fn client_at(&self, idx: usize) -> Result<Arc<StreamClient>, ProtocolError> {
        let mut slot = self.clients[idx].lock().unwrap_or_else(|e| e.into_inner());
        if let Some(c) = slot.as_ref() {
            if !c.is_dead() {
                return Ok(Arc::clone(c));
            }
        }
        let fresh = Arc::new(StreamClient::connect(&self.addrs[idx], self.config.clone())?);
        *slot = Some(Arc::clone(&fresh));
        Ok(fresh)
    }

    fn invalidate(&self, idx: usize, client: &Arc<StreamClient>) {
        let mut slot = self.clients[idx].lock().unwrap_or_else(|e| e.into_inner());
        if let Some(cur) = slot.as_ref() {
            if Arc::ptr_eq(cur, client) {
                *slot = None;
            }
        }
    }

    /// Run one query, failing over across coordinators. Each coordinator
    /// is tried at most twice (once on a possibly-stale pooled
    /// connection, once fresh) before the pool gives up with the last
    /// transport error.
    pub fn query(&self, text: &str, opts: StreamOpts) -> Result<StreamResult, StreamCallError> {
        self.query_with(text, opts, |_| {})
    }

    pub fn query_with(
        &self,
        text: &str,
        opts: StreamOpts,
        mut on_chunk: impl FnMut(&[Item]),
    ) -> Result<StreamResult, StreamCallError> {
        let start = if self.sticky { 0 } else { self.next.fetch_add(1, Ordering::Relaxed) };
        let attempts = self.addrs.len() * 2;
        let mut last = StreamCallError::Protocol(ProtocolError::Io("no coordinator reachable".into()));
        for attempt in 0..attempts {
            let idx = (start + attempt) % self.addrs.len();
            if attempt > 0 {
                self.failovers.fetch_add(1, Ordering::Relaxed);
                metrics::global().counter("net.stream.failovers").inc();
            }
            let client = match self.client_at(idx) {
                Ok(c) => c,
                Err(e) => {
                    last = StreamCallError::Protocol(e);
                    continue;
                }
            };
            match client.query_with(text, opts.clone(), &mut on_chunk) {
                Ok(r) => return Ok(r),
                Err(StreamCallError::Protocol(e)) => {
                    self.invalidate(idx, &client);
                    last = StreamCallError::Protocol(e);
                }
                Err(err @ StreamCallError::Remote { retryable: true, .. }) => {
                    last = err;
                }
                Err(fatal @ StreamCallError::Remote { retryable: false, .. }) => {
                    return Err(fatal);
                }
            }
        }
        Err(last)
    }
}
