//! # partix-net — the PartiX network transport
//!
//! PartiX is middleware that ships localized sub-queries to the nodes
//! hosting each fragment and composes their answers (PAPER Sec. 4).
//! Everything below the driver trait used to run in-process; this crate
//! makes the hop real:
//!
//! * [`frame`] — length-prefixed, checksummed, versioned binary frames.
//! * [`codec`] — defensive payload encoding for queries (full AST),
//!   result sequences, and documents.
//! * [`message`] — the request/response vocabulary (the driver trait on
//!   the wire), including typed, retryability-tagged errors.
//! * [`server`] — [`NodeServer`]: a per-node TCP listener hosting
//!   fragments behind the existing storage stack, with graceful
//!   drain-then-close shutdown.
//! * [`client`] — [`RemoteDriver`]: a connection-pooled
//!   `PartixDriver` implementation, so dispatch modes, retry/failover
//!   policy, fault injection, caching, and tracing all work unchanged
//!   over real sockets.
//!
//! The coordinator never knows whether a node is an in-process
//! `Database` or a socket away — that is the point: the local-vs-remote
//! differential suite (`tests/remote_differential.rs`) holds the two
//! worlds to byte-identical answers.

pub mod client;
pub mod codec;
pub mod coord;
pub mod frame;
pub mod message;
pub mod server;
pub mod stream;
pub mod stream_client;
pub mod stream_server;

pub use client::{RemoteDriver, RemoteDriverConfig, WireStats};
pub use coord::{serve_coordinator, CoordHandler};
pub use frame::{Frame, FrameKind, ProtocolError, HEADER_LEN, MAX_PAYLOAD, VERSION, VERSION2};
pub use message::{ErrorCode, Request, Response, WireError};
pub use server::{NodeServer, ServerConfig, ServerTenancy};
pub use stream::{
    CancelStream, ItemChunk, StreamAssembler, StreamEnd, StreamError, StreamOutcome, StreamQuery,
    StreamStats,
};
pub use stream_client::{
    CoordinatorPool, StreamCallError, StreamClient, StreamClientConfig, StreamOpts, StreamResult,
};
pub use stream_server::{
    ChunkSink, SinkClosed, StreamFailure, StreamHandler, StreamServer, StreamServerConfig,
};
