//! The coordinator endpoint: a [`StreamHandler`] that answers `PXN2`
//! stream queries by running them on an attached [`PartiX`] engine.
//!
//! Any number of these can serve the *same* repository: each coordinator
//! holds its own [`PartiX`] front-end sharing the cluster's nodes
//! ([`partix_engine::Cluster`] is `share()`-able) and attaches to one
//! [`partix_engine::MetaService`], which keeps their distribution
//! catalogs convergent through epoch bumps. Clients spread load with
//! [`crate::CoordinatorPool`] and fail over when a coordinator dies —
//! the coordinators are stateless, so any of them can answer any query.

use crate::stream::{StreamQuery, StreamStats};
use crate::stream_server::{
    ChunkSink, SinkClosed, StreamFailure, StreamHandler, StreamServer, StreamServerConfig,
};
use partix_engine::{ExecOptions, PartiX, PartixError, QueryReport};
use std::io;
use std::sync::Arc;
use std::time::Instant;

/// Serve `PXN2` stream queries from `px`. The returned server owns its
/// event loop and workers; drop (or [`StreamServer::shutdown`]) to stop.
pub fn serve_coordinator(
    addr: &str,
    px: Arc<PartiX>,
    config: StreamServerConfig,
) -> io::Result<StreamServer> {
    StreamServer::bind(addr, Arc::new(CoordHandler { px }), config)
}

/// [`StreamHandler`] bridging the wire to [`PartiX`].
pub struct CoordHandler {
    pub px: Arc<PartiX>,
}

impl CoordHandler {
    fn stats(&self, report: &QueryReport, started: Instant) -> StreamStats {
        StreamStats {
            sites: report.sites.len() as u32,
            fragments_pruned: report.fragments_pruned as u32,
            docs_scanned: report.sites.iter().map(|s| s.docs_scanned as u64).sum(),
            partial: report.partial,
            catalog_epoch: self.px.meta_epoch_seen(),
            elapsed: started.elapsed().as_secs_f64(),
        }
    }
}

impl StreamHandler for CoordHandler {
    fn run(
        &self,
        query: &StreamQuery,
        sink: &dyn ChunkSink,
    ) -> Result<StreamStats, StreamFailure> {
        let started = Instant::now();
        let mut options =
            ExecOptions { allow_partial: query.allow_partial, ..ExecOptions::default() };
        if !query.tenant.is_empty() {
            options.tenant = Some(self.px.resolve_tenant(&query.tenant).map_err(failure_of)?);
        }
        let report = if query.buffered {
            // diagnostic mode: materialize the whole answer first, then
            // ship it — the baseline the streaming path is measured against
            let result = self
                .px
                .execute_with(&query.text, options)
                .map_err(failure_of)?;
            sink.emit(&result.items).map_err(closed_failure)?;
            result.report
        } else {
            let mut emit_failed = false;
            let result = self
                .px
                .execute_streamed_with(&query.text, options, &mut |items| {
                    match sink.emit(&items) {
                        Ok(()) => true,
                        Err(SinkClosed) => {
                            emit_failed = true;
                            false
                        }
                    }
                })
                .map_err(|e| {
                    if emit_failed {
                        // the engine's "consumer cancelled" error means
                        // *our* sink died (client gone / cancelled), not a
                        // query fault
                        closed_failure(SinkClosed)
                    } else {
                        failure_of(e)
                    }
                })?;
            result.report
        };
        Ok(self.stats(&report, started))
    }
}

fn closed_failure(_: SinkClosed) -> StreamFailure {
    StreamFailure::failure(false, "stream closed by client")
}

/// Map engine errors onto the wire's retryable/fatal split: transient
/// cluster states invite a client retry (possibly on another
/// coordinator); query defects do not. Admission rejections carry their
/// own error code plus the controller's back-off hint.
fn failure_of(err: PartixError) -> StreamFailure {
    if let PartixError::AdmissionRejected { ref tenant, retry_after_ms, ref reason } = err {
        let code = if reason.contains("unknown tenant") || reason.contains("no tenancy") {
            crate::message::ErrorCode::UnknownTenant
        } else {
            crate::message::ErrorCode::AdmissionRejected
        };
        return StreamFailure {
            retryable: false,
            code,
            retry_after_ms,
            message: format!("tenant {tenant:?}: {reason}"),
        };
    }
    let retryable = matches!(
        err,
        PartixError::CatalogSwapped | PartixError::NodeUnavailable { .. }
    );
    StreamFailure::failure(retryable, err.to_string())
}
