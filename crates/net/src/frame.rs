//! The length-prefixed binary frame layer.
//!
//! Every message on a PartiX connection is one frame:
//!
//! ```text
//! offset  size  field
//!      0     4  magic  "PXN1"
//!      4     1  version (currently 1)
//!      5     1  frame kind (see [`FrameKind`])
//!      6     4  payload length, u32 little-endian
//!     10     4  CRC-32 (IEEE) of the payload, u32 little-endian
//!     14     n  payload
//! ```
//!
//! The header is fixed-size so a reader always knows how many bytes to
//! wait for; the length prefix is validated against a hard cap *before*
//! any allocation, and the checksum is verified before the payload is
//! handed to the codec. Every way a peer can deviate — wrong magic,
//! unknown version or kind, oversized length, short read, corrupted
//! payload — surfaces as a typed [`ProtocolError`], never a panic: a
//! malformed peer must not be able to take down a coordinator or a node
//! server.
//!
//! Versioning: the version byte names the *frame semantics*. A receiver
//! rejects versions it does not know with
//! [`ProtocolError::UnsupportedVersion`] (no silent best-effort parsing),
//! so incompatible peers fail fast at the first frame. New frame kinds
//! within a version are likewise rejected by older peers via
//! [`ProtocolError::UnknownFrame`].

use std::fmt;
use std::io::{self, Read, Write};

/// Frame magic: "PXN1" (PartiX Net, layout 1).
pub const MAGIC: [u8; 4] = *b"PXN1";

/// Current protocol version.
pub const VERSION: u8 = 1;

/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 14;

/// Hard cap on a frame payload (64 MiB). A length field above this is
/// rejected before any allocation happens.
pub const MAX_PAYLOAD: usize = 64 * 1024 * 1024;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Coordinator → node: an encoded [`crate::message::Request`].
    Request = 1,
    /// Node → coordinator: an encoded [`crate::message::Response`].
    Result = 2,
    /// Node → coordinator: an encoded [`crate::message::WireError`].
    Error = 3,
    /// Coordinator → node: liveness probe (empty payload).
    HealthPing = 4,
    /// Node → coordinator: probe answer (empty payload).
    HealthPong = 5,
}

impl FrameKind {
    fn from_u8(b: u8) -> Result<FrameKind, ProtocolError> {
        Ok(match b {
            1 => FrameKind::Request,
            2 => FrameKind::Result,
            3 => FrameKind::Error,
            4 => FrameKind::HealthPing,
            5 => FrameKind::HealthPong,
            other => return Err(ProtocolError::UnknownFrame(other)),
        })
    }
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    pub kind: FrameKind,
    pub payload: Vec<u8>,
}

/// Typed failure of the wire layer. Codec-level failures (a payload that
/// passed the checksum but does not decode) use [`ProtocolError::Malformed`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The first four bytes were not the protocol magic.
    BadMagic([u8; 4]),
    /// The peer speaks a protocol version this build does not.
    UnsupportedVersion(u8),
    /// Unknown frame-kind byte.
    UnknownFrame(u8),
    /// Declared payload length exceeds the hard cap.
    Oversized { len: usize, max: usize },
    /// The payload's CRC-32 does not match the header's.
    ChecksumMismatch { expected: u32, actual: u32 },
    /// The stream ended mid-frame.
    Truncated { context: &'static str },
    /// The payload passed framing but does not decode.
    Malformed(String),
    /// Transport-level I/O failure.
    Io(String),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::BadMagic(got) => write!(f, "bad frame magic {got:?}"),
            ProtocolError::UnsupportedVersion(v) => {
                write!(f, "unsupported protocol version {v} (this build speaks {VERSION})")
            }
            ProtocolError::UnknownFrame(k) => write!(f, "unknown frame kind {k}"),
            ProtocolError::Oversized { len, max } => {
                write!(f, "frame payload of {len} B exceeds the {max} B cap")
            }
            ProtocolError::ChecksumMismatch { expected, actual } => {
                write!(f, "payload checksum mismatch: header {expected:#010x}, computed {actual:#010x}")
            }
            ProtocolError::Truncated { context } => write!(f, "stream truncated in {context}"),
            ProtocolError::Malformed(msg) => write!(f, "malformed payload: {msg}"),
            ProtocolError::Io(msg) => write!(f, "io: {msg}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<io::Error> for ProtocolError {
    fn from(e: io::Error) -> ProtocolError {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            ProtocolError::Truncated { context: "frame" }
        } else {
            ProtocolError::Io(e.to_string())
        }
    }
}

/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) over `data`.
pub fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Encode a frame into its on-wire bytes (header + payload).
pub fn encode_frame(kind: FrameKind, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(kind as u8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Write one frame. Returns the number of bytes put on the wire.
pub fn write_frame(
    w: &mut impl Write,
    kind: FrameKind,
    payload: &[u8],
) -> Result<usize, ProtocolError> {
    let bytes = encode_frame(kind, payload);
    w.write_all(&bytes)?;
    w.flush()?;
    Ok(bytes.len())
}

/// Read one frame. `Ok(None)` means the peer closed the connection
/// cleanly *before* the first header byte — the normal end of a
/// connection. An EOF anywhere later is [`ProtocolError::Truncated`].
/// The returned `usize` is the number of wire bytes consumed.
pub fn read_frame(r: &mut impl Read) -> Result<Option<(Frame, usize)>, ProtocolError> {
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    read_frame_after(r, first[0]).map(Some)
}

/// Finish reading a frame whose first header byte has already been
/// consumed (the node server polls for that byte so shutdown can drain
/// idle connections).
pub fn read_frame_after(
    r: &mut impl Read,
    first: u8,
) -> Result<(Frame, usize), ProtocolError> {
    let mut header = [0u8; HEADER_LEN];
    header[0] = first;
    r.read_exact(&mut header[1..]).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            ProtocolError::Truncated { context: "header" }
        } else {
            ProtocolError::Io(e.to_string())
        }
    })?;
    if header[..4] != MAGIC {
        let mut got = [0u8; 4];
        got.copy_from_slice(&header[..4]);
        return Err(ProtocolError::BadMagic(got));
    }
    if header[4] != VERSION {
        return Err(ProtocolError::UnsupportedVersion(header[4]));
    }
    let kind = FrameKind::from_u8(header[5])?;
    let len = u32::from_le_bytes([header[6], header[7], header[8], header[9]]) as usize;
    if len > MAX_PAYLOAD {
        return Err(ProtocolError::Oversized { len, max: MAX_PAYLOAD });
    }
    let expected = u32::from_le_bytes([header[10], header[11], header[12], header[13]]);
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            ProtocolError::Truncated { context: "payload" }
        } else {
            ProtocolError::Io(e.to_string())
        }
    })?;
    let actual = crc32(&payload);
    if actual != expected {
        return Err(ProtocolError::ChecksumMismatch { expected, actual });
    }
    Ok((Frame { kind, payload }, HEADER_LEN + len))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn crc32_known_vectors() {
        // standard IEEE test vector
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_roundtrip() {
        let payload = b"hello frames".to_vec();
        let bytes = encode_frame(FrameKind::Request, &payload);
        assert_eq!(bytes.len(), HEADER_LEN + payload.len());
        let (frame, n) = read_frame(&mut Cursor::new(&bytes)).unwrap().unwrap();
        assert_eq!(n, bytes.len());
        assert_eq!(frame.kind, FrameKind::Request);
        assert_eq!(frame.payload, payload);
    }

    #[test]
    fn clean_eof_is_none() {
        assert_eq!(read_frame(&mut Cursor::new(&[])).unwrap(), None);
    }

    #[test]
    fn truncated_header_and_payload_are_typed() {
        let bytes = encode_frame(FrameKind::Result, b"abc");
        for cut in 1..bytes.len() {
            let err = read_frame(&mut Cursor::new(&bytes[..cut])).unwrap_err();
            assert!(
                matches!(err, ProtocolError::Truncated { .. }),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let mut bytes = encode_frame(FrameKind::Result, b"abcdef");
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        let err = read_frame(&mut Cursor::new(&bytes)).unwrap_err();
        assert!(matches!(err, ProtocolError::ChecksumMismatch { .. }), "{err}");
    }

    #[test]
    fn bad_magic_version_kind_and_length_are_typed() {
        let good = encode_frame(FrameKind::HealthPing, &[]);
        let mut bad_magic = good.clone();
        bad_magic[0] = b'Q';
        assert!(matches!(
            read_frame(&mut Cursor::new(&bad_magic)).unwrap_err(),
            ProtocolError::BadMagic(_)
        ));
        let mut bad_version = good.clone();
        bad_version[4] = 9;
        assert!(matches!(
            read_frame(&mut Cursor::new(&bad_version)).unwrap_err(),
            ProtocolError::UnsupportedVersion(9)
        ));
        let mut bad_kind = good.clone();
        bad_kind[5] = 200;
        assert!(matches!(
            read_frame(&mut Cursor::new(&bad_kind)).unwrap_err(),
            ProtocolError::UnknownFrame(200)
        ));
        let mut oversized = good.clone();
        oversized[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_frame(&mut Cursor::new(&oversized)).unwrap_err(),
            ProtocolError::Oversized { .. }
        ));
    }
}
