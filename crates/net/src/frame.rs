//! The length-prefixed binary frame layer.
//!
//! Every message on a PartiX connection is one frame:
//!
//! ```text
//! offset  size  field
//!      0     4  magic  "PXN1"
//!      4     1  version (currently 1)
//!      5     1  frame kind (see [`FrameKind`])
//!      6     4  payload length, u32 little-endian
//!     10     4  CRC-32 (IEEE) of the payload, u32 little-endian
//!     14     n  payload
//! ```
//!
//! The header is fixed-size so a reader always knows how many bytes to
//! wait for; the length prefix is validated against a hard cap *before*
//! any allocation, and the checksum is verified before the payload is
//! handed to the codec. Every way a peer can deviate — wrong magic,
//! unknown version or kind, oversized length, short read, corrupted
//! payload — surfaces as a typed [`ProtocolError`], never a panic: a
//! malformed peer must not be able to take down a coordinator or a node
//! server.
//!
//! Versioning: the version byte names the *frame semantics*. A receiver
//! rejects versions it does not know with
//! [`ProtocolError::UnsupportedVersion`] (no silent best-effort parsing),
//! so incompatible peers fail fast at the first frame. New frame kinds
//! within a version are likewise rejected by older peers via
//! [`ProtocolError::UnknownFrame`].
//!
//! Version 2 ("PXN2") adds the chunked-streaming kinds: a query opens a
//! *stream* (client-chosen 64-bit id, multiplexed over one connection)
//! and the answer comes back as zero or more [`FrameKind::ItemChunk`]
//! frames followed by exactly one [`FrameKind::StreamEnd`] (success) or
//! [`FrameKind::StreamError`] (typed failure). The header layout is
//! byte-identical to version 1 — only the magic, version byte, and the
//! set of legal kinds differ — so one reader handles both and a
//! version-1-only peer rejects a v2 frame at the magic/version check.

use std::fmt;
use std::io::{self, Read, Write};

/// Frame magic: "PXN1" (PartiX Net, layout 1).
pub const MAGIC: [u8; 4] = *b"PXN1";

/// Frame magic for streaming frames: "PXN2".
pub const MAGIC2: [u8; 4] = *b"PXN2";

/// Current protocol version for request/response frames.
pub const VERSION: u8 = 1;

/// Protocol version for streaming frames.
pub const VERSION2: u8 = 2;

/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 14;

/// Hard cap on a frame payload (64 MiB). A length field above this is
/// rejected before any allocation happens.
pub const MAX_PAYLOAD: usize = 64 * 1024 * 1024;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Coordinator → node: an encoded [`crate::message::Request`].
    Request = 1,
    /// Node → coordinator: an encoded [`crate::message::Response`].
    Result = 2,
    /// Node → coordinator: an encoded [`crate::message::WireError`].
    Error = 3,
    /// Coordinator → node: liveness probe (empty payload).
    HealthPing = 4,
    /// Node → coordinator: probe answer (empty payload).
    HealthPong = 5,
    /// v2, client → coordinator: open a result stream
    /// ([`crate::stream::StreamQuery`]).
    OpenStream = 6,
    /// v2, coordinator → client: one chunk of result items
    /// ([`crate::stream::ItemChunk`]).
    ItemChunk = 7,
    /// v2, coordinator → client: successful end of a stream with totals
    /// and stats ([`crate::stream::StreamEnd`]).
    StreamEnd = 8,
    /// v2, coordinator → client: typed failure of one stream
    /// ([`crate::stream::StreamError`]).
    StreamError = 9,
    /// v2, client → coordinator: abandon a stream; the server stops
    /// producing chunks for it ([`crate::stream::CancelStream`]).
    CancelStream = 10,
}

impl FrameKind {
    fn from_u8(b: u8) -> Result<FrameKind, ProtocolError> {
        Ok(match b {
            1 => FrameKind::Request,
            2 => FrameKind::Result,
            3 => FrameKind::Error,
            4 => FrameKind::HealthPing,
            5 => FrameKind::HealthPong,
            6 => FrameKind::OpenStream,
            7 => FrameKind::ItemChunk,
            8 => FrameKind::StreamEnd,
            9 => FrameKind::StreamError,
            10 => FrameKind::CancelStream,
            other => return Err(ProtocolError::UnknownFrame(other)),
        })
    }

    /// The protocol version a kind belongs to. A kind arriving inside a
    /// frame of the other version is rejected as [`ProtocolError::UnknownFrame`].
    pub fn version(self) -> u8 {
        match self {
            FrameKind::Request
            | FrameKind::Result
            | FrameKind::Error
            | FrameKind::HealthPing
            | FrameKind::HealthPong => VERSION,
            FrameKind::OpenStream
            | FrameKind::ItemChunk
            | FrameKind::StreamEnd
            | FrameKind::StreamError
            | FrameKind::CancelStream => VERSION2,
        }
    }
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    pub kind: FrameKind,
    pub payload: Vec<u8>,
}

/// Typed failure of the wire layer. Codec-level failures (a payload that
/// passed the checksum but does not decode) use [`ProtocolError::Malformed`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The first four bytes were not the protocol magic.
    BadMagic([u8; 4]),
    /// The peer speaks a protocol version this build does not.
    UnsupportedVersion(u8),
    /// Unknown frame-kind byte.
    UnknownFrame(u8),
    /// Declared payload length exceeds the hard cap.
    Oversized { len: usize, max: usize },
    /// The payload's CRC-32 does not match the header's.
    ChecksumMismatch { expected: u32, actual: u32 },
    /// The stream ended mid-frame.
    Truncated { context: &'static str },
    /// The payload passed framing but does not decode.
    Malformed(String),
    /// A frame was well-formed on its own but violates stream state:
    /// duplicate or out-of-order chunk sequence, a chunk for an unknown
    /// or finished stream, a chunk-count mismatch at end-of-stream, or
    /// an oversized chunk.
    Stream(String),
    /// Transport-level I/O failure.
    Io(String),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::BadMagic(got) => write!(f, "bad frame magic {got:?}"),
            ProtocolError::UnsupportedVersion(v) => {
                write!(f, "unsupported protocol version {v} (this build speaks {VERSION})")
            }
            ProtocolError::UnknownFrame(k) => write!(f, "unknown frame kind {k}"),
            ProtocolError::Oversized { len, max } => {
                write!(f, "frame payload of {len} B exceeds the {max} B cap")
            }
            ProtocolError::ChecksumMismatch { expected, actual } => {
                write!(f, "payload checksum mismatch: header {expected:#010x}, computed {actual:#010x}")
            }
            ProtocolError::Truncated { context } => write!(f, "stream truncated in {context}"),
            ProtocolError::Malformed(msg) => write!(f, "malformed payload: {msg}"),
            ProtocolError::Stream(msg) => write!(f, "stream protocol violation: {msg}"),
            ProtocolError::Io(msg) => write!(f, "io: {msg}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<io::Error> for ProtocolError {
    fn from(e: io::Error) -> ProtocolError {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            ProtocolError::Truncated { context: "frame" }
        } else {
            ProtocolError::Io(e.to_string())
        }
    }
}

/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) over `data`.
pub fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Encode a frame into its on-wire bytes (header + payload). The magic
/// and version bytes follow the kind: streaming kinds are "PXN2"/2,
/// request/response kinds "PXN1"/1.
pub fn encode_frame(kind: FrameKind, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    if kind.version() == VERSION2 {
        out.extend_from_slice(&MAGIC2);
        out.push(VERSION2);
    } else {
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);
    }
    out.push(kind as u8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Write one frame. Returns the number of bytes put on the wire.
pub fn write_frame(
    w: &mut impl Write,
    kind: FrameKind,
    payload: &[u8],
) -> Result<usize, ProtocolError> {
    let bytes = encode_frame(kind, payload);
    w.write_all(&bytes)?;
    w.flush()?;
    Ok(bytes.len())
}

/// Read one frame. `Ok(None)` means the peer closed the connection
/// cleanly *before* the first header byte — the normal end of a
/// connection. An EOF anywhere later is [`ProtocolError::Truncated`].
/// The returned `usize` is the number of wire bytes consumed.
pub fn read_frame(r: &mut impl Read) -> Result<Option<(Frame, usize)>, ProtocolError> {
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    read_frame_after(r, first[0]).map(Some)
}

/// Finish reading a frame whose first header byte has already been
/// consumed (the node server polls for that byte so shutdown can drain
/// idle connections).
pub fn read_frame_after(
    r: &mut impl Read,
    first: u8,
) -> Result<(Frame, usize), ProtocolError> {
    let mut header = [0u8; HEADER_LEN];
    header[0] = first;
    r.read_exact(&mut header[1..]).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            ProtocolError::Truncated { context: "header" }
        } else {
            ProtocolError::Io(e.to_string())
        }
    })?;
    let (len, expected) = validate_header(&header)?;
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            ProtocolError::Truncated { context: "payload" }
        } else {
            ProtocolError::Io(e.to_string())
        }
    })?;
    let actual = crc32(&payload);
    if actual != expected {
        return Err(ProtocolError::ChecksumMismatch { expected, actual });
    }
    let kind = FrameKind::from_u8(header[5])?;
    Ok((Frame { kind, payload }, HEADER_LEN + len))
}

/// Validate a complete header: magic/version pairing, known kind for
/// that version, and payload length under the cap. Returns the payload
/// length and expected CRC.
fn validate_header(header: &[u8; HEADER_LEN]) -> Result<(usize, u32), ProtocolError> {
    let expect_version = if header[..4] == MAGIC {
        VERSION
    } else if header[..4] == MAGIC2 {
        VERSION2
    } else {
        let mut got = [0u8; 4];
        got.copy_from_slice(&header[..4]);
        return Err(ProtocolError::BadMagic(got));
    };
    if header[4] != expect_version {
        return Err(ProtocolError::UnsupportedVersion(header[4]));
    }
    let kind = FrameKind::from_u8(header[5])?;
    if kind.version() != expect_version {
        // A v1 kind under the PXN2 magic (or vice versa) is as unknown
        // to this layer as an unassigned byte.
        return Err(ProtocolError::UnknownFrame(header[5]));
    }
    let len = u32::from_le_bytes([header[6], header[7], header[8], header[9]]) as usize;
    if len > MAX_PAYLOAD {
        return Err(ProtocolError::Oversized { len, max: MAX_PAYLOAD });
    }
    let expected = u32::from_le_bytes([header[10], header[11], header[12], header[13]]);
    Ok((len, expected))
}

/// Incremental decode for nonblocking readers: try to parse one frame
/// from the front of `buf`. `Ok(None)` means the buffer does not yet
/// hold a complete frame (read more bytes); `Ok(Some((frame, n)))`
/// consumed `n` bytes. Header-level garbage surfaces immediately, even
/// before the payload arrives, so a hostile peer cannot park a huge
/// bogus length in the buffer.
pub fn decode_frame(buf: &[u8]) -> Result<Option<(Frame, usize)>, ProtocolError> {
    if buf.len() < HEADER_LEN {
        return Ok(None);
    }
    let mut header = [0u8; HEADER_LEN];
    header.copy_from_slice(&buf[..HEADER_LEN]);
    let (len, expected) = validate_header(&header)?;
    if buf.len() < HEADER_LEN + len {
        return Ok(None);
    }
    let payload = buf[HEADER_LEN..HEADER_LEN + len].to_vec();
    let actual = crc32(&payload);
    if actual != expected {
        return Err(ProtocolError::ChecksumMismatch { expected, actual });
    }
    let kind = FrameKind::from_u8(header[5])?;
    Ok(Some((Frame { kind, payload }, HEADER_LEN + len)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn crc32_known_vectors() {
        // standard IEEE test vector
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_roundtrip() {
        let payload = b"hello frames".to_vec();
        let bytes = encode_frame(FrameKind::Request, &payload);
        assert_eq!(bytes.len(), HEADER_LEN + payload.len());
        let (frame, n) = read_frame(&mut Cursor::new(&bytes)).unwrap().unwrap();
        assert_eq!(n, bytes.len());
        assert_eq!(frame.kind, FrameKind::Request);
        assert_eq!(frame.payload, payload);
    }

    #[test]
    fn clean_eof_is_none() {
        assert_eq!(read_frame(&mut Cursor::new(&[])).unwrap(), None);
    }

    #[test]
    fn truncated_header_and_payload_are_typed() {
        let bytes = encode_frame(FrameKind::Result, b"abc");
        for cut in 1..bytes.len() {
            let err = read_frame(&mut Cursor::new(&bytes[..cut])).unwrap_err();
            assert!(
                matches!(err, ProtocolError::Truncated { .. }),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let mut bytes = encode_frame(FrameKind::Result, b"abcdef");
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        let err = read_frame(&mut Cursor::new(&bytes)).unwrap_err();
        assert!(matches!(err, ProtocolError::ChecksumMismatch { .. }), "{err}");
    }

    #[test]
    fn bad_magic_version_kind_and_length_are_typed() {
        let good = encode_frame(FrameKind::HealthPing, &[]);
        let mut bad_magic = good.clone();
        bad_magic[0] = b'Q';
        assert!(matches!(
            read_frame(&mut Cursor::new(&bad_magic)).unwrap_err(),
            ProtocolError::BadMagic(_)
        ));
        let mut bad_version = good.clone();
        bad_version[4] = 9;
        assert!(matches!(
            read_frame(&mut Cursor::new(&bad_version)).unwrap_err(),
            ProtocolError::UnsupportedVersion(9)
        ));
        let mut bad_kind = good.clone();
        bad_kind[5] = 200;
        assert!(matches!(
            read_frame(&mut Cursor::new(&bad_kind)).unwrap_err(),
            ProtocolError::UnknownFrame(200)
        ));
        let mut oversized = good.clone();
        oversized[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_frame(&mut Cursor::new(&oversized)).unwrap_err(),
            ProtocolError::Oversized { .. }
        ));
    }

    #[test]
    fn v2_frame_roundtrip_and_magic_pairing() {
        let bytes = encode_frame(FrameKind::ItemChunk, b"chunk");
        assert_eq!(&bytes[..4], b"PXN2");
        assert_eq!(bytes[4], VERSION2);
        let (frame, n) = read_frame(&mut Cursor::new(&bytes)).unwrap().unwrap();
        assert_eq!(n, bytes.len());
        assert_eq!(frame.kind, FrameKind::ItemChunk);
        assert_eq!(frame.payload, b"chunk");

        // a v1 kind under the PXN2 magic is rejected, and vice versa
        let mut crossed = encode_frame(FrameKind::ItemChunk, b"");
        crossed[5] = FrameKind::Request as u8;
        assert!(matches!(
            read_frame(&mut Cursor::new(&crossed)).unwrap_err(),
            ProtocolError::UnknownFrame(1)
        ));
        let mut crossed = encode_frame(FrameKind::Request, b"");
        crossed[5] = FrameKind::OpenStream as u8;
        assert!(matches!(
            read_frame(&mut Cursor::new(&crossed)).unwrap_err(),
            ProtocolError::UnknownFrame(6)
        ));
        // PXN2 magic with a version-1 byte fails the version check
        let mut crossed = encode_frame(FrameKind::OpenStream, b"");
        crossed[4] = VERSION;
        assert!(matches!(
            read_frame(&mut Cursor::new(&crossed)).unwrap_err(),
            ProtocolError::UnsupportedVersion(1)
        ));
    }

    #[test]
    fn decode_frame_is_incremental() {
        let bytes = encode_frame(FrameKind::StreamEnd, b"the end");
        for cut in 0..bytes.len() {
            assert_eq!(decode_frame(&bytes[..cut]).unwrap(), None, "cut at {cut}");
        }
        let (frame, n) = decode_frame(&bytes).unwrap().unwrap();
        assert_eq!(n, bytes.len());
        assert_eq!(frame.kind, FrameKind::StreamEnd);
        // trailing bytes of the next frame are left alone
        let mut two = bytes.clone();
        two.extend_from_slice(&bytes);
        let (_, n) = decode_frame(&two).unwrap().unwrap();
        assert_eq!(n, bytes.len());
        // header garbage surfaces before the payload arrives
        let mut bogus = bytes.clone();
        bogus[0] = b'Q';
        assert!(matches!(
            decode_frame(&bogus[..HEADER_LEN]).unwrap_err(),
            ProtocolError::BadMagic(_)
        ));
    }
}
