//! The non-blocking, event-driven streaming server.
//!
//! One *event-loop thread* owns the listener and every connection, all
//! in nonblocking mode: it accepts, reads bytes into per-connection
//! buffers (decoding PXN2 frames incrementally with
//! [`frame::decode_frame`]), and drains per-connection send queues with
//! partial-write tracking. It never blocks on any one peer, so a stalled
//! connection cannot stop the others — the readiness loop is the
//! "no new runtime deps" answer to an async executor.
//!
//! Query execution happens on a small pool of *worker threads*. When a
//! complete [`StreamQuery`] frame arrives, the event loop enqueues a job;
//! a worker runs the [`StreamHandler`] and pushes `ItemChunk` /
//! `StreamEnd` / `StreamError` frames into that connection's
//! [`SendQueue`].
//!
//! Backpressure is the send queue's byte bound: a producer pushing into a
//! full queue blocks *on that queue's condvar* until the event loop
//! drains it (i.e. until the client reads). A slow reader therefore
//! stalls only the workers serving *its* streams, holds at most
//! `send_queue_bytes` + one frame of coordinator memory, and never
//! touches the event loop — other clients keep streaming at full rate.
//! The global queue depth is exported as the `net.stream.queue_bytes`
//! gauge (peak in `net.stream.queue_peak`), which the backpressure test
//! asserts stays bounded.

use crate::frame::{self, encode_frame, Frame, FrameKind, ProtocolError};
use crate::stream::{
    CancelStream, ItemChunk, StreamError, StreamQuery, StreamStats, MAX_CHUNK_ITEMS,
};
use partix_engine::metrics;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Tuning for [`StreamServer`].
#[derive(Debug, Clone)]
pub struct StreamServerConfig {
    /// Worker threads executing [`StreamHandler`] jobs.
    pub workers: usize,
    /// Per-connection send-queue byte bound. A producer blocks once the
    /// queue holds this many bytes (one frame may always be queued, so a
    /// single frame larger than the bound still makes progress).
    pub send_queue_bytes: usize,
    /// Event-loop sleep when no connection made progress.
    pub poll_interval: Duration,
    /// Cap on concurrently open streams per connection; an `OpenStream`
    /// beyond it is answered with a retryable [`StreamError`].
    pub max_streams_per_conn: usize,
}

impl Default for StreamServerConfig {
    fn default() -> StreamServerConfig {
        StreamServerConfig {
            workers: 8,
            send_queue_bytes: 256 * 1024,
            poll_interval: Duration::from_micros(500),
            max_streams_per_conn: 64,
        }
    }
}

/// Typed failure a handler may return for one stream.
#[derive(Debug, Clone)]
pub struct StreamFailure {
    pub retryable: bool,
    /// Machine-readable classification mirrored onto the wire, so a
    /// client can distinguish admission rejections from plain failures
    /// without parsing the message text.
    pub code: crate::message::ErrorCode,
    /// For admission rejections: how long the client should back off.
    pub retry_after_ms: u64,
    pub message: String,
}

impl StreamFailure {
    /// A plain (non-admission) failure with a generic code.
    pub fn failure(retryable: bool, message: impl Into<String>) -> StreamFailure {
        StreamFailure {
            retryable,
            code: crate::message::ErrorCode::Generic,
            retry_after_ms: 0,
            message: message.into(),
        }
    }
}

/// The producer side of a stream was torn down (client cancelled, the
/// connection died, or the server is shutting down). Handlers should
/// stop producing and return promptly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SinkClosed;

/// Where a handler emits result items. Each call ships one or more
/// `ItemChunk` frames (slices larger than the stream's chunk size are
/// split automatically, so a handler never violates the protocol cap).
pub trait ChunkSink {
    /// Emit items in final composition order. Blocks under backpressure.
    fn emit(&self, items: &[partix_query::Item]) -> Result<(), SinkClosed>;
    /// True once the stream was cancelled or the connection died —
    /// handlers doing long compute between emits may poll this to bail
    /// out early.
    fn is_closed(&self) -> bool;
}

/// Executes one stream's query, emitting chunks through the sink.
/// Returning `Ok(stats)` ends the stream with `StreamEnd`; `Err` with a
/// typed `StreamError`. A panic is caught by the worker and mapped to a
/// non-retryable `StreamError` (panic firewall, as in the node server).
pub trait StreamHandler: Send + Sync + 'static {
    fn run(&self, query: &StreamQuery, sink: &dyn ChunkSink) -> Result<StreamStats, StreamFailure>;
}

impl<F> StreamHandler for F
where
    F: Fn(&StreamQuery, &dyn ChunkSink) -> Result<StreamStats, StreamFailure>
        + Send
        + Sync
        + 'static,
{
    fn run(&self, query: &StreamQuery, sink: &dyn ChunkSink) -> Result<StreamStats, StreamFailure> {
        self(query, sink)
    }
}

// ---------------------------------------------------------------------
// Send queue
// ---------------------------------------------------------------------

/// Server-wide accounting shared by all queues (gauge + peak).
#[derive(Default)]
struct QueueAccounting {
    queued_bytes: AtomicUsize,
    peak_bytes: AtomicUsize,
    chunks_sent: AtomicU64,
}

impl QueueAccounting {
    fn add(&self, n: usize) {
        let now = self.queued_bytes.fetch_add(n, Ordering::Relaxed) + n;
        self.peak_bytes.fetch_max(now, Ordering::Relaxed);
        metrics::global().gauge("net.stream.queue_bytes").set(now as i64);
    }

    fn sub(&self, n: usize) {
        let now = self.queued_bytes.fetch_sub(n, Ordering::Relaxed).saturating_sub(n);
        metrics::global().gauge("net.stream.queue_bytes").set(now as i64);
    }
}

struct QueueState {
    frames: std::collections::VecDeque<Vec<u8>>,
    queued_bytes: usize,
    /// Bytes of the front frame already written to the socket.
    front_written: usize,
}

/// Bounded per-connection outbound queue. Producers (workers) block on
/// `space` when full; the event-loop thread pops and writes.
struct SendQueue {
    state: Mutex<QueueState>,
    space: Condvar,
    closed: AtomicBool,
    capacity: usize,
    accounting: Arc<QueueAccounting>,
}

impl SendQueue {
    fn new(capacity: usize, accounting: Arc<QueueAccounting>) -> SendQueue {
        SendQueue {
            state: Mutex::new(QueueState {
                frames: std::collections::VecDeque::new(),
                queued_bytes: 0,
                front_written: 0,
            }),
            space: Condvar::new(),
            closed: AtomicBool::new(false),
            capacity,
            accounting,
        }
    }

    /// Queue one encoded frame, blocking while the queue is over its
    /// byte bound. Returns `Err(SinkClosed)` once the queue is closed.
    fn push(&self, bytes: Vec<u8>) -> Result<(), SinkClosed> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if self.closed.load(Ordering::Acquire) {
                return Err(SinkClosed);
            }
            if state.queued_bytes < self.capacity || state.frames.is_empty() {
                break;
            }
            let (next, _) = self
                .space
                .wait_timeout(state, Duration::from_millis(50))
                .unwrap_or_else(|e| e.into_inner());
            state = next;
        }
        state.queued_bytes += bytes.len();
        self.accounting.add(bytes.len());
        state.frames.push_back(bytes);
        Ok(())
    }

    /// Close the queue and wake every blocked producer.
    fn close(&self) {
        self.closed.store(true, Ordering::Release);
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let drained = state.queued_bytes;
        state.frames.clear();
        state.queued_bytes = 0;
        state.front_written = 0;
        drop(state);
        self.accounting.sub(drained);
        self.space.notify_all();
    }

    /// Write as much queued data as the socket accepts right now.
    /// Returns `(made_progress, io_result)`. The lock is held across the
    /// write, but the socket is nonblocking so the syscall returns
    /// immediately — producers wait microseconds, not a peer's RTT.
    fn drain_into(&self, sock: &mut TcpStream) -> (bool, io::Result<()>) {
        let mut progressed = false;
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            let Some(front) = state.frames.front() else {
                return (progressed, Ok(()));
            };
            let front_len = front.len();
            let offset = state.front_written;
            match sock.write(&front[offset..]) {
                Ok(0) => {
                    return (progressed, Err(io::Error::from(io::ErrorKind::WriteZero)));
                }
                Ok(n) => {
                    progressed = true;
                    state.front_written += n;
                    if state.front_written >= front_len {
                        state.frames.pop_front();
                        state.front_written = 0;
                        state.queued_bytes = state.queued_bytes.saturating_sub(front_len);
                        self.accounting.sub(front_len);
                        self.space.notify_all();
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return (progressed, Ok(())),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return (progressed, Err(e)),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Per-stream sink
// ---------------------------------------------------------------------

struct StreamSink {
    stream: u64,
    chunk_items: usize,
    queue: Arc<SendQueue>,
    cancelled: Arc<AtomicBool>,
    seq: AtomicUsize,
    items_sent: AtomicU64,
}

impl StreamSink {
    fn next_seq(&self) -> Result<u32, SinkClosed> {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        u32::try_from(seq).map_err(|_| SinkClosed)
    }

    fn send_chunk(&self, items: &[partix_query::Item]) -> Result<(), SinkClosed> {
        if self.cancelled.load(Ordering::Acquire) {
            return Err(SinkClosed);
        }
        let chunk = ItemChunk {
            stream: self.stream,
            seq: self.next_seq()?,
            items: items.to_vec(),
        };
        self.queue.push(encode_frame(FrameKind::ItemChunk, &chunk.encode()))?;
        self.items_sent.fetch_add(items.len() as u64, Ordering::Relaxed);
        self.queue.accounting.chunks_sent.fetch_add(1, Ordering::Relaxed);
        metrics::global().counter("net.stream.chunks").inc();
        Ok(())
    }
}

impl ChunkSink for StreamSink {
    fn emit(&self, items: &[partix_query::Item]) -> Result<(), SinkClosed> {
        let step = self.chunk_items.clamp(1, MAX_CHUNK_ITEMS);
        if items.is_empty() {
            return if self.is_closed() { Err(SinkClosed) } else { Ok(()) };
        }
        for slice in items.chunks(step) {
            self.send_chunk(slice)?;
        }
        Ok(())
    }

    fn is_closed(&self) -> bool {
        self.cancelled.load(Ordering::Acquire) || self.queue.closed.load(Ordering::Acquire)
    }
}

// ---------------------------------------------------------------------
// Connection state (owned by the event loop)
// ---------------------------------------------------------------------

/// Streams still producing on a connection, shared with workers so they
/// can deregister on completion and cancellation can reach them.
type LiveStreams = Arc<Mutex<HashMap<u64, Arc<AtomicBool>>>>;

struct Conn {
    sock: TcpStream,
    read_buf: Vec<u8>,
    queue: Arc<SendQueue>,
    live: LiveStreams,
    /// Set after a protocol violation: stop reading, flush the queue,
    /// then drop the connection.
    poisoned: bool,
}

impl Conn {
    fn close(&self) {
        for (_, cancel) in self.live.lock().unwrap_or_else(|e| e.into_inner()).drain() {
            cancel.store(true, Ordering::Release);
        }
        self.queue.close();
        let _ = self.sock.shutdown(std::net::Shutdown::Both);
    }
}

struct Job {
    query: StreamQuery,
    queue: Arc<SendQueue>,
    cancel: Arc<AtomicBool>,
    live: LiveStreams,
}

// ---------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------

/// Handle to a running streaming server. Dropping it (or calling
/// [`StreamServer::shutdown`]) stops the event loop, cancels live
/// streams, and joins all threads.
pub struct StreamServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accounting: Arc<QueueAccounting>,
    event_loop: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl StreamServer {
    /// Bind `addr` and serve streams with `handler`. `addr` may be
    /// `"127.0.0.1:0"` to pick a free port — see [`StreamServer::addr`].
    pub fn bind(
        addr: &str,
        handler: Arc<dyn StreamHandler>,
        config: StreamServerConfig,
    ) -> io::Result<StreamServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accounting = Arc::new(QueueAccounting::default());
        let (job_tx, job_rx) = crossbeam::channel::unbounded::<Job>();

        let workers = (0..config.workers.max(1))
            .map(|i| {
                let rx = job_rx.clone();
                let handler = Arc::clone(&handler);
                thread::Builder::new()
                    .name(format!("pxn2-worker-{i}"))
                    .spawn(move || worker_loop(rx, handler))
                    .expect("spawn stream worker")
            })
            .collect();

        let loop_stop = Arc::clone(&stop);
        let loop_accounting = Arc::clone(&accounting);
        let event_loop = thread::Builder::new()
            .name("pxn2-events".to_owned())
            .spawn(move || event_loop(listener, config, loop_stop, loop_accounting, job_tx))
            .expect("spawn stream event loop");

        Ok(StreamServer {
            addr,
            stop,
            accounting,
            event_loop: Some(event_loop),
            workers,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Bytes currently queued across all connections.
    pub fn queued_bytes(&self) -> usize {
        self.accounting.queued_bytes.load(Ordering::Relaxed)
    }

    /// High-water mark of [`StreamServer::queued_bytes`] — the bound the
    /// backpressure test asserts on.
    pub fn peak_queue_bytes(&self) -> usize {
        self.accounting.peak_bytes.load(Ordering::Relaxed)
    }

    /// Total `ItemChunk` frames shipped since bind.
    pub fn chunks_sent(&self) -> u64 {
        self.accounting.chunks_sent.load(Ordering::Relaxed)
    }

    /// Stop accepting, cancel live streams, close every connection, and
    /// join all threads. Clients with streams in flight observe a
    /// truncated stream (typed error), never a fabricated end-of-stream.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.event_loop.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for StreamServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(rx: crossbeam::channel::Receiver<Job>, handler: Arc<dyn StreamHandler>) {
    while let Ok(job) = rx.recv() {
        let sink = StreamSink {
            stream: job.query.stream,
            chunk_items: job.query.chunk_size(),
            queue: Arc::clone(&job.queue),
            cancelled: Arc::clone(&job.cancel),
            seq: AtomicUsize::new(0),
            items_sent: AtomicU64::new(0),
        };
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            handler.run(&job.query, &sink)
        }));
        let cancelled = sink.is_closed();
        let frame_bytes = match outcome {
            Ok(Ok(stats)) => {
                let end = crate::stream::StreamEnd {
                    stream: job.query.stream,
                    chunks: sink.seq.load(Ordering::Relaxed) as u32,
                    items: sink.items_sent.load(Ordering::Relaxed),
                    stats,
                };
                encode_frame(FrameKind::StreamEnd, &end.encode())
            }
            Ok(Err(fail)) => {
                let err = StreamError {
                    stream: job.query.stream,
                    retryable: fail.retryable,
                    code: fail.code,
                    retry_after_ms: fail.retry_after_ms,
                    message: fail.message,
                };
                encode_frame(FrameKind::StreamError, &err.encode())
            }
            Err(_) => {
                metrics::global().counter("net.stream.handler_panics").inc();
                let err = StreamError::failure(
                    job.query.stream,
                    false,
                    "internal error: stream handler panicked",
                );
                encode_frame(FrameKind::StreamError, &err.encode())
            }
        };
        if !cancelled {
            let _ = job.queue.push(frame_bytes);
        }
        job.live
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&job.query.stream);
    }
}

fn event_loop(
    listener: TcpListener,
    config: StreamServerConfig,
    stop: Arc<AtomicBool>,
    accounting: Arc<QueueAccounting>,
    jobs: crossbeam::channel::Sender<Job>,
) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut scratch = [0u8; 16 * 1024];
    while !stop.load(Ordering::Acquire) {
        let mut progressed = false;

        // Accept everything ready.
        loop {
            match listener.accept() {
                Ok((sock, _)) => {
                    if sock.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = sock.set_nodelay(true);
                    metrics::global().gauge("net.stream.conns").inc();
                    conns.push(Conn {
                        sock,
                        read_buf: Vec::new(),
                        queue: Arc::new(SendQueue::new(
                            config.send_queue_bytes,
                            Arc::clone(&accounting),
                        )),
                        live: Arc::new(Mutex::new(HashMap::new())),
                        poisoned: false,
                    });
                    progressed = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }

        // Service every connection: read, parse, dispatch, write.
        let mut i = 0;
        while i < conns.len() {
            let mut dead = false;
            {
                let conn = &mut conns[i];
                if !conn.poisoned {
                    match service_reads(conn, &config, &jobs, &mut scratch) {
                        Ok(p) => progressed |= p,
                        Err(ConnFate::Dead) => dead = true,
                        Err(ConnFate::Poisoned) => conn.poisoned = true,
                    }
                }
                if !dead {
                    let (p, res) = conn.queue.drain_into(&mut conn.sock);
                    progressed |= p;
                    if res.is_err() {
                        dead = true;
                    }
                    // A poisoned connection is dropped once its typed
                    // protocol-error frame has been flushed.
                    if conn.poisoned {
                        let empty = conn
                            .queue
                            .state
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .frames
                            .is_empty();
                        let idle = conn
                            .live
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .is_empty();
                        if empty && idle {
                            dead = true;
                        }
                    }
                }
            }
            if dead {
                let conn = conns.swap_remove(i);
                conn.close();
                metrics::global().gauge("net.stream.conns").dec();
                progressed = true;
            } else {
                i += 1;
            }
        }

        if !progressed {
            thread::sleep(config.poll_interval);
        }
    }

    for conn in conns.drain(..) {
        conn.close();
        metrics::global().gauge("net.stream.conns").dec();
    }
    drop(jobs); // workers drain and exit
}

enum ConnFate {
    /// Connection closed or failed: tear it down now.
    Dead,
    /// Protocol violation: a typed error frame was queued; flush it,
    /// read nothing more, then tear down.
    Poisoned,
}

/// Read whatever is available and dispatch every complete frame.
fn service_reads(
    conn: &mut Conn,
    config: &StreamServerConfig,
    jobs: &crossbeam::channel::Sender<Job>,
    scratch: &mut [u8],
) -> Result<bool, ConnFate> {
    let mut progressed = false;
    loop {
        match conn.sock.read(scratch) {
            Ok(0) => return Err(ConnFate::Dead),
            Ok(n) => {
                progressed = true;
                conn.read_buf.extend_from_slice(&scratch[..n]);
                // Parse every complete frame in the buffer.
                loop {
                    match frame::decode_frame(&conn.read_buf) {
                        Ok(None) => break,
                        Ok(Some((frame, consumed))) => {
                            conn.read_buf.drain(..consumed);
                            dispatch_frame(conn, config, jobs, frame)?;
                        }
                        Err(e) => {
                            poison(conn, &e);
                            return Err(ConnFate::Poisoned);
                        }
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(progressed),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return Err(ConnFate::Dead),
        }
    }
}

/// Queue a best-effort typed error for a protocol violation; the
/// connection is dropped after it flushes. Stream id 0 marks a
/// connection-level fault (no individual stream is at fault).
fn poison(conn: &mut Conn, err: &ProtocolError) {
    metrics::global().counter("net.stream.protocol_errors").inc();
    let e = StreamError::failure(0, false, format!("protocol violation: {err}"));
    let _ = conn.queue.push(encode_frame(FrameKind::StreamError, &e.encode()));
}

fn dispatch_frame(
    conn: &mut Conn,
    config: &StreamServerConfig,
    jobs: &crossbeam::channel::Sender<Job>,
    frame: Frame,
) -> Result<(), ConnFate> {
    match frame.kind {
        FrameKind::OpenStream => {
            let query = match StreamQuery::decode(&frame.payload) {
                Ok(q) => q,
                Err(e) => {
                    poison(conn, &e);
                    return Err(ConnFate::Poisoned);
                }
            };
            let mut live = conn.live.lock().unwrap_or_else(|e| e.into_inner());
            if live.contains_key(&query.stream) {
                drop(live);
                poison(
                    conn,
                    &ProtocolError::Stream(format!(
                        "stream id {} is already open on this connection",
                        query.stream
                    )),
                );
                return Err(ConnFate::Poisoned);
            }
            if live.len() >= config.max_streams_per_conn {
                drop(live);
                let e = StreamError::failure(
                    query.stream,
                    true,
                    format!("connection stream limit ({}) reached", config.max_streams_per_conn),
                );
                let _ = conn.queue.push(encode_frame(FrameKind::StreamError, &e.encode()));
                return Ok(());
            }
            let cancel = Arc::new(AtomicBool::new(false));
            live.insert(query.stream, Arc::clone(&cancel));
            drop(live);
            metrics::global().counter("net.stream.opens").inc();
            let job = Job {
                query,
                queue: Arc::clone(&conn.queue),
                cancel,
                live: Arc::clone(&conn.live),
            };
            if jobs.send(job).is_err() {
                return Err(ConnFate::Dead);
            }
            Ok(())
        }
        FrameKind::CancelStream => match CancelStream::decode(&frame.payload) {
            Ok(c) => {
                if let Some(cancel) = conn
                    .live
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .get(&c.stream)
                {
                    cancel.store(true, Ordering::Release);
                }
                Ok(())
            }
            Err(e) => {
                poison(conn, &e);
                Err(ConnFate::Poisoned)
            }
        },
        // Server-bound connections must only carry client → coordinator
        // kinds; anything else (including well-formed v1 frames) is a
        // protocol violation here.
        other => {
            poison(
                conn,
                &ProtocolError::Stream(format!("unexpected {other:?} frame on a stream server")),
            );
            Err(ConnFate::Poisoned)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::write_frame;
    use partix_query::{Item, Sequence};

    fn echo_handler() -> Arc<dyn StreamHandler> {
        Arc::new(
            |q: &StreamQuery, sink: &dyn ChunkSink| -> Result<StreamStats, StreamFailure> {
                if q.text == "boom" {
                    return Err(StreamFailure::failure(false, "boom"));
                }
                if q.text == "panic" {
                    panic!("handler panic");
                }
                let n: usize = q.text.parse().unwrap_or(0);
                let items: Vec<Item> = (0..n).map(|i| Item::Num(i as f64)).collect();
                sink.emit(&items).map_err(|_| StreamFailure::failure(true, "sink closed"))?;
                Ok(StreamStats { sites: 1, ..StreamStats::default() })
            },
        )
    }

    fn read_outcome(
        sock: &mut TcpStream,
        stream: u64,
    ) -> Result<(Sequence, crate::stream::StreamOutcome), ProtocolError> {
        let mut asm = crate::stream::StreamAssembler::new(stream);
        loop {
            let (frame, _) = match frame::read_frame(sock)? {
                Some(f) => f,
                None => return Err(ProtocolError::Truncated { context: "stream" }),
            };
            match frame.kind {
                FrameKind::ItemChunk => {
                    asm.accept_chunk(ItemChunk::decode(&frame.payload)?)?;
                }
                FrameKind::StreamEnd => {
                    asm.finish(crate::stream::StreamEnd::decode(&frame.payload)?)?;
                    return asm.into_result();
                }
                FrameKind::StreamError => {
                    asm.fail(StreamError::decode(&frame.payload)?)?;
                    return asm.into_result();
                }
                k => return Err(ProtocolError::Stream(format!("unexpected {k:?}"))),
            }
        }
    }

    fn open(sock: &mut TcpStream, stream: u64, text: &str) {
        let q = StreamQuery {
            stream,
            text: text.into(),
            allow_partial: false,
            buffered: false,
            chunk_items: 10,
            tenant: String::new(),
        };
        write_frame(sock, FrameKind::OpenStream, &q.encode()).unwrap();
    }

    #[test]
    fn streams_chunks_and_ends() {
        let mut server =
            StreamServer::bind("127.0.0.1:0", echo_handler(), StreamServerConfig::default())
                .unwrap();
        let mut sock = TcpStream::connect(server.addr()).unwrap();
        open(&mut sock, 42, "25");
        let (items, outcome) = read_outcome(&mut sock, 42).unwrap();
        assert_eq!(items.len(), 25);
        match outcome {
            crate::stream::StreamOutcome::Complete(end) => {
                assert_eq!(end.chunks, 3); // 25 items at 10/chunk
                assert_eq!(end.items, 25);
            }
            other => panic!("{other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn typed_error_and_panic_firewall() {
        let mut server =
            StreamServer::bind("127.0.0.1:0", echo_handler(), StreamServerConfig::default())
                .unwrap();
        let mut sock = TcpStream::connect(server.addr()).unwrap();
        open(&mut sock, 1, "boom");
        let (_, outcome) = read_outcome(&mut sock, 1).unwrap();
        assert!(matches!(
            outcome,
            crate::stream::StreamOutcome::Failed(StreamError { retryable: false, .. })
        ));
        open(&mut sock, 2, "panic");
        let (_, outcome) = read_outcome(&mut sock, 2).unwrap();
        match outcome {
            crate::stream::StreamOutcome::Failed(e) => {
                assert!(e.message.contains("panicked"), "{}", e.message)
            }
            other => panic!("{other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn hostile_bytes_get_typed_error_then_close() {
        let mut server =
            StreamServer::bind("127.0.0.1:0", echo_handler(), StreamServerConfig::default())
                .unwrap();
        let mut sock = TcpStream::connect(server.addr()).unwrap();
        sock.write_all(b"QQQQ-not-a-frame-at-all-").unwrap();
        sock.flush().unwrap();
        // the server answers with a typed stream-0 error frame, then closes
        let (frame, _) = frame::read_frame(&mut sock).unwrap().unwrap();
        assert_eq!(frame.kind, FrameKind::StreamError);
        let err = StreamError::decode(&frame.payload).unwrap();
        assert_eq!(err.stream, 0);
        assert!(err.message.contains("protocol violation"), "{}", err.message);
        // ... and the connection reaches EOF
        let mut rest = Vec::new();
        let _ = sock.read_to_end(&mut rest);
        assert!(rest.is_empty());
        server.shutdown();
    }

    #[test]
    fn multiplexed_streams_on_one_connection() {
        let mut server =
            StreamServer::bind("127.0.0.1:0", echo_handler(), StreamServerConfig::default())
                .unwrap();
        let mut sock = TcpStream::connect(server.addr()).unwrap();
        open(&mut sock, 10, "15");
        open(&mut sock, 11, "5");
        let mut a = crate::stream::StreamAssembler::new(10);
        let mut b = crate::stream::StreamAssembler::new(11);
        while !(a.is_done() && b.is_done()) {
            let (frame, _) = frame::read_frame(&mut sock).unwrap().unwrap();
            let route = |asm: &mut crate::stream::StreamAssembler,
                         frame: &Frame|
             -> Result<bool, ProtocolError> {
                match frame.kind {
                    FrameKind::ItemChunk => {
                        let c = ItemChunk::decode(&frame.payload)?;
                        if c.stream == asm.stream() {
                            asm.accept_chunk(c)?;
                            return Ok(true);
                        }
                    }
                    FrameKind::StreamEnd => {
                        let e = crate::stream::StreamEnd::decode(&frame.payload)?;
                        if e.stream == asm.stream() {
                            asm.finish(e)?;
                            return Ok(true);
                        }
                    }
                    _ => {}
                }
                Ok(false)
            };
            if !route(&mut a, &frame).unwrap() {
                assert!(route(&mut b, &frame).unwrap(), "frame routed nowhere");
            }
        }
        assert_eq!(a.items().len(), 15);
        assert_eq!(b.items().len(), 5);
        server.shutdown();
    }

    #[test]
    fn kill_mid_stream_truncates_with_typed_error() {
        let handler: Arc<dyn StreamHandler> = Arc::new(
            |_q: &StreamQuery, sink: &dyn ChunkSink| -> Result<StreamStats, StreamFailure> {
                let items: Vec<Item> = (0..10).map(|i| Item::Num(i as f64)).collect();
                for _ in 0..1000 {
                    sink.emit(&items).map_err(|_| StreamFailure::failure(true, "closed"))?;
                    thread::sleep(Duration::from_millis(2));
                }
                Ok(StreamStats::default())
            },
        );
        let mut server =
            StreamServer::bind("127.0.0.1:0", handler, StreamServerConfig::default()).unwrap();
        let mut sock = TcpStream::connect(server.addr()).unwrap();
        open(&mut sock, 1, "big");
        // read one frame, then kill the server mid-stream
        let (first, _) = frame::read_frame(&mut sock).unwrap().unwrap();
        assert_eq!(first.kind, FrameKind::ItemChunk);
        server.shutdown();
        // the client must see a typed failure, never a clean StreamEnd
        let mut asm = crate::stream::StreamAssembler::new(1);
        asm.accept_chunk(ItemChunk::decode(&first.payload).unwrap()).unwrap();
        let err = loop {
            match frame::read_frame(&mut sock) {
                Ok(Some((frame, _))) => match frame.kind {
                    FrameKind::ItemChunk => {
                        asm.accept_chunk(ItemChunk::decode(&frame.payload).unwrap()).unwrap();
                    }
                    FrameKind::StreamEnd => panic!("killed server completed the stream"),
                    FrameKind::StreamError => break None,
                    k => panic!("unexpected {k:?}"),
                },
                Ok(None) => break Some(ProtocolError::Truncated { context: "stream" }),
                Err(e) => break Some(e),
            }
        };
        if let Some(e) = err {
            assert!(
                matches!(e, ProtocolError::Truncated { .. } | ProtocolError::Io(_)),
                "{e}"
            );
        }
    }
}
