//! [`NodeServer`]: a per-node TCP listener hosting fragments behind the
//! existing storage/driver stack.
//!
//! One accept thread hands each connection to its own handler thread.
//! Handlers poll for the *first* byte of each frame with a short read
//! timeout so they notice the stop flag between requests, but once a
//! frame has begun they read it to completion and answer it — shutdown
//! **drains in-flight sub-queries, then closes**, so test runs never
//! leave orphan listeners or half-answered coordinators.
//!
//! Failure semantics on the way out:
//! * driver errors → an `Error` frame tagged with retryability
//!   (`Unavailable` → retryable, `Failed` → not);
//! * a panic inside request handling is caught and answered as a
//!   non-retryable `Error` frame (one bad query must not take the node
//!   down);
//! * protocol errors from a malformed peer get a best-effort `Error`
//!   frame and the connection is dropped (the stream can no longer be
//!   trusted).

use crate::frame::{read_frame_after, write_frame, FrameKind, ProtocolError};
use crate::message::{ErrorCode, Request, Response, WireError};
use partix_engine::{metrics, DriverError, PartixDriver};
use partix_tenant::{AdmissionController, TenantRegistry};
use partix_storage::Database;
use std::io::{self, ErrorKind, Read};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Multi-tenant admission state a node server may enforce for
/// [`Request::ExecuteAs`] frames. Shared between servers (and with the
/// engine) via `Arc`.
pub struct ServerTenancy {
    pub registry: Arc<TenantRegistry>,
    pub controller: AdmissionController,
}

impl std::fmt::Debug for ServerTenancy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerTenancy")
            .field("tenants", &self.registry.len())
            .field("controller", &self.controller)
            .finish()
    }
}

/// Tuning knobs for a node server.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// How often an idle handler wakes up to check the stop flag.
    pub poll_interval: Duration,
    /// Read deadline for the remainder of a frame once its first byte
    /// arrived (a peer that stalls mid-frame is cut loose).
    pub frame_timeout: Duration,
    /// When set, [`Request::ExecuteAs`] frames pass this admission
    /// control; when unset they answer a typed
    /// [`ErrorCode::UnknownTenant`] error. Plain `Execute` frames are
    /// never gated (the anonymous compatibility path).
    pub tenancy: Option<Arc<ServerTenancy>>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            poll_interval: Duration::from_millis(50),
            frame_timeout: Duration::from_secs(10),
            tenancy: None,
        }
    }
}

struct ServerShared {
    driver: Arc<dyn PartixDriver>,
    stop: AtomicBool,
    /// Connections currently inside a request (for drain visibility).
    in_flight: AtomicUsize,
    open_connections: AtomicUsize,
    served: AtomicU64,
    config: ServerConfig,
}

/// A running node server. Dropping it shuts it down gracefully.
pub struct NodeServer {
    shared: Arc<ServerShared>,
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<Vec<JoinHandle<()>>>>,
}

impl NodeServer {
    /// Bind `addr` (use port 0 to let the OS pick — the chosen address
    /// is available from [`NodeServer::local_addr`]) and serve `db`.
    pub fn bind(addr: impl ToSocketAddrs, db: Arc<Database>) -> io::Result<NodeServer> {
        NodeServer::bind_driver(addr, db as Arc<dyn PartixDriver>, ServerConfig::default())
    }

    /// Bind with an arbitrary driver and explicit config. Serving a
    /// driver rather than a database keeps the node side as pluggable
    /// as the coordinator side (paper Sec. 4: any XQuery-capable DBMS).
    pub fn bind_driver(
        addr: impl ToSocketAddrs,
        driver: Arc<dyn PartixDriver>,
        config: ServerConfig,
    ) -> io::Result<NodeServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(ServerShared {
            driver,
            stop: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
            open_connections: AtomicUsize::new(0),
            served: AtomicU64::new(0),
            config,
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name(format!("partix-net-accept-{}", addr.port()))
            .spawn(move || accept_loop(listener, accept_shared))?;
        Ok(NodeServer { shared, addr, accept_thread: Some(accept_thread) })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests answered so far (including error answers).
    pub fn served(&self) -> u64 {
        self.shared.served.load(Ordering::Acquire)
    }

    /// Connections currently open.
    pub fn open_connections(&self) -> usize {
        self.shared.open_connections.load(Ordering::Acquire)
    }

    /// Stop accepting, let every in-flight request finish and be
    /// answered, then close all connections and join every thread.
    /// Idempotent.
    pub fn shutdown(&mut self) {
        if self.shared.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        // The accept loop blocks in accept(); poke it awake with a
        // throwaway connection so it sees the flag.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
        if let Some(handle) = self.accept_thread.take() {
            if let Ok(handlers) = handle.join() {
                for h in handlers {
                    let _ = h.join();
                }
            }
        }
    }
}

impl Drop for NodeServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<ServerShared>) -> Vec<JoinHandle<()>> {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.stop.load(Ordering::Acquire) {
                    // the shutdown poke (or a late client) — refuse
                    let _ = stream.shutdown(Shutdown::Both);
                    break;
                }
                handlers.retain(|h| !h.is_finished());
                let conn_shared = Arc::clone(&shared);
                let spawned = std::thread::Builder::new()
                    .name("partix-net-conn".to_owned())
                    .spawn(move || handle_connection(stream, conn_shared));
                match spawned {
                    Ok(h) => handlers.push(h),
                    Err(_) => { /* thread exhaustion: drop the connection */ }
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
    handlers
}

fn handle_connection(stream: TcpStream, shared: Arc<ServerShared>) {
    shared.open_connections.fetch_add(1, Ordering::AcqRel);
    let _ = stream.set_nodelay(true);
    serve_connection(&stream, &shared);
    let _ = stream.shutdown(Shutdown::Both);
    shared.open_connections.fetch_sub(1, Ordering::AcqRel);
}

fn serve_connection(mut stream: &TcpStream, shared: &ServerShared) {
    loop {
        // Poll for the first byte of the next frame so the stop flag is
        // observed between requests without dropping any in-flight one.
        let first = match poll_first_byte(stream, shared) {
            Some(b) => b,
            None => return,
        };
        let _ = stream.set_read_timeout(Some(shared.config.frame_timeout));
        shared.in_flight.fetch_add(1, Ordering::AcqRel);
        let outcome = read_frame_after(&mut stream, first)
            .and_then(|(frame, _)| answer_frame(stream, shared, frame));
        shared.in_flight.fetch_sub(1, Ordering::AcqRel);
        shared.served.fetch_add(1, Ordering::AcqRel);
        match outcome {
            Ok(()) => {}
            Err(err) => {
                // Best-effort: tell the peer what was wrong with its
                // frame, then drop the connection — after a framing
                // error the stream position can't be trusted.
                let wire = WireError::failure(false, err.to_string());
                let _ = write_frame(&mut stream, FrameKind::Error, &wire.encode());
                return;
            }
        }
    }
}

/// Wait for the first header byte of the next frame, checking the stop
/// flag every poll interval. `None` means: connection closed, stop
/// requested, or the socket failed.
fn poll_first_byte(mut stream: &TcpStream, shared: &ServerShared) -> Option<u8> {
    let mut buf = [0u8; 1];
    loop {
        if shared.stop.load(Ordering::Acquire) {
            return None;
        }
        let _ = stream.set_read_timeout(Some(shared.config.poll_interval));
        match stream.read(&mut buf) {
            Ok(0) => return None,
            Ok(_) => return Some(buf[0]),
            Err(e)
                if e.kind() == ErrorKind::WouldBlock
                    || e.kind() == ErrorKind::TimedOut
                    || e.kind() == ErrorKind::Interrupted =>
            {
                continue
            }
            Err(_) => return None,
        }
    }
}

fn answer_frame(
    mut stream: &TcpStream,
    shared: &ServerShared,
    frame: crate::frame::Frame,
) -> Result<(), ProtocolError> {
    match frame.kind {
        FrameKind::HealthPing => {
            write_frame(&mut stream, FrameKind::HealthPong, &[])?;
            Ok(())
        }
        FrameKind::Request => {
            let request = Request::decode(&frame.payload)?;
            // Panic firewall: a pathological query must answer as an
            // error, not kill the handler (and with it the connection
            // and any trust in the node's liveness).
            let result = catch_unwind(AssertUnwindSafe(|| serve_request(shared, request)));
            let (kind, payload) = match result {
                Ok(Ok(response)) => (FrameKind::Result, response.encode()),
                Ok(Err(err)) => (FrameKind::Error, err.into_wire().encode()),
                Err(panic) => {
                    let wire = WireError::failure(
                        false,
                        format!("node panicked: {}", panic_message(&panic)),
                    );
                    (FrameKind::Error, wire.encode())
                }
            };
            write_frame(&mut stream, kind, &payload)?;
            Ok(())
        }
        // A node server never receives responses — nor `PXN2` stream
        // frames, which belong to the coordinator endpoint
        // ([`crate::stream_server`]); answering them would desync the
        // request/response rhythm.
        FrameKind::Result
        | FrameKind::Error
        | FrameKind::HealthPong
        | FrameKind::OpenStream
        | FrameKind::ItemChunk
        | FrameKind::StreamEnd
        | FrameKind::StreamError
        | FrameKind::CancelStream => Err(ProtocolError::Malformed(format!(
            "unexpected {:?} frame on server",
            frame.kind
        ))),
    }
}

/// Failures a request handler can answer with: plain driver errors, or
/// typed admission errors carrying a [`ErrorCode`] the client can match
/// on without parsing the message text.
enum ServeError {
    Driver(DriverError),
    Admission { code: ErrorCode, retry_after_ms: u64, message: String },
}

impl ServeError {
    fn into_wire(self) -> WireError {
        match self {
            ServeError::Driver(err) => WireError::failure(
                matches!(err, DriverError::Unavailable(_)),
                err.to_string(),
            ),
            ServeError::Admission { code, retry_after_ms, message } => WireError {
                retryable: false,
                code,
                retry_after_ms,
                message,
            },
        }
    }
}

impl From<DriverError> for ServeError {
    fn from(err: DriverError) -> ServeError {
        ServeError::Driver(err)
    }
}

fn serve_request(shared: &ServerShared, request: Request) -> Result<Response, ServeError> {
    match request {
        Request::Execute { query } => {
            shared.driver.execute(&query).map(Response::Output).map_err(ServeError::from)
        }
        Request::ExecuteAs { tenant, query } => {
            let Some(tenancy) = shared.config.tenancy.as_ref() else {
                return Err(ServeError::Admission {
                    code: ErrorCode::UnknownTenant,
                    retry_after_ms: 0,
                    message: format!("tenant {tenant:?}: server has no tenancy configured"),
                });
            };
            let Some(entry) = tenancy.registry.by_name(&tenant) else {
                return Err(ServeError::Admission {
                    code: ErrorCode::UnknownTenant,
                    retry_after_ms: 0,
                    message: format!("unknown tenant {tenant:?}"),
                });
            };
            metrics::global().counter(&format!("tenant.{tenant}.queries")).inc();
            let permit = tenancy.controller.admit(&entry, 0).map_err(|rejection| {
                metrics::global().counter(&format!("tenant.{tenant}.rejected")).inc();
                // `WireError`'s Display re-appends the retry hint, so the
                // message carries only the tenant + reason.
                ServeError::Admission {
                    code: ErrorCode::AdmissionRejected,
                    retry_after_ms: rejection.retry_after_ms,
                    message: format!(
                        "tenant {:?} rejected: {}",
                        rejection.tenant, rejection.reason
                    ),
                }
            })?;
            metrics::global().counter(&format!("tenant.{tenant}.admitted")).inc();
            let result = shared.driver.execute(&query).map(Response::Output);
            drop(permit);
            result.map_err(ServeError::from)
        }
        Request::Store { collection, docs } => {
            shared.driver.store(&collection, docs);
            Ok(Response::Stored)
        }
        Request::Fetch { collection } => {
            let docs = shared
                .driver
                .fetch_collection(&collection)
                .iter()
                .map(|d| (**d).clone())
                .collect();
            Ok(Response::Docs(docs))
        }
        Request::Collections => Ok(Response::Names(shared.driver.collections())),
        Request::Drop { collection } => {
            shared.driver.drop_collection(&collection);
            Ok(Response::Dropped)
        }
        Request::Write { op } => {
            shared.driver.write(&op).map(Response::Written).map_err(ServeError::from)
        }
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = panic.downcast_ref::<&str>() {
        s
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s
    } else {
        "opaque panic payload"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::read_frame;
    use partix_query::parse_query;
    use partix_xml::parse;

    fn items_db() -> Arc<Database> {
        let db = Database::new();
        for i in 0..4 {
            let mut d = parse(&format!("<Item><Code>{i}</Code></Item>")).unwrap();
            d.name = Some(format!("i{i}"));
            db.store("items", d);
        }
        Arc::new(db)
    }

    fn request(stream: &mut TcpStream, req: &Request) -> (FrameKind, Vec<u8>) {
        write_frame(stream, FrameKind::Request, &req.encode()).unwrap();
        let (frame, _) = read_frame(stream).unwrap().unwrap();
        (frame.kind, frame.payload)
    }

    #[test]
    fn serves_the_driver_vocabulary_end_to_end() {
        let mut server = NodeServer::bind("127.0.0.1:0", items_db()).unwrap();
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();

        let q = parse_query(r#"count(collection("items")/Item)"#).unwrap();
        let (kind, payload) = request(&mut conn, &Request::Execute { query: q });
        assert_eq!(kind, FrameKind::Result);
        match Response::decode(&payload).unwrap() {
            Response::Output(Some(out)) => {
                assert_eq!(out.items[0], partix_query::Item::Num(4.0))
            }
            other => panic!("unexpected {other:?}"),
        }

        // absent collection stays the driver's Ok(None) contract
        let q = parse_query(r#"count(collection("absent")/x)"#).unwrap();
        let (kind, payload) = request(&mut conn, &Request::Execute { query: q });
        assert_eq!(kind, FrameKind::Result);
        assert!(matches!(Response::decode(&payload).unwrap(), Response::Output(None)));

        let (kind, payload) = request(&mut conn, &Request::Collections);
        assert_eq!(kind, FrameKind::Result);
        match Response::decode(&payload).unwrap() {
            Response::Names(names) => assert_eq!(names, ["items"]),
            other => panic!("unexpected {other:?}"),
        }

        let (kind, payload) = request(
            &mut conn,
            &Request::Store { collection: "extra".into(), docs: vec![parse("<x/>").unwrap()] },
        );
        assert_eq!(kind, FrameKind::Result);
        assert!(matches!(Response::decode(&payload).unwrap(), Response::Stored));

        let (kind, payload) = request(&mut conn, &Request::Fetch { collection: "extra".into() });
        assert_eq!(kind, FrameKind::Result);
        match Response::decode(&payload).unwrap() {
            Response::Docs(docs) => assert_eq!(docs.len(), 1),
            other => panic!("unexpected {other:?}"),
        }

        // health ping answers pong
        write_frame(&mut conn, FrameKind::HealthPing, &[]).unwrap();
        let (frame, _) = read_frame(&mut conn).unwrap().unwrap();
        assert_eq!(frame.kind, FrameKind::HealthPong);

        assert!(server.served() >= 5);
        server.shutdown();
    }

    #[test]
    fn malformed_payload_answers_error_and_drops_connection() {
        let mut server = NodeServer::bind("127.0.0.1:0", items_db()).unwrap();
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        write_frame(&mut conn, FrameKind::Request, &[250, 1, 2]).unwrap();
        let (frame, _) = read_frame(&mut conn).unwrap().unwrap();
        assert_eq!(frame.kind, FrameKind::Error);
        let err = WireError::decode(&frame.payload).unwrap();
        assert!(!err.retryable);
        // the server hangs up after a framing error
        assert!(read_frame(&mut conn).unwrap().is_none());
        server.shutdown();
    }

    #[test]
    fn shutdown_is_graceful_and_idempotent() {
        let mut server = NodeServer::bind("127.0.0.1:0", items_db()).unwrap();
        let addr = server.local_addr();
        let mut conn = TcpStream::connect(addr).unwrap();
        let q = parse_query(r#"count(collection("items")/Item)"#).unwrap();
        let (kind, _) = request(&mut conn, &Request::Execute { query: q });
        assert_eq!(kind, FrameKind::Result);
        server.shutdown();
        server.shutdown();
        // listener is gone: new connections are refused or die instantly
        match TcpStream::connect_timeout(&addr, Duration::from_millis(250)) {
            Err(_) => {}
            Ok(mut late) => {
                let _ = late.set_read_timeout(Some(Duration::from_millis(250)));
                assert!(matches!(read_frame(&mut late), Ok(None) | Err(_)));
            }
        }
    }
}
