//! Wire-protocol property tests: every frame and payload type
//! round-trips byte-exactly, and *no* mutation of the bytes — truncation,
//! corruption, oversized lengths, unknown versions — can make the
//! decoder panic or allocate unboundedly: the outcome is always a typed
//! [`ProtocolError`].
//!
//! `PARTIX_PROPTEST_CASES` overrides every block's case count.

use partix_net::codec::{self, Reader, Writer};
use partix_net::frame::{
    self, crc32, encode_frame, read_frame, FrameKind, ProtocolError, HEADER_LEN, MAX_PAYLOAD,
};
use partix_net::message::{Request, Response, WireError};
use partix_query::parse_query;
use partix_query::Item;
use partix_storage::{QueryOutput, QueryStats};
use partix_xml::Document;
use proptest::prelude::*;

/// Per-block case budget, overridable with `PARTIX_PROPTEST_CASES`.
fn cases(default_cases: u32) -> ProptestConfig {
    std::env::var("PARTIX_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .map(ProptestConfig::with_cases)
        .unwrap_or_else(|| ProptestConfig::with_cases(default_cases))
}

// ------------------------------------------------------- strategies --

fn arb_kind() -> impl Strategy<Value = FrameKind> {
    prop::sample::select(vec![
        FrameKind::Request,
        FrameKind::Result,
        FrameKind::Error,
        FrameKind::HealthPing,
        FrameKind::HealthPong,
    ])
}

fn arb_payload() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec((0usize..256).prop_map(|b| b as u8), 0..300)
}

/// Random well-formed documents, via the generator the benches use.
fn arb_document() -> impl Strategy<Value = Document> {
    (0u64..1000).prop_map(|seed| {
        partix_gen::gen_items(1, partix_gen::ItemProfile::Small, seed)
            .into_iter()
            .next()
            .expect("one generated item")
    })
}

/// Query texts spanning every expression family the codec ships: FLWOR
/// with where/order/let, paths with predicates and descendant axes,
/// comparisons, arithmetic, boolean connectives, conditionals, function
/// calls, element constructors, and literal text.
fn arb_query_text() -> impl Strategy<Value = &'static str> {
    prop::sample::select(vec![
        r#"count(collection("items")/Item)"#,
        r#"for $i in collection("items")/Item return $i/Name"#,
        r#"for $i in collection("items")/Item where $i/Section = "CD" return $i"#,
        r#"for $i in collection("items")/Item where $i/Quantity > 2 order by $i/Code return $i/Code"#,
        r#"for $i in collection("items")/Item let $n := $i/Name where contains($n, "good") return $n"#,
        r#"sum(for $i in collection("items")/Item return $i/Quantity)"#,
        r#"avg(collection("items")/Item/Quantity)"#,
        r#"for $i in collection("items")/Item return <hit id="1">{$i/Name}</hit>"#,
        r#"if (count(collection("items")/Item) > 0) then "some" else "none""#,
        r#"for $i in collection("items")/Item where $i/Section = "CD" and $i/Quantity >= 1 return $i"#,
        r#"for $i in collection("items")/Item where $i/Section = "CD" or $i/Section = "DVD" return $i/Code"#,
        r#"count(collection("items")//Picture)"#,
        r#"for $i in collection("items")/Item return $i/Quantity + 1"#,
        r#"-count(collection("items")/Item)"#,
    ])
}

fn arb_item() -> impl Strategy<Value = Item> {
    prop_oneof![
        Just(Item::Bool(true)).boxed(),
        Just(Item::Bool(false)).boxed(),
        (0u64..2_000_000_000)
            .prop_map(|v| Item::Num(v as f64 - 1e9))
            .boxed(),
        prop::sample::select(vec!["", "plain", "ma\u{e7}\u{e3}", "<&>\"'"])
            .prop_map(|s| Item::Str(s.to_owned()))
            .boxed(),
        arb_document()
            .prop_map(|doc| {
                let doc = std::sync::Arc::new(doc);
                let root = doc.root().id();
                Item::Node(doc, root)
            })
            .boxed(),
    ]
}

// ------------------------------------------------------- round-trips --

proptest! {
    #![proptest_config(cases(96))]

    #[test]
    fn frame_roundtrip(kind in arb_kind(), payload in arb_payload()) {
        let bytes = encode_frame(kind, &payload);
        prop_assert_eq!(bytes.len(), HEADER_LEN + payload.len());
        let (frame, consumed) = read_frame(&mut bytes.as_slice())
            .expect("own frame decodes")
            .expect("not EOF");
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(frame.kind, kind);
        prop_assert_eq!(frame.payload, payload);
    }

    #[test]
    fn query_payload_roundtrip(text in arb_query_text()) {
        let query = parse_query(text).expect("strategy queries parse");
        let bytes = codec::encode_query(&query);
        let back = codec::decode_query(&bytes).expect("own encoding decodes");
        prop_assert_eq!(&back, &query);
        // and re-encoding is byte-stable
        prop_assert_eq!(codec::encode_query(&back), bytes);
    }

    #[test]
    fn document_payload_roundtrip(doc in arb_document()) {
        let mut w = Writer::new();
        codec::put_document(&mut w, &doc);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = codec::get_document(&mut r).expect("own encoding decodes");
        r.finish().expect("no trailing bytes");
        prop_assert_eq!(back, doc);
    }

    #[test]
    fn item_payload_roundtrip(item in arb_item()) {
        let mut w = Writer::new();
        codec::put_item(&mut w, &item);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = codec::get_item(&mut r).expect("own encoding decodes");
        r.finish().expect("no trailing bytes");
        // Item has no PartialEq: the serialization contract is equality
        prop_assert_eq!(back.serialize(), item.serialize());
    }

    #[test]
    fn request_roundtrip(text in arb_query_text(), docs in prop::collection::vec(arb_document(), 0..3)) {
        let query = parse_query(text).expect("strategy queries parse");
        for request in [
            Request::Execute { query: query.clone() },
            Request::Store { collection: "c".into(), docs: docs.clone() },
            Request::Fetch { collection: "c".into() },
            Request::Collections,
            Request::Drop { collection: "c".into() },
        ] {
            let bytes = request.encode();
            let back = Request::decode(&bytes).expect("own encoding decodes");
            // Request has no PartialEq (Document): byte-stability is the contract
            prop_assert_eq!(back.encode(), bytes);
            prop_assert_eq!(back.idempotent(), request.idempotent());
        }
    }

    #[test]
    fn response_roundtrip(items in prop::collection::vec(arb_item(), 0..4), docs in prop::collection::vec(arb_document(), 0..3)) {
        let output = QueryOutput {
            items: items.clone(),
            stats: QueryStats {
                collection_size: 7,
                docs_scanned: 3,
                index_used: true,
                elapsed: 0.25,
                result_bytes: 99,
                morsels: 2,
            },
        };
        for response in [
            Response::Output(Some(output)),
            Response::Output(None),
            Response::Stored,
            Response::Docs(docs.clone()),
            Response::Names(vec!["a".into(), "b".into()]),
            Response::Dropped,
        ] {
            let bytes = response.encode();
            let back = Response::decode(&bytes).expect("own encoding decodes");
            prop_assert_eq!(back.encode(), bytes);
        }
    }

    #[test]
    fn wire_error_roundtrip(retryable in prop::sample::select(vec![true, false]), msg in prop::sample::select(vec!["", "boom", "nó caiu"])) {
        let err = WireError { retryable, message: msg.to_owned() };
        let back = WireError::decode(&err.encode()).expect("own encoding decodes");
        prop_assert_eq!(back.retryable, retryable);
        prop_assert_eq!(back.message, msg);
    }
}

// -------------------------------------------------- hostile mutations --

proptest! {
    #![proptest_config(cases(96))]

    /// Every proper prefix of a valid frame is a typed error (or, before
    /// the first byte, a clean EOF) — never a panic.
    #[test]
    fn truncated_frames_are_typed_errors(kind in arb_kind(), payload in arb_payload()) {
        let bytes = encode_frame(kind, &payload);
        for cut in 0..bytes.len() {
            match read_frame(&mut &bytes[..cut]) {
                Ok(None) => prop_assert_eq!(cut, 0, "mid-frame EOF reported as clean"),
                Ok(Some(_)) => prop_assert!(false, "decoded a truncated frame (cut {cut})"),
                Err(e) => prop_assert!(
                    matches!(e, ProtocolError::Truncated { .. } | ProtocolError::Io(_)),
                    "cut {cut}: unexpected error {e:?}",
                ),
            }
        }
    }

    /// Flipping any single byte of a frame yields a typed error or — only
    /// when the flip lands in the length field and still describes a
    /// plausible frame — a short read; silently accepting changed payload
    /// bytes is outlawed by the checksum.
    #[test]
    fn corrupted_frames_never_decode_silently(kind in arb_kind(), payload in arb_payload(), pos in 0usize..100, flip in 1usize..256) {
        let mut bytes = encode_frame(kind, &payload);
        let pos = pos % bytes.len();
        bytes[pos] ^= flip as u8;
        match read_frame(&mut bytes.as_slice()) {
            // corrupting the length field can make the frame look longer
            // than the bytes present (Truncated) or shorter: a short,
            // checksum-failing frame. Both are detected outcomes.
            Err(_) => {}
            Ok(None) => prop_assert!(false, "corruption reported as clean EOF"),
            Ok(Some((frame, _))) => {
                // length-field shrink: the checksum over the shorter
                // payload cannot match the original CRC except by
                // constructing it — which a single XOR cannot do without
                // also hitting the CRC field. If we get here the flip hit
                // the CRC *and* produced the CRC of the same payload,
                // which is impossible for a non-zero flip.
                prop_assert!(
                    frame.payload != payload || frame.kind != kind,
                    "flipped frame decoded back to the original",
                );
            }
        }
    }

    /// A header advertising an oversized payload is rejected before any
    /// allocation of that size.
    #[test]
    fn oversized_length_is_rejected(kind in arb_kind(), extra in 1u64..1_000_000) {
        let mut bytes = encode_frame(kind, b"x");
        let huge = (MAX_PAYLOAD as u64 + extra).min(u32::MAX as u64) as u32;
        bytes[6..10].copy_from_slice(&huge.to_le_bytes());
        match read_frame(&mut bytes.as_slice()) {
            Err(ProtocolError::Oversized { len, max }) => {
                prop_assert_eq!(len, huge as usize);
                prop_assert_eq!(max, MAX_PAYLOAD);
            }
            other => prop_assert!(false, "expected Oversized, got {other:?}"),
        }
    }

    /// Unknown protocol versions and frame kinds are typed errors.
    #[test]
    fn unknown_version_and_kind_are_typed_errors(kind in arb_kind(), version in 2usize..256, bogus_kind in 6usize..256) {
        let mut bytes = encode_frame(kind, b"payload");
        bytes[4] = version as u8;
        match read_frame(&mut bytes.as_slice()) {
            Err(ProtocolError::UnsupportedVersion(v)) => prop_assert_eq!(v, version as u8),
            other => prop_assert!(false, "expected UnsupportedVersion, got {other:?}"),
        }
        let mut bytes = encode_frame(kind, b"payload");
        bytes[5] = bogus_kind as u8;
        match read_frame(&mut bytes.as_slice()) {
            Err(ProtocolError::UnknownFrame(k)) => prop_assert_eq!(k, bogus_kind as u8),
            other => prop_assert!(false, "expected UnknownFrame, got {other:?}"),
        }
    }

    /// Arbitrary bytes fed to the payload decoders are typed errors,
    /// never panics or runaway allocations.
    #[test]
    fn random_bytes_never_panic_payload_decoders(payload in arb_payload()) {
        let _ = codec::decode_query(&payload);
        let _ = Request::decode(&payload);
        let _ = Response::decode(&payload);
        let _ = WireError::decode(&payload);
        let mut r = Reader::new(&payload);
        let _ = codec::get_document(&mut r);
        let mut r = Reader::new(&payload);
        let _ = codec::get_item(&mut r);
        let mut r = Reader::new(&payload);
        let _ = codec::get_output(&mut r);
    }

    /// Truncating a valid *payload* (inside an intact frame) is a typed
    /// error from the payload decoder.
    #[test]
    fn truncated_payloads_are_typed_errors(text in arb_query_text()) {
        let query = parse_query(text).expect("strategy queries parse");
        let bytes = codec::encode_query(&query);
        for cut in 0..bytes.len() {
            prop_assert!(
                codec::decode_query(&bytes[..cut]).is_err(),
                "prefix of length {cut} decoded as a full query",
            );
        }
    }
}

/// The CRC implementation matches the IEEE reference vector, pinning the
/// wire format against silent table regressions.
#[test]
fn crc32_reference_vector() {
    assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    assert_eq!(crc32(b""), 0);
    assert_eq!(frame::MAGIC, *b"PXN1");
}
