//! Wire-protocol property tests: every frame and payload type
//! round-trips byte-exactly, and *no* mutation of the bytes — truncation,
//! corruption, oversized lengths, unknown versions — can make the
//! decoder panic or allocate unboundedly: the outcome is always a typed
//! [`ProtocolError`].
//!
//! `PARTIX_PROPTEST_CASES` overrides every block's case count.

use partix_net::codec::{self, Reader, Writer};
use partix_net::frame::{
    self, crc32, decode_frame, encode_frame, read_frame, FrameKind, ProtocolError, HEADER_LEN,
    MAX_PAYLOAD, VERSION2,
};
use partix_net::message::{Request, Response, WireError};
use partix_net::stream::{
    CancelStream, ItemChunk, StreamAssembler, StreamEnd, StreamError, StreamOutcome, StreamQuery,
    StreamStats, MAX_CHUNK_ITEMS,
};
use partix_query::parse_query;
use partix_query::Item;
use partix_storage::{QueryOutput, QueryStats};
use partix_xml::Document;
use proptest::prelude::*;

/// Per-block case budget, overridable with `PARTIX_PROPTEST_CASES`.
fn cases(default_cases: u32) -> ProptestConfig {
    std::env::var("PARTIX_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .map(ProptestConfig::with_cases)
        .unwrap_or_else(|| ProptestConfig::with_cases(default_cases))
}

// ------------------------------------------------------- strategies --

fn arb_kind() -> impl Strategy<Value = FrameKind> {
    prop::sample::select(vec![
        FrameKind::Request,
        FrameKind::Result,
        FrameKind::Error,
        FrameKind::HealthPing,
        FrameKind::HealthPong,
    ])
}

fn arb_payload() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec((0usize..256).prop_map(|b| b as u8), 0..300)
}

/// Random well-formed documents, via the generator the benches use.
fn arb_document() -> impl Strategy<Value = Document> {
    (0u64..1000).prop_map(|seed| {
        partix_gen::gen_items(1, partix_gen::ItemProfile::Small, seed)
            .into_iter()
            .next()
            .expect("one generated item")
    })
}

/// Query texts spanning every expression family the codec ships: FLWOR
/// with where/order/let, paths with predicates and descendant axes,
/// comparisons, arithmetic, boolean connectives, conditionals, function
/// calls, element constructors, and literal text.
fn arb_query_text() -> impl Strategy<Value = &'static str> {
    prop::sample::select(vec![
        r#"count(collection("items")/Item)"#,
        r#"for $i in collection("items")/Item return $i/Name"#,
        r#"for $i in collection("items")/Item where $i/Section = "CD" return $i"#,
        r#"for $i in collection("items")/Item where $i/Quantity > 2 order by $i/Code return $i/Code"#,
        r#"for $i in collection("items")/Item let $n := $i/Name where contains($n, "good") return $n"#,
        r#"sum(for $i in collection("items")/Item return $i/Quantity)"#,
        r#"avg(collection("items")/Item/Quantity)"#,
        r#"for $i in collection("items")/Item return <hit id="1">{$i/Name}</hit>"#,
        r#"if (count(collection("items")/Item) > 0) then "some" else "none""#,
        r#"for $i in collection("items")/Item where $i/Section = "CD" and $i/Quantity >= 1 return $i"#,
        r#"for $i in collection("items")/Item where $i/Section = "CD" or $i/Section = "DVD" return $i/Code"#,
        r#"count(collection("items")//Picture)"#,
        r#"for $i in collection("items")/Item return $i/Quantity + 1"#,
        r#"-count(collection("items")/Item)"#,
    ])
}

fn arb_item() -> impl Strategy<Value = Item> {
    prop_oneof![
        Just(Item::Bool(true)).boxed(),
        Just(Item::Bool(false)).boxed(),
        (0u64..2_000_000_000)
            .prop_map(|v| Item::Num(v as f64 - 1e9))
            .boxed(),
        prop::sample::select(vec!["", "plain", "ma\u{e7}\u{e3}", "<&>\"'"])
            .prop_map(|s| Item::Str(s.to_owned()))
            .boxed(),
        arb_document()
            .prop_map(|doc| {
                let doc = std::sync::Arc::new(doc);
                let root = doc.root().id();
                Item::Node(doc, root)
            })
            .boxed(),
    ]
}

// ------------------------------------------------------- round-trips --

proptest! {
    #![proptest_config(cases(96))]

    #[test]
    fn frame_roundtrip(kind in arb_kind(), payload in arb_payload()) {
        let bytes = encode_frame(kind, &payload);
        prop_assert_eq!(bytes.len(), HEADER_LEN + payload.len());
        let (frame, consumed) = read_frame(&mut bytes.as_slice())
            .expect("own frame decodes")
            .expect("not EOF");
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(frame.kind, kind);
        prop_assert_eq!(frame.payload, payload);
    }

    #[test]
    fn query_payload_roundtrip(text in arb_query_text()) {
        let query = parse_query(text).expect("strategy queries parse");
        let bytes = codec::encode_query(&query);
        let back = codec::decode_query(&bytes).expect("own encoding decodes");
        prop_assert_eq!(&back, &query);
        // and re-encoding is byte-stable
        prop_assert_eq!(codec::encode_query(&back), bytes);
    }

    #[test]
    fn document_payload_roundtrip(doc in arb_document()) {
        let mut w = Writer::new();
        codec::put_document(&mut w, &doc);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = codec::get_document(&mut r).expect("own encoding decodes");
        r.finish().expect("no trailing bytes");
        prop_assert_eq!(back, doc);
    }

    #[test]
    fn item_payload_roundtrip(item in arb_item()) {
        let mut w = Writer::new();
        codec::put_item(&mut w, &item);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = codec::get_item(&mut r).expect("own encoding decodes");
        r.finish().expect("no trailing bytes");
        // Item has no PartialEq: the serialization contract is equality
        prop_assert_eq!(back.serialize(), item.serialize());
    }

    #[test]
    fn request_roundtrip(text in arb_query_text(), docs in prop::collection::vec(arb_document(), 0..3)) {
        let query = parse_query(text).expect("strategy queries parse");
        for request in [
            Request::Execute { query: query.clone() },
            Request::Store { collection: "c".into(), docs: docs.clone() },
            Request::Fetch { collection: "c".into() },
            Request::Collections,
            Request::Drop { collection: "c".into() },
        ] {
            let bytes = request.encode();
            let back = Request::decode(&bytes).expect("own encoding decodes");
            // Request has no PartialEq (Document): byte-stability is the contract
            prop_assert_eq!(back.encode(), bytes);
            prop_assert_eq!(back.idempotent(), request.idempotent());
        }
    }

    #[test]
    fn response_roundtrip(items in prop::collection::vec(arb_item(), 0..4), docs in prop::collection::vec(arb_document(), 0..3)) {
        let output = QueryOutput {
            items: items.clone(),
            stats: QueryStats {
                collection_size: 7,
                docs_scanned: 3,
                index_used: true,
                elapsed: 0.25,
                result_bytes: 99,
                morsels: 2,
            },
        };
        for response in [
            Response::Output(Some(output)),
            Response::Output(None),
            Response::Stored,
            Response::Docs(docs.clone()),
            Response::Names(vec!["a".into(), "b".into()]),
            Response::Dropped,
        ] {
            let bytes = response.encode();
            let back = Response::decode(&bytes).expect("own encoding decodes");
            prop_assert_eq!(back.encode(), bytes);
        }
    }

    #[test]
    fn wire_error_roundtrip(
        retryable in prop::sample::select(vec![true, false]),
        msg in prop::sample::select(vec!["", "boom", "nó caiu"]),
        code in (0usize..3).prop_map(|c| c as u8),
        retry_after_ms in prop::sample::select(vec![0u64, 100, u64::MAX]),
    ) {
        let code = partix_net::ErrorCode::from_u8(code).unwrap();
        let err = WireError { retryable, code, retry_after_ms, message: msg.to_owned() };
        let back = WireError::decode(&err.encode()).expect("own encoding decodes");
        prop_assert_eq!(back.retryable, retryable);
        prop_assert_eq!(back.code, code);
        prop_assert_eq!(back.retry_after_ms, retry_after_ms);
        prop_assert_eq!(back.message, msg);
    }
}

proptest! {
    #![proptest_config(cases(96))]

    /// A hostile tenant header — control bytes, separators, oversized
    /// names — decodes to a typed [`ProtocolError::Malformed`] on both
    /// wire protocols, never a panic and never a silently accepted
    /// identity. Valid names always round-trip.
    #[test]
    fn hostile_tenant_headers_are_typed_on_both_protocols(
        raw in prop::collection::vec((0usize..256).prop_map(|b| b as u8), 0..100),
        stream in 1u64..1000,
    ) {
        let tenant = String::from_utf8_lossy(&raw).into_owned();
        let valid = !tenant.is_empty()
            && tenant.len() <= 64
            && tenant.chars().all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'));
        // PXN1: ExecuteAs carries the header
        let query = parse_query(r#"collection("c")/x"#).unwrap();
        let req = Request::ExecuteAs { tenant: tenant.clone(), query };
        match Request::decode(&req.encode()) {
            Ok(_) => prop_assert!(valid, "invalid tenant {tenant:?} decoded on PXN1"),
            Err(e) => {
                prop_assert!(!valid, "valid tenant {tenant:?} rejected on PXN1: {e}");
                prop_assert!(matches!(e, ProtocolError::Malformed(_)));
            }
        }
        // PXN2: StreamQuery carries it (empty = anonymous, always fine)
        let sq = StreamQuery {
            stream,
            text: "1".into(),
            allow_partial: false,
            buffered: false,
            chunk_items: 0,
            tenant: tenant.clone(),
        };
        match StreamQuery::decode(&sq.encode()) {
            Ok(back) => {
                prop_assert!(valid || tenant.is_empty(),
                    "invalid tenant {tenant:?} decoded on PXN2");
                prop_assert_eq!(back.tenant, tenant);
            }
            Err(e) => {
                prop_assert!(!(valid || tenant.is_empty()),
                    "valid tenant {tenant:?} rejected on PXN2: {e}");
                prop_assert!(matches!(e, ProtocolError::Malformed(_)));
            }
        }
    }
}

// -------------------------------------------------- hostile mutations --

proptest! {
    #![proptest_config(cases(96))]

    /// Every proper prefix of a valid frame is a typed error (or, before
    /// the first byte, a clean EOF) — never a panic.
    #[test]
    fn truncated_frames_are_typed_errors(kind in arb_kind(), payload in arb_payload()) {
        let bytes = encode_frame(kind, &payload);
        for cut in 0..bytes.len() {
            match read_frame(&mut &bytes[..cut]) {
                Ok(None) => prop_assert_eq!(cut, 0, "mid-frame EOF reported as clean"),
                Ok(Some(_)) => prop_assert!(false, "decoded a truncated frame (cut {cut})"),
                Err(e) => prop_assert!(
                    matches!(e, ProtocolError::Truncated { .. } | ProtocolError::Io(_)),
                    "cut {cut}: unexpected error {e:?}",
                ),
            }
        }
    }

    /// Flipping any single byte of a frame yields a typed error or — only
    /// when the flip lands in the length field and still describes a
    /// plausible frame — a short read; silently accepting changed payload
    /// bytes is outlawed by the checksum.
    #[test]
    fn corrupted_frames_never_decode_silently(kind in arb_kind(), payload in arb_payload(), pos in 0usize..100, flip in 1usize..256) {
        let mut bytes = encode_frame(kind, &payload);
        let pos = pos % bytes.len();
        bytes[pos] ^= flip as u8;
        match read_frame(&mut bytes.as_slice()) {
            // corrupting the length field can make the frame look longer
            // than the bytes present (Truncated) or shorter: a short,
            // checksum-failing frame. Both are detected outcomes.
            Err(_) => {}
            Ok(None) => prop_assert!(false, "corruption reported as clean EOF"),
            Ok(Some((frame, _))) => {
                // length-field shrink: the checksum over the shorter
                // payload cannot match the original CRC except by
                // constructing it — which a single XOR cannot do without
                // also hitting the CRC field. If we get here the flip hit
                // the CRC *and* produced the CRC of the same payload,
                // which is impossible for a non-zero flip.
                prop_assert!(
                    frame.payload != payload || frame.kind != kind,
                    "flipped frame decoded back to the original",
                );
            }
        }
    }

    /// A header advertising an oversized payload is rejected before any
    /// allocation of that size.
    #[test]
    fn oversized_length_is_rejected(kind in arb_kind(), extra in 1u64..1_000_000) {
        let mut bytes = encode_frame(kind, b"x");
        let huge = (MAX_PAYLOAD as u64 + extra).min(u32::MAX as u64) as u32;
        bytes[6..10].copy_from_slice(&huge.to_le_bytes());
        match read_frame(&mut bytes.as_slice()) {
            Err(ProtocolError::Oversized { len, max }) => {
                prop_assert_eq!(len, huge as usize);
                prop_assert_eq!(max, MAX_PAYLOAD);
            }
            other => prop_assert!(false, "expected Oversized, got {other:?}"),
        }
    }

    /// Unknown protocol versions and frame kinds are typed errors.
    #[test]
    fn unknown_version_and_kind_are_typed_errors(kind in arb_kind(), version in 2usize..256, bogus_kind in 6usize..256) {
        let mut bytes = encode_frame(kind, b"payload");
        bytes[4] = version as u8;
        match read_frame(&mut bytes.as_slice()) {
            Err(ProtocolError::UnsupportedVersion(v)) => prop_assert_eq!(v, version as u8),
            other => prop_assert!(false, "expected UnsupportedVersion, got {other:?}"),
        }
        let mut bytes = encode_frame(kind, b"payload");
        bytes[5] = bogus_kind as u8;
        match read_frame(&mut bytes.as_slice()) {
            Err(ProtocolError::UnknownFrame(k)) => prop_assert_eq!(k, bogus_kind as u8),
            other => prop_assert!(false, "expected UnknownFrame, got {other:?}"),
        }
    }

    /// Arbitrary bytes fed to the payload decoders are typed errors,
    /// never panics or runaway allocations.
    #[test]
    fn random_bytes_never_panic_payload_decoders(payload in arb_payload()) {
        let _ = codec::decode_query(&payload);
        let _ = Request::decode(&payload);
        let _ = Response::decode(&payload);
        let _ = WireError::decode(&payload);
        let mut r = Reader::new(&payload);
        let _ = codec::get_document(&mut r);
        let mut r = Reader::new(&payload);
        let _ = codec::get_item(&mut r);
        let mut r = Reader::new(&payload);
        let _ = codec::get_output(&mut r);
    }

    /// Truncating a valid *payload* (inside an intact frame) is a typed
    /// error from the payload decoder.
    #[test]
    fn truncated_payloads_are_typed_errors(text in arb_query_text()) {
        let query = parse_query(text).expect("strategy queries parse");
        let bytes = codec::encode_query(&query);
        for cut in 0..bytes.len() {
            prop_assert!(
                codec::decode_query(&bytes[..cut]).is_err(),
                "prefix of length {cut} decoded as a full query",
            );
        }
    }
}

// ------------------------------------------------------ PXN2 streams --

fn arb_stream_kind() -> impl Strategy<Value = FrameKind> {
    prop::sample::select(vec![
        FrameKind::OpenStream,
        FrameKind::ItemChunk,
        FrameKind::StreamEnd,
        FrameKind::StreamError,
        FrameKind::CancelStream,
    ])
}

fn arb_stream_query() -> impl Strategy<Value = StreamQuery> {
    (
        0u64..u64::MAX,
        arb_query_text(),
        prop::sample::select(vec![true, false]),
        prop::sample::select(vec![true, false]),
        0u32..100_000,
        prop::sample::select(vec!["", "t1", "team-a", "analytics_prod", "a.b.c"]),
    )
        .prop_map(|(stream, text, allow_partial, buffered, chunk_items, tenant)| StreamQuery {
            stream,
            text: text.to_owned(),
            allow_partial,
            buffered,
            chunk_items,
            tenant: tenant.to_owned(),
        })
}

fn arb_stream_end() -> impl Strategy<Value = StreamEnd> {
    (
        0u64..u64::MAX,
        0u32..1000,
        0u64..100_000,
        0u32..64,
        0u32..64,
        0u64..100_000,
        prop::sample::select(vec![true, false]),
        0u64..u64::MAX,
    )
        .prop_map(
            |(stream, chunks, items, sites, pruned, docs, partial, epoch)| StreamEnd {
                stream,
                chunks,
                items,
                stats: StreamStats {
                    sites,
                    fragments_pruned: pruned,
                    docs_scanned: docs,
                    partial,
                    catalog_epoch: epoch,
                    elapsed: 0.125,
                },
            },
        )
}

/// One step of a hostile coordinator's output, as the assembler fuzz
/// sees it: chunks with arbitrary stream ids and sequence numbers,
/// ends with arbitrary totals, typed errors.
#[derive(Debug, Clone)]
enum StreamStep {
    Chunk { stream: u64, seq: u32, items: usize },
    End { stream: u64, chunks: u32, items: u64 },
    Fail { stream: u64 },
}

fn arb_stream_step() -> impl Strategy<Value = StreamStep> {
    prop_oneof![
        (0u64..4, 0u32..6, 0usize..5)
            .prop_map(|(stream, seq, items)| StreamStep::Chunk { stream, seq, items }),
        (0u64..4, 0u32..6, 0u64..20)
            .prop_map(|(stream, chunks, items)| StreamStep::End { stream, chunks, items }),
        (0u64..4).prop_map(|stream| StreamStep::Fail { stream }),
    ]
}

proptest! {
    #![proptest_config(cases(96))]

    /// Every PXN2 payload type round-trips byte-exactly, and its frames
    /// carry the v2 magic — v1 tooling can never half-read a stream.
    #[test]
    fn pxn2_payloads_roundtrip_and_frames_carry_v2_magic(
        q in arb_stream_query(),
        end in arb_stream_end(),
        items in prop::collection::vec(arb_item(), 0..4),
        retryable in prop::sample::select(vec![true, false]),
    ) {
        prop_assert_eq!(StreamQuery::decode(&q.encode()).unwrap(), q.clone());
        prop_assert_eq!(StreamEnd::decode(&end.encode()).unwrap(), end);
        let chunk = ItemChunk { stream: q.stream, seq: 3, items };
        let back = ItemChunk::decode(&chunk.encode()).unwrap();
        prop_assert_eq!(back.stream, chunk.stream);
        prop_assert_eq!(back.seq, chunk.seq);
        let err = StreamError::failure(q.stream, retryable, "nó caiu");
        prop_assert_eq!(StreamError::decode(&err.encode()).unwrap(), err);
        let cancel = CancelStream { stream: q.stream };
        prop_assert_eq!(CancelStream::decode(&cancel.encode()).unwrap(), cancel);

        let bytes = encode_frame(FrameKind::OpenStream, &q.encode());
        prop_assert_eq!(&bytes[..4], b"PXN2");
        prop_assert_eq!(bytes[4], VERSION2);
        let (frame, consumed) = decode_frame(&bytes).unwrap().expect("complete frame");
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(frame.kind, FrameKind::OpenStream);
    }

    /// The incremental decoder never yields a frame from a proper prefix
    /// and never panics on one; appending the missing bytes always
    /// completes the identical frame.
    #[test]
    fn pxn2_incremental_decode_survives_any_split(
        kind in arb_stream_kind(),
        payload in arb_payload(),
        cut_at in 0usize..65_536,
    ) {
        let bytes = encode_frame(kind, &payload);
        let cut = cut_at % bytes.len();
        match decode_frame(&bytes[..cut]) {
            Ok(None) => {}
            Ok(Some(_)) => prop_assert!(false, "prefix of {cut} bytes decoded as a frame"),
            Err(e) => prop_assert!(false, "prefix of {cut} bytes errored: {e}"),
        }
        let (frame, consumed) = decode_frame(&bytes).unwrap().expect("full frame decodes");
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(frame.kind, kind);
        prop_assert_eq!(frame.payload, payload);
    }

    /// Hostile bytes against every PXN2 payload decoder: typed errors,
    /// never panics.
    #[test]
    fn pxn2_random_bytes_never_panic_decoders(payload in arb_payload()) {
        let _ = StreamQuery::decode(&payload);
        let _ = ItemChunk::decode(&payload);
        let _ = StreamEnd::decode(&payload);
        let _ = StreamError::decode(&payload);
        let _ = CancelStream::decode(&payload);
        let _ = decode_frame(&payload);
    }

    /// Every proper prefix of a valid PXN2 payload is a typed error.
    #[test]
    fn pxn2_truncated_payloads_are_typed_errors(q in arb_stream_query(), end in arb_stream_end()) {
        let bytes = q.encode();
        for cut in 0..bytes.len() {
            prop_assert!(StreamQuery::decode(&bytes[..cut]).is_err(), "query prefix {cut}");
        }
        let bytes = end.encode();
        for cut in 0..bytes.len() {
            prop_assert!(StreamEnd::decode(&bytes[..cut]).is_err(), "end prefix {cut}");
        }
    }

    /// Fuzz the reassembly state machine with arbitrary interleavings of
    /// chunks (any stream id, any seq), ends, and errors: it never
    /// panics, rejects every frame not belonging to its stream, and a
    /// `Complete` outcome is only reachable through consecutive sequence
    /// numbers with truthful totals.
    #[test]
    fn pxn2_assembler_rejects_every_out_of_contract_interleaving(
        target in 0u64..4,
        steps in prop::collection::vec(arb_stream_step(), 0..24),
    ) {
        let mut asm = StreamAssembler::new(target);
        let mut accepted_chunks: u32 = 0;
        let mut accepted_items: u64 = 0;
        for step in steps {
            match step {
                StreamStep::Chunk { stream, seq, items } => {
                    let chunk = ItemChunk {
                        stream,
                        seq,
                        items: (0..items).map(|i| Item::Num(i as f64)).collect(),
                    };
                    let in_contract = stream == target
                        && !asm.is_done()
                        && seq == accepted_chunks;
                    match asm.accept_chunk(chunk) {
                        Ok(added) => {
                            prop_assert!(in_contract, "accepted chunk out of contract");
                            prop_assert_eq!(added, items);
                            accepted_chunks += 1;
                            accepted_items += items as u64;
                        }
                        Err(e) => {
                            prop_assert!(!in_contract, "rejected in-contract chunk: {e}");
                            prop_assert!(matches!(e, ProtocolError::Stream(_)));
                        }
                    }
                }
                StreamStep::End { stream, chunks, items } => {
                    let truthful = stream == target
                        && !asm.is_done()
                        && chunks == accepted_chunks
                        && items == accepted_items;
                    match asm.finish(StreamEnd {
                        stream,
                        chunks,
                        items,
                        stats: StreamStats::default(),
                    }) {
                        Ok(()) => prop_assert!(truthful, "accepted untruthful end-of-stream"),
                        Err(e) => {
                            prop_assert!(!truthful, "rejected truthful end: {e}");
                            prop_assert!(matches!(e, ProtocolError::Stream(_)));
                        }
                    }
                }
                StreamStep::Fail { stream } => {
                    let in_contract = stream == target && !asm.is_done();
                    let err = StreamError::failure(stream, false, "x");
                    match asm.fail(err) {
                        Ok(()) => prop_assert!(in_contract),
                        Err(e) => prop_assert!(!in_contract, "rejected in-contract error: {e}"),
                    }
                }
            }
        }
        // a stream that never concluded is Truncated, not a silent prefix
        let done = asm.is_done();
        match asm.into_result() {
            Ok((items, outcome)) => {
                prop_assert!(done);
                if let StreamOutcome::Complete(end) = outcome {
                    prop_assert_eq!(end.items, items.len() as u64);
                }
            }
            Err(e) => {
                prop_assert!(!done);
                prop_assert!(matches!(e, ProtocolError::Truncated { .. }));
            }
        }
    }
}

/// A chunk claiming more items than [`MAX_CHUNK_ITEMS`] is rejected by
/// the payload decoder *and* the assembler — the per-chunk allocation
/// bound a hostile coordinator cannot talk its way around.
#[test]
fn pxn2_oversized_chunk_is_rejected() {
    let oversized = ItemChunk {
        stream: 1,
        seq: 0,
        items: (0..MAX_CHUNK_ITEMS + 1).map(|_| Item::Bool(true)).collect(),
    };
    let bytes = oversized.encode();
    assert!(matches!(ItemChunk::decode(&bytes), Err(ProtocolError::Stream(_))));
    let mut asm = StreamAssembler::new(1);
    assert!(matches!(asm.accept_chunk(oversized), Err(ProtocolError::Stream(_))));
    assert!(asm.items().is_empty(), "oversized chunk leaked items into the assembly");
}

/// A v2 frame whose version byte claims v1 (or vice versa) is rejected:
/// magic and version are paired, so kind numbers can never be confused
/// across protocol generations.
#[test]
fn pxn2_magic_version_mispairing_is_rejected() {
    let mut bytes = encode_frame(FrameKind::CancelStream, &CancelStream { stream: 9 }.encode());
    bytes[4] = 1; // PXN2 magic, v1 version byte
    assert!(decode_frame(&bytes).is_err());
    let mut bytes = encode_frame(FrameKind::HealthPing, b"");
    bytes[4] = VERSION2; // PXN1 magic, v2 version byte
    assert!(decode_frame(&bytes).is_err());
}

/// The CRC implementation matches the IEEE reference vector, pinning the
/// wire format against silent table regressions.
#[test]
fn crc32_reference_vector() {
    assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    assert_eq!(crc32(b""), 0);
    assert_eq!(frame::MAGIC, *b"PXN1");
}
