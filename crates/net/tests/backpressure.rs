//! Slow-reader backpressure: one client that stops reading must stall
//! only its own stream. The server's memory for it is bounded by the
//! per-connection send-queue cap (plus at most one frame), every other
//! client keeps streaming at full rate, and tearing the slow reader down
//! releases its worker — the server serves on as if nothing happened.

use partix_net::frame::{encode_frame, FrameKind};
use partix_net::stream::{StreamQuery, StreamStats};
use partix_net::stream_server::{
    ChunkSink, StreamFailure, StreamHandler, StreamServer, StreamServerConfig,
};
use partix_net::{StreamClient, StreamClientConfig, StreamOpts};
use partix_query::Item;
use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Synthetic handler: the query text is an item count; items go out in
/// fixed batches so a big stream is many frames, not one.
struct CountHandler {
    /// Streams whose sink closed under them (the slow reader, once torn
    /// down).
    closed_streams: AtomicU64,
}

impl StreamHandler for CountHandler {
    fn run(
        &self,
        query: &StreamQuery,
        sink: &dyn ChunkSink,
    ) -> Result<StreamStats, StreamFailure> {
        let n: usize = query.text.parse().unwrap_or(0);
        let batch: Vec<Item> = (0..256).map(|i| Item::Num(i as f64)).collect();
        let mut sent = 0;
        while sent < n {
            let take = batch.len().min(n - sent);
            if sink.emit(&batch[..take]).is_err() {
                self.closed_streams.fetch_add(1, Ordering::Relaxed);
                return Err(StreamFailure::failure(true, "sink closed"));
            }
            sent += take;
        }
        Ok(StreamStats { sites: 1, ..StreamStats::default() })
    }
}

/// Bytes one batch frame occupies, give or take headers — used to size
/// the queue-bound assertion.
const FRAME_SLACK: usize = 16 * 1024;

#[test]
fn slow_reader_stalls_only_itself_with_bounded_server_memory() {
    const QUEUE_CAP: usize = 32 * 1024;
    // ~2M numeric items ≈ ~20 MB of frames: far beyond the queue cap
    // *and* the kernel's socket buffering, so an unbounded server would
    // balloon observably
    const STALLED_ITEMS: usize = 2_000_000;
    const FAST_ITEMS: usize = 1_000;
    const FAST_CLIENTS: usize = 4;
    const FAST_QUERIES: usize = 10;

    let handler = Arc::new(CountHandler { closed_streams: AtomicU64::new(0) });
    let server = StreamServer::bind(
        "127.0.0.1:0",
        Arc::clone(&handler) as Arc<dyn StreamHandler>,
        StreamServerConfig { send_queue_bytes: QUEUE_CAP, ..StreamServerConfig::default() },
    )
    .expect("bind");
    let addr = server.addr().to_string();

    // the slow reader: open a huge stream on a raw socket, read nothing
    let mut stalled = TcpStream::connect(&addr).expect("connect stalled");
    let open = StreamQuery {
        stream: 1,
        text: STALLED_ITEMS.to_string(),
        allow_partial: false,
        buffered: false,
        chunk_items: 64,
        tenant: String::new(),
    };
    stalled
        .write_all(&encode_frame(FrameKind::OpenStream, &open.encode()))
        .expect("open stalled stream");
    stalled.flush().unwrap();

    // give the handler time to fill the queue and hit the cap
    let filled = Instant::now();
    while server.queued_bytes() < QUEUE_CAP && filled.elapsed() < Duration::from_secs(10) {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        server.queued_bytes() > 0,
        "stalled stream never queued anything — is the handler running?"
    );

    // fast clients run at full rate while the slow reader stalls
    let mut latencies: Vec<f64> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..FAST_CLIENTS)
            .map(|_| {
                let addr = addr.clone();
                scope.spawn(move || {
                    let client = StreamClient::connect(&addr, StreamClientConfig::default())
                        .expect("fast client connects");
                    let mut observed = Vec::new();
                    for _ in 0..FAST_QUERIES {
                        let started = Instant::now();
                        let result = client
                            .query(&FAST_ITEMS.to_string(), StreamOpts::default())
                            .expect("fast query completes while another client stalls");
                        observed.push(started.elapsed().as_secs_f64());
                        assert_eq!(result.items.len(), FAST_ITEMS);
                        assert!(result.chunks > 1, "large answer should arrive chunked");
                    }
                    observed
                })
            })
            .collect();
        for h in handles {
            latencies.extend(h.join().expect("fast client"));
        }
    });

    // full rate: no fast query waited anywhere near the stall. The bound
    // is deliberately generous (shared single-core CI) — contamination
    // by a stalled peer would park a query for the full 30 s timeout.
    latencies.sort_by(f64::total_cmp);
    let p99 = latencies[(latencies.len() - 1).min(latencies.len() * 99 / 100)];
    assert!(
        p99 < 5.0,
        "fast-client p99 {p99:.3}s: the stalled client contaminated its peers"
    );

    // bounded memory: the stalled stream holds at most the queue cap plus
    // one in-flight frame; fast streams drain as they go. Megabytes would
    // mean the cap is not enforced.
    let peak = server.peak_queue_bytes();
    assert!(
        peak <= QUEUE_CAP + FRAME_SLACK + FAST_CLIENTS * FRAME_SLACK,
        "peak queue depth {peak} bytes blows through the {QUEUE_CAP}-byte cap"
    );

    // tear the slow reader down: its worker must observe the closed sink
    // and the queued bytes must be released
    drop(stalled);
    let released = Instant::now();
    while (server.queued_bytes() > 0 || handler.closed_streams.load(Ordering::Relaxed) == 0)
        && released.elapsed() < Duration::from_secs(10)
    {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(server.queued_bytes(), 0, "closing the stalled conn must release its queue");
    assert_eq!(
        handler.closed_streams.load(Ordering::Relaxed),
        1,
        "the stalled stream's handler must observe SinkClosed"
    );

    // and the server serves on: the freed worker answers new queries
    let client = StreamClient::connect(&addr, StreamClientConfig::default()).expect("reconnect");
    let result = client.query("100", StreamOpts::default()).expect("post-stall query");
    assert_eq!(result.items.len(), 100);
}
