//! # partix-path
//!
//! Path expressions and simple predicates as formalized in Section 3.1 of
//! the PartiX paper:
//!
//! * A **path expression** `P` is a sequence `/e1/…/{ek | @ak}` over
//!   element names and attribute names, optionally containing `*` (any
//!   element), `//` (any sequence of descendants), and positional steps
//!   `e[i]` (the i-th occurrence of `e`).
//! * A **simple predicate** is
//!   `p := P θ value | φv(P) θ value | φb(P) | Q` with
//!   `θ ∈ {=, <, >, ≠, ≤, ≥}`, `φv` a value function (e.g. `count`),
//!   `φb` a boolean function (e.g. `contains`, `empty`), and `Q` an
//!   existential path test.
//!
//! Besides parsing ([`PathExpr::parse`], [`Predicate::parse`]) and
//! evaluation over documents, this crate provides the *static analysis*
//! PartiX uses for data localization (paper Sec. 4): [`analysis`] decides
//! whether a query's footprint can possibly touch a fragment, letting the
//! middleware prune irrelevant sub-queries.

pub mod analysis;
pub mod ast;
pub mod eval;
pub mod parse;
pub mod pred;

pub use ast::{Axis, NodeTest, PathExpr, Step};
pub use eval::{eval_path, eval_path_from};
pub use parse::PathParseError;
pub use pred::{CmpOp, Predicate, Value};
