//! Static analysis of paths and predicates for data localization.
//!
//! PartiX prunes sub-queries that cannot produce results (paper Sec. 4:
//! *"when a query arrives, PartiX analyzes the fragmentation schema to
//! properly split it into sub-queries, and then sends each sub-query to
//! its respective fragment"*). Two decisions drive the pruning:
//!
//! 1. **Path overlap** — can a query path select anything inside the
//!    subtree a vertical fragment projects? Paths are compiled to small
//!    NFAs over the label alphabet and intersected; `//` and `*` are
//!    handled exactly (positional filters are ignored, which only errs
//!    toward *keeping* a fragment — sound for localization).
//! 2. **Predicate co-satisfiability** — can one document satisfy both the
//!    query predicate and a horizontal fragment's defining predicate?
//!    A conservative contradiction check over conjunctions of simple
//!    comparisons; anything not provably contradictory is kept.

use crate::ast::{Axis, NodeTest, PathExpr};
use crate::pred::{CmpOp, Predicate, Value};
use std::collections::HashSet;

/// Transition label of a path NFA.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Label {
    Elem(String),
    AnyElem,
    Attr(String),
    /// Any attribute — used only by subtree closures.
    AnyAttr,
}

fn compatible(a: &Label, b: &Label) -> bool {
    use Label::*;
    match (a, b) {
        (Elem(x), Elem(y)) => x == y,
        (Elem(_), AnyElem) | (AnyElem, Elem(_)) | (AnyElem, AnyElem) => true,
        (Attr(x), Attr(y)) => x == y,
        (Attr(_), AnyAttr) | (AnyAttr, Attr(_)) | (AnyAttr, AnyAttr) => true,
        _ => false,
    }
}

#[derive(Debug, Clone)]
struct Nfa {
    /// `transitions[s]` = list of `(label, target)`.
    transitions: Vec<Vec<(Label, usize)>>,
    accept: usize,
}

impl Nfa {
    /// Compile a path: state `k` = "matched the first `k` steps".
    fn from_path(path: &PathExpr) -> Nfa {
        let n = path.steps.len();
        let mut transitions: Vec<Vec<(Label, usize)>> = vec![Vec::new(); n + 1];
        for (i, step) in path.steps.iter().enumerate() {
            if step.axis == Axis::Descendant {
                // any run of intermediate elements before the step
                transitions[i].push((Label::AnyElem, i));
            }
            let label = match &step.test {
                NodeTest::Name(name) => Label::Elem(name.clone()),
                NodeTest::AnyElement => Label::AnyElem,
                NodeTest::Attribute(name) => Label::Attr(name.clone()),
            };
            transitions[i].push((label, i + 1));
        }
        Nfa { transitions, accept: n }
    }

    /// Extend so the automaton also accepts any node *inside* the subtree
    /// rooted at an accepted node (descendant elements and attributes).
    fn with_subtree_closure(mut self) -> Nfa {
        let accept = self.accept;
        self.transitions[accept].push((Label::AnyElem, accept));
        self.transitions[accept].push((Label::AnyAttr, accept));
        self
    }
}

/// Can the two automata accept a common label sequence?
fn nfas_intersect(a: &Nfa, b: &Nfa) -> bool {
    let mut seen = HashSet::new();
    let mut stack = vec![(0usize, 0usize)];
    while let Some((sa, sb)) = stack.pop() {
        if !seen.insert((sa, sb)) {
            continue;
        }
        if sa == a.accept && sb == b.accept {
            return true;
        }
        for (la, ta) in &a.transitions[sa] {
            for (lb, tb) in &b.transitions[sb] {
                if compatible(la, lb) && !seen.contains(&(*ta, *tb)) {
                    stack.push((*ta, *tb));
                }
            }
        }
    }
    false
}

/// Can paths `a` and `b` select a common node in some document?
///
/// Both paths are interpreted from the same context (document root).
/// Positional filters are ignored — a sound over-approximation.
pub fn paths_may_intersect(a: &PathExpr, b: &PathExpr) -> bool {
    nfas_intersect(&Nfa::from_path(a), &Nfa::from_path(b))
}

/// Can a node selected by `query` lie inside the subtree rooted at a node
/// selected by `subtree_root`? (Ancestor-or-self on the root side.)
pub fn path_may_reach_into(subtree_root: &PathExpr, query: &PathExpr) -> bool {
    nfas_intersect(
        &Nfa::from_path(subtree_root).with_subtree_closure(),
        &Nfa::from_path(query),
    )
}

/// Is a vertical fragment projecting `projected` relevant to a query whose
/// footprint includes `query_path`? Relevant iff the query can select a
/// node inside the projected subtree, or a node on the path above it
/// (whose reconstructed result would include fragment content).
pub fn fragment_relevant_to_path(projected: &PathExpr, query_path: &PathExpr) -> bool {
    path_may_reach_into(projected, query_path) || path_may_reach_into(query_path, projected)
}

/// An atomic comparison constraint extracted from a predicate.
#[derive(Debug, Clone)]
struct Atom<'a> {
    path: &'a PathExpr,
    op: CmpOp,
    value: &'a Value,
}

/// Extract comparison atoms from a conjunction. Returns `None` if the
/// predicate contains structure we cannot decompose conjunctively (e.g.
/// `or`), in which case no contradiction can be claimed.
fn conjunctive_atoms(pred: &Predicate) -> Option<Vec<Atom<'_>>> {
    let mut atoms = Vec::new();
    collect_atoms(pred, false, &mut atoms)?;
    Some(atoms)
}

fn collect_atoms<'a>(
    pred: &'a Predicate,
    negated: bool,
    out: &mut Vec<Atom<'a>>,
) -> Option<()> {
    match pred {
        Predicate::Cmp { path, op, value } => {
            let op = if negated { op.negate() } else { *op };
            out.push(Atom { path, op, value });
            Some(())
        }
        Predicate::And(ps) if !negated => {
            for p in ps {
                collect_atoms(p, false, out)?;
            }
            Some(())
        }
        Predicate::Or(ps) if negated => {
            // ¬(a ∨ b) = ¬a ∧ ¬b
            for p in ps {
                collect_atoms(p, true, out)?;
            }
            Some(())
        }
        Predicate::Not(p) => collect_atoms(p, !negated, out),
        // Existential tests, boolean functions and disjunctions carry no
        // conjunctive comparison information we exploit; they are simply
        // skipped (sound: skipping only loses pruning opportunities), but
        // a *negated* unknown would be unsound to skip under And — it is
        // fine too, since we only ever report contradictions we can prove
        // from the atoms we did collect, and extra conjuncts can only make
        // satisfaction harder, never easier.
        _ => Some(()),
    }
}

/// Could one document satisfy both predicates?
///
/// `single_valued` tells the analysis which paths are known (from the
/// schema) to select at most one node per document; only for those is
/// `P = "a" ∧ P = "b"` a contradiction. Paths not known single-valued are
/// treated existentially and never produce contradictions on `=`/`≠`.
pub fn predicates_may_cosatisfy(
    a: &Predicate,
    b: &Predicate,
    single_valued: &dyn Fn(&PathExpr) -> bool,
) -> bool {
    // expand top-level disjunctions: a ∧ (b1 ∨ b2) is satisfiable iff
    // some disjunct is
    if let Predicate::Or(ps) = b {
        return ps.iter().any(|p| predicates_may_cosatisfy(a, p, single_valued));
    }
    if let Predicate::Or(ps) = a {
        return ps.iter().any(|p| predicates_may_cosatisfy(p, b, single_valued));
    }
    let (Some(mut atoms_a), Some(atoms_b)) = (conjunctive_atoms(a), conjunctive_atoms(b))
    else {
        return true;
    };
    atoms_a.extend(atoms_b);
    for i in 0..atoms_a.len() {
        for j in (i + 1)..atoms_a.len() {
            let (x, y) = (&atoms_a[i], &atoms_a[j]);
            if x.path == y.path && single_valued(x.path) && atoms_contradict(x, y) {
                return false;
            }
        }
    }
    true
}

/// Do two constraints on the *same single-valued* path contradict?
fn atoms_contradict(a: &Atom<'_>, b: &Atom<'_>) -> bool {
    match (a.value, b.value) {
        (Value::Str(x), Value::Str(y)) => {
            string_atoms_contradict(a.op, x, b.op, y)
        }
        (Value::Num(x), Value::Num(y)) => num_atoms_contradict(a.op, *x, b.op, *y),
        // mixed string/number comparisons: try both as numbers
        (Value::Str(x), Value::Num(y)) => match x.trim().parse::<f64>() {
            Ok(x) => num_atoms_contradict(a.op, x, b.op, *y),
            Err(_) => false,
        },
        (Value::Num(x), Value::Str(y)) => match y.trim().parse::<f64>() {
            Ok(y) => num_atoms_contradict(a.op, *x, b.op, y),
            Err(_) => false,
        },
    }
}

fn string_atoms_contradict(op_a: CmpOp, x: &str, op_b: CmpOp, y: &str) -> bool {
    use CmpOp::*;
    match (op_a, op_b) {
        (Eq, Eq) => x != y,
        (Eq, Ne) | (Ne, Eq) => x == y,
        // lexicographic orders on strings
        (Eq, Lt) => x >= y,
        (Lt, Eq) => y >= x,
        (Eq, Le) => x > y,
        (Le, Eq) => y > x,
        (Eq, Gt) => x <= y,
        (Gt, Eq) => y <= x,
        (Eq, Ge) => x < y,
        (Ge, Eq) => y < x,
        // `v θa x ∧ v θb y` with opposed strict orders is unsatisfiable
        // whenever the bounds cross or meet
        (Lt, Gt) | (Lt, Ge) | (Le, Gt) => x <= y,
        (Gt, Lt) | (Ge, Lt) | (Gt, Le) => y <= x,
        _ => false,
    }
}

fn num_atoms_contradict(op_a: CmpOp, x: f64, op_b: CmpOp, y: f64) -> bool {
    use CmpOp::*;
    // interval emptiness: v op_a x ∧ v op_b y unsatisfiable?
    let (lo_a, hi_a, open_lo_a, open_hi_a) = bounds(op_a, x);
    let (lo_b, hi_b, open_lo_b, open_hi_b) = bounds(op_b, y);
    if let (Some(_), Some(_)) = (exact(op_a, x), exact(op_b, y)) {
        return x != y;
    }
    // Ne only contradicts Eq, handled via exact(); ranges vs Ne never
    // contradict. Check range emptiness:
    if op_a == Ne || op_b == Ne {
        if op_a == Eq && op_b == Ne {
            return x == y;
        }
        if op_a == Ne && op_b == Eq {
            return x == y;
        }
        return false;
    }
    let lo = match (lo_a, lo_b) {
        (Some(a), Some(b)) => Some((a.max(b), if a >= b { open_lo_a } else { open_lo_b })),
        (Some(a), None) => Some((a, open_lo_a)),
        (None, Some(b)) => Some((b, open_lo_b)),
        (None, None) => None,
    };
    let hi = match (hi_a, hi_b) {
        (Some(a), Some(b)) => Some((a.min(b), if a <= b { open_hi_a } else { open_hi_b })),
        (Some(a), None) => Some((a, open_hi_a)),
        (None, Some(b)) => Some((b, open_hi_b)),
        (None, None) => None,
    };
    match (lo, hi) {
        (Some((lo, open_lo)), Some((hi, open_hi))) => {
            lo > hi || (lo == hi && (open_lo || open_hi))
        }
        _ => false,
    }
}

fn exact(op: CmpOp, v: f64) -> Option<f64> {
    if op == CmpOp::Eq {
        Some(v)
    } else {
        None
    }
}

/// `(lower, upper, lower_open, upper_open)` of `value op x`.
fn bounds(op: CmpOp, x: f64) -> (Option<f64>, Option<f64>, bool, bool) {
    use CmpOp::*;
    match op {
        Eq => (Some(x), Some(x), false, false),
        Ne => (None, None, false, false),
        Lt => (None, Some(x), false, true),
        Le => (None, Some(x), false, false),
        Gt => (Some(x), None, true, false),
        Ge => (Some(x), None, false, false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> PathExpr {
        PathExpr::parse(s).unwrap()
    }

    fn pr(s: &str) -> Predicate {
        Predicate::parse(s).unwrap()
    }

    const SINGLE: fn(&PathExpr) -> bool = |_| true;
    const MULTI: fn(&PathExpr) -> bool = |_| false;

    #[test]
    fn exact_paths_intersect_iff_equal() {
        assert!(paths_may_intersect(&p("/a/b"), &p("/a/b")));
        assert!(!paths_may_intersect(&p("/a/b"), &p("/a/c")));
        assert!(!paths_may_intersect(&p("/a/b"), &p("/a/b/c")));
    }

    #[test]
    fn descendant_paths_intersect() {
        assert!(paths_may_intersect(&p("//b"), &p("/a/b")));
        assert!(paths_may_intersect(&p("//b"), &p("/a/x/y/b")));
        assert!(!paths_may_intersect(&p("//b"), &p("/a/c")));
        assert!(paths_may_intersect(&p("/a//d"), &p("/a/b/c/d")));
        assert!(!paths_may_intersect(&p("/z//d"), &p("/a/b/c/d")));
    }

    #[test]
    fn wildcard_paths_intersect() {
        assert!(paths_may_intersect(&p("/a/*"), &p("/a/b")));
        assert!(!paths_may_intersect(&p("/a/*"), &p("/x/b")));
        assert!(paths_may_intersect(&p("/a/*/c"), &p("/a/b/c")));
    }

    #[test]
    fn attributes_never_match_elements() {
        assert!(!paths_may_intersect(&p("/a/@id"), &p("/a/id")));
        assert!(paths_may_intersect(&p("/a/@id"), &p("/a/@id")));
        assert!(!paths_may_intersect(&p("/a/@id"), &p("/a/@other")));
        assert!(!paths_may_intersect(&p("/a/*"), &p("/a/@id")));
    }

    #[test]
    fn reach_into_subtree() {
        // fragment projects /Store/Items; query touches items' sections
        assert!(path_may_reach_into(&p("/Store/Items"), &p("/Store/Items/Item/Section")));
        assert!(path_may_reach_into(&p("/Store/Items"), &p("/Store/Items")));
        assert!(!path_may_reach_into(&p("/Store/Items"), &p("/Store/Sections/Section")));
        // // queries reach into everything label-compatible
        assert!(path_may_reach_into(&p("/Store/Items"), &p("//Section")));
        // attribute inside projected subtree
        assert!(path_may_reach_into(&p("/Store/Items"), &p("/Store/Items/Item/@id")));
    }

    #[test]
    fn fragment_relevance_is_symmetric_on_ancestors() {
        // query /Store returns whole store ⇒ needs the Items fragment too
        assert!(fragment_relevant_to_path(&p("/Store/Items"), &p("/Store")));
        assert!(fragment_relevant_to_path(&p("/Store/Items"), &p("/Store/Items/Item")));
        assert!(!fragment_relevant_to_path(&p("/Store/Items"), &p("/Store/Employees")));
    }

    #[test]
    fn equality_contradictions_single_valued() {
        let cd = pr(r#"/Item/Section = "CD""#);
        let dvd = pr(r#"/Item/Section = "DVD""#);
        assert!(!predicates_may_cosatisfy(&cd, &dvd, &SINGLE));
        assert!(predicates_may_cosatisfy(&cd, &cd, &SINGLE));
        // multi-valued: both can hold
        assert!(predicates_may_cosatisfy(&cd, &dvd, &MULTI));
    }

    #[test]
    fn eq_vs_ne() {
        let eq = pr(r#"/Item/Section = "CD""#);
        let ne = pr(r#"/Item/Section != "CD""#);
        let ne_other = pr(r#"/Item/Section != "DVD""#);
        assert!(!predicates_may_cosatisfy(&eq, &ne, &SINGLE));
        assert!(predicates_may_cosatisfy(&eq, &ne_other, &SINGLE));
    }

    #[test]
    fn not_wrapper_negates() {
        let eq = pr(r#"/Item/Section = "CD""#);
        let not_eq = pr(r#"not(/Item/Section = "CD")"#);
        assert!(!predicates_may_cosatisfy(&eq, &not_eq, &SINGLE));
    }

    #[test]
    fn numeric_range_contradictions() {
        assert!(!predicates_may_cosatisfy(
            &pr("/p = 10"),
            &pr("/p > 20"),
            &SINGLE
        ));
        assert!(predicates_may_cosatisfy(
            &pr("/p > 5"),
            &pr("/p < 20"),
            &SINGLE
        ));
        assert!(!predicates_may_cosatisfy(
            &pr("/p < 5"),
            &pr("/p > 20"),
            &SINGLE
        ));
        assert!(!predicates_may_cosatisfy(
            &pr("/p < 5"),
            &pr("/p >= 5"),
            &SINGLE
        ));
        assert!(predicates_may_cosatisfy(
            &pr("/p <= 5"),
            &pr("/p >= 5"),
            &SINGLE
        ));
    }

    #[test]
    fn conjunctions_accumulate() {
        let frag = pr(r#"/Item/Section != "CD" and /Item/Section != "DVD""#);
        let q_cd = pr(r#"/Item/Section = "CD""#);
        let q_book = pr(r#"/Item/Section = "BOOK""#);
        assert!(!predicates_may_cosatisfy(&frag, &q_cd, &SINGLE));
        assert!(predicates_may_cosatisfy(&frag, &q_book, &SINGLE));
    }

    #[test]
    fn disjunction_disables_pruning() {
        let frag = pr(r#"/Item/Section = "CD""#);
        let q = pr(r#"/Item/Section = "DVD" or /Item/Price < 5"#);
        assert!(predicates_may_cosatisfy(&frag, &q, &SINGLE));
    }

    #[test]
    fn different_paths_never_contradict() {
        assert!(predicates_may_cosatisfy(
            &pr(r#"/a = "x""#),
            &pr(r#"/b = "y""#),
            &SINGLE
        ));
    }

    #[test]
    fn unknown_predicates_are_kept() {
        let frag = pr(r#"contains(//Description, "good")"#);
        let q = pr(r#"not(contains(//Description, "good"))"#);
        // we do not reason about contains → conservatively co-satisfiable
        assert!(predicates_may_cosatisfy(&frag, &q, &SINGLE));
    }
}
