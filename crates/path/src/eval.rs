//! Evaluation of path expressions over data trees.
//!
//! `eval_path` returns the selected nodes in document order without
//! duplicates (descendant steps can reach the same node along different
//! routes; results are deduplicated).

use crate::ast::{Axis, NodeTest, PathExpr, Step};
use partix_xml::{Document, NodeId, NodeKind, NodeRef};

/// Evaluate `path` against a whole document.
///
/// Absolute paths match from the root: `/Store` selects the root iff its
/// label is `Store`. Relative paths are evaluated with the root as the
/// context node (first step matches the root's children).
pub fn eval_path(doc: &Document, path: &PathExpr) -> Vec<NodeId> {
    if path.absolute {
        let Some(first) = path.steps.first() else {
            return vec![NodeId::ROOT];
        };
        // First step of an absolute path is matched against the root
        // element itself (document node → root element).
        let mut roots = Vec::new();
        match first.axis {
            Axis::Child => {
                if test_matches(doc.root(), &first.test)
                    && first.position.unwrap_or(1) == 1
                {
                    roots.push(NodeId::ROOT);
                }
            }
            Axis::Descendant => {
                collect_descendant_matches(doc.root(), first, &mut roots);
            }
        }
        eval_steps(doc, &roots, &path.steps[1..])
    } else {
        eval_path_from(doc, &[NodeId::ROOT], path)
    }
}

/// Evaluate a (relative) path from the given context nodes.
pub fn eval_path_from(doc: &Document, context: &[NodeId], path: &PathExpr) -> Vec<NodeId> {
    eval_steps(doc, context, &path.steps)
}

fn eval_steps(doc: &Document, context: &[NodeId], steps: &[Step]) -> Vec<NodeId> {
    let mut current: Vec<NodeId> = context.to_vec();
    for step in steps {
        let mut next = Vec::new();
        for &ctx in &current {
            let node = doc.get(ctx).expect("context node belongs to doc");
            match step.axis {
                Axis::Child => {
                    let mut ordinal = 0u32;
                    for child in node.children() {
                        if test_matches(child, &step.test) {
                            ordinal += 1;
                            match step.position {
                                Some(p) if p != ordinal => continue,
                                _ => next.push(child.id()),
                            }
                        }
                    }
                }
                Axis::Descendant => {
                    for desc in node.descendants_or_self().skip(1) {
                        if test_matches(desc, &step.test) {
                            // positional descendant steps count per-parent
                            if let Some(p) = step.position {
                                let ord = sibling_ordinal(doc, desc, &step.test);
                                if ord != p {
                                    continue;
                                }
                            }
                            next.push(desc.id());
                        }
                    }
                }
            }
        }
        next.sort_unstable();
        next.dedup();
        current = next;
        if current.is_empty() {
            break;
        }
    }
    current
}

fn collect_descendant_matches(root: NodeRef<'_>, step: &Step, out: &mut Vec<NodeId>) {
    for desc in root.descendants_or_self() {
        if test_matches(desc, &step.test) {
            if let Some(p) = step.position {
                if sibling_ordinal(desc.document(), desc, &step.test) != p {
                    continue;
                }
            }
            out.push(desc.id());
        }
    }
}

/// 1-based position of `node` among siblings matching the same test.
fn sibling_ordinal(doc: &Document, node: NodeRef<'_>, test: &NodeTest) -> u32 {
    let Some(parent) = node.parent() else { return 1 };
    let mut ord = 0u32;
    for sib in parent.children() {
        if test_matches(sib, test) {
            ord += 1;
            if sib.id() == node.id() {
                return ord;
            }
        }
    }
    let _ = doc;
    ord.max(1)
}

fn test_matches(node: NodeRef<'_>, test: &NodeTest) -> bool {
    match test {
        NodeTest::Name(name) => node.kind() == NodeKind::Element && node.label() == name,
        NodeTest::AnyElement => node.kind() == NodeKind::Element,
        NodeTest::Attribute(name) => {
            node.kind() == NodeKind::Attribute && node.label() == name
        }
    }
}

/// The *string value* of a node selected by a path: text content for
/// elements, the value for attributes and text nodes.
pub fn string_value(doc: &Document, id: NodeId) -> String {
    let node = doc.get(id).expect("node belongs to doc");
    match node.kind() {
        NodeKind::Element => node.text(),
        NodeKind::Attribute | NodeKind::Text => node.value().unwrap_or("").to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use partix_xml::parse;

    fn item_doc() -> Document {
        parse(
            r#"<Item id="7">
                 <Name>Animals</Name>
                 <Section>CD</Section>
                 <PictureList>
                   <Picture><OriginalPath>/p/1.jpg</OriginalPath></Picture>
                   <Picture><OriginalPath>/p/2.jpg</OriginalPath></Picture>
                 </PictureList>
                 <Characteristics><Description>very good album</Description></Characteristics>
               </Item>"#,
        )
        .unwrap()
    }

    fn texts(doc: &Document, path: &str) -> Vec<String> {
        let p = PathExpr::parse(path).unwrap();
        eval_path(doc, &p)
            .into_iter()
            .map(|id| string_value(doc, id))
            .collect()
    }

    #[test]
    fn absolute_child_steps() {
        let doc = item_doc();
        assert_eq!(texts(&doc, "/Item/Section"), ["CD"]);
        assert_eq!(texts(&doc, "/Item/Name"), ["Animals"]);
        assert!(texts(&doc, "/Other/Name").is_empty());
    }

    #[test]
    fn root_label_must_match() {
        let doc = item_doc();
        assert_eq!(texts(&doc, "/Item").len(), 1);
        assert!(texts(&doc, "/Store").is_empty());
    }

    #[test]
    fn attribute_step() {
        let doc = item_doc();
        assert_eq!(texts(&doc, "/Item/@id"), ["7"]);
        assert!(texts(&doc, "/Item/@missing").is_empty());
    }

    #[test]
    fn descendant_axis() {
        let doc = item_doc();
        assert_eq!(texts(&doc, "//Description"), ["very good album"]);
        assert_eq!(texts(&doc, "//OriginalPath").len(), 2);
        assert_eq!(texts(&doc, "/Item//OriginalPath").len(), 2);
    }

    #[test]
    fn leading_descendant_can_match_root() {
        let doc = item_doc();
        assert_eq!(texts(&doc, "//Item").len(), 1);
    }

    #[test]
    fn wildcard_step() {
        let doc = item_doc();
        // all element children of Item
        assert_eq!(texts(&doc, "/Item/*").len(), 4);
    }

    #[test]
    fn positional_step() {
        let doc = item_doc();
        assert_eq!(
            texts(&doc, "/Item/PictureList/Picture[1]/OriginalPath"),
            ["/p/1.jpg"]
        );
        assert_eq!(
            texts(&doc, "/Item/PictureList/Picture[2]/OriginalPath"),
            ["/p/2.jpg"]
        );
        assert!(texts(&doc, "/Item/PictureList/Picture[3]").is_empty());
    }

    #[test]
    fn positional_descendant_step() {
        let doc = item_doc();
        assert_eq!(texts(&doc, "//Picture[2]/OriginalPath"), ["/p/2.jpg"]);
    }

    #[test]
    fn results_in_document_order_no_duplicates() {
        let doc = parse("<a><b><c/><b><c/></b></b><b><c/></b></a>").unwrap();
        let p = PathExpr::parse("//b//c").unwrap();
        let hits = eval_path(&doc, &p);
        assert_eq!(hits.len(), 3);
        let mut sorted = hits.clone();
        sorted.sort_unstable();
        assert_eq!(hits, sorted);
    }

    #[test]
    fn relative_path_from_context() {
        let doc = item_doc();
        let pictures = eval_path(&doc, &PathExpr::parse("/Item/PictureList/Picture").unwrap());
        let rel = PathExpr::parse("OriginalPath").unwrap();
        let hits = eval_path_from(&doc, &pictures, &rel);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn empty_absolute_path_selects_root() {
        let doc = item_doc();
        let p = PathExpr { absolute: true, steps: vec![] };
        assert_eq!(eval_path(&doc, &p), vec![NodeId::ROOT]);
    }

    #[test]
    fn string_value_of_element_concatenates() {
        let doc = item_doc();
        let p = PathExpr::parse("/Item/PictureList").unwrap();
        let hits = eval_path(&doc, &p);
        assert_eq!(string_value(&doc, hits[0]), "/p/1.jpg/p/2.jpg");
    }
}
