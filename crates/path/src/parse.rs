//! Recursive-descent parser for path expressions and simple predicates.

use crate::ast::{Axis, NodeTest, PathExpr, Step};
use crate::pred::{BoolFn, CmpOp, Predicate, Value, ValueFn};
use std::fmt;

/// Error produced while parsing a path or predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathParseError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for PathParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "path parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for PathParseError {}

/// Parse a path expression like `/Store/Items//Item[2]/@id`.
pub fn parse_path(input: &str) -> Result<PathExpr, PathParseError> {
    let mut p = Cursor::new(input);
    let path = p.path()?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.error("trailing characters after path"));
    }
    Ok(path)
}

/// Parse a simple predicate, e.g.:
///
/// * `/Item/Section = "CD"`
/// * `count(/Item/PictureList/Picture) >= 2`
/// * `contains(//Description, "good")`
/// * `not(contains(//Description, "good"))`
/// * `empty(/Item/PictureList)`
/// * `/Item/PictureList` (existential)
/// * conjunctions / disjunctions: `p1 and p2`, `p1 or p2`
pub fn parse_predicate(input: &str) -> Result<Predicate, PathParseError> {
    let mut p = Cursor::new(input);
    let pred = p.or_expr()?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.error("trailing characters after predicate"));
    }
    Ok(pred)
}

struct Cursor<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(input: &'a str) -> Cursor<'a> {
        Cursor { input, bytes: input.as_bytes(), pos: 0 }
    }

    fn error(&self, message: impl Into<String>) -> PathParseError {
        PathParseError { offset: self.pos, message: message.into() }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.input[self.pos..].starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    /// Peek whether a keyword follows (not part of a longer name).
    fn at_keyword(&self, kw: &str) -> bool {
        let rest = &self.input[self.pos..];
        rest.starts_with(kw)
            && !rest[kw.len()..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_' || c == '-')
    }

    fn name(&mut self) -> Result<String, PathParseError> {
        let start = self.pos;
        while let Some(c) = self.input[self.pos..].chars().next() {
            if c.is_alphanumeric() || c == '_' || c == '-' || c == '.' || c as u32 >= 0x80 {
                self.pos += c.len_utf8();
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.error("expected a name"));
        }
        Ok(self.input[start..self.pos].to_owned())
    }

    // path ::= ('/' | '//')? step (('/' | '//') step)*
    fn path(&mut self) -> Result<PathExpr, PathParseError> {
        self.skip_ws();
        let mut steps = Vec::new();
        let absolute = self.peek() == Some(b'/');
        let mut axis = if self.eat("//") {
            Axis::Descendant
        } else {
            self.eat("/"); // absolute child step, or relative path
            Axis::Child
        };
        loop {
            let test = if self.eat("@") {
                NodeTest::Attribute(self.name()?)
            } else if self.eat("*") {
                NodeTest::AnyElement
            } else {
                NodeTest::Name(self.name()?)
            };
            let mut position = None;
            if self.eat("[") {
                self.skip_ws();
                let start = self.pos;
                while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                    self.pos += 1;
                }
                let digits = &self.input[start..self.pos];
                let n: u32 = digits
                    .parse()
                    .map_err(|_| self.error("expected a position number inside [..]"))?;
                if n == 0 {
                    return Err(self.error("positions are 1-based"));
                }
                position = Some(n);
                self.skip_ws();
                if !self.eat("]") {
                    return Err(self.error("expected ']'"));
                }
            }
            if matches!(test, NodeTest::Attribute(_)) && position.is_some() {
                return Err(self.error("attribute steps cannot have positions"));
            }
            steps.push(Step { axis, test, position });
            if self.eat("//") {
                axis = Axis::Descendant;
            } else if self.eat("/") {
                axis = Axis::Child;
            } else {
                break;
            }
        }
        if steps
            .iter()
            .rev()
            .skip(1)
            .any(|s| matches!(s.test, NodeTest::Attribute(_)))
        {
            return Err(self.error("attribute step must be the final step"));
        }
        Ok(PathExpr { absolute, steps })
    }

    // or_expr ::= and_expr ('or' and_expr)*
    fn or_expr(&mut self) -> Result<Predicate, PathParseError> {
        let mut terms = vec![self.and_expr()?];
        loop {
            self.skip_ws();
            if self.at_keyword("or") {
                self.eat("or");
                terms.push(self.and_expr()?);
            } else {
                break;
            }
        }
        Ok(if terms.len() == 1 {
            terms.pop().expect("one term")
        } else {
            Predicate::Or(terms)
        })
    }

    // and_expr ::= atom ('and' atom)*
    fn and_expr(&mut self) -> Result<Predicate, PathParseError> {
        let mut terms = vec![self.atom()?];
        loop {
            self.skip_ws();
            if self.at_keyword("and") {
                self.eat("and");
                terms.push(self.atom()?);
            } else {
                break;
            }
        }
        Ok(if terms.len() == 1 {
            terms.pop().expect("one term")
        } else {
            Predicate::And(terms)
        })
    }

    fn atom(&mut self) -> Result<Predicate, PathParseError> {
        self.skip_ws();
        if self.eat("(") {
            let inner = self.or_expr()?;
            self.skip_ws();
            if !self.eat(")") {
                return Err(self.error("expected ')'"));
            }
            return Ok(inner);
        }
        if self.at_keyword("not") {
            self.eat("not");
            self.skip_ws();
            if !self.eat("(") {
                return Err(self.error("expected '(' after not"));
            }
            let inner = self.or_expr()?;
            self.skip_ws();
            if !self.eat(")") {
                return Err(self.error("expected ')'"));
            }
            return Ok(Predicate::Not(Box::new(inner)));
        }
        // function forms
        for (kw, is_bool) in [
            ("contains", true),
            ("starts-with", true),
            ("empty", true),
            ("exists", true),
            ("count", false),
            ("string-length", false),
            ("number", false),
        ] {
            if self.at_keyword(kw) {
                let save = self.pos;
                self.eat(kw);
                self.skip_ws();
                if !self.eat("(") {
                    // not a call after all — backtrack and parse as a path
                    self.pos = save;
                    break;
                }
                let path = self.path()?;
                self.skip_ws();
                if is_bool {
                    let pred = match kw {
                        "contains" | "starts-with" => {
                            if !self.eat(",") {
                                return Err(self.error("expected ',' and a string"));
                            }
                            self.skip_ws();
                            let needle = self.string_literal()?;
                            if kw == "contains" {
                                Predicate::Bool(BoolFn::Contains(path, needle))
                            } else {
                                Predicate::Bool(BoolFn::StartsWith(path, needle))
                            }
                        }
                        "empty" => Predicate::Bool(BoolFn::Empty(path)),
                        "exists" => Predicate::Exists(path),
                        _ => unreachable!(),
                    };
                    self.skip_ws();
                    if !self.eat(")") {
                        return Err(self.error("expected ')'"));
                    }
                    return Ok(pred);
                }
                // value function: fn(P) θ value
                self.skip_ws();
                if !self.eat(")") {
                    return Err(self.error("expected ')'"));
                }
                let func = match kw {
                    "count" => ValueFn::Count,
                    "string-length" => ValueFn::StringLength,
                    "number" => ValueFn::Number,
                    _ => unreachable!(),
                };
                self.skip_ws();
                let op = self.cmp_op()?;
                self.skip_ws();
                let value = self.value()?;
                return Ok(Predicate::FnCmp { func, path, op, value });
            }
        }
        // P θ value, or bare existential Q
        let path = self.path()?;
        self.skip_ws();
        if self.at_cmp_op() {
            let op = self.cmp_op()?;
            self.skip_ws();
            let value = self.value()?;
            Ok(Predicate::Cmp { path, op, value })
        } else {
            Ok(Predicate::Exists(path))
        }
    }

    fn at_cmp_op(&self) -> bool {
        matches!(self.peek(), Some(b'=' | b'<' | b'>' | b'!'))
            || self.input[self.pos..].starts_with('≠')
            || self.input[self.pos..].starts_with('≤')
            || self.input[self.pos..].starts_with('≥')
    }

    fn cmp_op(&mut self) -> Result<CmpOp, PathParseError> {
        for (text, op) in [
            ("!=", CmpOp::Ne),
            ("≠", CmpOp::Ne),
            ("<=", CmpOp::Le),
            ("≤", CmpOp::Le),
            (">=", CmpOp::Ge),
            ("≥", CmpOp::Ge),
            ("=", CmpOp::Eq),
            ("<", CmpOp::Lt),
            (">", CmpOp::Gt),
        ] {
            if self.eat(text) {
                return Ok(op);
            }
        }
        Err(self.error("expected a comparison operator"))
    }

    fn value(&mut self) -> Result<Value, PathParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'"' | b'\'') => Ok(Value::Str(self.string_literal()?)),
            Some(b) if b.is_ascii_digit() || b == b'-' || b == b'+' => {
                let start = self.pos;
                self.pos += 1;
                while self
                    .peek()
                    .is_some_and(|b| b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E')
                {
                    self.pos += 1;
                }
                let n: f64 = self.input[start..self.pos]
                    .parse()
                    .map_err(|_| self.error("invalid number literal"))?;
                Ok(Value::Num(n))
            }
            _ => Err(self.error("expected a string or number literal")),
        }
    }

    fn string_literal(&mut self) -> Result<String, PathParseError> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => {
                self.pos += 1;
                q
            }
            _ => return Err(self.error("expected a string literal")),
        };
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == quote {
                let s = self.input[start..self.pos].to_owned();
                self.pos += 1;
                return Ok(s);
            }
            self.pos += 1;
        }
        Err(self.error("unterminated string literal"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_paths() {
        for s in [
            "/Store/Items/Item",
            "/Item/Section",
            "//Description",
            "/Item/PictureList/Picture[1]",
            "/article/prolog",
            "/Store/*",
        ] {
            parse_path(s).unwrap_or_else(|e| panic!("{s}: {e}"));
        }
    }

    #[test]
    fn rejects_bad_paths() {
        assert!(parse_path("/a/@x/b").is_err()); // attr not final
        assert!(parse_path("/a[0]").is_err()); // 0 position
        assert!(parse_path("/a[b]").is_err());
        assert!(parse_path("/@x[1]").is_err()); // attr with position
        assert!(parse_path("").is_err());
        assert!(parse_path("/a extra").is_err());
    }

    #[test]
    fn parses_paper_predicates() {
        let cases = [
            r#"/Item/Section = "CD""#,
            r#"/Item/Section != "CD""#,
            r#"contains(//Description, "good")"#,
            r#"not(contains(//Description, "good"))"#,
            "/Item/PictureList",
            "empty(/Item/PictureList)",
            "count(/Item/PictureList/Picture) >= 2",
            r#"/Item/Section != "CD" and /Item/Section != "DVD""#,
            r#"/Item/Section = "CD" or /Item/Section = "DVD""#,
            "number(/Item/PricesHistory/PriceHistory/Price) < 10.5",
        ];
        for s in cases {
            parse_predicate(s).unwrap_or_else(|e| panic!("{s}: {e}"));
        }
    }

    #[test]
    fn unicode_operators() {
        let p = parse_predicate(r#"/Item/Section ≠ "CD""#).unwrap();
        assert!(matches!(p, Predicate::Cmp { op: CmpOp::Ne, .. }));
        let p = parse_predicate("count(/a) ≥ 3").unwrap();
        assert!(matches!(p, Predicate::FnCmp { op: CmpOp::Ge, .. }));
    }

    #[test]
    fn and_binds_tighter_than_or() {
        let p = parse_predicate(r#"/a = "1" or /b = "2" and /c = "3""#).unwrap();
        match p {
            Predicate::Or(terms) => {
                assert_eq!(terms.len(), 2);
                assert!(matches!(terms[1], Predicate::And(_)));
            }
            other => panic!("expected Or, got {other:?}"),
        }
    }

    #[test]
    fn parens_override_precedence() {
        let p = parse_predicate(r#"(/a = "1" or /b = "2") and /c = "3""#).unwrap();
        assert!(matches!(p, Predicate::And(_)));
    }

    #[test]
    fn name_like_function_prefix_is_a_path() {
        // an element genuinely named "counter" must not be read as count(
        let p = parse_predicate("/counter = 3").unwrap();
        assert!(matches!(p, Predicate::Cmp { .. }));
    }

    #[test]
    fn existential_bare_path() {
        let p = parse_predicate("/Item/PictureList").unwrap();
        assert!(matches!(p, Predicate::Exists(_)));
    }
}
