//! Abstract syntax of path expressions.

use std::fmt;

/// How a step relates to the previous one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// `/step` — direct children.
    Child,
    /// `//step` — any descendant.
    Descendant,
}

/// What a step selects.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NodeTest {
    /// `name` — elements with this label.
    Name(String),
    /// `*` — any element.
    AnyElement,
    /// `@name` — the attribute with this name. Only legal as final step.
    Attribute(String),
}

/// One location step.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Step {
    pub axis: Axis,
    pub test: NodeTest,
    /// `e[i]` — keep only the i-th (1-based) match among siblings.
    pub position: Option<u32>,
}

impl Step {
    pub fn child(name: &str) -> Step {
        Step { axis: Axis::Child, test: NodeTest::Name(name.to_owned()), position: None }
    }

    pub fn descendant(name: &str) -> Step {
        Step { axis: Axis::Descendant, test: NodeTest::Name(name.to_owned()), position: None }
    }

    /// True if this step selects attributes.
    pub fn is_attribute(&self) -> bool {
        matches!(self.test, NodeTest::Attribute(_))
    }
}

/// A path expression `P`.
///
/// `absolute` paths (`/Store/Items`) start at the document root and their
/// first step must match the root element itself — i.e. `/Store` selects
/// the root iff it is labelled `Store`, mirroring the paper's usage where
/// `/Item/Section` addresses documents of collection `C_items` whose roots
/// are `Item` elements. Relative paths start at a context node's children.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PathExpr {
    pub absolute: bool,
    pub steps: Vec<Step>,
}

impl PathExpr {
    /// Parse from text; see [`crate::parse`].
    pub fn parse(input: &str) -> Result<PathExpr, crate::parse::PathParseError> {
        crate::parse::parse_path(input)
    }

    /// The path with its last step removed (`None` if there are ≤1 steps).
    pub fn parent_path(&self) -> Option<PathExpr> {
        if self.steps.len() <= 1 {
            return None;
        }
        Some(PathExpr {
            absolute: self.absolute,
            steps: self.steps[..self.steps.len() - 1].to_vec(),
        })
    }

    /// The final step, if any.
    pub fn last_step(&self) -> Option<&Step> {
        self.steps.last()
    }

    /// True if any step uses the descendant axis or a wildcard — such
    /// paths need conservative treatment during localization.
    pub fn has_wildcards(&self) -> bool {
        self.steps.iter().any(|s| {
            s.axis == Axis::Descendant || matches!(s.test, NodeTest::AnyElement)
        })
    }

    /// True if the final step addresses an attribute.
    pub fn targets_attribute(&self) -> bool {
        self.last_step().is_some_and(Step::is_attribute)
    }

    /// Concatenate: `self` followed by `suffix` (suffix must be relative).
    pub fn join(&self, suffix: &PathExpr) -> PathExpr {
        debug_assert!(!suffix.absolute, "cannot join an absolute path as suffix");
        let mut steps = self.steps.clone();
        steps.extend(suffix.steps.iter().cloned());
        PathExpr { absolute: self.absolute, steps }
    }

    /// Strip `prefix` from the front of `self`, producing the relative
    /// remainder. Only exact step-by-step prefixes are stripped (no
    /// wildcard reasoning): used to re-root queries onto vertical
    /// fragments, whose defining paths are wildcard-free by construction.
    pub fn strip_prefix(&self, prefix: &PathExpr) -> Option<PathExpr> {
        if self.absolute != prefix.absolute || prefix.steps.len() > self.steps.len() {
            return None;
        }
        for (a, b) in self.steps.iter().zip(prefix.steps.iter()) {
            if a.axis != b.axis || a.test != b.test {
                return None;
            }
            // positions must be compatible: prefix pins i ⇒ query must
            // either pin the same i or be unpinned (then the strip is
            // still sound because the fragment only holds occurrence i).
            if let (Some(x), Some(y)) = (a.position, b.position) {
                if x != y {
                    return None;
                }
            }
        }
        Some(PathExpr {
            absolute: false,
            steps: self.steps[prefix.steps.len()..].to_vec(),
        })
    }
}

impl fmt::Display for PathExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, step) in self.steps.iter().enumerate() {
            match step.axis {
                Axis::Child => {
                    if self.absolute || i > 0 {
                        f.write_str("/")?;
                    }
                }
                Axis::Descendant => f.write_str("//")?,
            }
            match &step.test {
                NodeTest::Name(n) => f.write_str(n)?,
                NodeTest::AnyElement => f.write_str("*")?,
                NodeTest::Attribute(n) => write!(f, "@{n}")?,
            }
            if let Some(p) = step.position {
                write!(f, "[{p}]")?;
            }
        }
        if self.steps.is_empty() {
            f.write_str(if self.absolute { "/" } else { "." })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_roundtrip() {
        for s in [
            "/Store/Items/Item",
            "//Description",
            "/Item//Picture[1]/@path",
            "/Store/*/Item",
            "Items/Item",
        ] {
            let p = PathExpr::parse(s).unwrap();
            assert_eq!(p.to_string(), s);
        }
    }

    #[test]
    fn parent_and_last() {
        let p = PathExpr::parse("/a/b/c").unwrap();
        assert_eq!(p.parent_path().unwrap().to_string(), "/a/b");
        assert!(matches!(
            &p.last_step().unwrap().test,
            NodeTest::Name(n) if n == "c"
        ));
        let single = PathExpr::parse("/a").unwrap();
        assert!(single.parent_path().is_none());
    }

    #[test]
    fn join_concatenates() {
        let base = PathExpr::parse("/Store/Items").unwrap();
        let rel = PathExpr::parse("Item/Section").unwrap();
        assert_eq!(base.join(&rel).to_string(), "/Store/Items/Item/Section");
    }

    #[test]
    fn strip_prefix_exact() {
        let q = PathExpr::parse("/Store/Items/Item/Section").unwrap();
        let frag = PathExpr::parse("/Store/Items").unwrap();
        assert_eq!(q.strip_prefix(&frag).unwrap().to_string(), "Item/Section");
        let other = PathExpr::parse("/Store/Sections").unwrap();
        assert!(q.strip_prefix(&other).is_none());
    }

    #[test]
    fn strip_prefix_respects_positions() {
        let q = PathExpr::parse("/a/b[2]/c").unwrap();
        let ok = PathExpr::parse("/a/b[2]").unwrap();
        let bad = PathExpr::parse("/a/b[1]").unwrap();
        assert!(q.strip_prefix(&ok).is_some());
        assert!(q.strip_prefix(&bad).is_none());
    }

    #[test]
    fn wildcard_detection() {
        assert!(PathExpr::parse("//a").unwrap().has_wildcards());
        assert!(PathExpr::parse("/a/*").unwrap().has_wildcards());
        assert!(!PathExpr::parse("/a/b").unwrap().has_wildcards());
    }
}
