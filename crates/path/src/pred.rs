//! Simple predicates (paper Sec. 3.1) and their evaluation.

use crate::ast::PathExpr;
use crate::eval::{eval_path, string_value};
use partix_xml::Document;
use std::fmt;

/// Comparison operator `θ ∈ {=, <, >, ≠, ≤, ≥}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// The operator with its arguments swapped (`<` ↔ `>`).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            op => op,
        }
    }

    /// The logical negation (`=` ↔ `≠`, `<` ↔ `≥`, …).
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    pub fn holds<T: PartialOrd>(self, a: &T, b: &T) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

/// A literal comparison value — a string or a number from the domain `D`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Str(String),
    Num(f64),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "\"{s}\""),
            Value::Num(n) => write!(f, "{n}"),
        }
    }
}

/// Value functions `φv` usable on the left of a comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueFn {
    /// `count(P)` — number of nodes selected by `P`.
    Count,
    /// `string-length(P)` — length of the first selected node's string.
    StringLength,
    /// `number(P)` — numeric value of the first selected node.
    Number,
}

impl fmt::Display for ValueFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ValueFn::Count => "count",
            ValueFn::StringLength => "string-length",
            ValueFn::Number => "number",
        })
    }
}

/// Boolean functions `φb`.
#[derive(Debug, Clone, PartialEq)]
pub enum BoolFn {
    /// `contains(P, "s")` — some node selected by `P` contains `s`.
    Contains(PathExpr, String),
    /// `starts-with(P, "s")`.
    StartsWith(PathExpr, String),
    /// `empty(P)` — `P` selects no nodes.
    Empty(PathExpr),
}

/// A predicate over a document, as used in horizontal fragment
/// definitions and query `where` clauses.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `P θ value` — existential comparison over the nodes selected by `P`.
    Cmp { path: PathExpr, op: CmpOp, value: Value },
    /// `φv(P) θ value`.
    FnCmp { func: ValueFn, path: PathExpr, op: CmpOp, value: Value },
    /// `φb(...)`.
    Bool(BoolFn),
    /// `Q` — true iff `Q` selects at least one node.
    Exists(PathExpr),
    And(Vec<Predicate>),
    Or(Vec<Predicate>),
    Not(Box<Predicate>),
}

impl Predicate {
    /// Parse a predicate from text; see [`crate::parse::parse_predicate`].
    pub fn parse(input: &str) -> Result<Predicate, crate::parse::PathParseError> {
        crate::parse::parse_predicate(input)
    }

    /// Evaluate against a document.
    pub fn eval(&self, doc: &Document) -> bool {
        match self {
            Predicate::Cmp { path, op, value } => {
                let nodes = eval_path(doc, path);
                nodes.iter().any(|&id| {
                    let s = string_value(doc, id);
                    compare_string(&s, *op, value)
                })
            }
            Predicate::FnCmp { func, path, op, value } => {
                let nodes = eval_path(doc, path);
                let lhs = match func {
                    ValueFn::Count => nodes.len() as f64,
                    ValueFn::StringLength => match nodes.first() {
                        Some(&id) => string_value(doc, id).chars().count() as f64,
                        None => return false,
                    },
                    ValueFn::Number => match nodes.first() {
                        Some(&id) => match string_value(doc, id).trim().parse::<f64>() {
                            Ok(n) => n,
                            Err(_) => return false,
                        },
                        None => return false,
                    },
                };
                let rhs = match value {
                    Value::Num(n) => *n,
                    Value::Str(s) => match s.trim().parse::<f64>() {
                        Ok(n) => n,
                        Err(_) => return false,
                    },
                };
                op.holds(&lhs, &rhs)
            }
            Predicate::Bool(bf) => match bf {
                BoolFn::Contains(path, needle) => eval_path(doc, path)
                    .iter()
                    .any(|&id| string_value(doc, id).contains(needle.as_str())),
                BoolFn::StartsWith(path, needle) => eval_path(doc, path)
                    .iter()
                    .any(|&id| string_value(doc, id).starts_with(needle.as_str())),
                BoolFn::Empty(path) => eval_path(doc, path).is_empty(),
            },
            Predicate::Exists(path) => !eval_path(doc, path).is_empty(),
            Predicate::And(ps) => ps.iter().all(|p| p.eval(doc)),
            Predicate::Or(ps) => ps.iter().any(|p| p.eval(doc)),
            Predicate::Not(p) => !p.eval(doc),
        }
    }

    /// The logical complement, kept shallow (`Not` wrapper except for
    /// direct comparisons, which negate their operator).
    ///
    /// Note: for `Cmp` the complement uses *universal* semantics via `Not`
    /// rather than operator negation, because `P θ v` is existential over
    /// possibly-many nodes; negating the operator would change meaning
    /// when `P` selects several nodes.
    pub fn complement(&self) -> Predicate {
        Predicate::Not(Box::new(self.clone()))
    }

    /// All path expressions mentioned by this predicate (its footprint).
    pub fn paths(&self) -> Vec<&PathExpr> {
        let mut out = Vec::new();
        self.collect_paths(&mut out);
        out
    }

    fn collect_paths<'a>(&'a self, out: &mut Vec<&'a PathExpr>) {
        match self {
            Predicate::Cmp { path, .. } | Predicate::FnCmp { path, .. } => out.push(path),
            Predicate::Bool(bf) => match bf {
                BoolFn::Contains(p, _) | BoolFn::StartsWith(p, _) | BoolFn::Empty(p) => {
                    out.push(p)
                }
            },
            Predicate::Exists(p) => out.push(p),
            Predicate::And(ps) | Predicate::Or(ps) => {
                for p in ps {
                    p.collect_paths(out);
                }
            }
            Predicate::Not(p) => p.collect_paths(out),
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::Cmp { path, op, value } => write!(f, "{path} {op} {value}"),
            Predicate::FnCmp { func, path, op, value } => {
                write!(f, "{func}({path}) {op} {value}")
            }
            Predicate::Bool(bf) => match bf {
                BoolFn::Contains(p, s) => write!(f, "contains({p}, \"{s}\")"),
                BoolFn::StartsWith(p, s) => write!(f, "starts-with({p}, \"{s}\")"),
                BoolFn::Empty(p) => write!(f, "empty({p})"),
            },
            Predicate::Exists(p) => write!(f, "{p}"),
            Predicate::And(ps) => {
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" and ")?;
                    }
                    write!(f, "({p})")?;
                }
                Ok(())
            }
            Predicate::Or(ps) => {
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" or ")?;
                    }
                    write!(f, "({p})")?;
                }
                Ok(())
            }
            Predicate::Not(p) => write!(f, "not({p})"),
        }
    }
}

/// Compare a node's string value against a literal. Numeric literals
/// force numeric comparison (non-numeric node values never match).
fn compare_string(node_value: &str, op: CmpOp, literal: &Value) -> bool {
    match literal {
        Value::Str(s) => op.holds(&node_value, &s.as_str()),
        Value::Num(n) => match node_value.trim().parse::<f64>() {
            Ok(v) => op.holds(&v, n),
            Err(_) => false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use partix_xml::parse;

    fn cd_item() -> Document {
        parse(
            r#"<Item><Section>CD</Section><Price>12.5</Price>
               <Characteristics><Description>a good record</Description></Characteristics>
               <PictureList><Picture/><Picture/></PictureList></Item>"#,
        )
        .unwrap()
    }

    fn holds(doc: &Document, src: &str) -> bool {
        Predicate::parse(src).unwrap().eval(doc)
    }

    #[test]
    fn string_equality() {
        let doc = cd_item();
        assert!(holds(&doc, r#"/Item/Section = "CD""#));
        assert!(!holds(&doc, r#"/Item/Section = "DVD""#));
        assert!(holds(&doc, r#"/Item/Section != "DVD""#));
    }

    #[test]
    fn numeric_comparison() {
        let doc = cd_item();
        assert!(holds(&doc, "/Item/Price < 20"));
        assert!(holds(&doc, "/Item/Price >= 12.5"));
        assert!(!holds(&doc, "/Item/Price > 12.5"));
        // Section is not numeric → numeric comparisons are false
        assert!(!holds(&doc, "/Item/Section < 20"));
    }

    #[test]
    fn contains_and_starts_with() {
        let doc = cd_item();
        assert!(holds(&doc, r#"contains(//Description, "good")"#));
        assert!(!holds(&doc, r#"contains(//Description, "bad")"#));
        assert!(holds(&doc, r#"starts-with(//Description, "a good")"#));
        assert!(holds(&doc, r#"not(contains(//Description, "bad"))"#));
    }

    #[test]
    fn existential_and_empty() {
        let doc = cd_item();
        assert!(holds(&doc, "/Item/PictureList"));
        assert!(!holds(&doc, "/Item/PricesHistory"));
        assert!(holds(&doc, "empty(/Item/PricesHistory)"));
        assert!(!holds(&doc, "empty(/Item/PictureList)"));
    }

    #[test]
    fn count_function() {
        let doc = cd_item();
        assert!(holds(&doc, "count(/Item/PictureList/Picture) = 2"));
        assert!(holds(&doc, "count(/Item/PictureList/Picture) >= 2"));
        assert!(!holds(&doc, "count(/Item/PictureList/Picture) > 2"));
        assert!(holds(&doc, "count(/Item/Nothing) = 0"));
    }

    #[test]
    fn conjunction_disjunction() {
        let doc = cd_item();
        assert!(holds(
            &doc,
            r#"/Item/Section = "CD" and contains(//Description, "good")"#
        ));
        assert!(!holds(
            &doc,
            r#"/Item/Section = "DVD" and contains(//Description, "good")"#
        ));
        assert!(holds(
            &doc,
            r#"/Item/Section = "DVD" or contains(//Description, "good")"#
        ));
    }

    #[test]
    fn existential_comparison_over_many_nodes() {
        // two Sections; = "CD" is true existentially, and != "CD" is ALSO
        // true existentially (the DVD node) — the paper's semantics.
        let doc = parse("<I><S>CD</S><S>DVD</S></I>").unwrap();
        assert!(holds(&doc, r#"/I/S = "CD""#));
        assert!(holds(&doc, r#"/I/S != "CD""#));
        // complement() is therefore Not-based, not operator negation:
        let p = Predicate::parse(r#"/I/S = "CD""#).unwrap();
        assert!(!p.complement().eval(&doc));
    }

    #[test]
    fn display_roundtrip_through_parser() {
        for src in [
            r#"/Item/Section = "CD""#,
            r#"contains(//Description, "good")"#,
            "count(/a/b) >= 2",
            "empty(/a)",
            r#"(/a = "1") and (/b = "2")"#,
            r#"not(/a = "1")"#,
        ] {
            let p = Predicate::parse(src).unwrap();
            let p2 = Predicate::parse(&p.to_string()).unwrap();
            assert_eq!(p, p2, "{src} → {p}");
        }
    }

    #[test]
    fn footprint_collection() {
        let p = Predicate::parse(
            r#"/a/b = "1" and contains(//c, "x") and count(/d) > 0"#,
        )
        .unwrap();
        let paths: Vec<String> = p.paths().iter().map(|p| p.to_string()).collect();
        assert_eq!(paths, ["/a/b", "//c", "/d"]);
    }
}
