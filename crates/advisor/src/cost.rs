//! Analytical cost model for fragmentation designs and placements.
//!
//! Mirrors the paper's response-time decomposition (Sec. 5): the
//! parallel execution time of a distributed query is dominated by its
//! slowest site, plus the time to ship partial results back to the
//! coordinator. For a candidate placement the model therefore charges
//!
//! * **scan** — each access to a fragment scans its stored bytes at the
//!   node holding it; replicated fragments spread accesses evenly over
//!   their replicas (round-robin replica selection);
//! * **ship** — each access ships `selectivity × size` bytes to the
//!   coordinator, independent of placement;
//! * **imbalance** — a mild penalty on the spread between the busiest
//!   and the average node, nudging the search toward even load even
//!   when the bottleneck term alone is flat.
//!
//! Total cost = max node scan load + total ship cost + imbalance. The
//! units are arbitrary (weights fold in constants); only the ordering
//! of candidates matters.

use crate::profile::WorkloadProfile;
use std::collections::BTreeMap;

/// Relative weights of the cost terms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostWeights {
    /// Per byte scanned at a node.
    pub scan: f64,
    /// Per byte shipped to the coordinator.
    pub ship: f64,
    /// Per byte of (max − mean) node load.
    pub imbalance: f64,
}

impl Default for CostWeights {
    fn default() -> Self {
        // scanning local storage is cheap relative to shipping results
        // over the wire; imbalance is a tie-breaker, not a driver
        CostWeights { scan: 1.0, ship: 4.0, imbalance: 0.25 }
    }
}

/// Cost prediction for one `(design, placement)` candidate.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CostReport {
    /// Scan load per node (index = node id).
    pub node_costs: Vec<f64>,
    /// The bottleneck term: the busiest node's scan load.
    pub max_node_cost: f64,
    /// Total result-shipping cost.
    pub ship_cost: f64,
    /// Imbalance penalty.
    pub imbalance_cost: f64,
    /// `max_node_cost + ship_cost + imbalance_cost` — the number the
    /// advisor minimizes.
    pub total_cost: f64,
}

/// Workload-derived per-fragment inputs to the model.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FragmentLoad {
    pub accesses: f64,
    pub size_bytes: f64,
    pub selectivity: f64,
}

/// Per-fragment loads extracted from a profile, with defaults for
/// fragments the workload never touched (they still cost storage scans
/// when a query can't be pruned, so they get one nominal access).
pub fn fragment_loads(profile: &WorkloadProfile) -> BTreeMap<String, FragmentLoad> {
    profile
        .fragments
        .iter()
        .map(|f| {
            (
                f.fragment.clone(),
                FragmentLoad {
                    accesses: (f.accesses.max(1)) as f64,
                    size_bytes: f.size_bytes as f64,
                    selectivity: f.selectivity(),
                },
            )
        })
        .collect()
}

/// Score one placement: `placements` maps fragment name → replica node
/// ids (deduped). Fragments absent from `loads` are charged a nominal
/// single access over their (unknown, hence zero) size — i.e. free, so
/// callers should fill sizes via
/// [`WorkloadProfiler::observe_placement`](crate::profile::WorkloadProfiler::observe_placement)
/// first for meaningful scores.
pub fn score(
    loads: &BTreeMap<String, FragmentLoad>,
    placements: &BTreeMap<String, Vec<usize>>,
    nodes: usize,
    weights: &CostWeights,
) -> CostReport {
    let mut node_costs = vec![0.0; nodes];
    let mut ship_cost = 0.0;
    for (fragment, replicas) in placements {
        let load = loads.get(fragment).cloned().unwrap_or(FragmentLoad {
            accesses: 1.0,
            size_bytes: 0.0,
            selectivity: 1.0,
        });
        let scan = load.accesses * load.size_bytes * weights.scan;
        if !replicas.is_empty() {
            // round-robin replica selection spreads accesses evenly
            let share = scan / replicas.len() as f64;
            for &node in replicas {
                if let Some(cost) = node_costs.get_mut(node) {
                    *cost += share;
                }
            }
        }
        ship_cost += load.accesses * load.selectivity * load.size_bytes * weights.ship;
    }
    let max_node_cost = node_costs.iter().cloned().fold(0.0, f64::max);
    let mean = if node_costs.is_empty() {
        0.0
    } else {
        node_costs.iter().sum::<f64>() / node_costs.len() as f64
    };
    let imbalance_cost = (max_node_cost - mean) * weights.imbalance;
    CostReport {
        max_node_cost,
        ship_cost,
        imbalance_cost,
        total_cost: max_node_cost + ship_cost + imbalance_cost,
        node_costs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loads() -> BTreeMap<String, FragmentLoad> {
        let mut m = BTreeMap::new();
        m.insert(
            "f_hot".to_owned(),
            FragmentLoad { accesses: 100.0, size_bytes: 1000.0, selectivity: 0.1 },
        );
        m.insert(
            "f_cold".to_owned(),
            FragmentLoad { accesses: 10.0, size_bytes: 1000.0, selectivity: 0.1 },
        );
        m
    }

    fn place(pairs: &[(&str, &[usize])]) -> BTreeMap<String, Vec<usize>> {
        pairs.iter().map(|(f, ns)| ((*f).to_owned(), ns.to_vec())).collect()
    }

    #[test]
    fn spreading_hot_fragments_beats_colocating_them() {
        let loads = loads();
        let w = CostWeights::default();
        let colocated = score(&loads, &place(&[("f_hot", &[0]), ("f_cold", &[0])]), 2, &w);
        let spread = score(&loads, &place(&[("f_hot", &[0]), ("f_cold", &[1])]), 2, &w);
        assert!(spread.total_cost < colocated.total_cost);
        assert_eq!(spread.node_costs.len(), 2);
        // ship cost is placement-independent
        assert!((spread.ship_cost - colocated.ship_cost).abs() < 1e-9);
    }

    #[test]
    fn replication_halves_the_bottleneck_scan_load() {
        let loads = loads();
        let w = CostWeights { imbalance: 0.0, ..CostWeights::default() };
        let single = score(&loads, &place(&[("f_hot", &[0])]), 2, &w);
        let replicated = score(&loads, &place(&[("f_hot", &[0, 1])]), 2, &w);
        assert!((replicated.max_node_cost * 2.0 - single.max_node_cost).abs() < 1e-9);
    }

    #[test]
    fn imbalance_penalizes_skew_at_equal_bottleneck() {
        let mut loads = BTreeMap::new();
        for (name, acc) in [("a", 10.0), ("b", 10.0), ("c", 10.0)] {
            loads.insert(
                name.to_owned(),
                FragmentLoad { accesses: acc, size_bytes: 100.0, selectivity: 1.0 },
            );
        }
        let w = CostWeights { scan: 1.0, ship: 0.0, imbalance: 1.0 };
        // same busiest node (a alone), but packing b+c together idles node 2
        let even = score(&loads, &place(&[("a", &[0]), ("b", &[1]), ("c", &[2])]), 3, &w);
        let skewed = score(&loads, &place(&[("a", &[0]), ("b", &[1]), ("c", &[1])]), 3, &w);
        assert!(skewed.max_node_cost > even.max_node_cost);
        assert!(skewed.total_cost > even.total_cost);
    }

    #[test]
    fn unknown_fragments_and_bad_nodes_are_tolerated() {
        let loads = BTreeMap::new();
        let report = score(
            &loads,
            &place(&[("mystery", &[0]), ("oob", &[99])]),
            2,
            &CostWeights::default(),
        );
        assert_eq!(report.total_cost, 0.0);
        assert_eq!(report.node_costs, vec![0.0, 0.0]);
    }
}
