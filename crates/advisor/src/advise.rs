//! The fragmentation/placement advisor: search candidate designs and
//! placements for the cheapest way to serve an observed workload.
//!
//! Candidates come from two sources:
//!
//! 1. **the current design**, re-placed — always considered, so advice
//!    can never be worse than a re-placement of what's already running;
//! 2. **horizontal re-splits** via
//!    [`partix_frag::horizontal_by_values`] over a user-supplied value
//!    path, at each fragment count in
//!    [`AdvisorConfig::candidate_counts`] (re-splits that fail —
//!    multi-valued path, too few distinct values — are skipped, not
//!    errors).
//!
//! For each candidate design the placement search runs a greedy LPT
//! seed (hottest fragment to least-loaded node) followed by seeded
//! local search: random single-fragment moves, pairwise swaps and
//! replica add/drop steps, accepting strict cost decreases under
//! [`crate::cost::score`]. The search is fully deterministic for a
//! given `(profile, design, seed)` — it uses a private xorshift64 PRNG
//! and ordered maps throughout, so `partix advise` gives reproducible
//! recommendations.

use crate::cost::{self, CostReport, CostWeights, FragmentLoad};
use crate::profile::WorkloadProfile;
use partix_engine::{Distribution, PartiX, Placement};
use partix_frag::{horizontal_by_values, Fragmenter, FragmentationSchema};
use partix_path::PathExpr;
use partix_xml::Document;
use std::collections::BTreeMap;
use std::fmt;

/// Tunables for the advisor search.
#[derive(Debug, Clone)]
pub struct AdvisorConfig {
    /// Cluster size to place onto.
    pub nodes: usize,
    /// PRNG seed — same seed, same advice.
    pub seed: u64,
    /// Local-search iterations per candidate design.
    pub swap_iters: usize,
    /// Fragment counts to try for horizontal re-splits (ignored without
    /// [`AdvisorConfig::split_path`]).
    pub candidate_counts: Vec<usize>,
    /// Value path to re-split on, e.g. `/Item/Section`.
    pub split_path: Option<PathExpr>,
    /// Raw query texts the service answered; the frequency miner
    /// ([`crate::mining`]) derives additional split-path candidates
    /// from the equality predicates this log filters on.
    pub query_log: Vec<String>,
    /// How many mined paths (hottest first) become candidates.
    pub mined_paths: usize,
    pub weights: CostWeights,
}

impl AdvisorConfig {
    pub fn new(nodes: usize) -> Self {
        AdvisorConfig {
            nodes,
            seed: 42,
            swap_iters: 200,
            candidate_counts: vec![],
            split_path: None,
            query_log: vec![],
            mined_paths: 2,
            weights: CostWeights::default(),
        }
    }
}

/// The advisor's recommendation.
#[derive(Debug, Clone)]
pub struct Advice {
    /// Recommended design (may be the current one).
    pub design: FragmentationSchema,
    /// Recommended placements, sorted by `(fragment, node)`.
    pub placements: Vec<Placement>,
    /// Predicted cost of the recommendation.
    pub predicted: CostReport,
    /// Predicted cost of the *current* `(design, placement)` — the
    /// baseline the recommendation improves on.
    pub current: CostReport,
    /// True when the recommended design differs from the current one
    /// (not just the placement).
    pub design_changed: bool,
    pub candidates_considered: usize,
}

impl Advice {
    /// Ready-to-register distribution for the recommendation.
    pub fn distribution(&self) -> Distribution {
        Distribution { design: self.design.clone(), placements: self.placements.clone() }
    }

    /// Predicted cost reduction, `0..=1`.
    pub fn predicted_gain(&self) -> f64 {
        if self.current.total_cost <= 0.0 {
            return 0.0;
        }
        (1.0 - self.predicted.total_cost / self.current.total_cost).max(0.0)
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdviseError {
    /// `nodes` was 0.
    NoNodes,
    /// The design under advice has no fragments.
    EmptyDesign,
}

impl fmt::Display for AdviseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdviseError::NoNodes => write!(f, "cannot place fragments on a 0-node cluster"),
            AdviseError::EmptyDesign => write!(f, "design has no fragments"),
        }
    }
}

impl std::error::Error for AdviseError {}

/// xorshift64 — deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next() % n as u64) as usize
    }
}

/// Advise against the current distribution, using `sample` documents
/// (a representative subset of the collection) to size candidate
/// fragments consistently across designs.
pub fn advise(
    current: &Distribution,
    sample: &[Document],
    profile: &WorkloadProfile,
    config: &AdvisorConfig,
) -> Result<Advice, AdviseError> {
    if config.nodes == 0 {
        return Err(AdviseError::NoNodes);
    }
    if current.design.fragments.is_empty() {
        return Err(AdviseError::EmptyDesign);
    }

    // workload aggregates shared by all candidates
    let profile_loads = cost::fragment_loads(profile);
    let total_accesses: f64 = profile.fragments.iter().map(|f| f.accesses as f64).sum::<f64>().max(1.0);
    let avg_selectivity = average_selectivity(profile);

    // the current placement, scored as-is, is the baseline
    let current_loads = design_loads(&current.design, sample, &profile_loads, total_accesses, avg_selectivity);
    let current_placed = placement_map(&current.placements);
    let current_cost = cost::score(&current_loads, &current_placed, config.nodes, &config.weights);

    // candidate designs: current + horizontal re-splits. Split paths
    // come from the operator (`split_path`) and from frequency mining
    // over the query log; all candidates compete under the same cost
    // model.
    let mut candidates: Vec<FragmentationSchema> = vec![current.design.clone()];
    let counts: &[usize] =
        if config.candidate_counts.is_empty() { &[2, 4] } else { &config.candidate_counts };
    let mut split_paths: Vec<PathExpr> = config.split_path.iter().cloned().collect();
    if !config.query_log.is_empty() {
        let mined = crate::mining::mine_predicates(&config.query_log);
        for path in crate::mining::mined_split_paths(
            &mined,
            &current.design.collection.name,
            config.mined_paths,
        ) {
            if !split_paths.contains(&path) {
                split_paths.push(path);
            }
        }
    }
    for path in &split_paths {
        for &count in counts {
            if let Ok(design) =
                horizontal_by_values(current.design.collection.clone(), path, sample, count)
            {
                candidates.push(design);
            }
        }
    }

    let mut best: Option<(FragmentationSchema, BTreeMap<String, Vec<usize>>, CostReport)> = None;
    let candidates_considered = candidates.len();
    for (i, design) in candidates.into_iter().enumerate() {
        let loads = design_loads(&design, sample, &profile_loads, total_accesses, avg_selectivity);
        // decorrelate per-candidate search streams deterministically
        let mut rng = Rng::new(config.seed ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15));
        let placed = search_placement(&loads, config, &mut rng);
        let report = cost::score(&loads, &placed, config.nodes, &config.weights);
        let better = match &best {
            None => true,
            Some((_, _, best_report)) => report.total_cost < best_report.total_cost,
        };
        if better {
            best = Some((design, placed, report));
        }
    }
    let (design, placed, predicted) = best.expect("at least the current design");

    let design_changed = design.fragments.len() != current.design.fragments.len()
        || design
            .fragments
            .iter()
            .zip(&current.design.fragments)
            .any(|(a, b)| a.name != b.name);
    let mut placements: Vec<Placement> = placed
        .into_iter()
        .flat_map(|(fragment, nodes)| {
            nodes.into_iter().map(move |node| Placement { fragment: fragment.clone(), node })
        })
        .collect();
    placements.sort_by(|a, b| a.fragment.cmp(&b.fragment).then(a.node.cmp(&b.node)));

    Ok(Advice {
        design,
        placements,
        predicted,
        current: current_cost,
        design_changed,
        candidates_considered,
    })
}

/// Advise against a live service: pulls the current distribution and a
/// sample (the union of all fragment contents) from `px`.
pub fn advise_live(
    px: &PartiX,
    collection: &str,
    profile: &WorkloadProfile,
    config: &AdvisorConfig,
) -> Result<Option<Advice>, AdviseError> {
    let current = match px.catalog().distribution(collection).cloned() {
        Some(dist) => dist,
        None => return Ok(None),
    };
    let sample = collection_sample(px, &current);
    advise(&current, &sample, profile, config).map(Some)
}

/// Union of all fragment contents, one replica each — the live sample
/// for re-split candidates.
pub fn collection_sample(px: &PartiX, dist: &Distribution) -> Vec<Document> {
    let mut sample = Vec::new();
    for frag in &dist.design.fragments {
        if let Some(&node) = dist.nodes_of(&frag.name).first() {
            if let Some(node) = px.cluster().node(node) {
                sample.extend(node.fetch_docs(&frag.name).iter().map(|d| (**d).clone()));
            }
        }
    }
    sample
}

fn average_selectivity(profile: &WorkloadProfile) -> f64 {
    let mut shipped = 0.0;
    let mut scanned = 0.0;
    for f in &profile.fragments {
        let dispatched = f.accesses.saturating_sub(f.cache_hits) as f64;
        shipped += f.shipped_bytes as f64;
        scanned += dispatched * f.size_bytes as f64;
    }
    if scanned > 0.0 {
        (shipped / scanned).clamp(0.0, 1.0)
    } else {
        1.0
    }
}

/// Per-fragment loads for a candidate design. Fragment sizes come from
/// fragmenting `sample` (same basis for every candidate). Accesses come
/// from the profile when the fragment exists there (the current
/// design); for re-split fragments the total observed access volume is
/// distributed proportionally to fragment size — the
/// uniform-access-over-data assumption.
fn design_loads(
    design: &FragmentationSchema,
    sample: &[Document],
    profile_loads: &BTreeMap<String, FragmentLoad>,
    total_accesses: f64,
    avg_selectivity: f64,
) -> BTreeMap<String, FragmentLoad> {
    let fragmenter = Fragmenter::new(design.clone());
    let mut sizes: BTreeMap<String, f64> = design
        .fragments
        .iter()
        .map(|f| (f.name.clone(), 0.0))
        .collect();
    for (name, docs) in fragmenter.fragment_all(sample) {
        let bytes: usize = docs.iter().map(Document::approx_size).sum();
        *sizes.entry(name).or_insert(0.0) += bytes as f64;
    }
    let total_size: f64 = sizes.values().sum::<f64>().max(1.0);
    sizes
        .into_iter()
        .map(|(name, size_bytes)| {
            let load = match profile_loads.get(&name) {
                Some(known) => FragmentLoad { size_bytes, ..known.clone() },
                None => FragmentLoad {
                    accesses: (total_accesses * size_bytes / total_size).max(1.0),
                    size_bytes,
                    selectivity: avg_selectivity,
                },
            };
            (name, load)
        })
        .collect()
}

fn placement_map(placements: &[Placement]) -> BTreeMap<String, Vec<usize>> {
    let mut map: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for p in placements {
        let nodes = map.entry(p.fragment.clone()).or_default();
        if !nodes.contains(&p.node) {
            nodes.push(p.node);
        }
    }
    map
}

/// Greedy LPT seed + seeded local search over moves / swaps / replica
/// add-drops, accepting strict cost decreases.
fn search_placement(
    loads: &BTreeMap<String, FragmentLoad>,
    config: &AdvisorConfig,
    rng: &mut Rng,
) -> BTreeMap<String, Vec<usize>> {
    let nodes = config.nodes;
    // ---- greedy seed: hottest-first onto least-loaded node ----
    let mut by_heat: Vec<(&String, f64)> = loads
        .iter()
        .map(|(name, l)| (name, l.accesses * l.size_bytes))
        .collect();
    by_heat.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(b.0)));
    let mut node_load = vec![0.0; nodes];
    let mut placed: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (name, heat) in by_heat {
        let target = (0..nodes)
            .min_by(|&a, &b| {
                node_load[a].partial_cmp(&node_load[b]).unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("nodes > 0");
        node_load[target] += heat;
        placed.insert(name.clone(), vec![target]);
    }

    // ---- local search ----
    let names: Vec<String> = placed.keys().cloned().collect();
    if names.is_empty() || nodes < 2 {
        return placed;
    }
    let mut best_cost = cost::score(loads, &placed, nodes, &config.weights).total_cost;
    for _ in 0..config.swap_iters {
        let mut trial = placed.clone();
        match rng.below(4) {
            // move one fragment's first replica to another node
            0 => {
                let name = &names[rng.below(names.len())];
                let replicas = trial.get_mut(name).expect("placed");
                let to = rng.below(nodes);
                if !replicas.contains(&to) {
                    replicas[0] = to;
                } else {
                    continue;
                }
            }
            // swap the primary nodes of two fragments (skipped when a
            // secondary replica already sits on the incoming node — the
            // swap would duplicate it)
            1 => {
                let a = &names[rng.below(names.len())];
                let b = &names[rng.below(names.len())];
                if a == b {
                    continue;
                }
                let na = trial[a][0];
                let nb = trial[b][0];
                if trial[a][1..].contains(&nb) || trial[b][1..].contains(&na) {
                    continue;
                }
                trial.get_mut(a).expect("placed")[0] = nb;
                trial.get_mut(b).expect("placed")[0] = na;
            }
            // add a replica on a node not yet holding the fragment
            2 => {
                let name = &names[rng.below(names.len())];
                let replicas = trial.get_mut(name).expect("placed");
                let to = rng.below(nodes);
                if replicas.contains(&to) {
                    continue;
                }
                replicas.push(to);
            }
            // drop a replica (never the last one)
            _ => {
                let name = &names[rng.below(names.len())];
                let replicas = trial.get_mut(name).expect("placed");
                if replicas.len() < 2 {
                    continue;
                }
                let victim = rng.below(replicas.len());
                replicas.remove(victim);
            }
        }
        let trial_cost = cost::score(loads, &trial, nodes, &config.weights).total_cost;
        if trial_cost < best_cost {
            best_cost = trial_cost;
            placed = trial;
        }
    }
    for replicas in placed.values_mut() {
        replicas.sort_unstable();
    }
    placed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{FragmentStats, WorkloadProfile};
    use partix_frag::FragmentDef;
    use partix_path::Predicate;
    use partix_schema::builtin::virtual_store;
    use partix_schema::{CollectionDef, RepoKind};
    use partix_xml::parse;
    use std::sync::Arc;

    fn items(n: usize) -> Vec<Document> {
        (0..n)
            .map(|i| {
                let section = ["CD", "DVD", "BOOK"][i % 3];
                let mut d = parse(&format!(
                    "<Item><Code>{i}</Code><Section>{section}</Section><Price>{}</Price></Item>",
                    5 + i
                ))
                .unwrap();
                d.name = Some(format!("i{i:04}"));
                d
            })
            .collect()
    }

    fn citems() -> CollectionDef {
        CollectionDef::new(
            "items",
            Arc::new(virtual_store()),
            PathExpr::parse("/Store/Items/Item").unwrap(),
            RepoKind::MultipleDocuments,
        )
    }

    fn skewed_current() -> Distribution {
        // three horizontal fragments all packed onto node 0
        let design = FragmentationSchema::new(
            citems(),
            vec![
                FragmentDef::horizontal(
                    "f_cd",
                    Predicate::parse(r#"/Item/Section = "CD""#).unwrap(),
                ),
                FragmentDef::horizontal(
                    "f_dvd",
                    Predicate::parse(r#"/Item/Section = "DVD""#).unwrap(),
                ),
                FragmentDef::horizontal(
                    "f_book",
                    Predicate::parse(r#"/Item/Section = "BOOK""#).unwrap(),
                ),
            ],
        )
        .unwrap();
        Distribution {
            design,
            placements: vec![
                Placement { fragment: "f_cd".into(), node: 0 },
                Placement { fragment: "f_dvd".into(), node: 0 },
                Placement { fragment: "f_book".into(), node: 0 },
            ],
        }
    }

    fn hot_profile() -> WorkloadProfile {
        WorkloadProfile {
            queries: 300,
            fragments: vec![
                FragmentStats {
                    fragment: "f_cd".into(),
                    accesses: 100,
                    shipped_bytes: 40_000,
                    size_bytes: 4_000,
                    ..Default::default()
                },
                FragmentStats {
                    fragment: "f_dvd".into(),
                    accesses: 100,
                    shipped_bytes: 40_000,
                    size_bytes: 4_000,
                    ..Default::default()
                },
                FragmentStats {
                    fragment: "f_book".into(),
                    accesses: 100,
                    shipped_bytes: 40_000,
                    size_bytes: 4_000,
                    ..Default::default()
                },
            ],
            ..Default::default()
        }
    }

    #[test]
    fn spreads_a_skewed_placement_across_nodes() {
        let advice = advise(
            &skewed_current(),
            &items(60),
            &hot_profile(),
            &AdvisorConfig::new(3),
        )
        .unwrap();
        let used: std::collections::BTreeSet<usize> =
            advice.placements.iter().map(|p| p.node).collect();
        assert!(used.len() >= 2, "advice still skewed: {:?}", advice.placements);
        assert!(
            advice.predicted.total_cost < advice.current.total_cost,
            "predicted {:?} !< current {:?}",
            advice.predicted.total_cost,
            advice.current.total_cost
        );
        assert!(advice.predicted_gain() > 0.0);
        // every fragment still placed somewhere
        for f in &advice.design.fragments {
            assert!(advice.placements.iter().any(|p| p.fragment == f.name), "{} unplaced", f.name);
        }
    }

    #[test]
    fn advice_is_deterministic_under_a_seed() {
        let current = skewed_current();
        let sample = items(60);
        let profile = hot_profile();
        let mut config = AdvisorConfig::new(3);
        config.split_path = Some(PathExpr::parse("/Item/Section").unwrap());
        config.candidate_counts = vec![2, 3];
        let a = advise(&current, &sample, &profile, &config).unwrap();
        let b = advise(&current, &sample, &profile, &config).unwrap();
        assert_eq!(a.placements, b.placements);
        assert_eq!(a.predicted.total_cost, b.predicted.total_cost);
        assert_eq!(a.candidates_considered, b.candidates_considered);
        assert!(a.candidates_considered >= 2, "re-split candidates missing");
    }

    #[test]
    fn resplit_candidates_are_considered_and_failures_skipped() {
        let current = skewed_current();
        let sample = items(60);
        let profile = hot_profile();
        let mut config = AdvisorConfig::new(3);
        config.split_path = Some(PathExpr::parse("/Item/Section").unwrap());
        // 2 viable + one absurd count that cannot be built from 3 values
        config.candidate_counts = vec![2, 50];
        let advice = advise(&current, &sample, &profile, &config).unwrap();
        assert!(advice.candidates_considered >= 2);
        // recommendation is registerable
        let dist = advice.distribution();
        assert!(dist.validate_against(3).is_ok(), "{:?}", dist.validate_against(3));
    }

    #[test]
    fn rejects_degenerate_inputs() {
        let current = skewed_current();
        let err = advise(&current, &[], &WorkloadProfile::default(), &AdvisorConfig::new(0))
            .unwrap_err();
        assert_eq!(err, AdviseError::NoNodes);
        let empty = Distribution {
            design: FragmentationSchema { collection: citems(), fragments: vec![] },
            placements: vec![],
        };
        let err = advise(&empty, &[], &WorkloadProfile::default(), &AdvisorConfig::new(2))
            .unwrap_err();
        assert_eq!(err, AdviseError::EmptyDesign);
    }
}
