//! # partix-advisor
//!
//! Workload-driven fragmentation advice and live rebalancing for the
//! PartiX middleware. Closes the loop the paper leaves open: PartiX
//! executes queries over whatever fragmentation/placement the user
//! registered — this crate observes how that design actually behaves
//! and moves the system toward a better one, without downtime.
//!
//! ```text
//!   QueryReports ──▶ WorkloadProfiler ──▶ WorkloadProfile (JSON)
//!                                              │
//!                           sample docs ──▶ advise() ──▶ Advice
//!                                              │     (design+placement,
//!                                              │      predicted costs)
//!                                              ▼
//!                                         rebalance()
//!                               copy → atomic swap → retire
//!                              (queries keep serving throughout)
//! ```
//!
//! * [`profile`] — aggregate per-fragment/per-node access statistics
//!   from [`QueryReport`](partix_engine::QueryReport)s into a
//!   serializable [`WorkloadProfile`].
//! * [`cost`] — the analytical cost model: bottleneck scan load +
//!   result-shipping + imbalance penalty.
//! * [`advise`] — candidate search (current design re-placed, plus
//!   horizontal re-splits) with greedy seeding and seeded local search;
//!   deterministic for a given seed.
//! * [`rebalance`] — live migration between placements: dual-placement
//!   copy, atomic catalog swap, epoch-bumping retirement, post-move
//!   correctness re-validation.

pub mod advise;
pub mod cost;
pub mod jsonio;
pub mod mining;
pub mod profile;
pub mod rebalance;

pub use advise::{advise, advise_live, collection_sample, Advice, AdviseError, AdvisorConfig};
pub use mining::{mine_predicates, mined_split_paths, MinedPredicate};
pub use cost::{score, CostReport, CostWeights, FragmentLoad};
pub use profile::{
    FragmentStats, NodeStats, StageTotals, WorkloadProfile, WorkloadProfiler,
};
pub use rebalance::{
    rebalance, rebalance_with_observer, MoveRecord, RebalanceError, RebalanceOptions,
    RebalancePhase, RebalanceReport,
};
