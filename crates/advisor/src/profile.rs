//! Workload profiling: aggregate per-fragment access statistics from
//! query reports into a serializable [`WorkloadProfile`].
//!
//! The profiler is the advisor's input stage. Every
//! [`QueryReport`](partix_engine::QueryReport) fed to
//! [`WorkloadProfiler::record`] contributes its per-site numbers
//! (fragment touched, node answering, bytes shipped, DBMS busy time,
//! cache hits) and its coordinator stage breakdown. The aggregate is a
//! plain-data [`WorkloadProfile`] that round-trips through JSON, so a
//! profile captured on one run (`partix stats`, a benchmark, production
//! traffic) can be replayed into `partix advise` later.

use crate::jsonio::{self, Json};
use partix_engine::{PartiX, QueryReport};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Aggregated statistics for one fragment.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FragmentStats {
    pub fragment: String,
    /// Sub-queries that touched this fragment (cache hits included).
    pub accesses: u64,
    /// Result bytes shipped from this fragment's replicas.
    pub shipped_bytes: u64,
    /// Sub-queries answered from the coordinator result cache.
    pub cache_hits: u64,
    /// DBMS-side busy time across all accesses (seconds).
    pub busy_s: f64,
    /// Stored size of the fragment (bytes); filled by
    /// [`WorkloadProfiler::observe_placement`], 0 if never observed.
    pub size_bytes: u64,
}

impl FragmentStats {
    /// Mean fraction of the fragment shipped back per (non-cached)
    /// access — the cost model's selectivity estimate. Clamped to
    /// `[0, 1]`; defaults to 1 when sizes were never observed.
    pub fn selectivity(&self) -> f64 {
        let dispatched = self.accesses.saturating_sub(self.cache_hits);
        if dispatched == 0 || self.size_bytes == 0 {
            return 1.0;
        }
        let per_access = self.shipped_bytes as f64 / dispatched as f64;
        (per_access / self.size_bytes as f64).clamp(0.0, 1.0)
    }
}

/// Aggregated statistics for one node.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NodeStats {
    pub node: usize,
    pub accesses: u64,
    pub shipped_bytes: u64,
    pub busy_s: f64,
}

/// Coordinator-stage totals over all recorded queries (seconds).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageTotals {
    pub parse_s: f64,
    pub localize_s: f64,
    pub dispatch_s: f64,
    pub compose_s: f64,
}

/// The profiler's aggregate: everything the advisor needs to know about
/// a workload, detached from the live system.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkloadProfile {
    /// Queries recorded.
    pub queries: u64,
    /// Per-fragment stats, sorted by fragment name.
    pub fragments: Vec<FragmentStats>,
    /// Per-node stats, sorted by node id.
    pub nodes: Vec<NodeStats>,
    pub stages: StageTotals,
}

impl WorkloadProfile {
    pub fn fragment(&self, name: &str) -> Option<&FragmentStats> {
        self.fragments.iter().find(|f| f.fragment == name)
    }

    /// Total result bytes shipped to the coordinator.
    pub fn total_shipped_bytes(&self) -> u64 {
        self.fragments.iter().map(|f| f.shipped_bytes).sum()
    }

    /// Serialize to JSON (stable field order, round-trips via
    /// [`WorkloadProfile::from_json`]).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"queries\": {},", self.queries);
        let _ = writeln!(
            out,
            "  \"stages\": {{\"parse_s\": {}, \"localize_s\": {}, \"dispatch_s\": {}, \"compose_s\": {}}},",
            self.stages.parse_s, self.stages.localize_s, self.stages.dispatch_s, self.stages.compose_s
        );
        out.push_str("  \"fragments\": [");
        for (i, f) in self.fragments.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"fragment\": \"{}\", \"accesses\": {}, \"shipped_bytes\": {}, \"cache_hits\": {}, \"busy_s\": {}, \"size_bytes\": {}}}",
                jsonio::escape(&f.fragment),
                f.accesses,
                f.shipped_bytes,
                f.cache_hits,
                f.busy_s,
                f.size_bytes
            );
        }
        out.push_str("\n  ],\n  \"nodes\": [");
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"node\": {}, \"accesses\": {}, \"shipped_bytes\": {}, \"busy_s\": {}}}",
                n.node, n.accesses, n.shipped_bytes, n.busy_s
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parse a profile previously produced by [`WorkloadProfile::to_json`].
    pub fn from_json(text: &str) -> Result<Self, String> {
        let root = jsonio::parse(text).map_err(|e| e.to_string())?;
        let need_u64 = |v: &Json, key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing/invalid field {key:?}"))
        };
        let need_f64 = |v: &Json, key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing/invalid field {key:?}"))
        };
        let mut profile = WorkloadProfile {
            queries: need_u64(&root, "queries")?,
            ..Default::default()
        };
        if let Some(stages) = root.get("stages") {
            profile.stages = StageTotals {
                parse_s: need_f64(stages, "parse_s")?,
                localize_s: need_f64(stages, "localize_s")?,
                dispatch_s: need_f64(stages, "dispatch_s")?,
                compose_s: need_f64(stages, "compose_s")?,
            };
        }
        for f in root
            .get("fragments")
            .and_then(Json::as_arr)
            .ok_or("missing \"fragments\" array")?
        {
            profile.fragments.push(FragmentStats {
                fragment: f
                    .get("fragment")
                    .and_then(Json::as_str)
                    .ok_or("fragment entry missing name")?
                    .to_owned(),
                accesses: need_u64(f, "accesses")?,
                shipped_bytes: need_u64(f, "shipped_bytes")?,
                cache_hits: need_u64(f, "cache_hits")?,
                busy_s: need_f64(f, "busy_s")?,
                size_bytes: need_u64(f, "size_bytes")?,
            });
        }
        for n in root.get("nodes").and_then(Json::as_arr).ok_or("missing \"nodes\" array")? {
            profile.nodes.push(NodeStats {
                node: need_u64(n, "node")? as usize,
                accesses: need_u64(n, "accesses")?,
                shipped_bytes: need_u64(n, "shipped_bytes")?,
                busy_s: need_f64(n, "busy_s")?,
            });
        }
        profile.fragments.sort_by(|a, b| a.fragment.cmp(&b.fragment));
        profile.nodes.sort_by_key(|n| n.node);
        Ok(profile)
    }
}

#[derive(Debug, Default)]
struct ProfilerInner {
    queries: u64,
    fragments: BTreeMap<String, FragmentStats>,
    nodes: BTreeMap<usize, NodeStats>,
    stages: StageTotals,
}

/// Thread-safe aggregator turning [`QueryReport`]s into a
/// [`WorkloadProfile`].
#[derive(Debug, Default)]
pub struct WorkloadProfiler {
    inner: Mutex<ProfilerInner>,
}

impl WorkloadProfiler {
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one query's report into the aggregate.
    pub fn record(&self, report: &QueryReport) {
        let mut inner = self.inner.lock();
        inner.queries += 1;
        inner.stages.parse_s += report.stages.parse_s;
        inner.stages.localize_s += report.stages.localize_s;
        inner.stages.dispatch_s += report.stages.dispatch_s;
        inner.stages.compose_s += report.stages.compose_s;
        for site in &report.sites {
            let frag = inner
                .fragments
                .entry(site.fragment.clone())
                .or_insert_with(|| FragmentStats {
                    fragment: site.fragment.clone(),
                    ..Default::default()
                });
            frag.accesses += 1;
            frag.shipped_bytes += site.result_bytes as u64;
            frag.busy_s += site.elapsed;
            if site.from_cache {
                frag.cache_hits += 1;
            }
            let node = inner.nodes.entry(site.node).or_insert_with(|| NodeStats {
                node: site.node,
                ..Default::default()
            });
            node.accesses += 1;
            node.shipped_bytes += site.result_bytes as u64;
            node.busy_s += site.elapsed;
        }
    }

    /// Fill per-fragment stored sizes (and make every placed fragment
    /// appear in the profile, even if the workload never touched it) by
    /// asking `px`'s catalog and nodes about `collection`'s fragments.
    pub fn observe_placement(&self, px: &PartiX, collection: &str) {
        let catalog = px.catalog();
        let Some(dist) = catalog.distribution(collection) else { return };
        let mut sizes: Vec<(String, u64)> = Vec::new();
        for frag in &dist.design.fragments {
            let name = frag.name.clone();
            // all replicas hold identical copies; measure the first
            let bytes = dist
                .nodes_of(&name)
                .first()
                .and_then(|&n| px.cluster().node(n))
                .map(|node| {
                    node.fetch_docs(&name)
                        .iter()
                        .map(|d| d.approx_size())
                        .sum::<usize>() as u64
                })
                .unwrap_or(0);
            sizes.push((name, bytes));
        }
        drop(catalog);
        let mut inner = self.inner.lock();
        for (name, bytes) in sizes {
            let frag = inner.fragments.entry(name.clone()).or_insert_with(|| FragmentStats {
                fragment: name,
                ..Default::default()
            });
            frag.size_bytes = bytes;
        }
    }

    /// Snapshot the aggregate (fragments sorted by name, nodes by id).
    pub fn snapshot(&self) -> WorkloadProfile {
        let inner = self.inner.lock();
        WorkloadProfile {
            queries: inner.queries,
            fragments: inner.fragments.values().cloned().collect(),
            nodes: inner.nodes.values().cloned().collect(),
            stages: inner.stages,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use partix_engine::SiteReport;

    fn site(fragment: &str, node: usize, bytes: usize, cached: bool) -> SiteReport {
        SiteReport {
            node,
            fragment: fragment.to_owned(),
            elapsed: 0.010,
            result_bytes: bytes,
            docs_scanned: 5,
            index_used: false,
            morsels: 0,
            from_cache: cached,
            retries: 0,
            failovers: 0,
            timeouts: 0,
        }
    }

    fn sample_profile() -> WorkloadProfile {
        let profiler = WorkloadProfiler::new();
        let mut report = QueryReport {
            sites: vec![site("f_cd", 0, 300, false), site("f_dvd", 1, 100, false)],
            ..Default::default()
        };
        report.stages.dispatch_s = 0.5;
        profiler.record(&report);
        let cached = QueryReport {
            sites: vec![site("f_cd", 0, 300, true)],
            ..Default::default()
        };
        profiler.record(&cached);
        profiler.snapshot()
    }

    #[test]
    fn aggregates_sites_per_fragment_and_node() {
        let p = sample_profile();
        assert_eq!(p.queries, 2);
        let cd = p.fragment("f_cd").unwrap();
        assert_eq!(cd.accesses, 2);
        assert_eq!(cd.shipped_bytes, 600);
        assert_eq!(cd.cache_hits, 1);
        assert_eq!(p.fragment("f_dvd").unwrap().accesses, 1);
        assert_eq!(p.nodes.len(), 2);
        assert_eq!(p.nodes[0].node, 0);
        assert_eq!(p.nodes[0].accesses, 2);
        assert!((p.stages.dispatch_s - 0.5).abs() < 1e-12);
        assert_eq!(p.total_shipped_bytes(), 700);
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let mut p = sample_profile();
        p.fragments[0].size_bytes = 4096;
        let back = WorkloadProfile::from_json(&p.to_json()).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn from_json_rejects_malformed_input() {
        assert!(WorkloadProfile::from_json("{}").is_err());
        assert!(WorkloadProfile::from_json("not json").is_err());
        assert!(WorkloadProfile::from_json(r#"{"queries": 1, "fragments": [{}], "nodes": []}"#)
            .is_err());
    }

    #[test]
    fn selectivity_estimates_shipped_fraction() {
        let mut f = FragmentStats {
            fragment: "f".into(),
            accesses: 4,
            cache_hits: 2,
            shipped_bytes: 1000,
            size_bytes: 2000,
            ..Default::default()
        };
        // 2 dispatched accesses shipped 1000 B of a 2000 B fragment → 25%
        assert!((f.selectivity() - 0.25).abs() < 1e-12);
        f.size_bytes = 0;
        assert_eq!(f.selectivity(), 1.0); // unknown size → conservative
        f.size_bytes = 10;
        assert_eq!(f.selectivity(), 1.0); // clamped
    }
}
