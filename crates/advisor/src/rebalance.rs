//! Live rebalancing: migrate fragments between nodes while queries keep
//! serving.
//!
//! A rebalance moves a collection from its current placement to a
//! target placement (same design — a design change is a re-publish, not
//! a rebalance) in two phases:
//!
//! * **Phase A — copy.** For every fragment gaining a replica, fetch
//!   its documents from an existing replica and store them on each new
//!   node, then atomically register the *union* placement (old ∪ new).
//!   From this instant queries may be served by either generation of
//!   replicas; both hold identical data.
//! * **Phase B — retire.** Atomically register the target placement,
//!   then drop the fragment from every node that lost its replica.
//!
//! Safety relies on two engine mechanisms: catalog registration swaps
//! an `Arc<Distribution>` (in-flight queries keep the placement they
//! planned against), and the service re-plans any query whose
//! distribution changed mid-flight
//! ([`PartiX::execute`](partix_engine::PartiX::execute)'s replan loop),
//! so a query that planned against a replica dropped in Phase B re-runs
//! against the new placement instead of reading an empty collection.
//! Dropping and storing both bump per-collection epochs, so
//! coordinator result-cache entries keyed to retired replicas are
//! invalidated automatically.
//!
//! After the swap the rebalancer re-validates the distribution
//! ([`Distribution::validate_against`](partix_engine::Distribution))
//! and — for horizontal designs — re-checks fragmentation completeness
//! and disjointness over the migrated contents via
//! [`partix_frag::check_correctness`].

use partix_engine::{metrics, Distribution, PartiX, PartixError, Placement};
use partix_frag::check_correctness;
use partix_frag::def::FragType;
use partix_xml::Document;
use std::collections::BTreeMap;
use std::fmt;
use std::time::Instant;

/// One fragment's migration within a rebalance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MoveRecord {
    pub fragment: String,
    /// Replica nodes before the rebalance.
    pub from: Vec<usize>,
    /// Replica nodes after the rebalance.
    pub to: Vec<usize>,
    /// Documents copied to each new replica.
    pub docs: usize,
    /// Bytes shipped (documents × new replicas).
    pub bytes: u64,
}

/// What a rebalance did.
#[derive(Debug, Clone, Default)]
pub struct RebalanceReport {
    pub collection: String,
    /// Fragments whose replica set changed (unchanged fragments are not
    /// listed).
    pub moves: Vec<MoveRecord>,
    /// Total bytes copied to new replicas.
    pub migrated_bytes: u64,
    /// Total documents copied to new replicas.
    pub migrated_docs: u64,
    /// Wall time of the whole rebalance (seconds).
    pub elapsed_s: f64,
    /// True when post-migration validation (placement validity, and for
    /// horizontal designs completeness/disjointness over the migrated
    /// contents) passed.
    pub verified: bool,
}

#[derive(Debug)]
pub enum RebalanceError {
    /// The collection has no registered distribution.
    NoDistribution(String),
    /// The target placement failed validation (typed detail inside).
    InvalidTarget(PartixError),
    /// A fragment has no live replica to copy from.
    SourceUnavailable { fragment: String, node: usize },
    /// Post-migration correctness re-validation failed.
    VerificationFailed { violations: Vec<String> },
}

impl fmt::Display for RebalanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RebalanceError::NoDistribution(c) => {
                write!(f, "collection {c:?} has no registered distribution")
            }
            RebalanceError::InvalidTarget(e) => write!(f, "invalid target placement: {e}"),
            RebalanceError::SourceUnavailable { fragment, node } => {
                write!(f, "fragment {fragment:?} has no live source replica (node {node} missing)")
            }
            RebalanceError::VerificationFailed { violations } => {
                write!(f, "post-migration verification failed: {}", violations.join("; "))
            }
        }
    }
}

impl std::error::Error for RebalanceError {}

/// Options controlling a rebalance.
#[derive(Debug, Clone)]
pub struct RebalanceOptions {
    /// Re-run data-level completeness/disjointness checks after the
    /// swap (horizontal designs only; placement validation always
    /// runs). Default on.
    pub verify: bool,
}

impl Default for RebalanceOptions {
    fn default() -> Self {
        RebalanceOptions { verify: true }
    }
}

/// Observable milestones of a running rebalance, in order. Exposed for
/// callers that must interleave deterministically with a migration —
/// the write-during-migration differential test injects a write at
/// [`RebalancePhase::UnionRegistered`], the exact window where queries
/// may be served by either generation of replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RebalancePhase {
    /// All new replicas hold their copies; the catalog still points at
    /// the old placement.
    Copied,
    /// The union placement (old ∪ new replicas) is registered.
    UnionRegistered,
    /// The target placement is registered; old replicas retire next.
    Swapped,
}

/// Migrate `collection` to `target` placements, live.
///
/// Queries keep executing throughout: the copy phase only adds
/// replicas, the swap is atomic, and the engine re-plans any query
/// caught by the retire phase. Returns a [`RebalanceReport`] describing
/// every moved fragment; a no-op target (placements already current)
/// returns an empty report.
pub fn rebalance(
    px: &PartiX,
    collection: &str,
    target: &[Placement],
    options: &RebalanceOptions,
) -> Result<RebalanceReport, RebalanceError> {
    rebalance_with_observer(px, collection, target, options, &mut |_| {})
}

/// [`rebalance`] with a milestone callback — see [`RebalancePhase`].
/// The observer runs synchronously inside the rebalance, so whatever it
/// does (e.g. issue a write through the coordinator) is strictly
/// ordered against the migration's catalog swaps.
pub fn rebalance_with_observer(
    px: &PartiX,
    collection: &str,
    target: &[Placement],
    options: &RebalanceOptions,
    observer: &mut dyn FnMut(RebalancePhase),
) -> Result<RebalanceReport, RebalanceError> {
    let start = Instant::now();
    let current = px
        .catalog()
        .distribution(collection)
        .cloned()
        .ok_or_else(|| RebalanceError::NoDistribution(collection.to_owned()))?;

    // dry-validate the target against the current design before touching
    // any node
    let target_dist =
        Distribution { design: current.design.clone(), placements: target.to_vec() };
    target_dist
        .validate_against(px.cluster().len())
        .map_err(|e| RebalanceError::InvalidTarget(PartixError::InvalidDistribution(e)))?;

    let fragments: Vec<String> =
        current.design.fragments.iter().map(|f| f.name.clone()).collect();
    let mut report =
        RebalanceReport { collection: collection.to_owned(), ..Default::default() };

    // ---- Phase A: copy to new replicas, then serve from the union ----
    let mut union_placements: Vec<Placement> = Vec::new();
    let mut doc_counts: BTreeMap<String, usize> = BTreeMap::new();
    for fragment in &fragments {
        let from = current.nodes_of(fragment);
        let to = target_dist.nodes_of(fragment);
        let source = *from.first().ok_or_else(|| RebalanceError::SourceUnavailable {
            fragment: fragment.clone(),
            node: usize::MAX,
        })?;
        let source_node = px.cluster().node(source).ok_or_else(|| {
            RebalanceError::SourceUnavailable { fragment: fragment.clone(), node: source }
        })?;
        let docs: Vec<Document> =
            source_node.fetch_docs(fragment).iter().map(|d| (**d).clone()).collect();
        doc_counts.insert(fragment.clone(), docs.len());
        let adds: Vec<usize> = to.iter().copied().filter(|n| !from.contains(n)).collect();
        let bytes_per_copy: u64 =
            docs.iter().map(|d| d.approx_size() as u64).sum();
        for &node_id in &adds {
            let node = px.cluster().node(node_id).ok_or_else(|| {
                RebalanceError::SourceUnavailable { fragment: fragment.clone(), node: node_id }
            })?;
            node.store_docs(fragment, docs.clone());
        }
        if from != to {
            report.moves.push(MoveRecord {
                fragment: fragment.clone(),
                from: from.clone(),
                to: to.clone(),
                docs: docs.len(),
                bytes: bytes_per_copy * adds.len() as u64,
            });
            report.migrated_docs += (docs.len() * adds.len()) as u64;
            report.migrated_bytes += bytes_per_copy * adds.len() as u64;
        }
        for &node in from.iter().chain(adds.iter()) {
            union_placements.push(Placement { fragment: fragment.clone(), node });
        }
    }
    if report.moves.is_empty() {
        // nothing to do — placements already match
        report.elapsed_s = start.elapsed().as_secs_f64();
        report.verified = true;
        return Ok(report);
    }
    observer(RebalancePhase::Copied);
    px.register_distribution(Distribution {
        design: current.design.clone(),
        placements: union_placements,
    })
    .map_err(RebalanceError::InvalidTarget)?;
    observer(RebalancePhase::UnionRegistered);

    // ---- Phase B: swap to the target, retire old replicas ----
    px.register_distribution(target_dist.clone()).map_err(RebalanceError::InvalidTarget)?;
    observer(RebalancePhase::Swapped);
    for fragment in &fragments {
        let from = current.nodes_of(fragment);
        let to = target_dist.nodes_of(fragment);
        for node_id in from.into_iter().filter(|n| !to.contains(n)) {
            if let Some(node) = px.cluster().node(node_id) {
                // epoch bump → result-cache entries for this replica die
                node.drop_collection(fragment);
            }
        }
    }

    // ---- verification ----
    let mut violations: Vec<String> = Vec::new();
    let mut contents: Vec<(String, Vec<Document>)> = Vec::new();
    for fragment in &fragments {
        let node_id = *target_dist.nodes_of(fragment).first().expect("validated");
        let node = px.cluster().node(node_id).expect("validated");
        let docs: Vec<Document> =
            node.fetch_docs(fragment).iter().map(|d| (**d).clone()).collect();
        // guard against migration-induced *loss*: a concurrent online
        // put during the union window legitimately grows the fragment
        // between copy and verify, so growth is not a violation
        if docs.len() < doc_counts[fragment] {
            violations.push(format!(
                "{fragment}: {} docs after migration, expected at least {}",
                docs.len(),
                doc_counts[fragment]
            ));
        }
        contents.push((fragment.clone(), docs));
    }
    if options.verify && current.design.frag_type() == FragType::Horizontal {
        // the union of the migrated fragments must itself re-fragment
        // completely and disjointly under the design
        let sources: Vec<Document> =
            contents.iter().flat_map(|(_, docs)| docs.iter().cloned()).collect();
        let check = check_correctness(&current.design, &sources, &contents);
        violations.extend(check.violations.iter().map(|v| v.to_string()));
    }
    if !violations.is_empty() {
        return Err(RebalanceError::VerificationFailed { violations });
    }
    report.verified = true;

    let m = metrics::global();
    m.counter("rebalance.moves").add(report.moves.len() as u64);
    m.counter("rebalance.bytes").add(report.migrated_bytes);
    px.refresh_node_gauges();
    report.elapsed_s = start.elapsed().as_secs_f64();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use partix_engine::cluster::NetworkModel;
    use partix_frag::{FragmentDef, FragmentationSchema};
    use partix_path::{PathExpr, Predicate};
    use partix_schema::builtin::virtual_store;
    use partix_schema::{CollectionDef, RepoKind};
    use partix_xml::parse;
    use std::sync::Arc;

    fn items(n: usize) -> Vec<Document> {
        (0..n)
            .map(|i| {
                let section = ["CD", "DVD", "BOOK"][i % 3];
                let mut d = parse(&format!(
                    "<Item><Code>{i}</Code><Section>{section}</Section></Item>"
                ))
                .unwrap();
                d.name = Some(format!("i{i:04}"));
                d
            })
            .collect()
    }

    /// 3-node cluster, every fragment packed onto node 0.
    fn skewed_px() -> PartiX {
        let px = PartiX::new(3, NetworkModel::default());
        let citems = CollectionDef::new(
            "items",
            Arc::new(virtual_store()),
            PathExpr::parse("/Store/Items/Item").unwrap(),
            RepoKind::MultipleDocuments,
        );
        let design = FragmentationSchema::new(
            citems,
            vec![
                FragmentDef::horizontal(
                    "f_cd",
                    Predicate::parse(r#"/Item/Section = "CD""#).unwrap(),
                ),
                FragmentDef::horizontal(
                    "f_dvd",
                    Predicate::parse(r#"/Item/Section = "DVD""#).unwrap(),
                ),
                FragmentDef::horizontal(
                    "f_book",
                    Predicate::parse(r#"/Item/Section = "BOOK""#).unwrap(),
                ),
            ],
        )
        .unwrap();
        px.register_distribution(Distribution {
            design,
            placements: vec![
                Placement { fragment: "f_cd".into(), node: 0 },
                Placement { fragment: "f_dvd".into(), node: 0 },
                Placement { fragment: "f_book".into(), node: 0 },
            ],
        })
        .unwrap();
        px.publish("items", &items(30)).unwrap();
        px
    }

    const COUNT_Q: &str = r#"count(for $i in collection("items")/Item return $i)"#;

    fn count_of(px: &PartiX) -> String {
        let result = px.execute(COUNT_Q).unwrap();
        assert_eq!(result.items.len(), 1);
        result.items[0].serialize()
    }

    fn spread() -> Vec<Placement> {
        vec![
            Placement { fragment: "f_cd".into(), node: 0 },
            Placement { fragment: "f_dvd".into(), node: 1 },
            Placement { fragment: "f_book".into(), node: 2 },
        ]
    }

    #[test]
    fn migrates_fragments_and_queries_survive() {
        let px = skewed_px();
        let before = count_of(&px);
        let report =
            rebalance(&px, "items", &spread(), &RebalanceOptions::default()).unwrap();
        assert!(report.verified);
        assert_eq!(report.moves.len(), 2, "{:?}", report.moves);
        assert!(report.migrated_bytes > 0);
        assert_eq!(report.migrated_docs, 20);
        // answers identical across the migration
        assert_eq!(count_of(&px), before);
        // retired replicas are gone from node 0
        let n0 = px.cluster().node(0).unwrap();
        assert!(n0.db.collection_len("f_dvd").is_err());
        assert!(n0.db.collection_len("f_book").is_err());
        // and live on their new nodes
        assert_eq!(px.cluster().node(1).unwrap().db.collection_len("f_dvd").unwrap(), 10);
        assert_eq!(px.cluster().node(2).unwrap().db.collection_len("f_book").unwrap(), 10);
        // placements in the catalog match the target
        let dist = px.catalog().distribution("items").cloned().unwrap();
        assert_eq!(dist.nodes_of("f_dvd"), vec![1]);
    }

    #[test]
    fn rebalance_is_idempotent_for_a_matching_target() {
        let px = skewed_px();
        rebalance(&px, "items", &spread(), &RebalanceOptions::default()).unwrap();
        let again =
            rebalance(&px, "items", &spread(), &RebalanceOptions::default()).unwrap();
        assert!(again.moves.is_empty());
        assert_eq!(again.migrated_bytes, 0);
        assert!(again.verified);
    }

    #[test]
    fn can_grow_and_shrink_replicas() {
        let px = skewed_px();
        // replicate f_cd onto all three nodes
        let mut target = spread();
        target.push(Placement { fragment: "f_cd".into(), node: 1 });
        target.push(Placement { fragment: "f_cd".into(), node: 2 });
        let report =
            rebalance(&px, "items", &target, &RebalanceOptions::default()).unwrap();
        assert!(report.verified);
        assert_eq!(px.catalog().distribution("items").unwrap().nodes_of("f_cd").len(), 3);
        assert_eq!(px.cluster().node(2).unwrap().db.collection_len("f_cd").unwrap(), 10);
        // then shrink back to a single replica on node 2
        let mut shrink = spread();
        shrink[0] = Placement { fragment: "f_cd".into(), node: 2 };
        let report =
            rebalance(&px, "items", &shrink, &RebalanceOptions::default()).unwrap();
        assert!(report.verified);
        assert!(px.cluster().node(0).unwrap().db.collection_len("f_cd").is_err());
        assert!(px.cluster().node(1).unwrap().db.collection_len("f_cd").is_err());
        assert_eq!(count_of(&px), "30");
    }

    #[test]
    fn rejects_invalid_targets_without_side_effects() {
        let px = skewed_px();
        // out-of-range node
        let mut bad = spread();
        bad[1].node = 9;
        assert!(matches!(
            rebalance(&px, "items", &bad, &RebalanceOptions::default()),
            Err(RebalanceError::InvalidTarget(_))
        ));
        // unknown fragment
        let mut ghost = spread();
        ghost.push(Placement { fragment: "f_ghost".into(), node: 1 });
        assert!(matches!(
            rebalance(&px, "items", &ghost, &RebalanceOptions::default()),
            Err(RebalanceError::InvalidTarget(_))
        ));
        // unplaced fragment
        let missing = vec![Placement { fragment: "f_cd".into(), node: 0 }];
        assert!(matches!(
            rebalance(&px, "items", &missing, &RebalanceOptions::default()),
            Err(RebalanceError::InvalidTarget(_))
        ));
        // no distribution at all
        assert!(matches!(
            rebalance(&px, "nope", &spread(), &RebalanceOptions::default()),
            Err(RebalanceError::NoDistribution(_))
        ));
        // nothing moved, nothing dropped
        assert_eq!(px.cluster().node(0).unwrap().db.collection_len("f_cd").unwrap(), 10);
        assert_eq!(count_of(&px), "30");
    }

    #[test]
    fn migration_invalidates_stale_result_caches() {
        let px = skewed_px();
        px.set_result_cache_enabled(true);
        // warm the result cache against the skewed placement
        let warm = px.execute(COUNT_Q).unwrap();
        assert_eq!(warm.report.result_cache_misses, 3);
        let cached = px.execute(COUNT_Q).unwrap();
        assert_eq!(cached.report.result_cache_hits, 3);
        rebalance(&px, "items", &spread(), &RebalanceOptions::default()).unwrap();
        // migrated fragments must be re-dispatched, not served stale
        let after = px.execute(COUNT_Q).unwrap();
        assert_eq!(after.items[0].serialize(), "30");
        assert!(
            after.report.result_cache_misses >= 2,
            "stale cache served after migration: {:?}",
            after.report
        );
    }
}
