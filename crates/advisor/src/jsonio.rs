//! Minimal JSON reading/writing for [`crate::profile::WorkloadProfile`]
//! round-trips. The workspace builds fully offline (no serde), so this
//! module provides just enough: a hand-rolled writer mirroring the bench
//! harness idiom, and a small recursive-descent parser covering the JSON
//! subset the writer emits (objects, arrays, strings with `\"`/`\\`/`\n`
//! escapes, finite numbers, booleans, null).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().filter(|n| *n >= 0.0 && n.fract() == 0.0).map(|n| n as u64)
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Where and why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub at: usize,
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse one JSON value (trailing whitespace allowed, nothing else).
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing garbage after value"));
    }
    Ok(value)
}

fn err(at: usize, message: impl Into<String>) -> JsonError {
    JsonError { at, message: message.into() }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, ch: u8) -> Result<(), JsonError> {
    if bytes.get(*pos) == Some(&ch) {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, format!("expected {:?}", ch as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        _ => Err(err(*pos, "expected a JSON value")),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err(*pos, format!("expected {lit}")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && (bytes[*pos].is_ascii_digit() || matches!(bytes[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii digits");
    text.parse::<f64>()
        .ok()
        .filter(|n| n.is_finite())
        .map(Json::Num)
        .ok_or_else(|| err(start, format!("bad number {text:?}")))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| err(*pos, "bad \\u escape"))?;
                        out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // consume one UTF-8 scalar (multi-byte sequences intact)
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| err(*pos, "invalid UTF-8"))?;
                let ch = rest.chars().next().expect("non-empty");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err(*pos, "expected ',' or ']'")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(err(*pos, "expected ',' or '}'")),
        }
    }
}

/// Escape a string for embedding in JSON output.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,2.5,-3],"b":{"c":"x\ny","d":true,"e":null}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1], Json::Num(2.5));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("e"), Some(&Json::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a":}"#).is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("NaN").is_err());
    }

    #[test]
    fn escape_round_trips() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let json = format!("\"{}\"", escape(nasty));
        assert_eq!(parse(&json).unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn unicode_and_numbers() {
        let v = parse(r#"["héllo",1e3,"A"]"#).unwrap();
        let arr = v.as_arr().unwrap();
        assert_eq!(arr[0].as_str(), Some("héllo"));
        assert_eq!(arr[1].as_f64(), Some(1000.0));
        assert_eq!(arr[2].as_str(), Some("A"));
        assert_eq!(Json::Num(3.0).as_u64(), Some(3));
        assert_eq!(Json::Num(3.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }
}
