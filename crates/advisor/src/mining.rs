//! Frequency mining over a query log: which `path = value` predicates
//! does the workload actually filter on, and how often?
//!
//! The split-path the advisor re-fragments on no longer has to be
//! guessed by an operator ([`AdvisorConfig::split_path`]): feed the raw
//! query texts the service answered ([`AdvisorConfig::query_log`]) and
//! the miner walks each parsed AST for equality predicates on paths
//! rooted at a `for $v in collection(…)/…` binding. The mined paths,
//! ranked by how many queries filter on them, become horizontal
//! re-split candidates that compete with the operator-supplied path and
//! the current design under the same cost model — mining proposes,
//! [`crate::cost::score`] disposes.
//!
//! Unparsable log entries are skipped (a hostile or truncated log entry
//! must not poison the advice), and the whole pass is deterministic:
//! ties rank lexicographically.
//!
//! [`AdvisorConfig::split_path`]: crate::AdvisorConfig
//! [`AdvisorConfig::query_log`]: crate::AdvisorConfig

use partix_path::{CmpOp, PathExpr};
use partix_query::ast::{Clause, Expr, PathStart};
use partix_query::parse_query;
use std::collections::BTreeMap;

/// One mined predicate family: the workload compares `path` (absolute
/// from the document root) against literal values in `hits` places.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinedPredicate {
    /// Collection the binding iterates.
    pub collection: String,
    /// Absolute value path, e.g. `/Sale/Region`.
    pub path: PathExpr,
    /// Equality comparisons against a literal seen across the log.
    pub hits: usize,
}

/// Mine equality predicates from a log of raw query texts, most
/// frequent first (ties broken by collection, then path text).
pub fn mine_predicates(log: &[String]) -> Vec<MinedPredicate> {
    let mut counts: BTreeMap<(String, String), (PathExpr, usize)> = BTreeMap::new();
    for text in log {
        let Ok(query) = parse_query(text) else { continue };
        let mut bindings: Vec<(String, (String, PathExpr))> = Vec::new();
        walk(&query.expr, &mut bindings, &mut counts);
    }
    let mut mined: Vec<MinedPredicate> = counts
        .into_iter()
        .map(|((collection, _), (path, hits))| MinedPredicate { collection, path, hits })
        .collect();
    mined.sort_by(|a, b| {
        b.hits
            .cmp(&a.hits)
            .then_with(|| a.collection.cmp(&b.collection))
            .then_with(|| a.path.to_string().cmp(&b.path.to_string()))
    });
    mined
}

/// The mined split paths for one collection, hottest first.
pub fn mined_split_paths(mined: &[MinedPredicate], collection: &str, top: usize) -> Vec<PathExpr> {
    mined
        .iter()
        .filter(|m| m.collection == collection)
        .take(top)
        .map(|m| m.path.clone())
        .collect()
}

/// Join a binding's root path with a relative step path into one
/// absolute path (`/Sale` + `Region` → `/Sale/Region`).
fn join(root: &PathExpr, rel: &PathExpr) -> PathExpr {
    let mut out = root.clone();
    out.absolute = true;
    out.steps.extend(rel.steps.iter().cloned());
    out
}

fn walk(
    expr: &Expr,
    bindings: &mut Vec<(String, (String, PathExpr))>,
    counts: &mut BTreeMap<(String, String), (PathExpr, usize)>,
) {
    match expr {
        Expr::Flwor { clauses, where_clause, order_by, ret } => {
            let depth = bindings.len();
            for clause in clauses {
                match clause {
                    Clause::For(b) | Clause::Let(b) => {
                        walk(&b.expr, bindings, counts);
                        if let Expr::Path(ps) = &b.expr {
                            if let PathStart::Collection(name) = &ps.start {
                                bindings
                                    .push((b.var.clone(), (name.clone(), ps.path.clone())));
                            }
                        }
                    }
                }
            }
            if let Some(w) = where_clause {
                walk(w, bindings, counts);
            }
            if let Some((k, _)) = order_by {
                walk(k, bindings, counts);
            }
            walk(ret, bindings, counts);
            bindings.truncate(depth);
        }
        Expr::Cmp { lhs, op, rhs } => {
            let hit = match (&**lhs, &**rhs) {
                (Expr::Path(ps), Expr::Str(_) | Expr::Num(_))
                | (Expr::Str(_) | Expr::Num(_), Expr::Path(ps))
                    if *op == CmpOp::Eq =>
                {
                    Some(ps)
                }
                _ => None,
            };
            if let Some(ps) = hit {
                if let PathStart::Var(var) = &ps.start {
                    if let Some((_, (collection, root))) =
                        bindings.iter().rev().find(|(v, _)| v == var)
                    {
                        let path = join(root, &ps.path);
                        let key = (collection.clone(), path.to_string());
                        counts.entry(key).or_insert_with(|| (path, 0)).1 += 1;
                    }
                }
            }
            walk(lhs, bindings, counts);
            walk(rhs, bindings, counts);
        }
        Expr::Arith { lhs, rhs, .. } => {
            walk(lhs, bindings, counts);
            walk(rhs, bindings, counts);
        }
        Expr::Neg(e) => walk(e, bindings, counts),
        Expr::If { cond, then, els } => {
            walk(cond, bindings, counts);
            walk(then, bindings, counts);
            walk(els, bindings, counts);
        }
        Expr::And(es) | Expr::Or(es) | Expr::Seq(es) => {
            for e in es {
                walk(e, bindings, counts);
            }
        }
        Expr::Call { args, .. } => {
            for a in args {
                walk(a, bindings, counts);
            }
        }
        Expr::Element { children, .. } => {
            for c in children {
                walk(c, bindings, counts);
            }
        }
        Expr::Path(_) | Expr::Str(_) | Expr::Num(_) | Expr::Text(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log() -> Vec<String> {
        vec![
            r#"sum(for $s in collection("facts")/Sale
                   where $s/Region = "NORTH" return number($s/Amount))"#
                .into(),
            r#"count(for $s in collection("facts")/Sale
                     where $s/Region = "SOUTH" return $s)"#
                .into(),
            r#"count(for $s in collection("facts")/Sale
                     where $s/Region = "EAST" and $s/Quarter = "Q4" return $s)"#
                .into(),
            r#"for $p in collection("dim_products")/Product
               where $p/Category = "AUDIO" return $p/Name"#
                .into(),
            "not a query at all ~~~".into(),
        ]
    }

    #[test]
    fn region_predicates_rank_first() {
        let mined = mine_predicates(&log());
        assert_eq!(mined[0].collection, "facts");
        assert_eq!(mined[0].path.to_string(), "/Sale/Region");
        assert_eq!(mined[0].hits, 3);
        // Quarter and Category appear once each
        assert!(mined.iter().any(|m| m.path.to_string() == "/Sale/Quarter" && m.hits == 1));
        assert!(mined
            .iter()
            .any(|m| m.collection == "dim_products" && m.path.to_string() == "/Product/Category"));
    }

    #[test]
    fn split_paths_filter_by_collection_and_cap() {
        let mined = mine_predicates(&log());
        let paths = mined_split_paths(&mined, "facts", 1);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].to_string(), "/Sale/Region");
        assert!(mined_split_paths(&mined, "absent", 5).is_empty());
    }

    #[test]
    fn unparsable_and_non_equality_predicates_are_ignored() {
        let log = vec![
            r#"for $i in collection("c")/Item where number($i/Code) < 50 return $i"#.into(),
            "((((".into(),
        ];
        // range predicates don't define value-based horizontal fragments
        assert!(mine_predicates(&log).is_empty());
    }

    #[test]
    fn deterministic_ranking() {
        let a = mine_predicates(&log());
        let b = mine_predicates(&log());
        assert_eq!(a, b);
    }
}
