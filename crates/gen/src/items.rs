//! `Item` document generation (the MD collection `C_items`).

use crate::text;
use partix_xml::{DocBuilder, Document};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The eight section names used by the horizontal experiments (the paper
/// fragments `C_items` by `Section` into 2, 4 or 8 fragments).
pub const SECTIONS: &[&str] = &[
    "CD", "DVD", "BOOK", "ELECTRONICS", "TOY", "GAME", "SPORT", "GARDEN",
];

/// Non-uniform weights (paper Sec. 5: *"a non-uniform document
/// distribution"*). Sum = 100.
pub const SECTION_WEIGHTS: &[u32] = &[30, 20, 15, 10, 8, 7, 6, 4];

/// Document-size profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemProfile {
    /// *ItemsSHor*: ≈2 KB documents, zero `PricesHistory` and
    /// `PictureList` occurrences.
    Small,
    /// *ItemsLHor*: ≈80 KB documents with pictures, price history, and
    /// many characteristics.
    Large,
}

/// Generate `count` item documents, named `item00000…`, deterministic in
/// `seed`. Each description contains `good` with a per-element probability
/// tuned so that roughly a third of *documents* match a `contains(…,
/// "good")` text search in both profiles.
pub fn gen_items(count: usize, profile: ItemProfile, seed: u64) -> Vec<Document> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|i| gen_item(i, profile, &mut rng)).collect()
}

/// Generate items until the collection reaches `target_bytes` of XML.
pub fn gen_items_to_size(
    target_bytes: usize,
    profile: ItemProfile,
    seed: u64,
) -> Vec<Document> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut docs = Vec::new();
    let mut total = 0usize;
    while total < target_bytes {
        let doc = gen_item(docs.len(), profile, &mut rng);
        total += doc.approx_size();
        docs.push(doc);
    }
    docs
}

fn gen_item(serial: usize, profile: ItemProfile, rng: &mut StdRng) -> Document {
    let section = pick_section(rng);
    let mut b = DocBuilder::new("Item")
        .named(&format!("item{serial:05}"))
        .leaf("Code", &format!("{serial}"))
        .leaf("Name", &text::product_name(rng, serial))
        .leaf("Description", &text::description(rng, 12, 0.04))
        .leaf("Section", section);
    if rng.gen_bool(0.5) {
        b = b.leaf("Release", &text::date(rng));
    }
    match profile {
        ItemProfile::Small => {
            // pad with characteristics to reach ≈2 KB; no pictures, no
            // price history (paper: "elements PriceHistory and ImagesList
            // with zero occurrences")
            for _ in 0..8 {
                b = b
                    .open("Characteristics")
                    .leaf("Description", &text::description(rng, 18, 0.04))
                    .close();
            }
        }
        ItemProfile::Large => {
            for _ in 0..40 {
                b = b
                    .open("Characteristics")
                    .leaf("Description", &text::description(rng, 60, 0.01))
                    .close();
            }
            b = b.open("PictureList");
            for p in 0..60 {
                b = b
                    .open("Picture")
                    .leaf("Name", &format!("picture {p}"))
                    .leaf("Description", &text::description(rng, 20, 0.0))
                    .leaf("ModificationDate", &text::date(rng))
                    .leaf("OriginalPath", &format!("/img/full/{serial}/{p}.jpg"))
                    .leaf("ThumbPath", &format!("/img/thumb/{serial}/{p}.jpg"))
                    .close();
            }
            b = b.close().open("PricesHistory");
            for _ in 0..40 {
                b = b
                    .open("PriceHistory")
                    .leaf("Price", &text::price(rng))
                    .leaf("ModificationDate", &text::date(rng))
                    .close();
            }
            b = b.close();
        }
    }
    b.build()
}

/// Draw a section from the weighted distribution.
pub fn pick_section(rng: &mut StdRng) -> &'static str {
    let total: u32 = SECTION_WEIGHTS.iter().sum();
    let mut roll = rng.gen_range(0..total);
    for (section, &weight) in SECTIONS.iter().zip(SECTION_WEIGHTS) {
        if roll < weight {
            return section;
        }
        roll -= weight;
    }
    SECTIONS[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use partix_path::PathExpr;
    use partix_schema::builtin::virtual_store;
    use partix_schema::validate;

    #[test]
    fn deterministic_generation() {
        let a = gen_items(5, ItemProfile::Small, 99);
        let b = gen_items(5, ItemProfile::Small, 99);
        assert_eq!(a, b);
        let c = gen_items(5, ItemProfile::Small, 100);
        assert_ne!(a, c);
    }

    #[test]
    fn small_items_near_two_kb() {
        let docs = gen_items(20, ItemProfile::Small, 1);
        let avg: usize = docs.iter().map(|d| d.approx_size()).sum::<usize>() / docs.len();
        assert!((1000..4000).contains(&avg), "avg {avg} bytes");
        // no pictures / price history, per the paper
        for d in &docs {
            assert!(d.root().child_element("PictureList").is_none());
            assert!(d.root().child_element("PricesHistory").is_none());
        }
    }

    #[test]
    fn large_items_near_eighty_kb() {
        let docs = gen_items(3, ItemProfile::Large, 1);
        let avg: usize = docs.iter().map(|d| d.approx_size()).sum::<usize>() / docs.len();
        assert!((40_000..160_000).contains(&avg), "avg {avg} bytes");
    }

    #[test]
    fn items_validate_against_schema() {
        let schema = virtual_store()
            .subschema(&PathExpr::parse("/Store/Items/Item").unwrap())
            .unwrap();
        for profile in [ItemProfile::Small, ItemProfile::Large] {
            for doc in gen_items(5, profile, 7) {
                validate(&schema, &doc).unwrap_or_else(|e| {
                    panic!("{profile:?}: {}", e[0]);
                });
            }
        }
    }

    #[test]
    fn section_distribution_is_skewed() {
        let docs = gen_items(2000, ItemProfile::Small, 3);
        let count = |s: &str| {
            docs.iter()
                .filter(|d| d.root().child_element("Section").unwrap().text() == s)
                .count()
        };
        let cd = count("CD");
        let garden = count("GARDEN");
        // 30% vs 4% nominal — allow wide tolerance
        assert!(cd > 450 && cd < 750, "CD: {cd}");
        assert!(garden > 20 && garden < 180, "GARDEN: {garden}");
        // every document has exactly one section from the list
        assert_eq!(
            SECTIONS.iter().map(|s| count(s)).sum::<usize>(),
            docs.len()
        );
    }

    #[test]
    fn document_level_good_selectivity_near_a_third() {
        for profile in [ItemProfile::Small, ItemProfile::Large] {
            let n = if profile == ItemProfile::Small { 600 } else { 60 };
            let docs = gen_items(n, profile, 8);
            let hits = docs
                .iter()
                .filter(|d| {
                    d.root()
                        .descendants_or_self()
                        .filter(|x| x.label() == "Description")
                        .any(|x| x.text().contains("good"))
                })
                .count();
            let frac = hits as f64 / n as f64;
            assert!(
                (0.15..0.60).contains(&frac),
                "{profile:?}: {frac:.2} of documents contain 'good'"
            );
        }
    }

    #[test]
    fn gen_to_size_reaches_target() {
        let docs = gen_items_to_size(100_000, ItemProfile::Small, 5);
        let total: usize = docs.iter().map(|d| d.approx_size()).sum();
        assert!(total >= 100_000);
        assert!(total < 110_000); // no wild overshoot
    }

    #[test]
    fn names_are_unique_and_ordered() {
        let docs = gen_items(10, ItemProfile::Small, 1);
        assert_eq!(docs[0].name.as_deref(), Some("item00000"));
        assert_eq!(docs[9].name.as_deref(), Some("item00009"));
    }
}
