//! Star-schema XML data-warehouse generation (the advisor's
//! aggregation-heavy workload).
//!
//! One fact collection (`Sale` documents) plus two dimension
//! collections (`Product`, `Outlet`), in the classic star arrangement:
//! every fact carries denormalized dimension keys (`Region`, `Quarter`,
//! `Product`, `Outlet`) as leaf values, which is exactly the shape
//! horizontal fragmentation by path=value predicates wants. Region and
//! quarter draws are skewed, so a fragmentation advisor has a real
//! trade-off to optimize (uniform keys would make every design equally
//! balanced).
//!
//! [`warehouse_queries`] is the matching query mix — aggregations
//! (`sum`/`count`) behind selective predicates — and
//! [`warehouse_workload`] expands it into a frequency-weighted query
//! log: predicates on `Region` dominate, so a frequency-mining
//! candidate generator should discover `/Sale/Region` as the
//! fragmentation dimension.

use crate::text;
use partix_xml::{DocBuilder, Document};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sales regions (the horizontal fragmentation dimension the query mix
/// favors). Weighted 40/30/20/10.
pub const REGIONS: &[&str] = &["NORTH", "SOUTH", "EAST", "WEST"];

/// Region draw weights; sum = 100.
pub const REGION_WEIGHTS: &[u32] = &[40, 30, 20, 10];

/// Fiscal quarters, drawn uniformly.
pub const QUARTERS: &[&str] = &["Q1", "Q2", "Q3", "Q4"];

/// Product categories for the `Product` dimension.
pub const CATEGORIES: &[&str] = &["AUDIO", "VIDEO", "PRINT", "OUTDOOR"];

/// Sizing knobs for one generated warehouse.
#[derive(Debug, Clone, Copy)]
pub struct WarehouseConfig {
    /// Fact documents (`Sale`).
    pub sales: usize,
    /// `Product` dimension rows.
    pub products: usize,
    /// `Outlet` dimension rows.
    pub outlets: usize,
}

impl Default for WarehouseConfig {
    fn default() -> WarehouseConfig {
        WarehouseConfig { sales: 400, products: 24, outlets: 8 }
    }
}

/// One generated star schema: a fact collection and its dimensions.
#[derive(Debug, Clone)]
pub struct Warehouse {
    pub sales: Vec<Document>,
    pub products: Vec<Document>,
    pub outlets: Vec<Document>,
}

/// Generate a warehouse, deterministic in `seed`.
pub fn gen_warehouse(config: WarehouseConfig, seed: u64) -> Warehouse {
    let mut rng = StdRng::seed_from_u64(seed);
    let outlets: Vec<Document> = (0..config.outlets)
        .map(|i| {
            DocBuilder::new("Outlet")
                .named(&format!("outlet{i:02}"))
                .leaf("Code", &format!("outlet{i:02}"))
                .leaf("Region", pick_region(&mut rng))
                .leaf("City", &text::product_name(&mut rng, i))
                .build()
        })
        .collect();
    let products: Vec<Document> = (0..config.products)
        .map(|i| {
            DocBuilder::new("Product")
                .named(&format!("product{i:03}"))
                .leaf("Code", &format!("product{i:03}"))
                .leaf("Name", &text::product_name(&mut rng, i))
                .leaf("Category", CATEGORIES[i % CATEGORIES.len()])
                .build()
        })
        .collect();
    let sales: Vec<Document> = (0..config.sales)
        .map(|i| {
            let outlet = rng.gen_range(0..config.outlets.max(1));
            let product = rng.gen_range(0..config.products.max(1));
            DocBuilder::new("Sale")
                .named(&format!("sale{i:06}"))
                .leaf("Id", &format!("{i}"))
                .leaf("Product", &format!("product{product:03}"))
                .leaf("Outlet", &format!("outlet{outlet:02}"))
                .leaf("Region", pick_region(&mut rng))
                .leaf("Quarter", QUARTERS[rng.gen_range(0..QUARTERS.len())])
                .leaf("Units", &format!("{}", rng.gen_range(1..20)))
                .leaf("Amount", &text::price(&mut rng))
                .build()
        })
        .collect();
    Warehouse { sales, products, outlets }
}

/// Draw a region from the skewed distribution.
pub fn pick_region(rng: &mut StdRng) -> &'static str {
    let total: u32 = REGION_WEIGHTS.iter().sum();
    let mut roll = rng.gen_range(0..total);
    for (region, &weight) in REGIONS.iter().zip(REGION_WEIGHTS) {
        if roll < weight {
            return region;
        }
        roll -= weight;
    }
    REGIONS[0]
}

/// The aggregation-heavy warehouse query set QW1–QW8 over fact
/// collection `facts` and the dimension collections.
pub fn warehouse_queries(
    facts: &str,
    products: &str,
    outlets: &str,
) -> Vec<(&'static str, String)> {
    vec![
        ("QW1", format!(
            r#"sum(for $s in collection("{facts}")/Sale
                   where $s/Region = "NORTH" return number($s/Amount))"#
        )),
        ("QW2", format!(
            r#"count(for $s in collection("{facts}")/Sale
                     where $s/Region = "SOUTH" return $s)"#
        )),
        ("QW3", format!(
            r#"sum(for $s in collection("{facts}")/Sale
                   where $s/Region = "EAST" and $s/Quarter = "Q4"
                   return number($s/Units))"#
        )),
        ("QW4", format!(
            r#"count(for $s in collection("{facts}")/Sale
                     where $s/Quarter = "Q1" return $s)"#
        )),
        ("QW5", format!(
            r#"sum(for $s in collection("{facts}")/Sale
                   where $s/Outlet = "outlet01" return number($s/Amount))"#
        )),
        ("QW6", format!(
            r#"count(for $s in collection("{facts}")/Sale
                     where number($s/Units) > 10 return $s)"#
        )),
        ("QW7", format!(
            r#"for $p in collection("{products}")/Product
               where $p/Category = "AUDIO" return $p/Name"#
        )),
        ("QW8", format!(
            r#"count(for $o in collection("{outlets}")/Outlet
                     where $o/Region = "NORTH" return $o)"#
        )),
    ]
}

/// Expand the query set into a frequency-weighted log: region-predicate
/// aggregations dominate (the mix a warehouse dashboard produces), so
/// `Region` is the predicate a frequency miner must surface.
pub fn warehouse_workload(
    facts: &str,
    products: &str,
    outlets: &str,
) -> Vec<String> {
    let queries = warehouse_queries(facts, products, outlets);
    // (index into queries, repetitions)
    const MIX: &[(usize, usize)] = &[
        (0, 8), // QW1: NORTH revenue — the hot dashboard tile
        (1, 6), // QW2: SOUTH count
        (2, 4), // QW3: EAST × Q4
        (3, 3), // QW4: quarter rollup
        (4, 2), // QW5: one outlet
        (5, 2), // QW6: units range
        (6, 1), // QW7: dimension lookup
        (7, 1), // QW8: dimension count
    ];
    let mut log = Vec::new();
    for &(idx, reps) in MIX {
        for _ in 0..reps {
            log.push(queries[idx].1.clone());
        }
    }
    log
}

#[cfg(test)]
mod tests {
    use super::*;
    use partix_query::parse_query;

    #[test]
    fn deterministic_generation() {
        let a = gen_warehouse(WarehouseConfig::default(), 7);
        let b = gen_warehouse(WarehouseConfig::default(), 7);
        assert_eq!(a.sales, b.sales);
        assert_eq!(a.products, b.products);
        assert_eq!(a.outlets, b.outlets);
        let c = gen_warehouse(WarehouseConfig::default(), 8);
        assert_ne!(a.sales, c.sales);
    }

    #[test]
    fn facts_carry_star_keys_and_skewed_regions() {
        let w = gen_warehouse(WarehouseConfig { sales: 1000, products: 10, outlets: 4 }, 3);
        let region = |doc: &Document| doc.root().child_element("Region").unwrap().text();
        for s in &w.sales {
            assert!(REGIONS.contains(&region(s).as_str()));
            assert!(s.root().child_element("Product").is_some());
            assert!(s.root().child_element("Outlet").is_some());
            assert!(s.root().child_element("Quarter").is_some());
        }
        let north = w.sales.iter().filter(|s| region(s) == "NORTH").count();
        let west = w.sales.iter().filter(|s| region(s) == "WEST").count();
        assert!(north > west, "region skew lost: NORTH {north} vs WEST {west}");
    }

    #[test]
    fn all_warehouse_queries_parse() {
        for (name, q) in warehouse_queries("facts", "dim_products", "dim_outlets") {
            parse_query(&q).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn workload_mix_is_region_heavy() {
        let log = warehouse_workload("f", "p", "o");
        assert_eq!(log.len(), 27);
        let region_hits = log.iter().filter(|q| q.contains("/Region")).count();
        assert!(region_hits * 2 > log.len(), "region predicates must dominate the mix");
    }
}
