//! SD `Store` document generation (the *StoreHyb* database).

use crate::items::{ItemProfile, SECTIONS};
use crate::text;
use partix_xml::{DocBuilder, Document, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Generate one `Store` document with `n_items` items (profile controls
/// their size), all sections, and a handful of employees. The paper's
/// StoreHyb documents range from 5 MB to 500 MB — size here scales
/// linearly with `n_items`.
pub fn gen_store(n_items: usize, profile: ItemProfile, seed: u64) -> Document {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = DocBuilder::new("Store").named("store").open("Sections");
    for (i, section) in SECTIONS.iter().enumerate() {
        b = b
            .open("Section")
            .leaf("Code", &format!("{i}"))
            .leaf("Name", section)
            .close();
    }
    b = b.close().open("Items");
    let items = crate::items::gen_items(n_items, profile, seed ^ 0x5eed);
    for item in &items {
        b = b.subtree(item);
    }
    b = b.close().open("Employees");
    for e in 0..8 {
        b = b
            .open("Employee")
            .leaf("Code", &format!("e{e}"))
            .leaf("Name", text::NAMES[e % text::NAMES.len()])
            .close();
    }
    let mut doc = b.close().build();
    // Item documents carry their own names; inside the store they are
    // plain subtrees — nothing further to fix up.
    let _ = &mut rng;
    debug_assert_eq!(doc.root().child_elements().count(), 3);
    doc.name = Some("store".to_owned());
    doc
}

/// Generate a store of roughly `target_bytes` serialized size.
pub fn gen_store_to_size(target_bytes: usize, profile: ItemProfile, seed: u64) -> Document {
    // estimate per-item size from a small sample
    let sample = crate::items::gen_items(8, profile, seed ^ 0x5eed);
    let per_item: usize =
        (sample.iter().map(Document::approx_size).sum::<usize>() / sample.len()).max(1);
    let n_items = (target_bytes / per_item).max(1);
    gen_store(n_items, profile, seed)
}

/// Ensure a store document's root has the canonical three children.
pub fn is_store_shaped(doc: &Document) -> bool {
    let labels: Vec<&str> = doc
        .get(NodeId::ROOT)
        .map(|r| r.child_elements().map(|c| c.label()).collect())
        .unwrap_or_default();
    labels == ["Sections", "Items", "Employees"]
}

#[cfg(test)]
mod tests {
    use super::*;
    use partix_path::{eval_path, PathExpr};
    use partix_schema::builtin::virtual_store;
    use partix_schema::validate;

    #[test]
    fn store_is_valid_and_shaped() {
        let doc = gen_store(10, ItemProfile::Small, 4);
        assert!(is_store_shaped(&doc));
        validate(&virtual_store(), &doc).unwrap_or_else(|e| panic!("{}", e[0]));
        let items = eval_path(&doc, &PathExpr::parse("/Store/Items/Item").unwrap());
        assert_eq!(items.len(), 10);
    }

    #[test]
    fn store_deterministic() {
        assert_eq!(
            gen_store(5, ItemProfile::Small, 9),
            gen_store(5, ItemProfile::Small, 9)
        );
    }

    #[test]
    fn store_to_size_close_to_target() {
        let doc = gen_store_to_size(200_000, ItemProfile::Small, 2);
        let size = doc.approx_size();
        assert!((120_000..320_000).contains(&size), "{size}");
    }
}
