//! # partix-gen
//!
//! Template-based synthetic XML generation — the role ToXgene \[5] plays
//! in the paper's experiments. All generation is deterministic given a
//! seed, so experiments are reproducible run-to-run.
//!
//! Generators for the paper's four databases:
//!
//! * [`items`] — `Item` documents of the virtual_store schema:
//!   * *ItemsSHor* profile: ≈2 KB documents with **zero** `PricesHistory`
//!     and `PictureList` occurrences (paper Sec. 5);
//!   * *ItemsLHor* profile: ≈80 KB documents with picture lists, price
//!     histories and long descriptions.
//! * [`store`] — a single large `Store` document (the SD repository
//!   behind *StoreHyb*), sized by its item count.
//! * [`articles`] — XBench-style `article` documents (prolog / body /
//!   epilog) for the *XBenchVer* vertical experiments.
//!
//! Value distributions mirror what the paper's queries need: item
//! sections are drawn from a non-uniform distribution over eight section
//! names (so horizontal fragments are skewed, as in the paper), and
//! description text contains the word `good` with a controlled
//! probability so `contains(…, "good")` text searches have stable
//! selectivity.

pub mod articles;
pub mod items;
pub mod store;
pub mod text;
pub mod warehouse;

pub use articles::{gen_articles, ArticleProfile};
pub use items::{gen_items, ItemProfile, SECTIONS, SECTION_WEIGHTS};
pub use store::gen_store;
pub use warehouse::{
    gen_warehouse, warehouse_queries, warehouse_workload, Warehouse, WarehouseConfig, REGIONS,
};
