//! XBench-style `article` generation (the *XBenchVer* database).

use crate::text;
use partix_xml::{DocBuilder, Document};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Controls article sizing. XBench's DC/MD documents are large; the
/// profile scales paragraph counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArticleProfile {
    /// Body sections per article.
    pub sections: usize,
    /// Paragraphs per section.
    pub paragraphs: usize,
    /// Words per paragraph.
    pub words_per_paragraph: usize,
}

impl ArticleProfile {
    /// ≈4 KB articles — quick tests.
    pub const SMALL: ArticleProfile =
        ArticleProfile { sections: 3, paragraphs: 4, words_per_paragraph: 20 };

    /// ≈100 KB articles — benchmark scale (stands in for the paper's
    /// 5–15 MB documents at laptop-friendly size; size ratios between
    /// databases are preserved by document count).
    pub const LARGE: ArticleProfile =
        ArticleProfile { sections: 10, paragraphs: 25, words_per_paragraph: 60 };
}

/// Genres cycled through articles — the vertical experiments' equality
/// predicates select on these.
pub const GENRES: &[&str] = &["science", "fiction", "history", "poetry", "essay"];

pub const COUNTRIES: &[&str] = &["BR", "US", "DE", "JP", "IN", "CA"];

/// Generate `count` articles, deterministic in `seed`. Titles embed the
/// word `XML` every third article so text searches have stable
/// selectivity; abstracts contain `good` with probability 0.3.
pub fn gen_articles(count: usize, profile: ArticleProfile, seed: u64) -> Vec<Document> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|i| gen_article(i, profile, &mut rng)).collect()
}

fn gen_article(serial: usize, profile: ArticleProfile, rng: &mut StdRng) -> Document {
    let title = if serial.is_multiple_of(3) {
        format!("On XML fragmentation vol. {serial}")
    } else {
        format!("{} studies vol. {serial}", text::ADJECTIVES[serial % text::ADJECTIVES.len()])
    };
    let mut b = DocBuilder::new("article")
        .named(&format!("article{serial:05}"))
        .attr("id", &format!("a{serial}"))
        .open("prolog")
        .leaf("title", &title)
        .open("authors");
    for a in 0..rng.gen_range(1..4usize) {
        b = b
            .open("author")
            .leaf("name", text::NAMES[(serial + a) % text::NAMES.len()])
            .close();
    }
    b = b
        .close()
        .leaf("genre", GENRES[serial % GENRES.len()])
        .leaf("pub_date", &text::date(rng))
        .open("keywords");
    for k in 0..3 {
        b = b.leaf("keyword", text::NOUNS[(serial + k) % text::NOUNS.len()]);
    }
    b = b
        .close()
        .close() // prolog
        .open("body")
        .leaf("abstract", &text::description(rng, 30, 0.3));
    let mut word_count = 30usize;
    for s in 0..profile.sections {
        b = b.open("section").leaf("heading", &format!("Section {s}"));
        for _ in 0..profile.paragraphs {
            b = b.leaf(
                "p",
                &text::description(rng, profile.words_per_paragraph, 0.05),
            );
            word_count += profile.words_per_paragraph;
        }
        b = b.close();
    }
    b = b.close().open("epilog").open("references");
    for r in 0..rng.gen_range(2..8usize) {
        b = b
            .open("reference")
            .leaf("ref_title", &format!("reference {r}"))
            .leaf("year", &format!("{}", 1985 + (serial + r) % 20))
            .close();
    }
    b.close()
        .leaf("country", COUNTRIES[serial % COUNTRIES.len()])
        .leaf("word_count", &word_count.to_string())
        .close()
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use partix_schema::builtin::xbench_article;
    use partix_schema::validate;

    #[test]
    fn articles_validate() {
        for doc in gen_articles(6, ArticleProfile::SMALL, 11) {
            validate(&xbench_article(), &doc).unwrap_or_else(|e| panic!("{}", e[0]));
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            gen_articles(3, ArticleProfile::SMALL, 5),
            gen_articles(3, ArticleProfile::SMALL, 5)
        );
    }

    #[test]
    fn profiles_scale_size() {
        let small = gen_articles(2, ArticleProfile::SMALL, 1);
        let large = gen_articles(2, ArticleProfile::LARGE, 1);
        let size = |docs: &[Document]| {
            docs.iter().map(Document::approx_size).sum::<usize>() / docs.len()
        };
        assert!(size(&small) > 1_000);
        assert!(size(&large) > 20 * size(&small), "{} vs {}", size(&large), size(&small));
    }

    #[test]
    fn title_xml_selectivity() {
        let docs = gen_articles(30, ArticleProfile::SMALL, 2);
        let hits = docs
            .iter()
            .filter(|d| {
                d.root()
                    .child_element("prolog")
                    .and_then(|p| p.child_element("title"))
                    .is_some_and(|t| t.text().contains("XML"))
            })
            .count();
        assert_eq!(hits, 10); // every third article
    }

    #[test]
    fn three_parts_present() {
        for doc in gen_articles(3, ArticleProfile::SMALL, 8) {
            for part in ["prolog", "body", "epilog"] {
                assert!(doc.root().child_element(part).is_some(), "{part}");
            }
        }
    }
}
