//! Word pools and text synthesis.

use rand::rngs::StdRng;
use rand::Rng;

/// Adjectives used in descriptions. `good` drives the paper's text-search
/// queries; its frequency is controlled separately.
pub const ADJECTIVES: &[&str] = &[
    "fine", "solid", "classic", "rare", "popular", "modern", "vintage", "sturdy",
    "compact", "bright", "quiet", "fast", "heavy", "light", "smooth",
];

pub const NOUNS: &[&str] = &[
    "record", "album", "film", "novel", "gadget", "toy", "controller", "speaker",
    "lens", "keyboard", "blender", "racket", "lamp", "chair", "poster",
];

pub const NAMES: &[&str] = &[
    "Aurora", "Baldur", "Caetano", "Dandara", "Elis", "Flora", "Gilberto",
    "Helena", "Iris", "Jorge", "Kleber", "Luiza", "Milton", "Nara", "Otto",
];

/// A short human-ish sentence of `words` words. With probability
/// `good_probability` the word `good` is spliced in — the needle the
/// paper's `contains` queries search for.
pub fn description(rng: &mut StdRng, words: usize, good_probability: f64) -> String {
    let mut out = String::with_capacity(words * 8);
    let good_at = if rng.gen_bool(good_probability.clamp(0.0, 1.0)) {
        Some(rng.gen_range(0..words.max(1)))
    } else {
        None
    };
    for i in 0..words {
        if i > 0 {
            out.push(' ');
        }
        if good_at == Some(i) {
            out.push_str("good");
        } else if i % 2 == 0 {
            out.push_str(ADJECTIVES[rng.gen_range(0..ADJECTIVES.len())]);
        } else {
            out.push_str(NOUNS[rng.gen_range(0..NOUNS.len())]);
        }
    }
    out
}

/// A product-style name like `classic record 0042`.
pub fn product_name(rng: &mut StdRng, serial: usize) -> String {
    format!(
        "{} {} {serial:04}",
        ADJECTIVES[rng.gen_range(0..ADJECTIVES.len())],
        NOUNS[rng.gen_range(0..NOUNS.len())]
    )
}

/// An ISO-ish date in 2000–2006 (the paper's era).
pub fn date(rng: &mut StdRng) -> String {
    format!(
        "200{}-{:02}-{:02}",
        rng.gen_range(0..7),
        rng.gen_range(1..13),
        rng.gen_range(1..29)
    )
}

/// A price with two decimals in `[1, 500)`.
pub fn price(rng: &mut StdRng) -> String {
    format!("{:.2}", rng.gen_range(1.0..500.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn description_is_deterministic() {
        let a = description(&mut StdRng::seed_from_u64(7), 10, 0.5);
        let b = description(&mut StdRng::seed_from_u64(7), 10, 0.5);
        assert_eq!(a, b);
        assert_eq!(a.split(' ').count(), 10);
    }

    #[test]
    fn good_probability_controls_frequency() {
        let mut rng = StdRng::seed_from_u64(42);
        let hits = (0..1000)
            .filter(|_| description(&mut rng, 8, 0.3).contains("good"))
            .count();
        assert!((200..400).contains(&hits), "got {hits}");
        let mut rng = StdRng::seed_from_u64(42);
        let none = (0..100)
            .filter(|_| description(&mut rng, 8, 0.0).contains("good"))
            .count();
        assert_eq!(none, 0);
    }

    #[test]
    fn dates_and_prices_shaped() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = date(&mut rng);
        assert_eq!(d.len(), 10);
        assert!(d.starts_with("200"));
        let p = price(&mut rng);
        assert!(p.parse::<f64>().unwrap() >= 1.0);
    }
}
