//! XML 1.0 parser, written from scratch.
//!
//! Supports the constructs used by the paper's repositories: elements,
//! attributes, character data, CDATA sections, comments, processing
//! instructions, the XML declaration, a `<!DOCTYPE ...>` prologue (skipped),
//! the five predefined entities and numeric character references.
//!
//! Namespaces are not resolved; prefixed names are kept verbatim as labels
//! (the paper's schemas use no namespaces).

use crate::error::{ParseError, ParseErrorKind, Pos};
use crate::tree::{Document, NodeId};

/// Parser configuration.
#[derive(Debug, Clone)]
pub struct ParseOptions {
    /// Drop text nodes consisting solely of whitespace between elements
    /// (indentation). Default `true` — the data model has no mixed content.
    pub trim_whitespace_text: bool,
}

impl Default for ParseOptions {
    fn default() -> ParseOptions {
        ParseOptions { trim_whitespace_text: true }
    }
}

/// Parse an XML document with default options.
pub fn parse(input: &str) -> Result<Document, ParseError> {
    parse_with(input, &ParseOptions::default())
}

/// Parse an XML document with explicit options.
pub fn parse_with(input: &str, options: &ParseOptions) -> Result<Document, ParseError> {
    let mut parser = Parser {
        input: input.as_bytes(),
        pos: 0,
        line: 1,
        line_start: 0,
        options,
    };
    parser.document()
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
    line: u32,
    line_start: usize,
    options: &'a ParseOptions,
}

impl<'a> Parser<'a> {
    fn position(&self) -> Pos {
        Pos {
            line: self.line,
            col: (self.pos - self.line_start) as u32 + 1,
            offset: self.pos,
        }
    }

    fn err(&self, kind: ParseErrorKind) -> ParseError {
        ParseError { pos: self.position(), kind }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.line_start = self.pos;
        }
        Some(b)
    }

    fn starts_with(&self, s: &[u8]) -> bool {
        self.input[self.pos..].starts_with(s)
    }

    fn eat(&mut self, s: &[u8]) -> bool {
        if self.starts_with(s) {
            for _ in 0..s.len() {
                self.bump();
            }
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &[u8], what: &'static str) -> Result<(), ParseError> {
        if self.eat(s) {
            Ok(())
        } else {
            match self.peek() {
                Some(b) => Err(self.err(ParseErrorKind::Unexpected {
                    found: b as char,
                    expected: what,
                })),
                None => Err(self.err(ParseErrorKind::UnexpectedEof(what))),
            }
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }

    /// document ::= prolog element Misc*
    fn document(&mut self) -> Result<Document, ParseError> {
        self.prolog()?;
        if self.peek() != Some(b'<') {
            return Err(self.err(ParseErrorKind::BadDocumentStructure(
                "expected root element",
            )));
        }
        let mut doc = self.root_element()?;
        // trailing Misc
        loop {
            self.skip_ws();
            if self.pos >= self.input.len() {
                break;
            }
            if self.starts_with(b"<!--") {
                self.comment()?;
            } else if self.starts_with(b"<?") {
                self.processing_instruction()?;
            } else {
                return Err(self.err(ParseErrorKind::BadDocumentStructure(
                    "content after root element",
                )));
            }
        }
        doc.name = None;
        Ok(doc)
    }

    fn prolog(&mut self) -> Result<(), ParseError> {
        loop {
            self.skip_ws();
            if self.starts_with(b"<?") {
                self.processing_instruction()?;
            } else if self.starts_with(b"<!--") {
                self.comment()?;
            } else if self.starts_with(b"<!DOCTYPE") {
                self.doctype()?;
            } else {
                return Ok(());
            }
        }
    }

    fn processing_instruction(&mut self) -> Result<(), ParseError> {
        self.expect(b"<?", "processing instruction")?;
        loop {
            if self.eat(b"?>") {
                return Ok(());
            }
            if self.bump().is_none() {
                return Err(self.err(ParseErrorKind::UnexpectedEof("processing instruction")));
            }
        }
    }

    fn comment(&mut self) -> Result<(), ParseError> {
        self.expect(b"<!--", "comment")?;
        loop {
            if self.eat(b"-->") {
                return Ok(());
            }
            if self.bump().is_none() {
                return Err(self.err(ParseErrorKind::UnexpectedEof("comment")));
            }
        }
    }

    /// Skip `<!DOCTYPE ...>` including a bracketed internal subset.
    fn doctype(&mut self) -> Result<(), ParseError> {
        self.expect(b"<!DOCTYPE", "doctype")?;
        let mut depth = 0i32;
        loop {
            match self.bump() {
                Some(b'[') => depth += 1,
                Some(b']') => depth -= 1,
                Some(b'>') if depth <= 0 => return Ok(()),
                Some(_) => {}
                None => return Err(self.err(ParseErrorKind::UnexpectedEof("doctype"))),
            }
        }
    }

    fn name(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        match self.peek() {
            Some(b) if is_name_start(b) => {
                self.bump();
            }
            Some(b) => {
                return Err(self.err(ParseErrorKind::Unexpected {
                    found: b as char,
                    expected: "name",
                }))
            }
            None => return Err(self.err(ParseErrorKind::UnexpectedEof("name"))),
        }
        while matches!(self.peek(), Some(b) if is_name_char(b)) {
            self.bump();
        }
        // Names are ASCII-or-UTF8 byte runs; keep multi-byte sequences.
        while matches!(self.peek(), Some(b) if b >= 0x80) {
            self.bump();
            while matches!(self.peek(), Some(b) if is_name_char(b) || b >= 0x80) {
                self.bump();
            }
        }
        let s = std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| self.err(ParseErrorKind::BadName("<invalid utf-8>".into())))?;
        Ok(s.to_owned())
    }

    fn root_element(&mut self) -> Result<Document, ParseError> {
        self.expect(b"<", "element")?;
        let label = self.name()?;
        let mut doc = Document::new(&label);
        self.element_rest(&mut doc, NodeId::ROOT, &label)?;
        Ok(doc)
    }

    /// Parse attributes + content of an element whose `<name` has been
    /// consumed and whose node already exists.
    fn element_rest(
        &mut self,
        doc: &mut Document,
        node: NodeId,
        label: &str,
    ) -> Result<(), ParseError> {
        // attributes
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.expect(b"/>", "self-closing tag")?;
                    return Ok(());
                }
                Some(b'>') => {
                    self.bump();
                    break;
                }
                Some(b) if is_name_start(b) => {
                    let attr_name = self.name()?;
                    if doc
                        .get(node)
                        .expect("node exists")
                        .attributes()
                        .any(|a| a.label() == attr_name)
                    {
                        return Err(self.err(ParseErrorKind::DuplicateAttribute(attr_name)));
                    }
                    self.skip_ws();
                    self.expect(b"=", "= after attribute name")?;
                    self.skip_ws();
                    let value = self.attribute_value()?;
                    doc.add_attribute(node, &attr_name, &value);
                }
                Some(b) => {
                    return Err(self.err(ParseErrorKind::Unexpected {
                        found: b as char,
                        expected: "attribute, '>' or '/>'",
                    }))
                }
                None => return Err(self.err(ParseErrorKind::UnexpectedEof("start tag"))),
            }
        }
        // content
        let mut text = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err(ParseErrorKind::UnexpectedEof("element content"))),
                Some(b'<') => {
                    if self.starts_with(b"</") {
                        self.flush_text(doc, node, &mut text);
                        self.expect(b"</", "end tag")?;
                        let close = self.name()?;
                        if close != label {
                            return Err(self.err(ParseErrorKind::MismatchedTag {
                                open: label.to_owned(),
                                close,
                            }));
                        }
                        self.skip_ws();
                        self.expect(b">", "'>' of end tag")?;
                        return Ok(());
                    } else if self.starts_with(b"<!--") {
                        self.comment()?;
                    } else if self.starts_with(b"<![CDATA[") {
                        self.cdata(&mut text)?;
                    } else if self.starts_with(b"<?") {
                        self.processing_instruction()?;
                    } else {
                        self.flush_text(doc, node, &mut text);
                        self.expect(b"<", "start tag")?;
                        let child_label = self.name()?;
                        let child = doc.add_element(node, &child_label);
                        self.element_rest(doc, child, &child_label)?;
                    }
                }
                Some(b'&') => {
                    self.char_ref(&mut text)?;
                }
                Some(_) => {
                    let b = self.bump().expect("peeked");
                    // Raw bytes are valid UTF-8 (input is &str); push as-is.
                    text.push_str(
                        std::str::from_utf8(std::slice::from_ref(&b)).unwrap_or("\u{fffd}"),
                    );
                    if b >= 0x80 {
                        // continuation bytes of a multi-byte char
                        text.pop();
                        let start = self.pos - 1;
                        while matches!(self.peek(), Some(nb) if nb & 0xC0 == 0x80) {
                            self.bump();
                        }
                        text.push_str(
                            std::str::from_utf8(&self.input[start..self.pos])
                                .unwrap_or("\u{fffd}"),
                        );
                    }
                }
            }
        }
    }

    fn flush_text(&mut self, doc: &mut Document, node: NodeId, text: &mut String) {
        let keep = if self.options.trim_whitespace_text {
            !text.trim().is_empty()
        } else {
            !text.is_empty()
        };
        if keep {
            let content: &str = if self.options.trim_whitespace_text {
                text.trim()
            } else {
                text.as_str()
            };
            doc.add_text(node, content);
        }
        text.clear();
    }

    fn cdata(&mut self, text: &mut String) -> Result<(), ParseError> {
        self.expect(b"<![CDATA[", "CDATA section")?;
        let start = self.pos;
        loop {
            if self.starts_with(b"]]>") {
                text.push_str(
                    std::str::from_utf8(&self.input[start..self.pos]).unwrap_or("\u{fffd}"),
                );
                self.eat(b"]]>");
                return Ok(());
            }
            if self.bump().is_none() {
                return Err(self.err(ParseErrorKind::UnexpectedEof("CDATA section")));
            }
        }
    }

    fn attribute_value(&mut self) -> Result<String, ParseError> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => {
                self.bump();
                q
            }
            Some(b) => {
                return Err(self.err(ParseErrorKind::Unexpected {
                    found: b as char,
                    expected: "quoted attribute value",
                }))
            }
            None => return Err(self.err(ParseErrorKind::UnexpectedEof("attribute value"))),
        };
        let mut value = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err(ParseErrorKind::UnexpectedEof("attribute value"))),
                Some(b) if b == quote => {
                    self.bump();
                    return Ok(value);
                }
                Some(b'&') => self.char_ref(&mut value)?,
                Some(b'<') => {
                    return Err(self.err(ParseErrorKind::Unexpected {
                        found: '<',
                        expected: "attribute value content",
                    }))
                }
                Some(b) => {
                    self.bump();
                    if b < 0x80 {
                        value.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        while matches!(self.peek(), Some(nb) if nb & 0xC0 == 0x80) {
                            self.bump();
                        }
                        value.push_str(
                            std::str::from_utf8(&self.input[start..self.pos])
                                .unwrap_or("\u{fffd}"),
                        );
                    }
                }
            }
        }
    }

    /// Consume `&...;` and append the referenced character(s) to `out`.
    fn char_ref(&mut self, out: &mut String) -> Result<(), ParseError> {
        self.expect(b"&", "entity reference")?;
        let start = self.pos;
        loop {
            match self.bump() {
                Some(b';') => break,
                Some(_) if self.pos - start <= 12 => {}
                _ => return Err(self.err(ParseErrorKind::UnknownEntity("<unterminated>".into()))),
            }
        }
        let name = std::str::from_utf8(&self.input[start..self.pos - 1]).unwrap_or("");
        match name {
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "amp" => out.push('&'),
            "apos" => out.push('\''),
            "quot" => out.push('"'),
            _ if name.starts_with('#') => {
                let digits = &name[1..];
                let code = if let Some(hex) = digits.strip_prefix('x').or(digits.strip_prefix('X'))
                {
                    u32::from_str_radix(hex, 16)
                } else {
                    digits.parse()
                }
                .map_err(|_| self.err(ParseErrorKind::BadCharRef(digits.to_owned())))?;
                let ch = char::from_u32(code)
                    .ok_or_else(|| self.err(ParseErrorKind::BadCharRef(digits.to_owned())))?;
                out.push(ch);
            }
            _ => return Err(self.err(ParseErrorKind::UnknownEntity(name.to_owned()))),
        }
        Ok(())
    }
}

fn is_name_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b == b':' || b >= 0x80
}

fn is_name_char(b: u8) -> bool {
    is_name_start(b) || b.is_ascii_digit() || b == b'-' || b == b'.'
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ParseErrorKind;

    #[test]
    fn minimal_document() {
        let doc = parse("<a/>").unwrap();
        assert_eq!(doc.root_label(), "a");
        assert_eq!(doc.len(), 1);
    }

    #[test]
    fn nested_elements_and_text() {
        let doc = parse("<Store><Name>Acme</Name><Open>yes</Open></Store>").unwrap();
        assert_eq!(doc.root().child_element("Name").unwrap().text(), "Acme");
        assert_eq!(doc.root().child_element("Open").unwrap().text(), "yes");
    }

    #[test]
    fn attributes_both_quote_styles() {
        let doc = parse(r#"<a x="1" y='two'/>"#).unwrap();
        assert_eq!(doc.root().attribute("x"), Some("1"));
        assert_eq!(doc.root().attribute("y"), Some("two"));
    }

    #[test]
    fn whitespace_between_elements_is_dropped() {
        let doc = parse("<a>\n  <b>hi</b>\n  <c>ho</c>\n</a>").unwrap();
        let kids: Vec<_> = doc.root().children().collect();
        assert_eq!(kids.len(), 2);
    }

    #[test]
    fn whitespace_preserved_when_requested() {
        let opts = ParseOptions { trim_whitespace_text: false };
        let doc = parse_with("<a> <b/> </a>", &opts).unwrap();
        assert_eq!(doc.root().children().count(), 3);
    }

    #[test]
    fn predefined_entities() {
        let doc = parse("<a>&lt;tag&gt; &amp; &quot;q&quot; &apos;a&apos;</a>").unwrap();
        assert_eq!(doc.root().text(), "<tag> & \"q\" 'a'");
    }

    #[test]
    fn numeric_char_refs() {
        let doc = parse("<a>&#65;&#x42;&#x1F600;</a>").unwrap();
        assert_eq!(doc.root().text(), "AB😀");
    }

    #[test]
    fn cdata_section() {
        let doc = parse("<a><![CDATA[x < y && z]]></a>").unwrap();
        assert_eq!(doc.root().text(), "x < y && z");
    }

    #[test]
    fn comments_and_pis_are_skipped() {
        let doc = parse(
            "<?xml version=\"1.0\"?><!-- c --><a><!-- inner --><b/><?pi data?></a><!-- t -->",
        )
        .unwrap();
        assert_eq!(doc.root().child_elements().count(), 1);
    }

    #[test]
    fn doctype_is_skipped() {
        let doc = parse("<!DOCTYPE store [<!ELEMENT a (b)>]><a><b/></a>").unwrap();
        assert_eq!(doc.root_label(), "a");
    }

    #[test]
    fn utf8_text_and_names() {
        let doc = parse("<Seção>maçã</Seção>").unwrap();
        assert_eq!(doc.root_label(), "Seção");
        assert_eq!(doc.root().text(), "maçã");
    }

    #[test]
    fn mismatched_tag_is_error() {
        let err = parse("<a><b></a></b>").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::MismatchedTag { .. }));
    }

    #[test]
    fn duplicate_attribute_is_error() {
        let err = parse(r#"<a x="1" x="2"/>"#).unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::DuplicateAttribute(_)));
    }

    #[test]
    fn trailing_content_is_error() {
        let err = parse("<a/><b/>").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::BadDocumentStructure(_)));
    }

    #[test]
    fn unknown_entity_is_error() {
        let err = parse("<a>&nope;</a>").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::UnknownEntity(_)));
    }

    #[test]
    fn unterminated_element_is_error() {
        let err = parse("<a><b>").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::UnexpectedEof(_)));
    }

    #[test]
    fn error_position_reported() {
        let err = parse("<a>\n<b></c>\n</a>").unwrap_err();
        assert_eq!(err.pos.line, 2);
    }

    #[test]
    fn adjacent_text_and_cdata_merge() {
        let doc = parse("<a>one<![CDATA[two]]>three</a>").unwrap();
        let kids: Vec<_> = doc.root().children().collect();
        assert_eq!(kids.len(), 1);
        assert_eq!(doc.root().text(), "onetwothree");
    }
}
