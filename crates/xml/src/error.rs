//! Error types for XML parsing and manipulation.

use std::fmt;

/// Position of an error in the input text (1-based line / column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    pub line: u32,
    pub col: u32,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// An error produced while parsing XML text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub pos: Pos,
    pub kind: ParseErrorKind,
}

/// The specific failure encountered by the parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// Input ended while a construct was still open.
    UnexpectedEof(&'static str),
    /// A character that is not legal at this point.
    Unexpected { found: char, expected: &'static str },
    /// End tag does not match the open element.
    MismatchedTag { open: String, close: String },
    /// `&name;` with an unknown entity name.
    UnknownEntity(String),
    /// Invalid numeric character reference.
    BadCharRef(String),
    /// Document has no root element, or trailing content after the root.
    BadDocumentStructure(&'static str),
    /// Duplicate attribute on one element.
    DuplicateAttribute(String),
    /// A name (element/attribute) is empty or starts with an illegal char.
    BadName(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML parse error at {}: ", self.pos)?;
        match &self.kind {
            ParseErrorKind::UnexpectedEof(what) => {
                write!(f, "unexpected end of input while parsing {what}")
            }
            ParseErrorKind::Unexpected { found, expected } => {
                write!(f, "unexpected character {found:?}, expected {expected}")
            }
            ParseErrorKind::MismatchedTag { open, close } => {
                write!(f, "mismatched end tag </{close}> for element <{open}>")
            }
            ParseErrorKind::UnknownEntity(name) => write!(f, "unknown entity &{name};"),
            ParseErrorKind::BadCharRef(s) => write!(f, "invalid character reference &#{s};"),
            ParseErrorKind::BadDocumentStructure(what) => write!(f, "{what}"),
            ParseErrorKind::DuplicateAttribute(name) => {
                write!(f, "duplicate attribute {name:?}")
            }
            ParseErrorKind::BadName(name) => write!(f, "invalid name {name:?}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Errors from non-parsing XML operations (tree surgery, binary decoding).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlError {
    /// A [`crate::NodeId`] does not belong to the document it was used with.
    InvalidNodeId,
    /// Attempted an operation only valid on a specific node kind.
    WrongNodeKind { expected: &'static str },
    /// Binary page decoding failed.
    CorruptBinary(String),
    /// The operation would create a document with zero or multiple roots.
    NotWellFormed(&'static str),
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::InvalidNodeId => write!(f, "node id does not belong to this document"),
            XmlError::WrongNodeKind { expected } => {
                write!(f, "operation requires a {expected} node")
            }
            XmlError::CorruptBinary(msg) => write!(f, "corrupt binary document: {msg}"),
            XmlError::NotWellFormed(msg) => write!(f, "document not well-formed: {msg}"),
        }
    }
}

impl std::error::Error for XmlError {}
