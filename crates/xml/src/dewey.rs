//! Dewey ordinal node identifiers.
//!
//! A Dewey id is the sequence of 1-based child ordinals on the path from
//! the document root to a node; the root itself has the empty id. Dewey ids
//! are *stable under fragmentation*: a vertical fragment records the Dewey
//! id of its projected root in the source document, and the reconstruction
//! join re-nests fragments by prefix containment (paper Sec. 3.3).

use std::cmp::Ordering;
use std::fmt;

/// A Dewey ordinal identifier, e.g. `1.3.2`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Dewey {
    components: Vec<u32>,
}

impl Dewey {
    /// The root identifier (empty component list).
    pub fn root() -> Dewey {
        Dewey { components: Vec::new() }
    }

    pub fn from_vec(components: Vec<u32>) -> Dewey {
        Dewey { components }
    }

    pub fn components(&self) -> &[u32] {
        &self.components
    }

    pub fn depth(&self) -> usize {
        self.components.len()
    }

    pub fn is_root(&self) -> bool {
        self.components.is_empty()
    }

    /// The identifier of this node's parent; `None` for the root.
    pub fn parent(&self) -> Option<Dewey> {
        if self.components.is_empty() {
            None
        } else {
            Some(Dewey { components: self.components[..self.components.len() - 1].to_vec() })
        }
    }

    /// Extend with one more child ordinal.
    pub fn child(&self, ordinal: u32) -> Dewey {
        let mut components = self.components.clone();
        components.push(ordinal);
        Dewey { components }
    }

    /// True iff `self` is an ancestor of `other` (proper prefix).
    pub fn is_ancestor_of(&self, other: &Dewey) -> bool {
        self.components.len() < other.components.len()
            && other.components[..self.components.len()] == self.components[..]
    }

    /// True iff `self` is `other` or an ancestor of it.
    pub fn is_prefix_of(&self, other: &Dewey) -> bool {
        self.components.len() <= other.components.len()
            && other.components[..self.components.len()] == self.components[..]
    }

    /// The suffix of `other` relative to `self`, if `self` is a prefix.
    ///
    /// `relative(1.2, 1.2.3.1) == Some(3.1)` — used to re-address nodes
    /// when a vertical fragment is joined back into its source position.
    pub fn relative(&self, other: &Dewey) -> Option<Dewey> {
        if self.is_prefix_of(other) {
            Some(Dewey { components: other.components[self.components.len()..].to_vec() })
        } else {
            None
        }
    }

    /// Concatenate: the absolute id of `suffix` interpreted under `self`.
    pub fn join(&self, suffix: &Dewey) -> Dewey {
        let mut components = self.components.clone();
        components.extend_from_slice(&suffix.components);
        Dewey { components }
    }

    /// Parse from dotted form (`"1.3.2"`, or `""` for the root).
    pub fn parse(s: &str) -> Option<Dewey> {
        if s.is_empty() {
            return Some(Dewey::root());
        }
        let mut components = Vec::new();
        for part in s.split('.') {
            let n: u32 = part.parse().ok()?;
            if n == 0 {
                return None;
            }
            components.push(n);
        }
        Some(Dewey { components })
    }
}

impl fmt::Display for Dewey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.components.iter().enumerate() {
            if i > 0 {
                f.write_str(".")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

impl PartialOrd for Dewey {
    fn partial_cmp(&self, other: &Dewey) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Dewey {
    /// Document order: lexicographic on components, ancestors before
    /// descendants.
    fn cmp(&self, other: &Dewey) -> Ordering {
        self.components.cmp(&other.components)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_parse_roundtrip() {
        for s in ["", "1", "1.3.2", "42.1"] {
            let d = Dewey::parse(s).unwrap();
            assert_eq!(d.to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_zero_and_junk() {
        assert_eq!(Dewey::parse("0"), None);
        assert_eq!(Dewey::parse("1.0"), None);
        assert_eq!(Dewey::parse("a.b"), None);
        assert_eq!(Dewey::parse("1..2"), None);
    }

    #[test]
    fn ancestor_relations() {
        let root = Dewey::root();
        let a = Dewey::parse("1.2").unwrap();
        let b = Dewey::parse("1.2.3").unwrap();
        let c = Dewey::parse("1.3").unwrap();
        assert!(root.is_ancestor_of(&a));
        assert!(a.is_ancestor_of(&b));
        assert!(!a.is_ancestor_of(&a));
        assert!(a.is_prefix_of(&a));
        assert!(!a.is_ancestor_of(&c));
        assert!(!b.is_ancestor_of(&a));
    }

    #[test]
    fn relative_and_join_are_inverse() {
        let base = Dewey::parse("1.2").unwrap();
        let abs = Dewey::parse("1.2.3.1").unwrap();
        let rel = base.relative(&abs).unwrap();
        assert_eq!(rel.to_string(), "3.1");
        assert_eq!(base.join(&rel), abs);
        assert_eq!(base.relative(&Dewey::parse("2.1").unwrap()), None);
    }

    #[test]
    fn document_order() {
        let mut ids: Vec<Dewey> = ["1.2", "1", "1.10", "1.2.1", "2", ""]
            .iter()
            .map(|s| Dewey::parse(s).unwrap())
            .collect();
        ids.sort();
        let strs: Vec<String> = ids.iter().map(|d| d.to_string()).collect();
        assert_eq!(strs, ["", "1", "1.2", "1.2.1", "1.10", "2"]);
    }

    #[test]
    fn parent_child() {
        let d = Dewey::parse("1.2").unwrap();
        assert_eq!(d.child(5).to_string(), "1.2.5");
        assert_eq!(d.parent().unwrap().to_string(), "1");
        assert_eq!(Dewey::root().parent(), None);
    }
}
