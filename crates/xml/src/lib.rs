//! # partix-xml
//!
//! The XML data model underlying PartiX, following the formalization in
//! Section 3.1 of the paper: an XML document is a data tree
//! `∆ := ⟨t, ℓ, Ψ⟩` where `t` is a finite ordered tree, `ℓ` labels nodes
//! with element or attribute names, and `Ψ` maps leaf nodes to data values.
//!
//! This crate provides:
//!
//! * [`Document`] — an arena-based ordered labelled tree with O(1) child /
//!   sibling navigation and cheap subtree copies.
//! * [`Dewey`] — Dewey ordinal node identifiers, stable across
//!   fragmentation, used by the reconstruction join (paper Sec. 3.3:
//!   *"We keep an ID in each vertical fragment for reconstruction
//!   purposes"*).
//! * [`parse`] / [`Serializer`] — an
//!   XML 1.0 parser and serializer written from scratch (no external XML
//!   dependencies), round-trip tested.
//! * A compact binary page format ([`binary`]) used by the storage engine.
//!
//! Mixed content is intentionally not modelled, mirroring the paper's
//! simplification: a node mapped into the value domain `D` has no siblings.
//! Adjacent character data is merged into a single text node per parent.

pub mod binary;
pub mod builder;
pub mod dewey;
pub mod error;
pub mod parser;
pub mod serializer;
pub mod tree;

pub use binary::PageView;
pub use builder::DocBuilder;
pub use dewey::Dewey;
pub use error::{ParseError, XmlError};
pub use parser::{parse, parse_with, ParseOptions};
pub use serializer::{to_string, to_string_pretty, Serializer};
pub use tree::{Document, NodeId, NodeKind, NodeRef, Origin, TreeAccess};
