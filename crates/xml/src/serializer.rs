//! XML serialization: compact and pretty-printed writers.

use crate::tree::{Document, NodeKind, NodeRef};
use std::fmt::Write as _;

/// Serialize `doc` without insignificant whitespace.
pub fn to_string(doc: &Document) -> String {
    let mut out = String::with_capacity(doc.approx_size());
    Serializer::compact().write_node(&mut out, doc.root());
    out
}

/// Serialize `doc` with two-space indentation.
pub fn to_string_pretty(doc: &Document) -> String {
    let mut out = String::with_capacity(doc.approx_size() * 2);
    Serializer::pretty().write_node(&mut out, doc.root());
    out
}

/// Configurable XML writer.
#[derive(Debug, Clone)]
pub struct Serializer {
    indent: Option<usize>,
    /// Emit `<?xml version="1.0"?>` first.
    pub declaration: bool,
}

impl Serializer {
    pub fn compact() -> Serializer {
        Serializer { indent: None, declaration: false }
    }

    pub fn pretty() -> Serializer {
        Serializer { indent: Some(2), declaration: false }
    }

    pub fn with_declaration(mut self) -> Serializer {
        self.declaration = true;
        self
    }

    /// Serialize a whole document to a string.
    pub fn serialize(&self, doc: &Document) -> String {
        let mut out = String::with_capacity(doc.approx_size());
        if self.declaration {
            out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
            if self.indent.is_some() {
                out.push('\n');
            }
        }
        self.write_node(&mut out, doc.root());
        out
    }

    fn write_node(&self, out: &mut String, node: NodeRef<'_>) {
        self.write_element(out, node, 0);
    }

    fn write_element(&self, out: &mut String, node: NodeRef<'_>, depth: usize) {
        debug_assert_eq!(node.kind(), NodeKind::Element);
        self.write_indent(out, depth);
        out.push('<');
        out.push_str(node.label());
        for attr in node.attributes() {
            out.push(' ');
            out.push_str(attr.label());
            out.push_str("=\"");
            escape_into(out, attr.value().unwrap_or(""), true);
            out.push('"');
        }
        let content: Vec<NodeRef<'_>> = node
            .children()
            .filter(|c| c.kind() != NodeKind::Attribute)
            .collect();
        if content.is_empty() {
            out.push_str("/>");
            self.write_newline(out);
            return;
        }
        out.push('>');
        // Text-only content stays on one line even in pretty mode, so
        // round-tripping never injects whitespace into values.
        let text_only = content.iter().all(|c| c.kind() == NodeKind::Text);
        if !text_only {
            self.write_newline(out);
        }
        for child in &content {
            match child.kind() {
                NodeKind::Text => {
                    if !text_only {
                        self.write_indent(out, depth + 1);
                    }
                    escape_into(out, child.value().unwrap_or(""), false);
                    if !text_only {
                        self.write_newline(out);
                    }
                }
                NodeKind::Element => self.write_element(out, *child, depth + 1),
                NodeKind::Attribute => unreachable!("filtered above"),
            }
        }
        if !text_only {
            self.write_indent(out, depth);
        }
        out.push_str("</");
        out.push_str(node.label());
        out.push('>');
        self.write_newline(out);
    }

    fn write_indent(&self, out: &mut String, depth: usize) {
        if let Some(width) = self.indent {
            for _ in 0..depth * width {
                out.push(' ');
            }
        }
    }

    fn write_newline(&self, out: &mut String) {
        if self.indent.is_some() {
            out.push('\n');
        }
    }
}

/// Escape XML special characters into `out`. Attribute context also escapes
/// quotes and newlines (to survive attribute-value normalization).
pub fn escape_into(out: &mut String, s: &str, attr: bool) {
    for ch in s.chars() {
        match ch {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' if attr => out.push_str("&quot;"),
            '\n' | '\t' | '\r' if attr => {
                let _ = write!(out, "&#{};", ch as u32);
            }
            _ => out.push(ch),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::tree::{Document, NodeId};

    #[test]
    fn compact_roundtrip() {
        let src = r#"<Store name="ACME &amp; co"><Item><Name>a&lt;b</Name></Item><Item/></Store>"#;
        let doc = parse(src).unwrap();
        let out = to_string(&doc);
        assert_eq!(out, src);
    }

    #[test]
    fn pretty_then_parse_is_identity() {
        let mut doc = Document::new("Store");
        let item = doc.add_element(NodeId::ROOT, "Item");
        doc.add_attribute(item, "id", "1");
        let name = doc.add_element(item, "Name");
        doc.add_text(name, "A CD with spaces  inside");
        let pretty = to_string_pretty(&doc);
        let reparsed = parse(&pretty).unwrap();
        assert_eq!(doc, reparsed);
    }

    #[test]
    fn declaration_emitted() {
        let doc = Document::new("a");
        let s = Serializer::compact().with_declaration().serialize(&doc);
        assert!(s.starts_with("<?xml"));
        assert!(s.ends_with("<a/>"));
    }

    #[test]
    fn attribute_escaping() {
        let mut doc = Document::new("a");
        doc.add_attribute(NodeId::ROOT, "v", "say \"hi\" <now>\n& done");
        let s = to_string(&doc);
        let reparsed = parse(&s).unwrap();
        assert_eq!(
            reparsed.root().attribute("v"),
            Some("say \"hi\" <now>\n& done")
        );
    }

    #[test]
    fn empty_element_short_form() {
        let doc = parse("<a><b></b></a>").unwrap();
        assert_eq!(to_string(&doc), "<a><b/></a>");
    }
}
