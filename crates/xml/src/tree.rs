//! Arena-based ordered labelled tree — the data tree `∆ := ⟨t, ℓ, Ψ⟩`.
//!
//! Nodes live in a chunked arena and are addressed by [`NodeId`] (a `u32`
//! index), giving compact memory layout and cheap traversal:
//!
//! * **Chunked allocation** — nodes are stored in fixed-size chunks
//!   (1024 nodes each), so growing a large document never relocates
//!   existing nodes and never pays a multi-megabyte `Vec` realloc copy
//!   while parsing the 5 MB document class.
//! * **Niche-packed links** — the five navigation links of a node are
//!   [`OptId`]s: a raw `u32` whose `u32::MAX` value means "none", so an
//!   optional link costs 4 bytes instead of the 8 an `Option<u32>` would.
//! * **Value heap** — attribute values and character data live in one
//!   shared `String` per document; nodes store `(offset, len)` spans.
//!   A node is 36 bytes flat, with no per-node heap allocation.
//!
//! Labels are interned per-document so repeated element names (the common
//! case in the paper's repositories: thousands of `Item` elements) cost
//! four bytes per node. The same layout is what the binary page format
//! serializes verbatim (see [`crate::binary`]), which is what makes cold
//! page decoding a bulk copy instead of a per-node rebuild.

use crate::dewey::Dewey;
use crate::error::XmlError;
use std::collections::HashMap;
use std::fmt;

/// Index of a node within its [`Document`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The root node of every document.
    pub const ROOT: NodeId = NodeId(0);

    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Interned label identifier (element or attribute name).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct Sym(pub(crate) u32);

/// A niche-packed optional [`NodeId`]: `u32::MAX` is "none". Keeps a
/// node's five links at 20 bytes total instead of 40.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct OptId(u32);

impl OptId {
    pub(crate) const NONE: OptId = OptId(u32::MAX);

    #[inline]
    pub(crate) fn some(id: NodeId) -> OptId {
        OptId(id.0)
    }

    #[inline]
    pub(crate) fn get(self) -> Option<NodeId> {
        if self.0 == u32::MAX {
            None
        } else {
            Some(NodeId(self.0))
        }
    }

    #[inline]
    pub(crate) fn is_none(self) -> bool {
        self.0 == u32::MAX
    }

    /// Raw wire value (`u32::MAX` = none) — what the page format stores.
    #[inline]
    pub(crate) fn raw(self) -> u32 {
        self.0
    }

    #[inline]
    pub(crate) fn from_raw(raw: u32) -> OptId {
        OptId(raw)
    }
}

/// A `(offset, len)` span into the document's value heap;
/// `offset == u32::MAX` means "no value" (elements).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ValueSpan {
    pub(crate) off: u32,
    pub(crate) len: u32,
}

impl ValueSpan {
    pub(crate) const NONE: ValueSpan = ValueSpan { off: u32::MAX, len: 0 };

    #[inline]
    pub(crate) fn is_none(self) -> bool {
        self.off == u32::MAX
    }

    #[inline]
    pub(crate) fn get(self, heap: &str) -> Option<&str> {
        if self.is_none() {
            None
        } else {
            Some(&heap[self.off as usize..(self.off + self.len) as usize])
        }
    }
}

/// What a node is: an element, an attribute, or character data.
///
/// Attributes are modelled as children whose label is in the attribute name
/// set `A` and whose single child is a value in `D` (paper Sec. 3.1); for
/// ergonomics we flatten that representation into an `Attribute` node
/// carrying its value directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    Element,
    Attribute,
    Text,
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct Node {
    pub(crate) kind: NodeKind,
    /// Element/attribute name; for text nodes this is the empty symbol.
    pub(crate) label: Sym,
    /// Attribute or text value span into the heap; none for elements.
    pub(crate) value: ValueSpan,
    pub(crate) parent: OptId,
    pub(crate) first_child: OptId,
    pub(crate) last_child: OptId,
    pub(crate) next_sibling: OptId,
    pub(crate) prev_sibling: OptId,
}

/// log2 of the arena chunk size: 1024 nodes per chunk.
const CHUNK_BITS: usize = 10;
const CHUNK: usize = 1 << CHUNK_BITS;

/// Chunked node arena: indexable like a `Vec<Node>`, but growth appends a
/// fresh fixed-capacity chunk instead of relocating every existing node.
#[derive(Debug, Clone, Default)]
pub(crate) struct Arena {
    chunks: Vec<Vec<Node>>,
    len: usize,
}

impl Arena {
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    pub(crate) fn with_capacity(nodes: usize) -> Arena {
        let mut arena = Arena::default();
        if nodes > 0 {
            arena.chunks.push(Vec::with_capacity(nodes.min(CHUNK)));
        }
        arena
    }

    #[inline]
    pub(crate) fn get(&self, index: usize) -> &Node {
        &self.chunks[index >> CHUNK_BITS][index & (CHUNK - 1)]
    }

    #[inline]
    pub(crate) fn get_mut(&mut self, index: usize) -> &mut Node {
        &mut self.chunks[index >> CHUNK_BITS][index & (CHUNK - 1)]
    }

    pub(crate) fn push(&mut self, node: Node) -> u32 {
        assert!(self.len < u32::MAX as usize - 1, "document too large");
        if self.len >> CHUNK_BITS == self.chunks.len() {
            self.chunks.push(Vec::with_capacity(CHUNK));
        }
        self.chunks.last_mut().expect("chunk exists").push(node);
        let id = self.len as u32;
        self.len += 1;
        id
    }

    /// All nodes in id order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = &Node> + '_ {
        self.chunks.iter().flat_map(|c| c.iter())
    }
}

/// An XML document: a data tree with interned labels.
///
/// The root node (id [`NodeId::ROOT`]) is always an element. Documents may
/// carry a `name` (their identity inside a collection) and an `origin`
/// recording where a fragment's content came from in the source repository;
/// both are preserved by the binary format.
#[derive(Debug, Clone)]
pub struct Document {
    pub(crate) arena: Arena,
    /// Shared value heap: every attribute value and text-node content.
    pub(crate) text: String,
    pub(crate) symbols: Vec<Box<str>>,
    pub(crate) symbol_map: HashMap<Box<str>, Sym>,
    /// Identity of this document within its collection (e.g. `"item0042"`).
    pub name: Option<String>,
    /// Provenance of a fragment document: source document name plus the
    /// Dewey id of the projected subtree root. Used by the reconstruction
    /// join (paper Sec. 3.3).
    pub origin: Option<Origin>,
}

/// Provenance of a fragment document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Origin {
    pub source_doc: String,
    pub dewey: Dewey,
}

impl Document {
    /// Create a document whose root element is named `root_label`.
    pub fn new(root_label: &str) -> Document {
        let mut doc = Document {
            arena: Arena::default(),
            text: String::new(),
            symbols: Vec::new(),
            symbol_map: HashMap::new(),
            name: None,
            origin: None,
        };
        let sym = doc.intern(root_label);
        doc.arena.push(Node {
            kind: NodeKind::Element,
            label: sym,
            value: ValueSpan::NONE,
            parent: OptId::NONE,
            first_child: OptId::NONE,
            last_child: OptId::NONE,
            next_sibling: OptId::NONE,
            prev_sibling: OptId::NONE,
        });
        doc
    }

    /// Number of nodes in the document (including the root).
    pub fn len(&self) -> usize {
        self.arena.len()
    }

    /// A document always has at least its root node.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The root element.
    pub fn root(&self) -> NodeRef<'_> {
        NodeRef { doc: self, id: NodeId::ROOT }
    }

    /// Name of the root element — `ℓ(root∆)`.
    pub fn root_label(&self) -> &str {
        self.label_of(NodeId::ROOT)
    }

    pub(crate) fn intern(&mut self, s: &str) -> Sym {
        if let Some(&sym) = self.symbol_map.get(s) {
            return sym;
        }
        let sym = Sym(self.symbols.len() as u32);
        let boxed: Box<str> = s.into();
        self.symbols.push(boxed.clone());
        self.symbol_map.insert(boxed, sym);
        sym
    }

    pub(crate) fn sym_str(&self, sym: Sym) -> &str {
        &self.symbols[sym.0 as usize]
    }

    /// Append a string to the value heap, returning its span.
    pub(crate) fn push_value(&mut self, s: &str) -> ValueSpan {
        let off = self.text.len();
        assert!(
            off + s.len() < u32::MAX as usize,
            "document value heap too large"
        );
        self.text.push_str(s);
        ValueSpan { off: off as u32, len: s.len() as u32 }
    }

    pub(crate) fn node(&self, id: NodeId) -> &Node {
        self.arena.get(id.index())
    }

    /// Borrow a node by id.
    pub fn get(&self, id: NodeId) -> Option<NodeRef<'_>> {
        if id.index() < self.arena.len() {
            Some(NodeRef { doc: self, id })
        } else {
            None
        }
    }

    /// Label (element or attribute name) of `id`; empty for text nodes.
    pub fn label_of(&self, id: NodeId) -> &str {
        self.sym_str(self.node(id).label)
    }

    /// Kind of `id`.
    pub fn kind_of(&self, id: NodeId) -> NodeKind {
        self.node(id).kind
    }

    /// Direct value of `id` (text content of a text node, value of an
    /// attribute). `None` for elements.
    pub fn value_of(&self, id: NodeId) -> Option<&str> {
        self.node(id).value.get(&self.text)
    }

    pub fn parent_of(&self, id: NodeId) -> Option<NodeId> {
        self.node(id).parent.get()
    }

    /// Append a child element under `parent`, returning the new node's id.
    pub fn add_element(&mut self, parent: NodeId, label: &str) -> NodeId {
        let sym = self.intern(label);
        self.push_node(parent, Node {
            kind: NodeKind::Element,
            label: sym,
            value: ValueSpan::NONE,
            parent: OptId::some(parent),
            first_child: OptId::NONE,
            last_child: OptId::NONE,
            next_sibling: OptId::NONE,
            prev_sibling: OptId::NONE,
        })
    }

    /// Append an attribute `name="value"` to element `parent`.
    ///
    /// Attributes precede element children in sibling order, matching the
    /// convention that `@a` steps address them positionally before content.
    pub fn add_attribute(&mut self, parent: NodeId, name: &str, value: &str) -> NodeId {
        let sym = self.intern(name);
        let span = self.push_value(value);
        self.push_node(parent, Node {
            kind: NodeKind::Attribute,
            label: sym,
            value: span,
            parent: OptId::some(parent),
            first_child: OptId::NONE,
            last_child: OptId::NONE,
            next_sibling: OptId::NONE,
            prev_sibling: OptId::NONE,
        })
    }

    /// Append a text child under `parent`.
    pub fn add_text(&mut self, parent: NodeId, text: &str) -> NodeId {
        let sym = self.intern("");
        let span = self.push_value(text);
        self.push_node(parent, Node {
            kind: NodeKind::Text,
            label: sym,
            value: span,
            parent: OptId::some(parent),
            first_child: OptId::NONE,
            last_child: OptId::NONE,
            next_sibling: OptId::NONE,
            prev_sibling: OptId::NONE,
        })
    }

    fn push_node(&mut self, parent: NodeId, node: Node) -> NodeId {
        let id = NodeId(self.arena.push(node));
        let prev_last = self.arena.get(parent.index()).last_child;
        match prev_last.get() {
            Some(last) => {
                self.arena.get_mut(last.index()).next_sibling = OptId::some(id);
                self.arena.get_mut(id.index()).prev_sibling = OptId::some(last);
            }
            None => self.arena.get_mut(parent.index()).first_child = OptId::some(id),
        }
        self.arena.get_mut(parent.index()).last_child = OptId::some(id);
        id
    }

    /// Deep-copy the subtree rooted at `src_id` in `src` as the last child
    /// of `dst_parent` in `self`. Returns the id of the copied root.
    pub fn graft(&mut self, dst_parent: NodeId, src: &Document, src_id: NodeId) -> NodeId {
        let src_node = src.node(src_id);
        let new_id = match src_node.kind {
            NodeKind::Element => {
                let label = src.sym_str(src_node.label).to_owned();
                self.add_element(dst_parent, &label)
            }
            NodeKind::Attribute => {
                let label = src.sym_str(src_node.label).to_owned();
                let value = src_node.value.get(&src.text).unwrap_or("").to_owned();
                self.add_attribute(dst_parent, &label, &value)
            }
            NodeKind::Text => {
                let value = src_node.value.get(&src.text).unwrap_or("").to_owned();
                self.add_text(dst_parent, &value)
            }
        };
        let mut child = src_node.first_child.get();
        while let Some(c) = child {
            self.graft(new_id, src, c);
            child = src.node(c).next_sibling.get();
        }
        new_id
    }

    /// Deep-copy the subtree rooted at `src_id` in `src` so that it
    /// becomes the `ordinal`-th (1-based) child of `dst_parent`. Ordinals
    /// beyond the current child count append at the end.
    ///
    /// Note: after positional insertion, node ids are no longer in
    /// document order (navigation by links stays correct). Use
    /// [`Document::normalized`] to restore id order when required.
    pub fn insert_graft_at(
        &mut self,
        dst_parent: NodeId,
        ordinal: u32,
        src: &Document,
        src_id: NodeId,
    ) -> NodeId {
        let new_id = self.graft(dst_parent, src, src_id); // appended last
        debug_assert!(ordinal >= 1);
        // locate the node currently at `ordinal` (excluding the new node)
        let mut before = self.arena.get(dst_parent.index()).first_child.get();
        let mut count = 1u32;
        while let Some(b) = before {
            if b == new_id {
                // new node reached: it is already at/after the target slot
                return new_id;
            }
            if count == ordinal {
                break;
            }
            count += 1;
            before = self.arena.get(b.index()).next_sibling.get();
        }
        let Some(before) = before else {
            return new_id; // ordinal beyond child count: stay appended
        };
        // unlink new_id from the tail
        let prev = self.arena.get(new_id.index()).prev_sibling;
        if let Some(p) = prev.get() {
            self.arena.get_mut(p.index()).next_sibling = OptId::NONE;
        }
        self.arena.get_mut(dst_parent.index()).last_child = prev;
        // splice before `before`
        let before_prev = self.arena.get(before.index()).prev_sibling;
        self.arena.get_mut(new_id.index()).prev_sibling = before_prev;
        self.arena.get_mut(new_id.index()).next_sibling = OptId::some(before);
        self.arena.get_mut(before.index()).prev_sibling = OptId::some(new_id);
        match before_prev.get() {
            Some(bp) => self.arena.get_mut(bp.index()).next_sibling = OptId::some(new_id),
            None => self.arena.get_mut(dst_parent.index()).first_child = OptId::some(new_id),
        }
        new_id
    }

    /// A copy of this document whose node ids are in document order
    /// (useful after positional insertions).
    pub fn normalized(&self) -> Document {
        let mut out = self.subtree(NodeId::ROOT).expect("root is an element");
        out.name = self.name.clone();
        out.origin = self.origin.clone();
        out
    }

    /// Extract the subtree rooted at `id` as a fresh document.
    ///
    /// Fails with [`XmlError::WrongNodeKind`] if `id` is not an element
    /// (attribute/text subtrees are not well-formed documents).
    pub fn subtree(&self, id: NodeId) -> Result<Document, XmlError> {
        if id.index() >= self.arena.len() {
            return Err(XmlError::InvalidNodeId);
        }
        if self.kind_of(id) != NodeKind::Element {
            return Err(XmlError::WrongNodeKind { expected: "element" });
        }
        let mut out = Document::new(self.label_of(id));
        let mut child = self.node(id).first_child.get();
        while let Some(c) = child {
            out.graft(NodeId::ROOT, self, c);
            child = self.node(c).next_sibling.get();
        }
        Ok(out)
    }

    /// Compute the Dewey identifier of `id`: the sequence of 1-based child
    /// ordinals on the path from the root. The root's Dewey id is empty.
    pub fn dewey_of(&self, id: NodeId) -> Dewey {
        let mut rev = Vec::new();
        let mut cur = id;
        while let Some(parent) = self.node(cur).parent.get() {
            let mut ord = 1u32;
            let mut sib = self.node(parent).first_child.get();
            while let Some(s) = sib {
                if s == cur {
                    break;
                }
                ord += 1;
                sib = self.node(s).next_sibling.get();
            }
            rev.push(ord);
            cur = parent;
        }
        rev.reverse();
        Dewey::from_vec(rev)
    }

    /// Resolve a Dewey identifier back to a node id, if it addresses an
    /// existing node.
    pub fn node_at_dewey(&self, dewey: &Dewey) -> Option<NodeId> {
        let mut cur = NodeId::ROOT;
        for &ord in dewey.components() {
            let mut child = self.node(cur).first_child.get()?;
            for _ in 1..ord {
                child = self.node(child).next_sibling.get()?;
            }
            cur = child;
        }
        Some(cur)
    }

    /// Total number of element nodes.
    pub fn element_count(&self) -> usize {
        self.arena.iter().filter(|n| n.kind == NodeKind::Element).count()
    }

    /// Approximate serialized size in bytes (used by the transmission-time
    /// model without actually serializing).
    pub fn approx_size(&self) -> usize {
        let mut size = self.text.len();
        for node in self.arena.iter() {
            size += match node.kind {
                // <label></label>
                NodeKind::Element => 2 * self.sym_str(node.label).len() + 5,
                // label="value" (value bytes already counted via the heap)
                NodeKind::Attribute => self.sym_str(node.label).len() + 4,
                NodeKind::Text => 0,
            };
        }
        size
    }

    /// All node ids in document order (pre-order).
    pub fn ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        DescendantIds { doc: self, next: Some(NodeId::ROOT), stop: NodeId::ROOT }
    }
}

/// Uniform read access to a node tree, implemented both by the in-memory
/// [`Document`] arena and by the zero-copy binary page view
/// ([`crate::binary::PageView`]). Lets consumers (index builders, probes)
/// walk either representation without materializing a `Document`.
pub trait TreeAccess {
    /// Number of nodes; ids are `0..count`, 0 is the root element.
    fn node_count(&self) -> usize;
    fn node_kind(&self, id: u32) -> NodeKind;
    /// Element/attribute name; empty for text nodes.
    fn node_label(&self, id: u32) -> &str;
    /// Attribute value or text content; `None` for elements.
    fn node_value(&self, id: u32) -> Option<&str>;
    fn node_first_child(&self, id: u32) -> Option<u32>;
    fn node_next_sibling(&self, id: u32) -> Option<u32>;
    fn node_parent(&self, id: u32) -> Option<u32>;
    /// The document's name inside its collection, if any.
    fn doc_name(&self) -> Option<&str>;
}

impl TreeAccess for Document {
    fn node_count(&self) -> usize {
        self.arena.len()
    }

    fn node_kind(&self, id: u32) -> NodeKind {
        self.kind_of(NodeId(id))
    }

    fn node_label(&self, id: u32) -> &str {
        self.label_of(NodeId(id))
    }

    fn node_value(&self, id: u32) -> Option<&str> {
        self.value_of(NodeId(id))
    }

    fn node_first_child(&self, id: u32) -> Option<u32> {
        self.node(NodeId(id)).first_child.get().map(|n| n.0)
    }

    fn node_next_sibling(&self, id: u32) -> Option<u32> {
        self.node(NodeId(id)).next_sibling.get().map(|n| n.0)
    }

    fn node_parent(&self, id: u32) -> Option<u32> {
        self.node(NodeId(id)).parent.get().map(|n| n.0)
    }

    fn doc_name(&self) -> Option<&str> {
        self.name.as_deref()
    }
}

/// A borrowed view of one node, carrying its document for navigation.
#[derive(Clone, Copy)]
pub struct NodeRef<'a> {
    pub(crate) doc: &'a Document,
    pub(crate) id: NodeId,
}

impl fmt::Debug for NodeRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind() {
            NodeKind::Element => write!(f, "<{}>", self.label()),
            NodeKind::Attribute => {
                write!(f, "@{}={:?}", self.label(), self.value().unwrap_or(""))
            }
            NodeKind::Text => write!(f, "text({:?})", self.value().unwrap_or("")),
        }
    }
}

impl<'a> NodeRef<'a> {
    pub fn id(self) -> NodeId {
        self.id
    }

    pub fn document(self) -> &'a Document {
        self.doc
    }

    pub fn kind(self) -> NodeKind {
        self.doc.kind_of(self.id)
    }

    pub fn label(self) -> &'a str {
        self.doc.label_of(self.id)
    }

    /// Direct value (attribute value or text content). `None` for elements.
    pub fn value(self) -> Option<&'a str> {
        self.doc.value_of(self.id)
    }

    pub fn parent(self) -> Option<NodeRef<'a>> {
        self.doc.parent_of(self.id).map(|id| NodeRef { doc: self.doc, id })
    }

    pub fn first_child(self) -> Option<NodeRef<'a>> {
        self.doc.node(self.id).first_child.get().map(|id| NodeRef { doc: self.doc, id })
    }

    pub fn next_sibling(self) -> Option<NodeRef<'a>> {
        self.doc.node(self.id).next_sibling.get().map(|id| NodeRef { doc: self.doc, id })
    }

    /// All children (attributes, elements and text), in order.
    pub fn children(self) -> Children<'a> {
        Children { doc: self.doc, next: self.doc.node(self.id).first_child.get() }
    }

    /// Element children only.
    pub fn child_elements(self) -> impl Iterator<Item = NodeRef<'a>> {
        self.children().filter(|c| c.kind() == NodeKind::Element)
    }

    /// Attribute children only.
    pub fn attributes(self) -> impl Iterator<Item = NodeRef<'a>> {
        self.children().filter(|c| c.kind() == NodeKind::Attribute)
    }

    /// The value of attribute `name`, if present.
    pub fn attribute(self, name: &str) -> Option<&'a str> {
        self.attributes().find(|a| a.label() == name).and_then(|a| a.value())
    }

    /// First element child with the given label.
    pub fn child_element(self, label: &str) -> Option<NodeRef<'a>> {
        self.child_elements().find(|c| c.label() == label)
    }

    /// Pre-order traversal of this node and everything below it.
    pub fn descendants_or_self(self) -> Descendants<'a> {
        Descendants { doc: self.doc, next: Some(self.id), stop: self.id }
    }

    /// Concatenated text content of the subtree (the string value).
    pub fn text(self) -> String {
        let mut out = String::new();
        for n in self.descendants_or_self() {
            if n.kind() == NodeKind::Text {
                out.push_str(n.value().unwrap_or(""));
            }
        }
        out
    }

    /// Text content parsed as a number, if the subtree's string value is a
    /// valid decimal.
    pub fn number(self) -> Option<f64> {
        self.text().trim().parse().ok()
    }

    /// Dewey identifier of this node.
    pub fn dewey(self) -> Dewey {
        self.doc.dewey_of(self.id)
    }

    /// True if this node has no element children and no text content.
    pub fn is_leaf_element(self) -> bool {
        self.kind() == NodeKind::Element && self.first_child().is_none()
    }
}

/// Iterator over a node's direct children.
pub struct Children<'a> {
    doc: &'a Document,
    next: Option<NodeId>,
}

impl<'a> Iterator for Children<'a> {
    type Item = NodeRef<'a>;

    fn next(&mut self) -> Option<NodeRef<'a>> {
        let id = self.next?;
        self.next = self.doc.node(id).next_sibling.get();
        Some(NodeRef { doc: self.doc, id })
    }
}

/// Pre-order iterator over a subtree.
pub struct Descendants<'a> {
    doc: &'a Document,
    next: Option<NodeId>,
    stop: NodeId,
}

impl<'a> Iterator for Descendants<'a> {
    type Item = NodeRef<'a>;

    fn next(&mut self) -> Option<NodeRef<'a>> {
        let id = self.next?;
        self.next = next_preorder(self.doc, id, self.stop);
        Some(NodeRef { doc: self.doc, id })
    }
}

struct DescendantIds<'a> {
    doc: &'a Document,
    next: Option<NodeId>,
    stop: NodeId,
}

impl Iterator for DescendantIds<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.next?;
        self.next = next_preorder(self.doc, id, self.stop);
        Some(id)
    }
}

fn next_preorder(doc: &Document, id: NodeId, stop: NodeId) -> Option<NodeId> {
    let node = doc.node(id);
    if let Some(child) = node.first_child.get() {
        return Some(child);
    }
    let mut cur = id;
    loop {
        if cur == stop {
            return None;
        }
        let n = doc.node(cur);
        if let Some(sib) = n.next_sibling.get() {
            return Some(sib);
        }
        cur = n.parent.get()?;
    }
}

impl PartialEq for Document {
    /// Structural equality: same tree shape, labels, kinds and values.
    /// Document `name`/`origin` metadata is ignored.
    fn eq(&self, other: &Document) -> bool {
        fn eq_subtree(a: NodeRef<'_>, b: NodeRef<'_>) -> bool {
            if a.kind() != b.kind() || a.label() != b.label() || a.value() != b.value() {
                return false;
            }
            let mut ac = a.children();
            let mut bc = b.children();
            loop {
                match (ac.next(), bc.next()) {
                    (None, None) => return true,
                    (Some(x), Some(y)) => {
                        if !eq_subtree(x, y) {
                            return false;
                        }
                    }
                    _ => return false,
                }
            }
        }
        eq_subtree(self.root(), other.root())
    }
}

impl Eq for Document {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Document {
        let mut doc = Document::new("Store");
        let sections = doc.add_element(NodeId::ROOT, "Sections");
        let s1 = doc.add_element(sections, "Section");
        doc.add_attribute(s1, "id", "1");
        let name = doc.add_element(s1, "Name");
        doc.add_text(name, "CD");
        let s2 = doc.add_element(sections, "Section");
        let name2 = doc.add_element(s2, "Name");
        doc.add_text(name2, "DVD");
        doc
    }

    #[test]
    fn navigation_basics() {
        let doc = sample();
        assert_eq!(doc.root_label(), "Store");
        let sections = doc.root().child_element("Sections").unwrap();
        let kids: Vec<_> = sections.child_elements().collect();
        assert_eq!(kids.len(), 2);
        assert_eq!(kids[0].label(), "Section");
        assert_eq!(kids[0].attribute("id"), Some("1"));
        assert_eq!(kids[1].attribute("id"), None);
        assert_eq!(kids[0].child_element("Name").unwrap().text(), "CD");
    }

    #[test]
    fn descendants_preorder() {
        let doc = sample();
        let labels: Vec<String> = doc
            .root()
            .descendants_or_self()
            .filter(|n| n.kind() == NodeKind::Element)
            .map(|n| n.label().to_owned())
            .collect();
        assert_eq!(
            labels,
            ["Store", "Sections", "Section", "Name", "Section", "Name"]
        );
    }

    #[test]
    fn descendants_of_inner_node_stop_at_subtree() {
        let doc = sample();
        let sections = doc.root().child_element("Sections").unwrap();
        let first = sections.child_elements().next().unwrap();
        let count = first.descendants_or_self().count();
        // Section, @id, Name, text
        assert_eq!(count, 4);
    }

    #[test]
    fn text_concatenation() {
        let doc = sample();
        assert_eq!(doc.root().text(), "CDDVD");
    }

    #[test]
    fn dewey_roundtrip_every_node() {
        let doc = sample();
        for id in doc.ids() {
            let dewey = doc.dewey_of(id);
            assert_eq!(doc.node_at_dewey(&dewey), Some(id), "dewey {dewey}");
        }
    }

    #[test]
    fn dewey_of_root_is_empty() {
        let doc = sample();
        assert!(doc.dewey_of(NodeId::ROOT).components().is_empty());
    }

    #[test]
    fn subtree_extraction() {
        let doc = sample();
        let sections = doc.root().child_element("Sections").unwrap();
        let sub = doc.subtree(sections.id()).unwrap();
        assert_eq!(sub.root_label(), "Sections");
        assert_eq!(sub.root().child_elements().count(), 2);
        assert_eq!(sub.root().text(), "CDDVD");
    }

    #[test]
    fn subtree_of_text_is_error() {
        let mut doc = Document::new("a");
        let t = doc.add_text(NodeId::ROOT, "hi");
        assert!(matches!(
            doc.subtree(t),
            Err(XmlError::WrongNodeKind { .. })
        ));
    }

    #[test]
    fn graft_copies_deeply() {
        let src = sample();
        let mut dst = Document::new("Wrapper");
        let sections = src.root().child_element("Sections").unwrap();
        dst.graft(NodeId::ROOT, &src, sections.id());
        let grafted = dst.root().child_element("Sections").unwrap();
        assert_eq!(grafted.child_elements().count(), 2);
        assert_eq!(grafted.text(), "CDDVD");
    }

    #[test]
    fn structural_equality_ignores_metadata() {
        let mut a = sample();
        let b = sample();
        assert_eq!(a, b);
        a.name = Some("renamed".into());
        assert_eq!(a, b);
    }

    #[test]
    fn structural_inequality_on_value_change() {
        let a = sample();
        let mut b = Document::new("Store");
        let sections = b.add_element(NodeId::ROOT, "Sections");
        let s1 = b.add_element(sections, "Section");
        b.add_attribute(s1, "id", "2"); // differs
        assert_ne!(a, b);
    }

    #[test]
    fn insert_graft_at_positions() {
        let src = Document::new("X");
        let mut doc = Document::new("P");
        doc.add_element(NodeId::ROOT, "a");
        doc.add_element(NodeId::ROOT, "c");
        // insert as 2nd child → a, X, c
        doc.insert_graft_at(NodeId::ROOT, 2, &src, NodeId::ROOT);
        let labels: Vec<&str> = doc.root().child_elements().map(|n| n.label()).collect();
        assert_eq!(labels, ["a", "X", "c"]);
        // insert as 1st child
        let src2 = Document::new("Y");
        doc.insert_graft_at(NodeId::ROOT, 1, &src2, NodeId::ROOT);
        let labels: Vec<&str> = doc.root().child_elements().map(|n| n.label()).collect();
        assert_eq!(labels, ["Y", "a", "X", "c"]);
        // ordinal beyond count appends
        let src3 = Document::new("Z");
        doc.insert_graft_at(NodeId::ROOT, 99, &src3, NodeId::ROOT);
        let labels: Vec<&str> = doc.root().child_elements().map(|n| n.label()).collect();
        assert_eq!(labels, ["Y", "a", "X", "c", "Z"]);
    }

    #[test]
    fn normalized_restores_id_order() {
        let src = Document::new("X");
        let mut doc = Document::new("P");
        doc.add_element(NodeId::ROOT, "a");
        doc.add_element(NodeId::ROOT, "c");
        doc.insert_graft_at(NodeId::ROOT, 1, &src, NodeId::ROOT);
        let norm = doc.normalized();
        assert_eq!(doc, norm);
        // ids ascend in document order after normalization
        let ids: Vec<NodeId> = norm.ids().collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted);
    }

    #[test]
    fn dewey_correct_after_insertion() {
        let src = Document::new("X");
        let mut doc = Document::new("P");
        doc.add_element(NodeId::ROOT, "a");
        doc.add_element(NodeId::ROOT, "c");
        let x = doc.insert_graft_at(NodeId::ROOT, 2, &src, NodeId::ROOT);
        assert_eq!(doc.dewey_of(x).to_string(), "2");
    }

    #[test]
    fn number_parses_numeric_text() {
        let mut doc = Document::new("Price");
        doc.add_text(NodeId::ROOT, " 19.90 ");
        assert_eq!(doc.root().number(), Some(19.90));
    }

    #[test]
    fn interning_reuses_symbols() {
        let mut doc = Document::new("a");
        let before = doc.symbols.len();
        doc.add_element(NodeId::ROOT, "a");
        doc.add_element(NodeId::ROOT, "a");
        assert_eq!(doc.symbols.len(), before);
    }

    #[test]
    fn approx_size_counts_content() {
        let doc = sample();
        let exact = crate::serializer::to_string(&doc).len();
        let approx = doc.approx_size();
        // within 2x either way — it is a model, not a measurement
        assert!(approx >= exact / 2 && approx <= exact * 2, "{approx} vs {exact}");
    }

    #[test]
    fn chunked_arena_survives_chunk_boundaries() {
        // build a flat document big enough to span several chunks, then
        // verify navigation, dewey ids and values across the boundaries
        let mut doc = Document::new("R");
        let n = 3 * CHUNK + 17;
        let mut ids = Vec::with_capacity(n);
        for i in 0..n {
            let e = doc.add_element(NodeId::ROOT, "e");
            doc.add_text(e, &i.to_string());
            ids.push(e);
        }
        assert_eq!(doc.len(), 1 + 2 * n);
        assert_eq!(doc.root().child_elements().count(), n);
        // spot-check around every chunk boundary
        for &i in &[0, CHUNK - 1, CHUNK, 2 * CHUNK - 1, 2 * CHUNK, n - 1] {
            let e = doc.get(ids[i]).unwrap();
            assert_eq!(e.text(), i.to_string());
            assert_eq!(doc.dewey_of(ids[i]).components(), &[i as u32 + 1]);
        }
        // deep nesting across chunks keeps parent links intact
        let mut deep = Document::new("D");
        let mut cur = NodeId::ROOT;
        for _ in 0..2 * CHUNK {
            cur = deep.add_element(cur, "n");
        }
        assert_eq!(deep.dewey_of(cur).depth(), 2 * CHUNK);
        let mut up = cur;
        let mut hops = 0;
        while let Some(p) = deep.parent_of(up) {
            up = p;
            hops += 1;
        }
        assert_eq!(hops, 2 * CHUNK);
    }

    #[test]
    fn node_is_compact() {
        // the niche-packed layout is the point of the refactor: five
        // links at 4 bytes each, a 8-byte value span, label + kind
        assert!(std::mem::size_of::<Node>() <= 36, "{}", std::mem::size_of::<Node>());
        assert_eq!(std::mem::size_of::<OptId>(), 4);
        assert_eq!(std::mem::size_of::<Option<NodeId>>(), 8);
    }

    #[test]
    fn tree_access_matches_noderef() {
        let doc = sample();
        for id in doc.ids() {
            let raw = id.0;
            let r = doc.get(id).unwrap();
            assert_eq!(doc.node_kind(raw), r.kind());
            assert_eq!(doc.node_label(raw), r.label());
            assert_eq!(doc.node_value(raw), r.value());
            assert_eq!(doc.node_first_child(raw), r.first_child().map(|n| n.id().0));
            assert_eq!(doc.node_next_sibling(raw), r.next_sibling().map(|n| n.id().0));
            assert_eq!(doc.node_parent(raw), r.parent().map(|n| n.id().0));
        }
    }
}
