//! Arena-based ordered labelled tree — the data tree `∆ := ⟨t, ℓ, Ψ⟩`.
//!
//! Nodes live in a flat `Vec` and are addressed by [`NodeId`] (a `u32`
//! index), giving compact memory layout and cheap traversal. Labels are
//! interned per-document so repeated element names (the common case in the
//! paper's repositories: thousands of `Item` elements) cost four bytes per
//! node.

use crate::dewey::Dewey;
use crate::error::XmlError;
use std::collections::HashMap;
use std::fmt;

/// Index of a node within its [`Document`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The root node of every document.
    pub const ROOT: NodeId = NodeId(0);

    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Interned label identifier (element or attribute name).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct Sym(pub(crate) u32);

/// What a node is: an element, an attribute, or character data.
///
/// Attributes are modelled as children whose label is in the attribute name
/// set `A` and whose single child is a value in `D` (paper Sec. 3.1); for
/// ergonomics we flatten that representation into an `Attribute` node
/// carrying its value directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    Element,
    Attribute,
    Text,
}

#[derive(Debug, Clone)]
pub(crate) struct Node {
    pub(crate) kind: NodeKind,
    /// Element/attribute name; for text nodes this is the empty symbol.
    pub(crate) label: Sym,
    /// Attribute or text value; `None` for elements.
    pub(crate) value: Option<Box<str>>,
    pub(crate) parent: Option<NodeId>,
    pub(crate) first_child: Option<NodeId>,
    pub(crate) last_child: Option<NodeId>,
    pub(crate) next_sibling: Option<NodeId>,
    pub(crate) prev_sibling: Option<NodeId>,
}

/// An XML document: a data tree with interned labels.
///
/// The root node (id [`NodeId::ROOT`]) is always an element. Documents may
/// carry a `name` (their identity inside a collection) and an `origin`
/// recording where a fragment's content came from in the source repository;
/// both are preserved by the binary format.
#[derive(Debug, Clone)]
pub struct Document {
    pub(crate) nodes: Vec<Node>,
    pub(crate) symbols: Vec<Box<str>>,
    pub(crate) symbol_map: HashMap<Box<str>, Sym>,
    /// Identity of this document within its collection (e.g. `"item0042"`).
    pub name: Option<String>,
    /// Provenance of a fragment document: source document name plus the
    /// Dewey id of the projected subtree root. Used by the reconstruction
    /// join (paper Sec. 3.3).
    pub origin: Option<Origin>,
}

/// Provenance of a fragment document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Origin {
    pub source_doc: String,
    pub dewey: Dewey,
}

impl Document {
    /// Create a document whose root element is named `root_label`.
    pub fn new(root_label: &str) -> Document {
        let mut doc = Document {
            nodes: Vec::new(),
            symbols: Vec::new(),
            symbol_map: HashMap::new(),
            name: None,
            origin: None,
        };
        let sym = doc.intern(root_label);
        doc.nodes.push(Node {
            kind: NodeKind::Element,
            label: sym,
            value: None,
            parent: None,
            first_child: None,
            last_child: None,
            next_sibling: None,
            prev_sibling: None,
        });
        doc
    }

    /// Number of nodes in the document (including the root).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// A document always has at least its root node.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The root element.
    pub fn root(&self) -> NodeRef<'_> {
        NodeRef { doc: self, id: NodeId::ROOT }
    }

    /// Name of the root element — `ℓ(root∆)`.
    pub fn root_label(&self) -> &str {
        self.label_of(NodeId::ROOT)
    }

    pub(crate) fn intern(&mut self, s: &str) -> Sym {
        if let Some(&sym) = self.symbol_map.get(s) {
            return sym;
        }
        let sym = Sym(self.symbols.len() as u32);
        let boxed: Box<str> = s.into();
        self.symbols.push(boxed.clone());
        self.symbol_map.insert(boxed, sym);
        sym
    }

    pub(crate) fn sym_str(&self, sym: Sym) -> &str {
        &self.symbols[sym.0 as usize]
    }

    fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Borrow a node by id.
    pub fn get(&self, id: NodeId) -> Option<NodeRef<'_>> {
        if id.index() < self.nodes.len() {
            Some(NodeRef { doc: self, id })
        } else {
            None
        }
    }

    /// Label (element or attribute name) of `id`; empty for text nodes.
    pub fn label_of(&self, id: NodeId) -> &str {
        self.sym_str(self.node(id).label)
    }

    /// Kind of `id`.
    pub fn kind_of(&self, id: NodeId) -> NodeKind {
        self.node(id).kind
    }

    /// Direct value of `id` (text content of a text node, value of an
    /// attribute). `None` for elements.
    pub fn value_of(&self, id: NodeId) -> Option<&str> {
        self.node(id).value.as_deref()
    }

    pub fn parent_of(&self, id: NodeId) -> Option<NodeId> {
        self.node(id).parent
    }

    /// Append a child element under `parent`, returning the new node's id.
    pub fn add_element(&mut self, parent: NodeId, label: &str) -> NodeId {
        let sym = self.intern(label);
        self.push_node(parent, Node {
            kind: NodeKind::Element,
            label: sym,
            value: None,
            parent: Some(parent),
            first_child: None,
            last_child: None,
            next_sibling: None,
            prev_sibling: None,
        })
    }

    /// Append an attribute `name="value"` to element `parent`.
    ///
    /// Attributes precede element children in sibling order, matching the
    /// convention that `@a` steps address them positionally before content.
    pub fn add_attribute(&mut self, parent: NodeId, name: &str, value: &str) -> NodeId {
        let sym = self.intern(name);
        self.push_node(parent, Node {
            kind: NodeKind::Attribute,
            label: sym,
            value: Some(value.into()),
            parent: Some(parent),
            first_child: None,
            last_child: None,
            next_sibling: None,
            prev_sibling: None,
        })
    }

    /// Append a text child under `parent`.
    pub fn add_text(&mut self, parent: NodeId, text: &str) -> NodeId {
        let sym = self.intern("");
        self.push_node(parent, Node {
            kind: NodeKind::Text,
            label: sym,
            value: Some(text.into()),
            parent: Some(parent),
            first_child: None,
            last_child: None,
            next_sibling: None,
            prev_sibling: None,
        })
    }

    fn push_node(&mut self, parent: NodeId, node: Node) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        let prev_last = self.nodes[parent.index()].last_child;
        match prev_last {
            Some(last) => {
                self.nodes[last.index()].next_sibling = Some(id);
                self.nodes[id.index()].prev_sibling = Some(last);
            }
            None => self.nodes[parent.index()].first_child = Some(id),
        }
        self.nodes[parent.index()].last_child = Some(id);
        id
    }

    /// Deep-copy the subtree rooted at `src_id` in `src` as the last child
    /// of `dst_parent` in `self`. Returns the id of the copied root.
    pub fn graft(&mut self, dst_parent: NodeId, src: &Document, src_id: NodeId) -> NodeId {
        let src_node = src.node(src_id);
        let new_id = match src_node.kind {
            NodeKind::Element => {
                let label = src.sym_str(src_node.label).to_owned();
                self.add_element(dst_parent, &label)
            }
            NodeKind::Attribute => {
                let label = src.sym_str(src_node.label).to_owned();
                let value = src_node.value.as_deref().unwrap_or("").to_owned();
                self.add_attribute(dst_parent, &label, &value)
            }
            NodeKind::Text => {
                let value = src_node.value.as_deref().unwrap_or("").to_owned();
                self.add_text(dst_parent, &value)
            }
        };
        let mut child = src_node.first_child;
        while let Some(c) = child {
            self.graft(new_id, src, c);
            child = src.node(c).next_sibling;
        }
        new_id
    }

    /// Deep-copy the subtree rooted at `src_id` in `src` so that it
    /// becomes the `ordinal`-th (1-based) child of `dst_parent`. Ordinals
    /// beyond the current child count append at the end.
    ///
    /// Note: after positional insertion, node ids are no longer in
    /// document order (navigation by links stays correct). Use
    /// [`Document::normalized`] to restore id order when required.
    pub fn insert_graft_at(
        &mut self,
        dst_parent: NodeId,
        ordinal: u32,
        src: &Document,
        src_id: NodeId,
    ) -> NodeId {
        let new_id = self.graft(dst_parent, src, src_id); // appended last
        debug_assert!(ordinal >= 1);
        // locate the node currently at `ordinal` (excluding the new node)
        let mut before = self.nodes[dst_parent.index()].first_child;
        let mut count = 1u32;
        while let Some(b) = before {
            if b == new_id {
                // new node reached: it is already at/after the target slot
                return new_id;
            }
            if count == ordinal {
                break;
            }
            count += 1;
            before = self.nodes[b.index()].next_sibling;
        }
        let Some(before) = before else {
            return new_id; // ordinal beyond child count: stay appended
        };
        // unlink new_id from the tail
        let prev = self.nodes[new_id.index()].prev_sibling;
        if let Some(p) = prev {
            self.nodes[p.index()].next_sibling = None;
        }
        self.nodes[dst_parent.index()].last_child = prev;
        // splice before `before`
        let before_prev = self.nodes[before.index()].prev_sibling;
        self.nodes[new_id.index()].prev_sibling = before_prev;
        self.nodes[new_id.index()].next_sibling = Some(before);
        self.nodes[before.index()].prev_sibling = Some(new_id);
        match before_prev {
            Some(bp) => self.nodes[bp.index()].next_sibling = Some(new_id),
            None => self.nodes[dst_parent.index()].first_child = Some(new_id),
        }
        new_id
    }

    /// A copy of this document whose node ids are in document order
    /// (useful after positional insertions).
    pub fn normalized(&self) -> Document {
        let mut out = self.subtree(NodeId::ROOT).expect("root is an element");
        out.name = self.name.clone();
        out.origin = self.origin.clone();
        out
    }

    /// Extract the subtree rooted at `id` as a fresh document.
    ///
    /// Fails with [`XmlError::WrongNodeKind`] if `id` is not an element
    /// (attribute/text subtrees are not well-formed documents).
    pub fn subtree(&self, id: NodeId) -> Result<Document, XmlError> {
        if id.index() >= self.nodes.len() {
            return Err(XmlError::InvalidNodeId);
        }
        if self.kind_of(id) != NodeKind::Element {
            return Err(XmlError::WrongNodeKind { expected: "element" });
        }
        let mut out = Document::new(self.label_of(id));
        let mut child = self.node(id).first_child;
        while let Some(c) = child {
            out.graft(NodeId::ROOT, self, c);
            child = self.node(c).next_sibling;
        }
        Ok(out)
    }

    /// Compute the Dewey identifier of `id`: the sequence of 1-based child
    /// ordinals on the path from the root. The root's Dewey id is empty.
    pub fn dewey_of(&self, id: NodeId) -> Dewey {
        let mut rev = Vec::new();
        let mut cur = id;
        while let Some(parent) = self.node(cur).parent {
            let mut ord = 1u32;
            let mut sib = self.node(parent).first_child;
            while let Some(s) = sib {
                if s == cur {
                    break;
                }
                ord += 1;
                sib = self.node(s).next_sibling;
            }
            rev.push(ord);
            cur = parent;
        }
        rev.reverse();
        Dewey::from_vec(rev)
    }

    /// Resolve a Dewey identifier back to a node id, if it addresses an
    /// existing node.
    pub fn node_at_dewey(&self, dewey: &Dewey) -> Option<NodeId> {
        let mut cur = NodeId::ROOT;
        for &ord in dewey.components() {
            let mut child = self.node(cur).first_child?;
            for _ in 1..ord {
                child = self.node(child).next_sibling?;
            }
            cur = child;
        }
        Some(cur)
    }

    /// Total number of element nodes.
    pub fn element_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.kind == NodeKind::Element).count()
    }

    /// Approximate serialized size in bytes (used by the transmission-time
    /// model without actually serializing).
    pub fn approx_size(&self) -> usize {
        let mut size = 0usize;
        for node in &self.nodes {
            size += match node.kind {
                // <label></label>
                NodeKind::Element => 2 * self.sym_str(node.label).len() + 5,
                // label="value"
                NodeKind::Attribute => {
                    self.sym_str(node.label).len()
                        + node.value.as_deref().map_or(0, str::len)
                        + 4
                }
                NodeKind::Text => node.value.as_deref().map_or(0, str::len),
            };
        }
        size
    }

    /// All node ids in document order (pre-order).
    pub fn ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        DescendantIds { doc: self, next: Some(NodeId::ROOT), stop: NodeId::ROOT }
    }
}

/// A borrowed view of one node, carrying its document for navigation.
#[derive(Clone, Copy)]
pub struct NodeRef<'a> {
    pub(crate) doc: &'a Document,
    pub(crate) id: NodeId,
}

impl fmt::Debug for NodeRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind() {
            NodeKind::Element => write!(f, "<{}>", self.label()),
            NodeKind::Attribute => {
                write!(f, "@{}={:?}", self.label(), self.value().unwrap_or(""))
            }
            NodeKind::Text => write!(f, "text({:?})", self.value().unwrap_or("")),
        }
    }
}

impl<'a> NodeRef<'a> {
    pub fn id(self) -> NodeId {
        self.id
    }

    pub fn document(self) -> &'a Document {
        self.doc
    }

    pub fn kind(self) -> NodeKind {
        self.doc.kind_of(self.id)
    }

    pub fn label(self) -> &'a str {
        self.doc.label_of(self.id)
    }

    /// Direct value (attribute value or text content). `None` for elements.
    pub fn value(self) -> Option<&'a str> {
        self.doc.value_of(self.id)
    }

    pub fn parent(self) -> Option<NodeRef<'a>> {
        self.doc.parent_of(self.id).map(|id| NodeRef { doc: self.doc, id })
    }

    pub fn first_child(self) -> Option<NodeRef<'a>> {
        self.doc.node(self.id).first_child.map(|id| NodeRef { doc: self.doc, id })
    }

    pub fn next_sibling(self) -> Option<NodeRef<'a>> {
        self.doc.node(self.id).next_sibling.map(|id| NodeRef { doc: self.doc, id })
    }

    /// All children (attributes, elements and text), in order.
    pub fn children(self) -> Children<'a> {
        Children { doc: self.doc, next: self.doc.node(self.id).first_child }
    }

    /// Element children only.
    pub fn child_elements(self) -> impl Iterator<Item = NodeRef<'a>> {
        self.children().filter(|c| c.kind() == NodeKind::Element)
    }

    /// Attribute children only.
    pub fn attributes(self) -> impl Iterator<Item = NodeRef<'a>> {
        self.children().filter(|c| c.kind() == NodeKind::Attribute)
    }

    /// The value of attribute `name`, if present.
    pub fn attribute(self, name: &str) -> Option<&'a str> {
        self.attributes().find(|a| a.label() == name).and_then(|a| a.value())
    }

    /// First element child with the given label.
    pub fn child_element(self, label: &str) -> Option<NodeRef<'a>> {
        self.child_elements().find(|c| c.label() == label)
    }

    /// Pre-order traversal of this node and everything below it.
    pub fn descendants_or_self(self) -> Descendants<'a> {
        Descendants { doc: self.doc, next: Some(self.id), stop: self.id }
    }

    /// Concatenated text content of the subtree (the string value).
    pub fn text(self) -> String {
        let mut out = String::new();
        for n in self.descendants_or_self() {
            if n.kind() == NodeKind::Text {
                out.push_str(n.value().unwrap_or(""));
            }
        }
        out
    }

    /// Text content parsed as a number, if the subtree's string value is a
    /// valid decimal.
    pub fn number(self) -> Option<f64> {
        self.text().trim().parse().ok()
    }

    /// Dewey identifier of this node.
    pub fn dewey(self) -> Dewey {
        self.doc.dewey_of(self.id)
    }

    /// True if this node has no element children and no text content.
    pub fn is_leaf_element(self) -> bool {
        self.kind() == NodeKind::Element && self.first_child().is_none()
    }
}

/// Iterator over a node's direct children.
pub struct Children<'a> {
    doc: &'a Document,
    next: Option<NodeId>,
}

impl<'a> Iterator for Children<'a> {
    type Item = NodeRef<'a>;

    fn next(&mut self) -> Option<NodeRef<'a>> {
        let id = self.next?;
        self.next = self.doc.node(id).next_sibling;
        Some(NodeRef { doc: self.doc, id })
    }
}

/// Pre-order iterator over a subtree.
pub struct Descendants<'a> {
    doc: &'a Document,
    next: Option<NodeId>,
    stop: NodeId,
}

impl<'a> Iterator for Descendants<'a> {
    type Item = NodeRef<'a>;

    fn next(&mut self) -> Option<NodeRef<'a>> {
        let id = self.next?;
        self.next = next_preorder(self.doc, id, self.stop);
        Some(NodeRef { doc: self.doc, id })
    }
}

struct DescendantIds<'a> {
    doc: &'a Document,
    next: Option<NodeId>,
    stop: NodeId,
}

impl Iterator for DescendantIds<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.next?;
        self.next = next_preorder(self.doc, id, self.stop);
        Some(id)
    }
}

fn next_preorder(doc: &Document, id: NodeId, stop: NodeId) -> Option<NodeId> {
    let node = doc.node(id);
    if let Some(child) = node.first_child {
        return Some(child);
    }
    let mut cur = id;
    loop {
        if cur == stop {
            return None;
        }
        let n = doc.node(cur);
        if let Some(sib) = n.next_sibling {
            return Some(sib);
        }
        cur = n.parent?;
    }
}

impl PartialEq for Document {
    /// Structural equality: same tree shape, labels, kinds and values.
    /// Document `name`/`origin` metadata is ignored.
    fn eq(&self, other: &Document) -> bool {
        fn eq_subtree(a: NodeRef<'_>, b: NodeRef<'_>) -> bool {
            if a.kind() != b.kind() || a.label() != b.label() || a.value() != b.value() {
                return false;
            }
            let mut ac = a.children();
            let mut bc = b.children();
            loop {
                match (ac.next(), bc.next()) {
                    (None, None) => return true,
                    (Some(x), Some(y)) => {
                        if !eq_subtree(x, y) {
                            return false;
                        }
                    }
                    _ => return false,
                }
            }
        }
        eq_subtree(self.root(), other.root())
    }
}

impl Eq for Document {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Document {
        let mut doc = Document::new("Store");
        let sections = doc.add_element(NodeId::ROOT, "Sections");
        let s1 = doc.add_element(sections, "Section");
        doc.add_attribute(s1, "id", "1");
        let name = doc.add_element(s1, "Name");
        doc.add_text(name, "CD");
        let s2 = doc.add_element(sections, "Section");
        let name2 = doc.add_element(s2, "Name");
        doc.add_text(name2, "DVD");
        doc
    }

    #[test]
    fn navigation_basics() {
        let doc = sample();
        assert_eq!(doc.root_label(), "Store");
        let sections = doc.root().child_element("Sections").unwrap();
        let kids: Vec<_> = sections.child_elements().collect();
        assert_eq!(kids.len(), 2);
        assert_eq!(kids[0].label(), "Section");
        assert_eq!(kids[0].attribute("id"), Some("1"));
        assert_eq!(kids[1].attribute("id"), None);
        assert_eq!(kids[0].child_element("Name").unwrap().text(), "CD");
    }

    #[test]
    fn descendants_preorder() {
        let doc = sample();
        let labels: Vec<String> = doc
            .root()
            .descendants_or_self()
            .filter(|n| n.kind() == NodeKind::Element)
            .map(|n| n.label().to_owned())
            .collect();
        assert_eq!(
            labels,
            ["Store", "Sections", "Section", "Name", "Section", "Name"]
        );
    }

    #[test]
    fn descendants_of_inner_node_stop_at_subtree() {
        let doc = sample();
        let sections = doc.root().child_element("Sections").unwrap();
        let first = sections.child_elements().next().unwrap();
        let count = first.descendants_or_self().count();
        // Section, @id, Name, text
        assert_eq!(count, 4);
    }

    #[test]
    fn text_concatenation() {
        let doc = sample();
        assert_eq!(doc.root().text(), "CDDVD");
    }

    #[test]
    fn dewey_roundtrip_every_node() {
        let doc = sample();
        for id in doc.ids() {
            let dewey = doc.dewey_of(id);
            assert_eq!(doc.node_at_dewey(&dewey), Some(id), "dewey {dewey}");
        }
    }

    #[test]
    fn dewey_of_root_is_empty() {
        let doc = sample();
        assert!(doc.dewey_of(NodeId::ROOT).components().is_empty());
    }

    #[test]
    fn subtree_extraction() {
        let doc = sample();
        let sections = doc.root().child_element("Sections").unwrap();
        let sub = doc.subtree(sections.id()).unwrap();
        assert_eq!(sub.root_label(), "Sections");
        assert_eq!(sub.root().child_elements().count(), 2);
        assert_eq!(sub.root().text(), "CDDVD");
    }

    #[test]
    fn subtree_of_text_is_error() {
        let mut doc = Document::new("a");
        let t = doc.add_text(NodeId::ROOT, "hi");
        assert!(matches!(
            doc.subtree(t),
            Err(XmlError::WrongNodeKind { .. })
        ));
    }

    #[test]
    fn graft_copies_deeply() {
        let src = sample();
        let mut dst = Document::new("Wrapper");
        let sections = src.root().child_element("Sections").unwrap();
        dst.graft(NodeId::ROOT, &src, sections.id());
        let grafted = dst.root().child_element("Sections").unwrap();
        assert_eq!(grafted.child_elements().count(), 2);
        assert_eq!(grafted.text(), "CDDVD");
    }

    #[test]
    fn structural_equality_ignores_metadata() {
        let mut a = sample();
        let b = sample();
        assert_eq!(a, b);
        a.name = Some("renamed".into());
        assert_eq!(a, b);
    }

    #[test]
    fn structural_inequality_on_value_change() {
        let a = sample();
        let mut b = Document::new("Store");
        let sections = b.add_element(NodeId::ROOT, "Sections");
        let s1 = b.add_element(sections, "Section");
        b.add_attribute(s1, "id", "2"); // differs
        assert_ne!(a, b);
    }

    #[test]
    fn insert_graft_at_positions() {
        let src = Document::new("X");
        let mut doc = Document::new("P");
        doc.add_element(NodeId::ROOT, "a");
        doc.add_element(NodeId::ROOT, "c");
        // insert as 2nd child → a, X, c
        doc.insert_graft_at(NodeId::ROOT, 2, &src, NodeId::ROOT);
        let labels: Vec<&str> = doc.root().child_elements().map(|n| n.label()).collect();
        assert_eq!(labels, ["a", "X", "c"]);
        // insert as 1st child
        let src2 = Document::new("Y");
        doc.insert_graft_at(NodeId::ROOT, 1, &src2, NodeId::ROOT);
        let labels: Vec<&str> = doc.root().child_elements().map(|n| n.label()).collect();
        assert_eq!(labels, ["Y", "a", "X", "c"]);
        // ordinal beyond count appends
        let src3 = Document::new("Z");
        doc.insert_graft_at(NodeId::ROOT, 99, &src3, NodeId::ROOT);
        let labels: Vec<&str> = doc.root().child_elements().map(|n| n.label()).collect();
        assert_eq!(labels, ["Y", "a", "X", "c", "Z"]);
    }

    #[test]
    fn normalized_restores_id_order() {
        let src = Document::new("X");
        let mut doc = Document::new("P");
        doc.add_element(NodeId::ROOT, "a");
        doc.add_element(NodeId::ROOT, "c");
        doc.insert_graft_at(NodeId::ROOT, 1, &src, NodeId::ROOT);
        let norm = doc.normalized();
        assert_eq!(doc, norm);
        // ids ascend in document order after normalization
        let ids: Vec<NodeId> = norm.ids().collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted);
    }

    #[test]
    fn dewey_correct_after_insertion() {
        let src = Document::new("X");
        let mut doc = Document::new("P");
        doc.add_element(NodeId::ROOT, "a");
        doc.add_element(NodeId::ROOT, "c");
        let x = doc.insert_graft_at(NodeId::ROOT, 2, &src, NodeId::ROOT);
        assert_eq!(doc.dewey_of(x).to_string(), "2");
    }

    #[test]
    fn number_parses_numeric_text() {
        let mut doc = Document::new("Price");
        doc.add_text(NodeId::ROOT, " 19.90 ");
        assert_eq!(doc.root().number(), Some(19.90));
    }

    #[test]
    fn interning_reuses_symbols() {
        let mut doc = Document::new("a");
        let before = doc.symbols.len();
        doc.add_element(NodeId::ROOT, "a");
        doc.add_element(NodeId::ROOT, "a");
        assert_eq!(doc.symbols.len(), before);
    }

    #[test]
    fn approx_size_counts_content() {
        let doc = sample();
        let exact = crate::serializer::to_string(&doc).len();
        let approx = doc.approx_size();
        // within 2x either way — it is a model, not a measurement
        assert!(approx >= exact / 2 && approx <= exact * 2, "{approx} vs {exact}");
    }
}
