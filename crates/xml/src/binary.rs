//! Compact binary document format.
//!
//! The storage engine keeps documents in this pre-parsed form so that
//! loading a stored document avoids re-tokenizing XML text — the analogue
//! of eXist's paged DOM storage. Two wire versions exist:
//!
//! * **PXB2** (current, written by [`encode`]) mirrors the in-memory arena
//!   layout exactly: a symbol table, one shared text heap, and
//!   **fixed-width little-endian node records**. Because records are
//!   fixed-width, a page can be *navigated in place* without decoding —
//!   [`PageView`] validates a page once and then serves node kind / label /
//!   value / link reads straight from the bytes (implementing
//!   [`TreeAccess`]), which is what lets cold collections build and probe
//!   indexes without materializing documents. Full decoding is a bulk
//!   copy: two UTF-8 validations (symbol heap, text heap) and a straight
//!   record walk with **zero per-node heap allocations**.
//! * **PXB1** (legacy, LEB128 varints, per-node value strings) is still
//!   decoded for old pages and can be produced via [`encode_v1`]; the
//!   storage microbench uses it as the before/after baseline.
//!
//! ```text
//! PXB2 layout (all integers little-endian):
//!   magic "PXB2"
//!   header:  node_count u32, sym_count u32, sym_heap_len u32, text_heap_len u32
//!   symbols: sym_count × (off u32, len u32)      — spans into the symbol heap
//!   symheap: sym_heap_len bytes of UTF-8
//!   nodes:   node_count × 33-byte records:
//!              kind u8, label u32, val_off u32, val_len u32,
//!              parent u32, first_child u32, last_child u32,
//!              next_sibling u32, prev_sibling u32
//!            (u32::MAX = "none" for val_off and links)
//!   textheap: text_heap_len bytes of UTF-8
//!   meta:    name  u8 tag (0|1) [+ len u32 + bytes]
//!            origin u8 tag (0|1) [+ len u32 + bytes + count u32 + count × u32]
//! ```

use crate::dewey::Dewey;
use crate::error::XmlError;
use crate::tree::{Arena, Document, Node, NodeKind, OptId, Origin, Sym, TreeAccess, ValueSpan};
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC_V2: &[u8; 4] = b"PXB2";
const MAGIC_V1: &[u8; 4] = b"PXB1";

/// Fixed record width of a PXB2 node: kind byte + eight u32 fields.
const NODE_SIZE: usize = 1 + 8 * 4;
const HEADER_SIZE: usize = 16;

#[inline]
fn read_u32(bytes: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4 bytes"))
}

#[inline]
fn put_u32(buf: &mut BytesMut, v: u32) {
    buf.put_slice(&v.to_le_bytes());
}

fn kind_to_u8(kind: NodeKind) -> u8 {
    match kind {
        NodeKind::Element => 0,
        NodeKind::Attribute => 1,
        NodeKind::Text => 2,
    }
}

fn kind_from_u8(byte: u8) -> Result<NodeKind, XmlError> {
    match byte {
        0 => Ok(NodeKind::Element),
        1 => Ok(NodeKind::Attribute),
        2 => Ok(NodeKind::Text),
        k => Err(XmlError::CorruptBinary(format!("bad node kind {k}"))),
    }
}

/// Encode a document into the current (PXB2) binary page form.
pub fn encode(doc: &Document) -> Bytes {
    let sym_heap_len: usize = doc.symbols.iter().map(|s| s.len()).sum();
    let size = 4
        + HEADER_SIZE
        + doc.symbols.len() * 8
        + sym_heap_len
        + doc.len() * NODE_SIZE
        + doc.text.len()
        + 64;
    let mut buf = BytesMut::with_capacity(size);
    buf.put_slice(MAGIC_V2);
    put_u32(&mut buf, doc.len() as u32);
    put_u32(&mut buf, doc.symbols.len() as u32);
    put_u32(&mut buf, sym_heap_len as u32);
    put_u32(&mut buf, doc.text.len() as u32);
    let mut off = 0u32;
    for sym in &doc.symbols {
        put_u32(&mut buf, off);
        put_u32(&mut buf, sym.len() as u32);
        off += sym.len() as u32;
    }
    for sym in &doc.symbols {
        buf.put_slice(sym.as_bytes());
    }
    for node in doc.arena.iter() {
        buf.put_u8(kind_to_u8(node.kind));
        put_u32(&mut buf, node.label.0);
        let (voff, vlen) = if node.value.is_none() {
            (u32::MAX, 0)
        } else {
            (node.value.off, node.value.len)
        };
        put_u32(&mut buf, voff);
        put_u32(&mut buf, vlen);
        for link in [
            node.parent,
            node.first_child,
            node.last_child,
            node.next_sibling,
            node.prev_sibling,
        ] {
            put_u32(&mut buf, link.raw());
        }
    }
    buf.put_slice(doc.text.as_bytes());
    match doc.name.as_deref() {
        None => buf.put_u8(0),
        Some(name) => {
            buf.put_u8(1);
            put_u32(&mut buf, name.len() as u32);
            buf.put_slice(name.as_bytes());
        }
    }
    match &doc.origin {
        None => buf.put_u8(0),
        Some(origin) => {
            buf.put_u8(1);
            put_u32(&mut buf, origin.source_doc.len() as u32);
            buf.put_slice(origin.source_doc.as_bytes());
            put_u32(&mut buf, origin.dewey.components().len() as u32);
            for &c in origin.dewey.components() {
                put_u32(&mut buf, c);
            }
        }
    }
    buf.freeze()
}

/// Decode a binary page (either wire version) into a [`Document`].
pub fn decode(buf: &[u8]) -> Result<Document, XmlError> {
    if buf.len() >= 4 && &buf[..4] == MAGIC_V2 {
        return PageView::parse(buf).map(|view| view.to_document());
    }
    if buf.len() >= 4 && &buf[..4] == MAGIC_V1 {
        return decode_v1(&buf[4..]);
    }
    Err(XmlError::CorruptBinary("bad magic".into()))
}

/// A validated zero-copy view over a PXB2 page.
///
/// Construction walks the page once to check every span and link; after
/// that, node reads are bounds-check-free slices into the borrowed bytes.
/// Implements [`TreeAccess`], so index builders and label probes can walk
/// a cold page without allocating a [`Document`].
pub struct PageView<'a> {
    /// `sym_count × (off, len)` pairs.
    sym_table: &'a [u8],
    sym_heap: &'a str,
    /// `node_count × NODE_SIZE` records.
    nodes: &'a [u8],
    text_heap: &'a str,
    node_count: u32,
    sym_count: u32,
    name: Option<&'a str>,
    origin_source: Option<&'a str>,
    origin_dewey: Vec<u32>,
}

impl<'a> PageView<'a> {
    /// Validate `buf` as a PXB2 page and return a navigable view.
    pub fn parse(buf: &'a [u8]) -> Result<PageView<'a>, XmlError> {
        if buf.len() < 4 + HEADER_SIZE || &buf[..4] != MAGIC_V2 {
            return Err(XmlError::CorruptBinary("bad magic".into()));
        }
        let node_count = read_u32(buf, 4) as usize;
        let sym_count = read_u32(buf, 8) as usize;
        let sym_heap_len = read_u32(buf, 12) as usize;
        let text_heap_len = read_u32(buf, 16) as usize;
        if node_count == 0 {
            return Err(XmlError::CorruptBinary("document has no nodes".into()));
        }
        let body_len = (sym_count as u64) * 8
            + sym_heap_len as u64
            + (node_count as u64) * NODE_SIZE as u64
            + text_heap_len as u64;
        if body_len + 4 + HEADER_SIZE as u64 > buf.len() as u64 {
            return Err(XmlError::CorruptBinary("page shorter than header claims".into()));
        }
        let mut at = 4 + HEADER_SIZE;
        let sym_table = &buf[at..at + sym_count * 8];
        at += sym_count * 8;
        let sym_heap = std::str::from_utf8(&buf[at..at + sym_heap_len])
            .map_err(|_| XmlError::CorruptBinary("symbol heap not utf-8".into()))?;
        at += sym_heap_len;
        let nodes = &buf[at..at + node_count * NODE_SIZE];
        at += node_count * NODE_SIZE;
        let text_heap = std::str::from_utf8(&buf[at..at + text_heap_len])
            .map_err(|_| XmlError::CorruptBinary("text heap not utf-8".into()))?;
        at += text_heap_len;

        // validate symbol spans
        for i in 0..sym_count {
            let off = read_u32(sym_table, i * 8) as u64;
            let len = read_u32(sym_table, i * 8 + 4) as u64;
            if off + len > sym_heap_len as u64
                || !sym_heap.is_char_boundary(off as usize)
                || !sym_heap.is_char_boundary((off + len) as usize)
            {
                return Err(XmlError::CorruptBinary("symbol span out of range".into()));
            }
        }
        // validate node records
        for i in 0..node_count {
            let rec = &nodes[i * NODE_SIZE..(i + 1) * NODE_SIZE];
            kind_from_u8(rec[0])?;
            if read_u32(rec, 1) as usize >= sym_count {
                return Err(XmlError::CorruptBinary("label out of range".into()));
            }
            let voff = read_u32(rec, 5);
            let vlen = read_u32(rec, 9);
            if voff != u32::MAX {
                let end = voff as u64 + vlen as u64;
                if end > text_heap_len as u64
                    || !text_heap.is_char_boundary(voff as usize)
                    || !text_heap.is_char_boundary(end as usize)
                {
                    return Err(XmlError::CorruptBinary("value span out of range".into()));
                }
            }
            for link in 0..5 {
                let raw = read_u32(rec, 13 + link * 4);
                if raw != u32::MAX && raw as usize >= node_count {
                    return Err(XmlError::CorruptBinary("node link out of range".into()));
                }
            }
        }
        let root = &nodes[..NODE_SIZE];
        if root[0] != 0 || read_u32(root, 13) != u32::MAX {
            return Err(XmlError::CorruptBinary("root must be a parentless element".into()));
        }

        // meta tail
        let mut tail = &buf[at..];
        let name = get_tagged_str(&mut tail)?;
        let (origin_source, origin_dewey) = match get_u8(&mut tail)? {
            0 => (None, Vec::new()),
            1 => {
                let source = get_str_u32(&mut tail)?;
                let count = get_u32(&mut tail)? as usize;
                if count * 4 > tail.len() {
                    return Err(XmlError::CorruptBinary("dewey too long".into()));
                }
                let mut components = Vec::with_capacity(count);
                for _ in 0..count {
                    components.push(get_u32(&mut tail)?);
                }
                (Some(source), components)
            }
            k => return Err(XmlError::CorruptBinary(format!("bad origin tag {k}"))),
        };

        Ok(PageView {
            sym_table,
            sym_heap,
            nodes,
            text_heap,
            node_count: node_count as u32,
            sym_count: sym_count as u32,
            name,
            origin_source,
            origin_dewey,
        })
    }

    #[inline]
    fn record(&self, id: u32) -> &'a [u8] {
        let at = id as usize * NODE_SIZE;
        &self.nodes[at..at + NODE_SIZE]
    }

    #[inline]
    fn sym(&self, idx: u32) -> &'a str {
        let off = read_u32(self.sym_table, idx as usize * 8) as usize;
        let len = read_u32(self.sym_table, idx as usize * 8 + 4) as usize;
        &self.sym_heap[off..off + len]
    }

    #[inline]
    fn link(&self, id: u32, slot: usize) -> Option<u32> {
        let raw = read_u32(self.record(id), 13 + slot * 4);
        if raw == u32::MAX {
            None
        } else {
            Some(raw)
        }
    }

    /// The page's document name, if any.
    pub fn name(&self) -> Option<&'a str> {
        self.name
    }

    /// Fragment origin recorded on the page, if any.
    pub fn origin(&self) -> Option<Origin> {
        self.origin_source.map(|source| Origin {
            source_doc: source.to_owned(),
            dewey: Dewey::from_vec(self.origin_dewey.clone()),
        })
    }

    /// Label of the root element.
    pub fn root_label(&self) -> &'a str {
        self.sym(read_u32(self.record(0), 1))
    }

    /// Concatenated text content below `id` — the subtree string value,
    /// computed from the page without materializing a document.
    pub fn string_value(&self, id: u32) -> String {
        let rec = self.record(id);
        if rec[0] != 0 {
            // attribute or text: the direct value
            return self.value_str(rec).unwrap_or("").to_owned();
        }
        let mut out = String::new();
        let mut stack = vec![id];
        while let Some(cur) = stack.pop() {
            let rec = self.record(cur);
            if rec[0] == 2 {
                out.push_str(self.value_str(rec).unwrap_or(""));
            }
            // push children in reverse document order so pops are in order
            let mut kids = Vec::new();
            let mut child = self.link(cur, 1);
            while let Some(c) = child {
                kids.push(c);
                child = self.link(c, 3);
            }
            for &k in kids.iter().rev() {
                stack.push(k);
            }
        }
        out
    }

    #[inline]
    fn value_str(&self, rec: &[u8]) -> Option<&'a str> {
        let off = read_u32(rec, 5);
        if off == u32::MAX {
            None
        } else {
            let len = read_u32(rec, 9);
            Some(&self.text_heap[off as usize..(off + len) as usize])
        }
    }

    /// Materialize the page into an owned [`Document`]. This is the bulk
    /// decode path: no per-node allocations — node records are copied
    /// field-for-field and both heaps are copied wholesale.
    pub fn to_document(&self) -> Document {
        let mut arena = Arena::with_capacity(self.node_count as usize);
        for i in 0..self.node_count {
            let rec = self.record(i);
            let voff = read_u32(rec, 5);
            let value = if voff == u32::MAX {
                ValueSpan::NONE
            } else {
                ValueSpan { off: voff, len: read_u32(rec, 9) }
            };
            arena.push(Node {
                kind: kind_from_u8(rec[0]).expect("validated at parse"),
                label: Sym(read_u32(rec, 1)),
                value,
                parent: OptId::from_raw(read_u32(rec, 13)),
                first_child: OptId::from_raw(read_u32(rec, 17)),
                last_child: OptId::from_raw(read_u32(rec, 21)),
                next_sibling: OptId::from_raw(read_u32(rec, 25)),
                prev_sibling: OptId::from_raw(read_u32(rec, 29)),
            });
        }
        let mut symbols = Vec::with_capacity(self.sym_count as usize);
        let mut symbol_map =
            std::collections::HashMap::with_capacity(self.sym_count as usize);
        for i in 0..self.sym_count {
            let s: Box<str> = self.sym(i).into();
            symbol_map.insert(s.clone(), Sym(i));
            symbols.push(s);
        }
        Document {
            arena,
            text: self.text_heap.to_owned(),
            symbols,
            symbol_map,
            name: self.name.map(str::to_owned),
            origin: self.origin(),
        }
    }
}

impl TreeAccess for PageView<'_> {
    fn node_count(&self) -> usize {
        self.node_count as usize
    }

    fn node_kind(&self, id: u32) -> NodeKind {
        kind_from_u8(self.record(id)[0]).expect("validated at parse")
    }

    fn node_label(&self, id: u32) -> &str {
        self.sym(read_u32(self.record(id), 1))
    }

    fn node_value(&self, id: u32) -> Option<&str> {
        self.value_str(self.record(id))
    }

    fn node_first_child(&self, id: u32) -> Option<u32> {
        self.link(id, 1)
    }

    fn node_next_sibling(&self, id: u32) -> Option<u32> {
        self.link(id, 3)
    }

    fn node_parent(&self, id: u32) -> Option<u32> {
        self.link(id, 0)
    }

    fn doc_name(&self) -> Option<&str> {
        self.name
    }
}

fn get_u32(buf: &mut &[u8]) -> Result<u32, XmlError> {
    if buf.len() < 4 {
        return Err(XmlError::CorruptBinary("unexpected end of buffer".into()));
    }
    let v = read_u32(buf, 0);
    buf.advance(4);
    Ok(v)
}

fn get_str_u32<'a>(buf: &mut &'a [u8]) -> Result<&'a str, XmlError> {
    let len = get_u32(buf)? as usize;
    if buf.len() < len {
        return Err(XmlError::CorruptBinary("string extends past buffer".into()));
    }
    let s = std::str::from_utf8(&buf[..len])
        .map_err(|_| XmlError::CorruptBinary("invalid utf-8 string".into()))?;
    buf.advance(len);
    Ok(s)
}

fn get_tagged_str<'a>(buf: &mut &'a [u8]) -> Result<Option<&'a str>, XmlError> {
    match get_u8(buf)? {
        0 => Ok(None),
        1 => Ok(Some(get_str_u32(buf)?)),
        k => Err(XmlError::CorruptBinary(format!("bad option tag {k}"))),
    }
}

// ---------------------------------------------------------------------------
// Legacy PXB1 (varint) wire format
// ---------------------------------------------------------------------------

/// Encode a document in the legacy PXB1 form. Kept so the storage
/// microbench can compare old-format decode cost against the arena page,
/// and so older persisted repositories remain writable in tests.
pub fn encode_v1(doc: &Document) -> Bytes {
    let mut buf = BytesMut::with_capacity(doc.approx_size());
    buf.put_slice(MAGIC_V1);
    put_opt_str(&mut buf, doc.name.as_deref());
    match &doc.origin {
        None => buf.put_u8(0),
        Some(origin) => {
            buf.put_u8(1);
            put_str(&mut buf, &origin.source_doc);
            put_varint(&mut buf, origin.dewey.components().len() as u64);
            for &c in origin.dewey.components() {
                put_varint(&mut buf, c as u64);
            }
        }
    }
    put_varint(&mut buf, doc.symbols.len() as u64);
    for sym in &doc.symbols {
        put_str(&mut buf, sym);
    }
    put_varint(&mut buf, doc.len() as u64);
    for node in doc.arena.iter() {
        buf.put_u8(kind_to_u8(node.kind));
        put_varint(&mut buf, node.label.0 as u64);
        put_opt_str(&mut buf, node.value.get(&doc.text));
        for link in [
            node.parent,
            node.first_child,
            node.last_child,
            node.next_sibling,
            node.prev_sibling,
        ] {
            put_varint(&mut buf, link.get().map_or(0, |id| id.index() as u64 + 1));
        }
    }
    buf.freeze()
}

/// Decode the body of a PXB1 page (magic already consumed).
fn decode_v1(mut buf: &[u8]) -> Result<Document, XmlError> {
    let name = get_opt_str(&mut buf)?;
    let origin = match get_u8(&mut buf)? {
        0 => None,
        1 => {
            let source_doc = get_str(&mut buf)?;
            let n = get_varint(&mut buf)? as usize;
            if n > buf.len() {
                return Err(XmlError::CorruptBinary("dewey too long".into()));
            }
            let mut components = Vec::with_capacity(n);
            for _ in 0..n {
                components.push(get_varint(&mut buf)? as u32);
            }
            Some(Origin { source_doc, dewey: Dewey::from_vec(components) })
        }
        k => return Err(XmlError::CorruptBinary(format!("bad origin tag {k}"))),
    };
    let sym_count = get_varint(&mut buf)? as usize;
    if sym_count > buf.len() {
        return Err(XmlError::CorruptBinary("symbol table too long".into()));
    }
    let mut symbols = Vec::with_capacity(sym_count);
    let mut symbol_map = std::collections::HashMap::with_capacity(sym_count);
    for i in 0..sym_count {
        let s: Box<str> = get_str(&mut buf)?.into();
        symbol_map.insert(s.clone(), Sym(i as u32));
        symbols.push(s);
    }
    let node_count = get_varint(&mut buf)? as usize;
    if node_count == 0 {
        return Err(XmlError::CorruptBinary("document has no nodes".into()));
    }
    if node_count > buf.len() {
        return Err(XmlError::CorruptBinary("node table too long".into()));
    }
    let mut arena = Arena::with_capacity(node_count);
    let mut text = String::new();
    for _ in 0..node_count {
        let kind = kind_from_u8(get_u8(&mut buf)?)?;
        let label_idx = get_varint(&mut buf)? as usize;
        if label_idx >= symbols.len() {
            return Err(XmlError::CorruptBinary("label out of range".into()));
        }
        let value = match get_opt_str(&mut buf)? {
            None => ValueSpan::NONE,
            Some(s) => {
                let off = text.len() as u32;
                text.push_str(&s);
                ValueSpan { off, len: s.len() as u32 }
            }
        };
        let mut links = [OptId::NONE; 5];
        for link in &mut links {
            let raw = get_varint(&mut buf)?;
            if raw != 0 {
                let id = raw - 1;
                if id >= node_count as u64 {
                    return Err(XmlError::CorruptBinary("node link out of range".into()));
                }
                *link = OptId::from_raw(id as u32);
            }
        }
        arena.push(Node {
            kind,
            label: Sym(label_idx as u32),
            value,
            parent: links[0],
            first_child: links[1],
            last_child: links[2],
            next_sibling: links[3],
            prev_sibling: links[4],
        });
    }
    let root = arena.get(0);
    if root.kind != NodeKind::Element || !root.parent.is_none() {
        return Err(XmlError::CorruptBinary("root must be a parentless element".into()));
    }
    Ok(Document { arena, text, symbols, symbol_map, name, origin })
}

fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

fn get_varint(buf: &mut &[u8]) -> Result<u64, XmlError> {
    let mut out = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = get_u8(buf)?;
        out |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(out);
        }
        shift += 7;
        if shift >= 64 {
            return Err(XmlError::CorruptBinary("varint overflow".into()));
        }
    }
}

fn get_u8(buf: &mut &[u8]) -> Result<u8, XmlError> {
    if buf.is_empty() {
        return Err(XmlError::CorruptBinary("unexpected end of buffer".into()));
    }
    let b = buf[0];
    buf.advance(1);
    Ok(b)
}

fn put_str(buf: &mut BytesMut, s: &str) {
    put_varint(buf, s.len() as u64);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut &[u8]) -> Result<String, XmlError> {
    let len = get_varint(buf)? as usize;
    if buf.len() < len {
        return Err(XmlError::CorruptBinary("string extends past buffer".into()));
    }
    let s = std::str::from_utf8(&buf[..len])
        .map_err(|_| XmlError::CorruptBinary("invalid utf-8 string".into()))?
        .to_owned();
    buf.advance(len);
    Ok(s)
}

fn put_opt_str(buf: &mut BytesMut, s: Option<&str>) {
    match s {
        None => buf.put_u8(0),
        Some(s) => {
            buf.put_u8(1);
            put_str(buf, s);
        }
    }
}

fn get_opt_str(buf: &mut &[u8]) -> Result<Option<String>, XmlError> {
    match get_u8(buf)? {
        0 => Ok(None),
        1 => Ok(Some(get_str(buf)?)),
        k => Err(XmlError::CorruptBinary(format!("bad option tag {k}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DocBuilder;
    use crate::parser::parse;

    fn sample() -> Document {
        let mut doc = DocBuilder::new("Store")
            .open("Items")
            .open("Item")
            .attr("id", "1")
            .leaf("Name", "Dark Side")
            .leaf("Section", "CD")
            .close()
            .open("Item")
            .attr("id", "2")
            .leaf("Name", "Matrix")
            .leaf("Section", "DVD")
            .close()
            .close()
            .named("store0")
            .build();
        doc.origin = Some(Origin {
            source_doc: "master".into(),
            dewey: Dewey::parse("1.2").unwrap(),
        });
        doc
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let doc = sample();
        let bytes = encode(&doc);
        let decoded = decode(&bytes).unwrap();
        assert_eq!(doc, decoded);
        assert_eq!(decoded.name.as_deref(), Some("store0"));
        assert_eq!(decoded.origin, doc.origin);
    }

    #[test]
    fn legacy_v1_roundtrip_preserves_everything() {
        let doc = sample();
        let bytes = encode_v1(&doc);
        assert_eq!(&bytes[..4], b"PXB1");
        let decoded = decode(&bytes).unwrap();
        assert_eq!(doc, decoded);
        assert_eq!(decoded.name.as_deref(), Some("store0"));
        assert_eq!(decoded.origin, doc.origin);
    }

    #[test]
    fn v2_reencode_is_stable() {
        let doc = sample();
        let bytes = encode(&doc);
        let reencoded = encode(&decode(&bytes).unwrap());
        assert_eq!(bytes, reencoded);
    }

    #[test]
    fn roundtrip_from_parsed_xml() {
        let doc = parse("<a x=\"1\"><b>text &amp; more</b><c/></a>").unwrap();
        let decoded = decode(&encode(&doc)).unwrap();
        assert_eq!(doc, decoded);
        let decoded_v1 = decode(&encode_v1(&doc)).unwrap();
        assert_eq!(doc, decoded_v1);
    }

    #[test]
    fn page_view_agrees_with_document() {
        let doc = sample();
        let bytes = encode(&doc);
        let view = PageView::parse(&bytes).unwrap();
        assert_eq!(view.node_count(), doc.len());
        assert_eq!(view.name(), doc.name.as_deref());
        assert_eq!(view.origin(), doc.origin);
        assert_eq!(view.root_label(), doc.root_label());
        for id in doc.ids() {
            let raw = id.index() as u32;
            assert_eq!(view.node_kind(raw), doc.node_kind(raw));
            assert_eq!(view.node_label(raw), doc.node_label(raw));
            assert_eq!(view.node_value(raw), doc.node_value(raw));
            assert_eq!(view.node_first_child(raw), doc.node_first_child(raw));
            assert_eq!(view.node_next_sibling(raw), doc.node_next_sibling(raw));
            assert_eq!(view.node_parent(raw), doc.node_parent(raw));
        }
    }

    #[test]
    fn page_view_string_value() {
        let doc = parse("<a><b>one</b><c>two<d>three</d></c></a>").unwrap();
        let bytes = encode(&doc);
        let view = PageView::parse(&bytes).unwrap();
        assert_eq!(view.string_value(0), "onetwothree");
        for id in doc.ids() {
            let raw = id.index() as u32;
            assert_eq!(
                view.string_value(raw),
                doc.get(id).unwrap().text(),
                "node {raw}"
            );
        }
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(matches!(decode(b"NOPE"), Err(XmlError::CorruptBinary(_))));
        assert!(matches!(decode(b""), Err(XmlError::CorruptBinary(_))));
    }

    #[test]
    fn truncated_buffer_rejected() {
        for bytes in [encode(&sample()), encode_v1(&sample())] {
            for cut in [5, 10, bytes.len() / 2, bytes.len() - 1] {
                assert!(
                    decode(&bytes[..cut]).is_err(),
                    "decode of {cut}-byte prefix should fail"
                );
            }
        }
    }

    #[test]
    fn corrupted_bytes_never_panic() {
        // Flip every byte one at a time; decoding must never panic and the
        // result must either be an error or a structurally valid document.
        for bytes in [encode(&sample()), encode_v1(&sample())] {
            for i in 4..bytes.len() {
                let mut broken = bytes.to_vec();
                broken[i] ^= 0xff;
                let _ = decode(&broken);
            }
        }
    }

    #[test]
    fn varint_boundaries() {
        let mut buf = BytesMut::new();
        for v in [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            buf.clear();
            put_varint(&mut buf, v);
            let mut slice: &[u8] = &buf;
            assert_eq!(get_varint(&mut slice).unwrap(), v);
            assert!(slice.is_empty());
        }
    }
}
