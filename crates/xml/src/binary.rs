//! Compact binary document format.
//!
//! The storage engine keeps documents in this pre-parsed form so that
//! loading a stored document avoids re-tokenizing XML text — the analogue
//! of eXist's paged DOM storage. The format is:
//!
//! ```text
//! magic "PXB1"
//! name:   opt_str
//! origin: u8 (0 = none, 1 = present) [ source_doc: str, dewey: u16 len + u32* ]
//! symbols: varint count, then (varint len, utf-8 bytes)*
//! nodes:   varint count, then per node:
//!          kind: u8, label: varint sym, value: opt_str,
//!          parent/first_child/last_child/next_sibling/prev_sibling:
//!            varint (0 = none, else id+1)
//! ```
//!
//! Integers use LEB128 varints; most node links fit in one or two bytes.

use crate::dewey::Dewey;
use crate::error::XmlError;
use crate::tree::{Document, Node, NodeId, NodeKind, Origin, Sym};
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: &[u8; 4] = b"PXB1";

/// Encode a document into its binary page form.
pub fn encode(doc: &Document) -> Bytes {
    let mut buf = BytesMut::with_capacity(doc.approx_size());
    buf.put_slice(MAGIC);
    put_opt_str(&mut buf, doc.name.as_deref());
    match &doc.origin {
        None => buf.put_u8(0),
        Some(origin) => {
            buf.put_u8(1);
            put_str(&mut buf, &origin.source_doc);
            put_varint(&mut buf, origin.dewey.components().len() as u64);
            for &c in origin.dewey.components() {
                put_varint(&mut buf, c as u64);
            }
        }
    }
    put_varint(&mut buf, doc.symbols.len() as u64);
    for sym in &doc.symbols {
        put_str(&mut buf, sym);
    }
    put_varint(&mut buf, doc.nodes.len() as u64);
    for node in &doc.nodes {
        buf.put_u8(match node.kind {
            NodeKind::Element => 0,
            NodeKind::Attribute => 1,
            NodeKind::Text => 2,
        });
        put_varint(&mut buf, node.label.0 as u64);
        put_opt_str(&mut buf, node.value.as_deref());
        for link in [
            node.parent,
            node.first_child,
            node.last_child,
            node.next_sibling,
            node.prev_sibling,
        ] {
            put_varint(&mut buf, link.map_or(0, |id| id.0 as u64 + 1));
        }
    }
    buf.freeze()
}

/// Decode a document from its binary page form.
pub fn decode(mut buf: &[u8]) -> Result<Document, XmlError> {
    if buf.len() < 4 || &buf[..4] != MAGIC {
        return Err(XmlError::CorruptBinary("bad magic".into()));
    }
    buf.advance(4);
    let name = get_opt_str(&mut buf)?;
    let origin = match get_u8(&mut buf)? {
        0 => None,
        1 => {
            let source_doc = get_str(&mut buf)?;
            let n = get_varint(&mut buf)? as usize;
            if n > buf.len() {
                return Err(XmlError::CorruptBinary("dewey too long".into()));
            }
            let mut components = Vec::with_capacity(n);
            for _ in 0..n {
                components.push(get_varint(&mut buf)? as u32);
            }
            Some(Origin { source_doc, dewey: Dewey::from_vec(components) })
        }
        k => return Err(XmlError::CorruptBinary(format!("bad origin tag {k}"))),
    };
    let sym_count = get_varint(&mut buf)? as usize;
    if sym_count > buf.len() {
        return Err(XmlError::CorruptBinary("symbol table too long".into()));
    }
    let mut symbols = Vec::with_capacity(sym_count);
    let mut symbol_map = std::collections::HashMap::with_capacity(sym_count);
    for i in 0..sym_count {
        let s: Box<str> = get_str(&mut buf)?.into();
        symbol_map.insert(s.clone(), Sym(i as u32));
        symbols.push(s);
    }
    let node_count = get_varint(&mut buf)? as usize;
    if node_count == 0 {
        return Err(XmlError::CorruptBinary("document has no nodes".into()));
    }
    if node_count > buf.len() {
        return Err(XmlError::CorruptBinary("node table too long".into()));
    }
    let mut nodes = Vec::with_capacity(node_count);
    for _ in 0..node_count {
        let kind = match get_u8(&mut buf)? {
            0 => NodeKind::Element,
            1 => NodeKind::Attribute,
            2 => NodeKind::Text,
            k => return Err(XmlError::CorruptBinary(format!("bad node kind {k}"))),
        };
        let label_idx = get_varint(&mut buf)? as usize;
        if label_idx >= symbols.len() {
            return Err(XmlError::CorruptBinary("label out of range".into()));
        }
        let value = get_opt_str(&mut buf)?.map(Into::into);
        let mut links = [None; 5];
        for link in &mut links {
            let raw = get_varint(&mut buf)?;
            *link = if raw == 0 {
                None
            } else {
                let id = raw - 1;
                if id >= node_count as u64 {
                    return Err(XmlError::CorruptBinary("node link out of range".into()));
                }
                Some(NodeId(id as u32))
            };
        }
        nodes.push(Node {
            kind,
            label: Sym(label_idx as u32),
            value,
            parent: links[0],
            first_child: links[1],
            last_child: links[2],
            next_sibling: links[3],
            prev_sibling: links[4],
        });
    }
    if nodes[0].kind != NodeKind::Element || nodes[0].parent.is_some() {
        return Err(XmlError::CorruptBinary("root must be a parentless element".into()));
    }
    Ok(Document { nodes, symbols, symbol_map, name, origin })
}

fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

fn get_varint(buf: &mut &[u8]) -> Result<u64, XmlError> {
    let mut out = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = get_u8(buf)?;
        out |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(out);
        }
        shift += 7;
        if shift >= 64 {
            return Err(XmlError::CorruptBinary("varint overflow".into()));
        }
    }
}

fn get_u8(buf: &mut &[u8]) -> Result<u8, XmlError> {
    if buf.is_empty() {
        return Err(XmlError::CorruptBinary("unexpected end of buffer".into()));
    }
    let b = buf[0];
    buf.advance(1);
    Ok(b)
}

fn put_str(buf: &mut BytesMut, s: &str) {
    put_varint(buf, s.len() as u64);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut &[u8]) -> Result<String, XmlError> {
    let len = get_varint(buf)? as usize;
    if buf.len() < len {
        return Err(XmlError::CorruptBinary("string extends past buffer".into()));
    }
    let s = std::str::from_utf8(&buf[..len])
        .map_err(|_| XmlError::CorruptBinary("invalid utf-8 string".into()))?
        .to_owned();
    buf.advance(len);
    Ok(s)
}

fn put_opt_str(buf: &mut BytesMut, s: Option<&str>) {
    match s {
        None => buf.put_u8(0),
        Some(s) => {
            buf.put_u8(1);
            put_str(buf, s);
        }
    }
}

fn get_opt_str(buf: &mut &[u8]) -> Result<Option<String>, XmlError> {
    match get_u8(buf)? {
        0 => Ok(None),
        1 => Ok(Some(get_str(buf)?)),
        k => Err(XmlError::CorruptBinary(format!("bad option tag {k}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DocBuilder;
    use crate::parser::parse;

    fn sample() -> Document {
        let mut doc = DocBuilder::new("Store")
            .open("Items")
            .open("Item")
            .attr("id", "1")
            .leaf("Name", "Dark Side")
            .leaf("Section", "CD")
            .close()
            .open("Item")
            .attr("id", "2")
            .leaf("Name", "Matrix")
            .leaf("Section", "DVD")
            .close()
            .close()
            .named("store0")
            .build();
        doc.origin = Some(Origin {
            source_doc: "master".into(),
            dewey: Dewey::parse("1.2").unwrap(),
        });
        doc
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let doc = sample();
        let bytes = encode(&doc);
        let decoded = decode(&bytes).unwrap();
        assert_eq!(doc, decoded);
        assert_eq!(decoded.name.as_deref(), Some("store0"));
        assert_eq!(decoded.origin, doc.origin);
    }

    #[test]
    fn roundtrip_from_parsed_xml() {
        let doc = parse("<a x=\"1\"><b>text &amp; more</b><c/></a>").unwrap();
        let decoded = decode(&encode(&doc)).unwrap();
        assert_eq!(doc, decoded);
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(matches!(decode(b"NOPE"), Err(XmlError::CorruptBinary(_))));
        assert!(matches!(decode(b""), Err(XmlError::CorruptBinary(_))));
    }

    #[test]
    fn truncated_buffer_rejected() {
        let bytes = encode(&sample());
        for cut in [5, 10, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                decode(&bytes[..cut]).is_err(),
                "decode of {cut}-byte prefix should fail"
            );
        }
    }

    #[test]
    fn corrupted_link_rejected() {
        let bytes = encode(&sample());
        // Flip every byte one at a time; decoding must never panic and the
        // result must either be an error or a structurally valid document.
        for i in 4..bytes.len() {
            let mut broken = bytes.to_vec();
            broken[i] ^= 0xff;
            let _ = decode(&broken);
        }
    }

    #[test]
    fn varint_boundaries() {
        let mut buf = BytesMut::new();
        for v in [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            buf.clear();
            put_varint(&mut buf, v);
            let mut slice: &[u8] = &buf;
            assert_eq!(get_varint(&mut slice).unwrap(), v);
            assert!(slice.is_empty());
        }
    }
}
