//! A convenience builder for constructing documents programmatically.
//!
//! Used heavily by the data generator and by tests. The builder keeps a
//! cursor stack so deeply nested documents read like the XML they produce:
//!
//! ```
//! use partix_xml::DocBuilder;
//!
//! let doc = DocBuilder::new("Store")
//!     .open("Items")
//!     .open("Item")
//!     .attr("id", "1")
//!     .leaf("Name", "The Wall")
//!     .leaf("Section", "CD")
//!     .close() // Item
//!     .close() // Items
//!     .build();
//! assert_eq!(doc.root().text(), "The WallCD");
//! ```

use crate::tree::{Document, NodeId};

/// Fluent document builder; see the module docs for an example.
#[derive(Debug)]
pub struct DocBuilder {
    doc: Document,
    stack: Vec<NodeId>,
}

impl DocBuilder {
    /// Start a document whose root element is `root_label`.
    pub fn new(root_label: &str) -> DocBuilder {
        DocBuilder { doc: Document::new(root_label), stack: vec![NodeId::ROOT] }
    }

    fn cursor(&self) -> NodeId {
        *self.stack.last().expect("stack never empties below the root")
    }

    /// Open a child element and descend into it.
    pub fn open(mut self, label: &str) -> DocBuilder {
        let id = self.doc.add_element(self.cursor(), label);
        self.stack.push(id);
        self
    }

    /// Close the current element, returning to its parent.
    ///
    /// # Panics
    /// Panics if called more times than [`open`](Self::open) — the root
    /// cannot be closed.
    pub fn close(mut self) -> DocBuilder {
        assert!(self.stack.len() > 1, "cannot close the document root");
        self.stack.pop();
        self
    }

    /// Add an attribute to the current element.
    pub fn attr(mut self, name: &str, value: &str) -> DocBuilder {
        self.doc.add_attribute(self.cursor(), name, value);
        self
    }

    /// Add a text child to the current element.
    pub fn text(mut self, content: &str) -> DocBuilder {
        self.doc.add_text(self.cursor(), content);
        self
    }

    /// Add `<label>content</label>` as a child of the current element.
    pub fn leaf(mut self, label: &str, content: &str) -> DocBuilder {
        let id = self.doc.add_element(self.cursor(), label);
        self.doc.add_text(id, content);
        self
    }

    /// Add an empty `<label/>` child.
    pub fn empty(mut self, label: &str) -> DocBuilder {
        self.doc.add_element(self.cursor(), label);
        self
    }

    /// Graft a deep copy of `other`'s root as a child of the current
    /// element.
    pub fn subtree(mut self, other: &Document) -> DocBuilder {
        self.doc.graft(self.cursor(), other, NodeId::ROOT);
        self
    }

    /// Name the document (its identity within a collection).
    pub fn named(mut self, name: &str) -> DocBuilder {
        self.doc.name = Some(name.to_owned());
        self
    }

    /// Finish, returning the document regardless of open elements.
    pub fn build(self) -> Document {
        self.doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serializer::to_string;

    #[test]
    fn builds_expected_shape() {
        let doc = DocBuilder::new("Store")
            .open("Items")
            .open("Item")
            .attr("id", "7")
            .leaf("Section", "DVD")
            .close()
            .close()
            .build();
        assert_eq!(
            to_string(&doc),
            r#"<Store><Items><Item id="7"><Section>DVD</Section></Item></Items></Store>"#
        );
    }

    #[test]
    #[should_panic(expected = "cannot close the document root")]
    fn over_closing_panics() {
        let _ = DocBuilder::new("a").close();
    }

    #[test]
    fn named_sets_document_name() {
        let doc = DocBuilder::new("a").named("doc1").build();
        assert_eq!(doc.name.as_deref(), Some("doc1"));
    }

    #[test]
    fn subtree_grafts_copy() {
        let inner = DocBuilder::new("Inner").leaf("x", "1").build();
        let doc = DocBuilder::new("Outer").subtree(&inner).build();
        assert_eq!(to_string(&doc), "<Outer><Inner><x>1</x></Inner></Outer>");
    }
}
