//! Arena/page property tests: for random documents covering attributes,
//! mixed content, deep nesting and empty elements, `decode(encode(doc))`
//! reproduces the document exactly, the zero-copy [`PageView`] agrees
//! with the arena node-for-node, Dewey ids survive the round trip, and
//! the legacy PXB1 wire format decodes to the same tree as PXB2.
//!
//! `PARTIX_PROPTEST_CASES` overrides every block's case count.

use partix_xml::{binary, Dewey, Document, NodeId, NodeKind, Origin, PageView, TreeAccess};
use proptest::prelude::*;

/// Per-block case budget, overridable with `PARTIX_PROPTEST_CASES`.
fn cases(default_cases: u32) -> ProptestConfig {
    std::env::var("PARTIX_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .map(ProptestConfig::with_cases)
        .unwrap_or_else(|| ProptestConfig::with_cases(default_cases))
}

/// A small label alphabet so interning gets exercised.
const LABELS: &[&str] = &["Item", "Section", "Name", "Price", "a", "b", "xyz"];

#[derive(Debug, Clone)]
enum Tree {
    Elem { label: usize, attrs: Vec<(usize, String)>, children: Vec<Tree> },
    Text(String),
}

/// Values and text content: empty strings, ascii, and multi-byte
/// unicode (exercises the char-boundary checks in the page parser).
fn arb_text() -> BoxedStrategy<String> {
    let alphabet: Vec<char> = "abcXYZ 019_-/<&\u{3b1}\u{8a9e}\u{2713}".chars().collect();
    prop_oneof![
        Just(String::new()),
        prop::collection::vec(prop::sample::select(alphabet), 0..12)
            .prop_map(|cs| cs.into_iter().collect()),
    ]
}

fn arb_attrs() -> BoxedStrategy<Vec<(usize, String)>> {
    prop::collection::vec((0..LABELS.len(), arb_text()), 0..3).boxed()
}

/// `prop::option::of` stand-in: half `None`, half `Some(inner)`.
fn opt_of<T: Clone + 'static>(inner: BoxedStrategy<T>) -> BoxedStrategy<Option<T>> {
    prop_oneof![Just(None), inner.prop_map(Some)]
}

/// Random subtrees: empty elements, attribute-only elements, text leaves,
/// and mixed content (text and element children interleaved) all occur.
fn arb_tree() -> BoxedStrategy<Tree> {
    let leaf = prop_oneof![
        arb_text().prop_map(Tree::Text),
        (0..LABELS.len(), arb_attrs())
            .prop_map(|(label, attrs)| Tree::Elem { label, attrs, children: vec![] }),
    ];
    leaf.prop_recursive(5, 48, 4, |inner| {
        (0..LABELS.len(), arb_attrs(), prop::collection::vec(inner, 0..4)).prop_map(
            |(label, attrs, children)| Tree::Elem { label, attrs, children },
        )
    })
}

fn arb_name() -> BoxedStrategy<String> {
    let alphabet: Vec<char> = ('a'..='h').collect();
    prop::collection::vec(prop::sample::select(alphabet), 1..8)
        .prop_map(|cs| cs.into_iter().collect::<String>())
        .boxed()
}

fn arb_document() -> impl Strategy<Value = Document> {
    (
        (0..LABELS.len(), arb_attrs(), prop::collection::vec(arb_tree(), 0..4)),
        opt_of(arb_name()),
        opt_of((arb_name(), prop::collection::vec(1u32..9, 0..4)).boxed()),
    )
        .prop_map(|((label, attrs, children), name, origin)| {
            let mut doc = Document::new(LABELS[label]);
            for (a, v) in &attrs {
                doc.add_attribute(NodeId::ROOT, LABELS[*a], v);
            }
            for child in &children {
                build(&mut doc, NodeId::ROOT, child);
            }
            doc.name = name;
            doc.origin = origin.map(|(source_doc, components)| Origin {
                source_doc,
                dewey: Dewey::from_vec(components),
            });
            doc
        })
}

fn build(doc: &mut Document, parent: NodeId, tree: &Tree) {
    match tree {
        Tree::Text(s) => {
            doc.add_text(parent, s);
        }
        Tree::Elem { label, attrs, children } => {
            let e = doc.add_element(parent, LABELS[*label]);
            for (a, v) in attrs {
                doc.add_attribute(e, LABELS[*a], v);
            }
            for c in children {
                build(doc, e, c);
            }
        }
    }
}

proptest! {
    #![proptest_config(cases(256))]

    /// decode(encode(doc)) reproduces the tree, metadata included, and
    /// every node keeps its Dewey id.
    #[test]
    fn v2_roundtrip_is_exact(doc in arb_document()) {
        let bytes = binary::encode(&doc);
        let decoded = binary::decode(&bytes).unwrap();
        prop_assert_eq!(&doc, &decoded);
        prop_assert_eq!(&doc.name, &decoded.name);
        prop_assert_eq!(&doc.origin, &decoded.origin);
        prop_assert_eq!(doc.len(), decoded.len());
        for id in doc.ids() {
            let dewey = doc.dewey_of(id);
            prop_assert_eq!(&decoded.dewey_of(id), &dewey);
            prop_assert_eq!(decoded.node_at_dewey(&dewey), Some(id));
        }
        // re-encoding the decoded document is byte-identical
        prop_assert_eq!(binary::encode(&decoded), bytes);
    }

    /// The zero-copy page view serves exactly what the arena serves,
    /// node for node, without materializing a document.
    #[test]
    fn page_view_agrees_node_for_node(doc in arb_document()) {
        let bytes = binary::encode(&doc);
        let view = PageView::parse(&bytes).unwrap();
        prop_assert_eq!(view.node_count(), doc.len());
        prop_assert_eq!(view.doc_name(), doc.name.as_deref());
        for id in 0..doc.len() as u32 {
            prop_assert_eq!(view.node_kind(id), doc.node_kind(id));
            prop_assert_eq!(view.node_label(id), doc.node_label(id));
            prop_assert_eq!(view.node_value(id), doc.node_value(id));
            prop_assert_eq!(view.node_parent(id), doc.node_parent(id));
            prop_assert_eq!(view.node_first_child(id), doc.node_first_child(id));
            prop_assert_eq!(view.node_next_sibling(id), doc.node_next_sibling(id));
        }
        for id in doc.ids() {
            let raw = id.index() as u32;
            let node = doc.get(id).unwrap();
            // string-value: direct value for attributes/text, descendant
            // text concatenation for elements
            let expect = match node.kind() {
                NodeKind::Element => node.text(),
                _ => node.value().unwrap_or("").to_owned(),
            };
            prop_assert_eq!(view.string_value(raw), expect);
        }
    }

    /// The legacy varint format and the arena format decode to the same
    /// tree — old pages stay readable forever.
    #[test]
    fn v1_and_v2_decode_identically(doc in arb_document()) {
        let from_v1 = binary::decode(&binary::encode_v1(&doc)).unwrap();
        let from_v2 = binary::decode(&binary::encode(&doc)).unwrap();
        prop_assert_eq!(&from_v1, &from_v2);
        prop_assert_eq!(&from_v1.name, &from_v2.name);
        prop_assert_eq!(&from_v1.origin, &from_v2.origin);
    }

    /// Deep chains cross arena chunk boundaries without losing links.
    #[test]
    fn deep_nesting_roundtrips(depth in 1usize..2500) {
        let mut doc = Document::new("root");
        let mut cur = NodeId::ROOT;
        for i in 0..depth {
            cur = doc.add_element(cur, LABELS[i % LABELS.len()]);
        }
        doc.add_text(cur, "bottom");
        let decoded = binary::decode(&binary::encode(&doc)).unwrap();
        prop_assert_eq!(&doc, &decoded);
        prop_assert_eq!(decoded.dewey_of(cur).depth(), depth);
        prop_assert_eq!(decoded.root().text(), "bottom");
    }
}
