//! Selection, projection and union over document collections.

use partix_path::{eval_path, PathExpr, Predicate};
use partix_xml::{Document, NodeId, Origin};
use std::collections::HashSet;

/// σ — select the documents of `docs` satisfying `predicate`.
///
/// Horizontal fragments have the same schema as their collection: whole
/// documents are kept or dropped, never restructured (paper Def. 2).
pub fn select<'a>(
    docs: impl IntoIterator<Item = &'a Document>,
    predicate: &Predicate,
) -> Vec<Document> {
    docs.into_iter()
        .filter(|doc| predicate.eval(doc))
        .cloned()
        .collect()
}

/// A projection specification π<sub>P,Γ</sub>.
#[derive(Debug, Clone)]
pub struct Projection {
    /// `P` — the path whose selected nodes root the projected subtrees.
    pub path: PathExpr,
    /// `Γ` — the prune criterion: path expressions *contained in* `P`
    /// (i.e. having `P` as a prefix) whose selected subtrees are excluded.
    pub prune: Vec<PathExpr>,
}

impl Projection {
    pub fn new(path: PathExpr, prune: Vec<PathExpr>) -> Projection {
        Projection { path, prune }
    }

    /// Validate the paper's well-formedness restrictions (Def. 3):
    /// every prune expression must extend `P`.
    ///
    /// (The restriction that `P` not select nodes of cardinality > 1
    /// without a positional step needs the schema and is checked by
    /// `partix-frag`.)
    pub fn check(&self) -> Result<(), String> {
        for g in &self.prune {
            if g.strip_prefix(&self.path).is_none() {
                return Err(format!(
                    "prune expression {g} does not extend the projection path {}",
                    self.path
                ));
            }
        }
        Ok(())
    }

    /// Apply to one document: each node selected by `P` becomes a fresh
    /// document rooted at a copy of that node, with the `Γ`-subtrees
    /// removed. Every output document carries an [`Origin`] naming the
    /// source document and the subtree root's Dewey id.
    pub fn apply(&self, doc: &Document) -> Vec<Document> {
        let roots = eval_path(doc, &self.path);
        // nodes excluded by the prune criterion
        let mut pruned: HashSet<NodeId> = HashSet::new();
        for g in &self.prune {
            pruned.extend(eval_path(doc, g));
        }
        let source = doc.name.clone().unwrap_or_default();
        roots
            .into_iter()
            .map(|root| {
                let mut out = Document::new(doc.label_of(root));
                copy_pruned(&mut out, NodeId::ROOT, doc, root, &pruned);
                out.name = doc.name.clone();
                out.origin = Some(Origin {
                    source_doc: source.clone(),
                    dewey: doc.dewey_of(root),
                });
                out
            })
            .collect()
    }
}

/// Copy children of `src_id` under `dst_parent`, skipping pruned subtrees.
fn copy_pruned(
    dst: &mut Document,
    dst_parent: NodeId,
    src: &Document,
    src_id: NodeId,
    pruned: &HashSet<NodeId>,
) {
    let node = src.get(src_id).expect("source node");
    for child in node.children() {
        if pruned.contains(&child.id()) {
            continue;
        }
        use partix_xml::NodeKind;
        match child.kind() {
            NodeKind::Element => {
                let new_id = dst.add_element(dst_parent, child.label());
                copy_pruned(dst, new_id, src, child.id(), pruned);
            }
            NodeKind::Attribute => {
                dst.add_attribute(dst_parent, child.label(), child.value().unwrap_or(""));
            }
            NodeKind::Text => {
                dst.add_text(dst_parent, child.value().unwrap_or(""));
            }
        }
    }
}

/// π — apply `projection` to every document of a collection.
pub fn project<'a>(
    docs: impl IntoIterator<Item = &'a Document>,
    projection: &Projection,
) -> Vec<Document> {
    docs.into_iter().flat_map(|d| projection.apply(d)).collect()
}

/// ∪ — union of horizontally fragmented collections. Documents are
/// ordered by name so the result is deterministic regardless of which
/// node answered first.
pub fn union(fragments: impl IntoIterator<Item = Vec<Document>>) -> Vec<Document> {
    let mut out: Vec<Document> = fragments.into_iter().flatten().collect();
    out.sort_by(|a, b| a.name.cmp(&b.name));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use partix_xml::{parse, to_string};

    fn items() -> Vec<Document> {
        let sources = [
            ("i1", "<Item><Section>CD</Section><Name>Kind of Blue</Name></Item>"),
            ("i2", "<Item><Section>DVD</Section><Name>Brazil</Name></Item>"),
            ("i3", "<Item><Section>CD</Section><Name>Hunky Dory</Name></Item>"),
        ];
        sources
            .iter()
            .map(|(name, xml)| {
                let mut d = parse(xml).unwrap();
                d.name = Some((*name).to_owned());
                d
            })
            .collect()
    }

    #[test]
    fn select_filters_whole_documents() {
        let docs = items();
        let pred = Predicate::parse(r#"/Item/Section = "CD""#).unwrap();
        let cd = select(&docs, &pred);
        assert_eq!(cd.len(), 2);
        assert!(cd.iter().all(|d| d.root().child_element("Section").unwrap().text() == "CD"));
        // complement
        let rest = select(&docs, &pred.complement());
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].name.as_deref(), Some("i2"));
    }

    #[test]
    fn select_preserves_document_content() {
        let docs = items();
        let pred = Predicate::parse(r#"/Item/Section = "DVD""#).unwrap();
        let got = select(&docs, &pred);
        assert_eq!(got[0], docs[1]);
    }

    #[test]
    fn union_restores_collection() {
        let docs = items();
        let pred = Predicate::parse(r#"/Item/Section = "CD""#).unwrap();
        let f1 = select(&docs, &pred);
        let f2 = select(&docs, &pred.complement());
        let merged = union([f1, f2]);
        assert_eq!(merged.len(), 3);
        let names: Vec<_> = merged.iter().map(|d| d.name.clone().unwrap()).collect();
        assert_eq!(names, ["i1", "i2", "i3"]);
    }

    fn store_doc() -> Document {
        let mut d = parse(
            "<Store>\
               <Sections><Section><Code>1</Code><Name>CD</Name></Section></Sections>\
               <Items>\
                 <Item><Section>CD</Section><PictureList><Picture><OriginalPath>p1</OriginalPath></Picture></PictureList></Item>\
                 <Item><Section>DVD</Section></Item>\
               </Items>\
               <Employees><Employee><Code>9</Code><Name>Ana</Name></Employee></Employees>\
             </Store>",
        )
        .unwrap();
        d.name = Some("store".to_owned());
        d
    }

    #[test]
    fn projection_without_prune() {
        // F2sections-like: π /Store/Sections
        let doc = store_doc();
        let proj = Projection::new(PathExpr::parse("/Store/Sections").unwrap(), vec![]);
        let frags = proj.apply(&doc);
        assert_eq!(frags.len(), 1);
        assert_eq!(frags[0].root_label(), "Sections");
        assert_eq!(frags[0].origin.as_ref().unwrap().dewey.to_string(), "1");
        assert_eq!(frags[0].origin.as_ref().unwrap().source_doc, "store");
    }

    #[test]
    fn projection_with_prune() {
        // F1-like: π /Store, Γ = {/Store/Items}
        let doc = store_doc();
        let proj = Projection::new(
            PathExpr::parse("/Store").unwrap(),
            vec![PathExpr::parse("/Store/Items").unwrap()],
        );
        let frags = proj.apply(&doc);
        assert_eq!(frags.len(), 1);
        let f = &frags[0];
        assert_eq!(f.root_label(), "Store");
        assert!(f.root().child_element("Items").is_none());
        assert!(f.root().child_element("Sections").is_some());
        assert!(f.root().child_element("Employees").is_some());
    }

    #[test]
    fn paper_f1_f2_items_are_disjoint_and_complete() {
        // F1items := π /Item, {/Item/PictureList};  F2items := π /Item/PictureList, {}
        let mut doc = parse(
            "<Item><Section>CD</Section>\
             <PictureList><Picture><OriginalPath>p1</OriginalPath></Picture></PictureList>\
             <Name>X</Name></Item>",
        )
        .unwrap();
        doc.name = Some("i1".to_owned());
        let f1 = Projection::new(
            PathExpr::parse("/Item").unwrap(),
            vec![PathExpr::parse("/Item/PictureList").unwrap()],
        )
        .apply(&doc);
        let f2 = Projection::new(PathExpr::parse("/Item/PictureList").unwrap(), vec![])
            .apply(&doc);
        assert_eq!(f1.len(), 1);
        assert_eq!(f2.len(), 1);
        assert!(f1[0].root().child_element("PictureList").is_none());
        assert_eq!(f2[0].root_label(), "PictureList");
        // disjoint + complete: f1 and f2 node counts sum to the original
        assert_eq!(f1[0].len() + f2[0].len(), doc.len());
        assert_eq!(f2[0].origin.as_ref().unwrap().dewey.to_string(), "2");
    }

    #[test]
    fn projection_on_collection() {
        let docs = items();
        let proj = Projection::new(PathExpr::parse("/Item/Name").unwrap(), vec![]);
        let names = project(&docs, &proj);
        assert_eq!(names.len(), 3);
        assert!(names.iter().all(|d| d.root_label() == "Name"));
    }

    #[test]
    fn projection_misses_produce_no_documents() {
        let docs = items();
        let proj = Projection::new(PathExpr::parse("/Item/Nothing").unwrap(), vec![]);
        assert!(project(&docs, &proj).is_empty());
    }

    #[test]
    fn check_rejects_foreign_prune() {
        let proj = Projection::new(
            PathExpr::parse("/Store/Items").unwrap(),
            vec![PathExpr::parse("/Store/Sections").unwrap()],
        );
        assert!(proj.check().is_err());
        let ok = Projection::new(
            PathExpr::parse("/Store/Items").unwrap(),
            vec![PathExpr::parse("/Store/Items/Item").unwrap()],
        );
        ok.check().unwrap();
    }

    #[test]
    fn pruned_content_really_gone_from_serialization() {
        let doc = store_doc();
        let proj = Projection::new(
            PathExpr::parse("/Store").unwrap(),
            vec![PathExpr::parse("/Store/Items").unwrap()],
        );
        let frag = proj.apply(&doc).remove(0);
        let xml = to_string(&frag);
        assert!(!xml.contains("PictureList"));
        assert!(!xml.contains("<Items>"));
    }
}
