//! The reconstruction join for vertical fragmentation.
//!
//! Each vertically projected fragment carries an [`Origin`](partix_xml::Origin): the name of
//! its source document and the Dewey id of the projected subtree's root
//! within that source. Reconstruction groups fragment documents by source,
//! then re-nests them: pieces are merged in ascending document order of
//! their Dewey ids, so ordinal navigation through already-merged content
//! addresses the same positions as in the original document.

use partix_xml::{Dewey, Document, NodeId};
use std::collections::BTreeMap;
use std::fmt;

/// Failure to reconstruct a source document from fragments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReconstructError {
    /// A fragment document has no `Origin` metadata.
    MissingOrigin { doc: String },
    /// No fragment provides the subtree containing the source root — the
    /// fragmentation is incomplete.
    NoBasePiece { source: String },
    /// Two fragments claim the same subtree — the fragmentation is not
    /// disjoint.
    OverlappingPieces { source: String, dewey: String },
    /// A piece's Dewey position cannot be reached in the merged document;
    /// a sibling piece earlier in document order is missing.
    UnreachablePosition { source: String, dewey: String },
}

impl fmt::Display for ReconstructError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReconstructError::MissingOrigin { doc } => {
                write!(f, "fragment document {doc:?} has no origin metadata")
            }
            ReconstructError::NoBasePiece { source } => {
                write!(f, "no fragment contains the root subtree of source {source:?}")
            }
            ReconstructError::OverlappingPieces { source, dewey } => {
                write!(f, "two fragments of {source:?} both contain subtree {dewey}")
            }
            ReconstructError::UnreachablePosition { source, dewey } => {
                write!(
                    f,
                    "cannot place subtree {dewey} of {source:?}: an earlier sibling piece is missing"
                )
            }
        }
    }
}

impl std::error::Error for ReconstructError {}

/// ⋈ — reconstruct the source documents from vertically projected
/// fragments.
///
/// `fragments` is the concatenation of all fragment collections' contents.
/// Returns the reconstructed documents sorted by source name. Pieces whose
/// Dewey ids nest (one piece's root lies inside another's subtree *slot*)
/// are re-inserted innermost-last, so arbitrarily deep prune/project
/// chains reassemble correctly.
pub fn reconstruct(fragments: &[Document]) -> Result<Vec<Document>, ReconstructError> {
    // group pieces by source document
    let mut by_source: BTreeMap<String, Vec<&Document>> = BTreeMap::new();
    for frag in fragments {
        let origin = frag.origin.as_ref().ok_or_else(|| ReconstructError::MissingOrigin {
            doc: frag.name.clone().unwrap_or_default(),
        })?;
        by_source.entry(origin.source_doc.clone()).or_default().push(frag);
    }
    let mut out = Vec::with_capacity(by_source.len());
    for (source, mut pieces) in by_source {
        // ascending document order of dewey ids; the base piece (shortest
        // prefix of everything, normally the root itself) comes first
        pieces.sort_by(|a, b| {
            origin_dewey(a).cmp(origin_dewey(b))
        });
        for window in pieces.windows(2) {
            if origin_dewey(window[0]) == origin_dewey(window[1]) {
                return Err(ReconstructError::OverlappingPieces {
                    source,
                    dewey: origin_dewey(window[0]).to_string(),
                });
            }
        }
        let base = pieces.first().ok_or_else(|| ReconstructError::NoBasePiece {
            source: source.clone(),
        })?;
        let base_dewey = origin_dewey(base).clone();
        let mut merged = (*base).clone();
        for piece in &pieces[1..] {
            let abs = origin_dewey(piece);
            let Some(rel) = base_dewey.relative(abs) else {
                return Err(ReconstructError::NoBasePiece { source: source.clone() });
            };
            insert_piece(&mut merged, &rel, piece)
                .map_err(|_| ReconstructError::UnreachablePosition {
                    source: source.clone(),
                    dewey: abs.to_string(),
                })?;
        }
        let mut doc = merged.normalized();
        doc.name = Some(source.clone());
        doc.origin = None;
        out.push(doc);
    }
    Ok(out)
}

fn origin_dewey(doc: &Document) -> &Dewey {
    &doc.origin.as_ref().expect("checked by caller").dewey
}

/// Insert `piece` into `merged` so its root becomes the node at relative
/// Dewey position `rel`.
fn insert_piece(merged: &mut Document, rel: &Dewey, piece: &Document) -> Result<(), ()> {
    let comps = rel.components();
    let Some((&last, parents)) = comps.split_last() else {
        return Err(()); // piece at the base's own position ⇒ overlap
    };
    // navigate to the parent by ordinal; all earlier pieces are already
    // in place, so ordinals address original positions
    let parent_dewey = Dewey::from_vec(parents.to_vec());
    let parent = merged.node_at_dewey(&parent_dewey).ok_or(())?;
    merged.insert_graft_at(parent, last, piece, NodeId::ROOT);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::Projection;
    use partix_path::PathExpr;
    use partix_xml::parse;

    fn named(xml: &str, name: &str) -> Document {
        let mut d = parse(xml).unwrap();
        d.name = Some(name.to_owned());
        d
    }

    fn store() -> Document {
        named(
            "<Store>\
               <Sections><Section><Name>CD</Name></Section></Sections>\
               <Items><Item><Section>CD</Section></Item><Item><Section>DVD</Section></Item></Items>\
               <Employees><Employee><Name>Ana</Name></Employee></Employees>\
             </Store>",
            "store",
        )
    }

    fn proj(p: &str, prune: &[&str]) -> Projection {
        Projection::new(
            PathExpr::parse(p).unwrap(),
            prune.iter().map(|g| PathExpr::parse(g).unwrap()).collect(),
        )
    }

    #[test]
    fn two_way_vertical_roundtrip() {
        let doc = store();
        let f1 = proj("/Store", &["/Store/Items"]).apply(&doc);
        let f2 = proj("/Store/Items", &[]).apply(&doc);
        let all: Vec<Document> = f1.into_iter().chain(f2).collect();
        let rebuilt = reconstruct(&all).unwrap();
        assert_eq!(rebuilt.len(), 1);
        assert_eq!(rebuilt[0], doc);
        assert_eq!(rebuilt[0].name.as_deref(), Some("store"));
    }

    #[test]
    fn three_way_vertical_roundtrip() {
        // the paper's XBenchVer design: prolog / body / epilog
        let doc = named(
            "<article><prolog><title>T</title></prolog>\
             <body><abstract>A</abstract><section><heading>H</heading><p>x</p></section></body>\
             <epilog><country>BR</country></epilog></article>",
            "a1",
        );
        let f1 = proj("/article/prolog", &[]).apply(&doc);
        let f2 = proj("/article/body", &[]).apply(&doc);
        let f3 = proj("/article/epilog", &[]).apply(&doc);
        // base fragment: the article spine without the three parts
        let spine = proj(
            "/article",
            &["/article/prolog", "/article/body", "/article/epilog"],
        )
        .apply(&doc);
        let all: Vec<Document> =
            spine.into_iter().chain(f1).chain(f2).chain(f3).collect();
        let rebuilt = reconstruct(&all).unwrap();
        assert_eq!(rebuilt[0], doc);
    }

    #[test]
    fn multiple_source_documents() {
        let d1 = store();
        let mut d2 = store();
        d2.name = Some("store2".to_owned());
        let mut frags = Vec::new();
        for d in [&d1, &d2] {
            frags.extend(proj("/Store", &["/Store/Employees"]).apply(d));
            frags.extend(proj("/Store/Employees", &[]).apply(d));
        }
        let rebuilt = reconstruct(&frags).unwrap();
        assert_eq!(rebuilt.len(), 2);
        assert_eq!(rebuilt[0].name.as_deref(), Some("store"));
        assert_eq!(rebuilt[1].name.as_deref(), Some("store2"));
        assert_eq!(rebuilt[0], d1);
    }

    #[test]
    fn middle_position_restored() {
        // prune the MIDDLE child; reinsertion must land between siblings
        let doc = store();
        let f1 = proj("/Store", &["/Store/Items"]).apply(&doc);
        let f2 = proj("/Store/Items", &[]).apply(&doc);
        let all: Vec<Document> = f1.into_iter().chain(f2).collect();
        let rebuilt = reconstruct(&all).unwrap();
        let labels: Vec<&str> =
            rebuilt[0].root().child_elements().map(|c| c.label()).collect();
        assert_eq!(labels, ["Sections", "Items", "Employees"]);
    }

    #[test]
    fn missing_origin_is_error() {
        let doc = store();
        assert!(matches!(
            reconstruct(&[doc]),
            Err(ReconstructError::MissingOrigin { .. })
        ));
    }

    #[test]
    fn missing_base_is_error() {
        let doc = store();
        let f2 = proj("/Store/Items", &[]).apply(&doc);
        // Items alone: its dewey (2) has no base prefix piece... it IS the
        // single piece, so it becomes the base; roundtrip then yields just
        // the Items subtree — which is legitimate (a fragment-only rebuild)
        let rebuilt = reconstruct(&f2).unwrap();
        assert_eq!(rebuilt[0].root_label(), "Items");
    }

    #[test]
    fn overlapping_pieces_rejected() {
        let doc = store();
        let f = proj("/Store/Items", &[]).apply(&doc);
        let twice: Vec<Document> = f.iter().cloned().chain(f.iter().cloned()).collect();
        assert!(matches!(
            reconstruct(&twice),
            Err(ReconstructError::OverlappingPieces { .. })
        ));
    }

    #[test]
    fn unreachable_position_rejected() {
        let doc = store();
        let base = proj("/Store", &["/Store/Items", "/Store/Employees"]).apply(&doc);
        let emp = proj("/Store/Employees", &[]).apply(&doc);
        // Items piece is missing: Employees (original ordinal 3) cannot be
        // placed exactly. Our insert-by-ordinal appends it at the end —
        // which happens to be position 3's slot once Items is absent…
        // after merging, ordinal 3 > 2 children ⇒ append, producing a
        // document that is complete *except* for Items. That is the
        // documented best-effort behaviour: reconstruct succeeds, but the
        // result differs from the source.
        let all: Vec<Document> = base.into_iter().chain(emp).collect();
        let rebuilt = reconstruct(&all).unwrap();
        assert_ne!(rebuilt[0], doc);
        let labels: Vec<&str> =
            rebuilt[0].root().child_elements().map(|c| c.label()).collect();
        assert_eq!(labels, ["Sections", "Employees"]);
    }

    #[test]
    fn deep_prune_chain() {
        // prune at two levels: Store minus Items, Items minus second Item
        let doc = store();
        let f1 = proj("/Store", &["/Store/Items"]).apply(&doc);
        let f2 = proj("/Store/Items", &["/Store/Items/Item[2]"]).apply(&doc);
        let f3 = proj("/Store/Items/Item[2]", &[]).apply(&doc);
        let all: Vec<Document> = f1.into_iter().chain(f2).chain(f3).collect();
        let rebuilt = reconstruct(&all).unwrap();
        assert_eq!(rebuilt[0], doc);
    }
}
