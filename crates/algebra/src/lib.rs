//! # partix-algebra
//!
//! The tree-algebra operators PartiX's fragmentation model is defined in
//! terms of (the paper follows the semantics of TLC \[16], an extension of
//! TAX \[10], because those algebras operate on *collections of documents*):
//!
//! * [`select`] — σ: keep the documents of a collection satisfying a
//!   predicate. Defines **horizontal** fragments.
//! * [`project`] — π<sub>P,Γ</sub>: extract the subtrees rooted at nodes
//!   selected by `P`, pruning the descendants selected by the expressions
//!   in `Γ` (the *prune criterion*). Defines **vertical** fragments.
//! * [`union`] — ∪: reconstruction operator for horizontal fragmentation.
//! * [`reconstruct`] — ⋈: reconstruction join for
//!   vertical fragmentation, re-nesting projected subtrees at their
//!   original positions via the Dewey ids carried in each fragment's
//!   [`Origin`](partix_xml::Origin).

pub mod join;
pub mod ops;

pub use join::{reconstruct, ReconstructError};
pub use ops::{project, select, union, Projection};
