//! Rewriting queries onto vertical fragments.
//!
//! A vertical fragment `F := ⟨C, π_{P,Γ}⟩` stores, for each source
//! document, the subtree rooted at the node selected by `P` — as a
//! document whose root is labelled by `P`'s final step. A query written
//! against the source collection must therefore have its paths re-rooted
//! before it can run on a fragment node. Two situations arise:
//!
//! * a query path **extends** `P` (e.g. query `/article/prolog/title`,
//!   fragment `P = /article/prolog`): strip `P`, prepend the fragment
//!   root label;
//! * a binding path is a **prefix** of `P` (e.g. `for $a in
//!   collection("articles")/article` with the same fragment): bind the
//!   variable to the fragment root instead, and strip the remainder of
//!   `P` from every use of the variable.
//!
//! If any path cannot be rewritten (it leads outside the projected
//! subtree), the query is not answerable by this fragment alone and
//! [`rewrite_for_vertical`] reports [`RewriteError::NeedsOtherFragments`]
//! — the middleware then falls back to reconstruct-then-evaluate.

use crate::ast::{Clause, Expr, PathStart, Query};
use partix_path::{Axis, PathExpr, Step};
use partix_path::NodeTest;
use std::collections::HashMap;
use std::fmt;

/// Why a query could not be rewritten onto a single fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RewriteError {
    /// Some path leaves the projected subtree: the query needs data from
    /// more than this fragment.
    NeedsOtherFragments { path: String },
    /// The query touches documents (`doc(…)`) we cannot re-root.
    UnsupportedDocAccess,
}

impl fmt::Display for RewriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RewriteError::NeedsOtherFragments { path } => {
                write!(f, "path {path} is not contained in the fragment's subtree")
            }
            RewriteError::UnsupportedDocAccess => {
                write!(f, "doc() access cannot be re-rooted onto a fragment")
            }
        }
    }
}

impl std::error::Error for RewriteError {}

/// Rewrite `query` so it runs against vertical fragment collection
/// `frag_collection`, whose documents are the subtrees projected by
/// `frag_path` (an absolute path in the source document) out of source
/// collection `collection`.
pub fn rewrite_for_vertical(
    query: &Query,
    collection: &str,
    frag_path: &PathExpr,
    frag_collection: &str,
) -> Result<Query, RewriteError> {
    let frag_root_step = frag_path
        .last_step()
        .expect("fragment paths have at least one step")
        .clone();
    // variables bound above the fragment root: var → remainder of
    // frag_path below the binding
    let mut var_remainders: HashMap<String, PathExpr> = HashMap::new();
    collect_shallow_bindings(&query.expr, collection, frag_path, &mut var_remainders);

    let mut out = query.clone();
    let mut error: Option<RewriteError> = None;
    out.visit_paths_mut(&mut |ps| {
        if error.is_some() {
            return;
        }
        match &ps.start {
            PathStart::Collection(c) if c == collection => {
                let mut abs = ps.path.clone();
                abs.absolute = true;
                if let Some(rel) = abs.strip_prefix(frag_path) {
                    // path extends P: collection(frag)/<root>/rel
                    let mut steps = vec![Step {
                        axis: Axis::Child,
                        test: frag_root_step.test.clone(),
                        position: None,
                    }];
                    steps.extend(rel.steps);
                    ps.start = PathStart::Collection(frag_collection.to_owned());
                    ps.path = PathExpr { absolute: false, steps };
                } else if frag_path.strip_prefix(&abs).is_some() {
                    // binding above P: bind to the fragment root
                    ps.start = PathStart::Collection(frag_collection.to_owned());
                    ps.path = PathExpr {
                        absolute: false,
                        steps: vec![Step {
                            axis: Axis::Child,
                            test: frag_root_step.test.clone(),
                            position: None,
                        }],
                    };
                } else {
                    error = Some(RewriteError::NeedsOtherFragments { path: abs.to_string() });
                }
            }
            PathStart::Collection(_) => {}
            PathStart::Var(v) => {
                if let Some(remainder) = var_remainders.get(v) {
                    // $v was re-bound to the fragment root; its uses must
                    // pass through the remainder of P
                    match ps.path.strip_prefix(remainder) {
                        Some(rel) => {
                            ps.path = rel;
                        }
                        None => {
                            if ps.path.steps.is_empty() && remainder.steps.is_empty() {
                                // $v used bare and binding == frag root
                            } else {
                                error = Some(RewriteError::NeedsOtherFragments {
                                    path: format!("${v}/{}", ps.path),
                                });
                            }
                        }
                    }
                }
            }
            PathStart::Doc(_) => {}
        }
    });
    match error {
        Some(e) => Err(e),
        None => Ok(out),
    }
}

/// Record, for every `for`/`let` variable bound to a prefix of
/// `frag_path`, the remaining steps of `frag_path` below the binding.
fn collect_shallow_bindings(
    expr: &Expr,
    collection: &str,
    frag_path: &PathExpr,
    out: &mut HashMap<String, PathExpr>,
) {
    if let Expr::Flwor { clauses, where_clause, order_by, ret } = expr {
        for clause in clauses {
            let (Clause::For(b) | Clause::Let(b)) = clause;
            if let Expr::Path(ps) = &b.expr {
                if let PathStart::Collection(c) = &ps.start {
                    if c == collection {
                        let mut abs = ps.path.clone();
                        abs.absolute = true;
                        if let Some(rem) = frag_path.strip_prefix(&abs) {
                            if !rem.steps.is_empty() {
                                out.insert(b.var.clone(), rem);
                            }
                        }
                    }
                }
            }
            collect_shallow_bindings(
                match clause {
                    Clause::For(b) | Clause::Let(b) => &b.expr,
                },
                collection,
                frag_path,
                out,
            );
        }
        if let Some(w) = where_clause {
            collect_shallow_bindings(w, collection, frag_path, out);
        }
        if let Some((k, _)) = order_by {
            collect_shallow_bindings(k, collection, frag_path, out);
        }
        collect_shallow_bindings(ret, collection, frag_path, out);
    } else if let Expr::Call { args, .. } = expr {
        for a in args {
            collect_shallow_bindings(a, collection, frag_path, out);
        }
    } else if let Expr::Cmp { lhs, rhs, .. } = expr {
        collect_shallow_bindings(lhs, collection, frag_path, out);
        collect_shallow_bindings(rhs, collection, frag_path, out);
    } else if let Expr::And(es) | Expr::Or(es) | Expr::Seq(es) = expr {
        for e in es {
            collect_shallow_bindings(e, collection, frag_path, out);
        }
    }
}

/// Rename every reference to `old` collection into `new` — used for
/// horizontal fragments, whose documents keep the source schema.
pub fn rewrite_collection_name(query: &Query, old: &str, new: &str) -> Query {
    let mut out = query.clone();
    out.visit_paths_mut(&mut |ps| {
        if let PathStart::Collection(c) = &mut ps.start {
            if c == old {
                *c = new.to_owned();
            }
        }
    });
    out
}

/// Does the last step of `path` test element name `label`?
pub fn last_step_is(path: &PathExpr, label: &str) -> bool {
    matches!(
        path.last_step().map(|s| &s.test),
        Some(NodeTest::Name(n)) if n == label
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{Evaluator, MemProvider};
    use crate::parser::parse_query;
    use partix_xml::parse as parse_xml;

    fn p(s: &str) -> PathExpr {
        PathExpr::parse(s).unwrap()
    }

    #[test]
    fn rename_horizontal() {
        let q = parse_query(r#"for $i in collection("items")/Item return $i"#).unwrap();
        let r = rewrite_collection_name(&q, "items", "items_f1");
        assert_eq!(r.collections(), ["items_f1"]);
    }

    #[test]
    fn extend_rewrite() {
        // query path extends the fragment path
        let q = parse_query(
            r#"for $t in collection("articles")/article/prolog/title return $t"#,
        )
        .unwrap();
        let r = rewrite_for_vertical(&q, "articles", &p("/article/prolog"), "articles_prolog")
            .unwrap();
        assert_eq!(r.collections(), ["articles_prolog"]);
        // binding is now collection("articles_prolog")/prolog/title
        let mut paths = Vec::new();
        r.visit_paths(&mut |ps| paths.push(ps.to_string()));
        assert_eq!(
            paths,
            ["collection(\"articles_prolog\")/prolog/title", "$t"]
        );
    }

    #[test]
    fn shallow_binding_rewrite_and_equivalence() {
        // $a bound above the fragment root; its uses pass through prolog
        let q = parse_query(
            r#"for $a in collection("articles")/article
               where contains($a/prolog/title, "XML")
               return $a/prolog/title"#,
        )
        .unwrap();
        let r = rewrite_for_vertical(&q, "articles", &p("/article/prolog"), "af1").unwrap();
        let mut paths = Vec::new();
        r.visit_paths(&mut |ps| paths.push(ps.to_string()));
        assert_eq!(
            paths,
            ["collection(\"af1\")/prolog", "$a/title", "$a/title"]
        );

        // semantic check: rewritten query over fragments == original over
        // the source collection
        let article = parse_xml(
            "<article><prolog><title>XML rules</title></prolog><body><abstract>x</abstract></body></article>",
        )
        .unwrap();
        let prolog_frag = parse_xml("<prolog><title>XML rules</title></prolog>").unwrap();
        let mut full = MemProvider::new();
        full.add_collection("articles", [article]);
        let mut fragged = MemProvider::new();
        fragged.add_collection("af1", [prolog_frag]);
        let orig = Evaluator::new(&full).eval(&q).unwrap();
        let rew = Evaluator::new(&fragged).eval(&r).unwrap();
        assert_eq!(orig, rew);
    }

    #[test]
    fn path_outside_fragment_fails() {
        let q = parse_query(
            r#"for $a in collection("articles")/article
               return ($a/prolog/title, $a/epilog/country)"#,
        )
        .unwrap();
        let err =
            rewrite_for_vertical(&q, "articles", &p("/article/prolog"), "af1").unwrap_err();
        assert!(matches!(err, RewriteError::NeedsOtherFragments { .. }));
    }

    #[test]
    fn sibling_collection_path_fails() {
        let q = parse_query(
            r#"for $t in collection("articles")/article/epilog/country return $t"#,
        )
        .unwrap();
        let err =
            rewrite_for_vertical(&q, "articles", &p("/article/prolog"), "af1").unwrap_err();
        assert!(matches!(err, RewriteError::NeedsOtherFragments { .. }));
    }

    #[test]
    fn other_collections_untouched() {
        let q = parse_query(
            r#"for $t in collection("articles")/article/prolog/title,
                   $x in collection("other")/thing
               return $t"#,
        )
        .unwrap();
        let r = rewrite_for_vertical(&q, "articles", &p("/article/prolog"), "af1").unwrap();
        let mut colls = r.collections();
        colls.sort();
        assert_eq!(colls, ["af1", "other"]);
    }

    #[test]
    fn bare_variable_use_with_nonempty_remainder_fails() {
        // $a is rebound to the fragment root but used bare — the caller
        // would receive prolog subtrees instead of articles
        let q = parse_query(
            r#"for $a in collection("articles")/article return $a"#,
        )
        .unwrap();
        let err =
            rewrite_for_vertical(&q, "articles", &p("/article/prolog"), "af1").unwrap_err();
        assert!(matches!(err, RewriteError::NeedsOtherFragments { .. }));
    }

    #[test]
    fn descendant_query_inside_fragment() {
        let q = parse_query(
            r#"count(collection("articles")/article/prolog/authors/author)"#,
        )
        .unwrap();
        let r = rewrite_for_vertical(&q, "articles", &p("/article/prolog"), "af1").unwrap();
        let mut paths = Vec::new();
        r.visit_paths(&mut |ps| paths.push(ps.to_string()));
        assert_eq!(paths, ["collection(\"af1\")/prolog/authors/author"]);
    }
}
