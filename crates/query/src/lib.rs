//! # partix-query
//!
//! An XQuery subset engine — the query language PartiX decomposes and its
//! per-node DBMSs evaluate (the paper ran eXist under each node; this
//! crate is our from-scratch stand-in).
//!
//! ## Supported language
//!
//! * FLWOR expressions: `for $v in …`, `let $v := …`, `where …`,
//!   `order by … [ascending|descending]`, `return …`.
//! * Path expressions rooted at `collection("name")`, `doc("name")` or a
//!   variable: `collection("items")/Item/Section`, `$i//Description`,
//!   with `*`, `//`, positional steps `e[1]` and attribute steps `@a`.
//! * General comparisons with existential semantics: `=`, `!=`, `<`,
//!   `<=`, `>`, `>=`.
//! * Boolean connectives `and`, `or` and functions `not`, `empty`,
//!   `exists`, `contains`, `starts-with`.
//! * Aggregates `count`, `sum`, `avg`, `min`, `max`; plus `string`,
//!   `number`, `string-length`, `concat`, `data`, `distinct-values`.
//! * Direct element constructors with embedded expressions:
//!   `<hit>{$i/Name}</hit>`.
//!
//! This covers every query shape in the paper's evaluation: selections
//! with predicates, text searches, existential tests, and aggregations.
//!
//! ## Beyond evaluation
//!
//! Two analyses make distribution possible:
//!
//! * [`pushdown`] — extracts, from a FLWOR query, the per-document
//!   [`Predicate`](partix_path::Predicate) implied by its `where` clause
//!   and the paths it touches (its *footprint*). The PartiX middleware
//!   matches this footprint against the fragmentation schema to prune
//!   irrelevant fragments, and the storage layer uses it to drive index
//!   scans.
//! * [`rewrite`] — rewrites a query's paths onto a vertical fragment's
//!   re-rooted documents, producing the sub-query actually sent to a node.
//!
//! A third analysis, [`morsel`], enables *intra*-fragment parallelism: it
//! splits a decomposable query at its driving collection scan so the
//! storage engine can evaluate disjoint document batches on worker
//! threads and merge the partials back into the exact sequential answer.

pub mod ast;
pub mod eval;
pub mod func;
pub mod lexer;
pub mod morsel;
pub mod parser;
pub mod pushdown;
pub mod rewrite;
pub mod value;

pub use ast::{Expr, PathSource, PathStart, Query};
pub use eval::{CollectionProvider, EvalError, Evaluator, MemProvider, SortKey};
pub use parser::{parse_query, QueryParseError};
pub use value::{Item, Sequence};
