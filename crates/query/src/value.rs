//! The evaluation data model: items and sequences.

use partix_path::CmpOp;
use partix_xml::{Document, NodeId, NodeKind, Serializer};
use std::fmt;
use std::sync::Arc;

/// One item of a sequence.
#[derive(Debug, Clone)]
pub enum Item {
    /// A node within a shared document.
    Node(Arc<Document>, NodeId),
    Str(String),
    Num(f64),
    Bool(bool),
}

impl Item {
    /// The item's string value (XPath `string()` semantics).
    pub fn string_value(&self) -> String {
        match self {
            Item::Node(doc, id) => {
                let node = doc.get(*id).expect("node belongs to doc");
                match node.kind() {
                    NodeKind::Element => node.text(),
                    _ => node.value().unwrap_or("").to_owned(),
                }
            }
            Item::Str(s) => s.clone(),
            Item::Num(n) => format_number(*n),
            Item::Bool(b) => b.to_string(),
        }
    }

    /// The item's numeric value, if its string value parses.
    pub fn number_value(&self) -> Option<f64> {
        match self {
            Item::Num(n) => Some(*n),
            Item::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => self.string_value().trim().parse().ok(),
        }
    }

    /// Serialize for output: XML for nodes, text otherwise.
    pub fn serialize(&self) -> String {
        match self {
            Item::Node(doc, id) => {
                let node = doc.get(*id).expect("node belongs to doc");
                match node.kind() {
                    NodeKind::Element => {
                        let sub = doc.subtree(*id).expect("element subtree");
                        Serializer::compact().serialize(&sub)
                    }
                    NodeKind::Attribute => {
                        format!("{}=\"{}\"", node.label(), node.value().unwrap_or(""))
                    }
                    NodeKind::Text => node.value().unwrap_or("").to_owned(),
                }
            }
            other => other.string_value(),
        }
    }

    /// Approximate wire size in bytes when shipped between nodes — feeds
    /// the transmission-time model.
    pub fn wire_size(&self) -> usize {
        match self {
            Item::Node(doc, id) => {
                let node = doc.get(*id).expect("node belongs to doc");
                match node.kind() {
                    NodeKind::Element => node
                        .descendants_or_self()
                        .map(|n| match n.kind() {
                            NodeKind::Element => 2 * n.label().len() + 5,
                            NodeKind::Attribute => {
                                n.label().len() + n.value().unwrap_or("").len() + 4
                            }
                            NodeKind::Text => n.value().unwrap_or("").len(),
                        })
                        .sum(),
                    _ => node.label().len() + node.value().unwrap_or("").len() + 4,
                }
            }
            Item::Str(s) => s.len(),
            Item::Num(_) => 8,
            Item::Bool(_) => 5,
        }
    }
}

impl fmt::Display for Item {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.serialize())
    }
}

/// Structural equality for test assertions: nodes compare by subtree
/// content, not identity.
impl PartialEq for Item {
    fn eq(&self, other: &Item) -> bool {
        match (self, other) {
            (Item::Num(a), Item::Num(b)) => a == b,
            (Item::Bool(a), Item::Bool(b)) => a == b,
            (Item::Str(a), Item::Str(b)) => a == b,
            (a @ Item::Node(..), b @ Item::Node(..)) => a.serialize() == b.serialize(),
            _ => false,
        }
    }
}

/// A sequence of items — every expression evaluates to one.
pub type Sequence = Vec<Item>;

/// XPath *effective boolean value*: empty = false, single boolean = its
/// value, single number = non-zero, otherwise (any node / non-empty
/// string) = true.
pub fn effective_boolean(seq: &Sequence) -> bool {
    match seq.as_slice() {
        [] => false,
        [Item::Bool(b)] => *b,
        [Item::Num(n)] => *n != 0.0 && !n.is_nan(),
        [Item::Str(s)] => !s.is_empty(),
        _ => true,
    }
}

/// General comparison with existential semantics: true iff *some* pair of
/// items from the two sequences satisfies `op`. Numeric comparison is used
/// when either side is a number; string comparison otherwise.
pub fn general_compare(lhs: &Sequence, op: CmpOp, rhs: &Sequence) -> bool {
    for a in lhs {
        for b in rhs {
            if value_compare(a, op, b) {
                return true;
            }
        }
    }
    false
}

fn value_compare(a: &Item, op: CmpOp, b: &Item) -> bool {
    let numeric = matches!(a, Item::Num(_)) || matches!(b, Item::Num(_));
    if numeric {
        match (a.number_value(), b.number_value()) {
            (Some(x), Some(y)) => op.holds(&x, &y),
            _ => false,
        }
    } else {
        op.holds(&a.string_value().as_str(), &b.string_value().as_str())
    }
}

/// Render a float like XQuery: integers without a decimal point.
pub fn format_number(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use partix_xml::parse;

    fn node_item(xml: &str) -> Item {
        Item::Node(Arc::new(parse(xml).unwrap()), NodeId::ROOT)
    }

    #[test]
    fn string_values() {
        assert_eq!(node_item("<a><b>x</b><c>y</c></a>").string_value(), "xy");
        assert_eq!(Item::Num(3.0).string_value(), "3");
        assert_eq!(Item::Num(3.5).string_value(), "3.5");
        assert_eq!(Item::Bool(true).string_value(), "true");
    }

    #[test]
    fn serialize_node_is_xml() {
        assert_eq!(node_item("<a><b>x</b></a>").serialize(), "<a><b>x</b></a>");
    }

    #[test]
    fn effective_boolean_rules() {
        assert!(!effective_boolean(&vec![]));
        assert!(!effective_boolean(&vec![Item::Bool(false)]));
        assert!(effective_boolean(&vec![Item::Bool(true)]));
        assert!(!effective_boolean(&vec![Item::Num(0.0)]));
        assert!(effective_boolean(&vec![Item::Num(2.0)]));
        assert!(!effective_boolean(&vec![Item::Str(String::new())]));
        assert!(effective_boolean(&vec![Item::Str("x".into())]));
        assert!(effective_boolean(&vec![node_item("<a/>")]));
        assert!(effective_boolean(&vec![Item::Num(0.0), Item::Num(0.0)]));
    }

    #[test]
    fn general_compare_existential() {
        let lhs = vec![Item::Str("CD".into()), Item::Str("DVD".into())];
        let rhs = vec![Item::Str("CD".into())];
        assert!(general_compare(&lhs, CmpOp::Eq, &rhs));
        assert!(general_compare(&lhs, CmpOp::Ne, &rhs)); // DVD != CD
        assert!(!general_compare(&rhs, CmpOp::Ne, &rhs));
        assert!(!general_compare(&vec![], CmpOp::Eq, &rhs));
    }

    #[test]
    fn numeric_coercion_in_compare() {
        let node = node_item("<p>12.5</p>");
        assert!(general_compare(&vec![node.clone()], CmpOp::Lt, &vec![Item::Num(20.0)]));
        assert!(!general_compare(
            &vec![node_item("<p>abc</p>")],
            CmpOp::Lt,
            &vec![Item::Num(20.0)]
        ));
        // string vs string is lexicographic
        assert!(general_compare(
            &vec![Item::Str("abc".into())],
            CmpOp::Lt,
            &vec![Item::Str("abd".into())]
        ));
    }

    #[test]
    fn wire_size_tracks_content() {
        let small = node_item("<a>x</a>").wire_size();
        let large = node_item("<a>xxxxxxxxxxxxxxxxxxxxxxxx</a>").wire_size();
        assert!(large > small);
    }
}
