//! Abstract syntax of the XQuery subset.

use partix_path::{CmpOp, PathExpr};
use std::fmt;

/// Arithmetic operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "div",
            ArithOp::Mod => "mod",
        })
    }
}

/// Where a path expression starts.
#[derive(Debug, Clone, PartialEq)]
pub enum PathStart {
    /// `collection("name")` — every document of a stored collection.
    Collection(String),
    /// `doc("name")` — one stored document.
    Doc(String),
    /// `$var` — a bound variable.
    Var(String),
}

/// A path expression with its start point. The `path` part is stored as a
/// [`PathExpr`]; for `Collection`/`Doc` starts it is matched absolutely
/// against each document (first step tests the root element), for `Var`
/// starts it is evaluated relative to each bound node.
#[derive(Debug, Clone, PartialEq)]
pub struct PathSource {
    pub start: PathStart,
    pub path: PathExpr,
}

impl fmt::Display for PathSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.start {
            PathStart::Collection(name) => write!(f, "collection(\"{name}\")")?,
            PathStart::Doc(name) => write!(f, "doc(\"{name}\")")?,
            PathStart::Var(name) => write!(f, "${name}")?,
        }
        if !self.path.steps.is_empty() {
            let mut p = self.path.clone();
            p.absolute = true; // render with a leading slash
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

/// A `for` or `let` binding clause.
#[derive(Debug, Clone, PartialEq)]
pub struct Binding {
    pub var: String,
    pub expr: Expr,
}

/// Sort direction of an `order by` key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortDir {
    Ascending,
    Descending,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// FLWOR.
    Flwor {
        /// Interleaved `for`/`let` clauses in source order.
        clauses: Vec<Clause>,
        where_clause: Option<Box<Expr>>,
        order_by: Option<(Box<Expr>, SortDir)>,
        ret: Box<Expr>,
    },
    /// A path from a collection, document, or variable.
    Path(PathSource),
    /// String literal.
    Str(String),
    /// Numeric literal.
    Num(f64),
    /// `lhs θ rhs` — general (existential) comparison.
    Cmp { lhs: Box<Expr>, op: CmpOp, rhs: Box<Expr> },
    /// `lhs ⊕ rhs` — numeric arithmetic over singleton operands.
    Arith { lhs: Box<Expr>, op: ArithOp, rhs: Box<Expr> },
    /// Unary minus.
    Neg(Box<Expr>),
    /// `if (cond) then … else …`.
    If { cond: Box<Expr>, then: Box<Expr>, els: Box<Expr> },
    And(Vec<Expr>),
    Or(Vec<Expr>),
    /// Built-in function call.
    Call { name: String, args: Vec<Expr> },
    /// Direct element constructor `<name a="v">{…}</name>`.
    Element {
        name: String,
        /// Literal attributes.
        attrs: Vec<(String, String)>,
        children: Vec<Expr>,
    },
    /// Literal text inside an element constructor.
    Text(String),
    /// `(e1, e2, …)` — sequence concatenation.
    Seq(Vec<Expr>),
}

/// A `for` or `let` clause.
#[derive(Debug, Clone, PartialEq)]
pub enum Clause {
    For(Binding),
    Let(Binding),
}

/// A parsed query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub expr: Expr,
}

impl Query {
    /// Walk every [`PathSource`] in the query, mutably.
    pub fn visit_paths_mut(&mut self, f: &mut dyn FnMut(&mut PathSource)) {
        visit_expr_paths_mut(&mut self.expr, f);
    }

    /// Walk every [`PathSource`] in the query.
    pub fn visit_paths(&self, f: &mut dyn FnMut(&PathSource)) {
        visit_expr_paths(&self.expr, f);
    }

    /// Names of all collections the query reads.
    pub fn collections(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.visit_paths(&mut |ps| {
            if let PathStart::Collection(name) = &ps.start {
                if !out.contains(name) {
                    out.push(name.clone());
                }
            }
        });
        out
    }
}

fn visit_expr_paths_mut(expr: &mut Expr, f: &mut dyn FnMut(&mut PathSource)) {
    match expr {
        Expr::Path(ps) => f(ps),
        Expr::Flwor { clauses, where_clause, order_by, ret } => {
            for clause in clauses {
                match clause {
                    Clause::For(b) | Clause::Let(b) => visit_expr_paths_mut(&mut b.expr, f),
                }
            }
            if let Some(w) = where_clause {
                visit_expr_paths_mut(w, f);
            }
            if let Some((k, _)) = order_by {
                visit_expr_paths_mut(k, f);
            }
            visit_expr_paths_mut(ret, f);
        }
        Expr::Arith { lhs, rhs, .. } => {
            visit_expr_paths_mut(lhs, f);
            visit_expr_paths_mut(rhs, f);
        }
        Expr::Neg(e) => visit_expr_paths_mut(e, f),
        Expr::If { cond, then, els } => {
            visit_expr_paths_mut(cond, f);
            visit_expr_paths_mut(then, f);
            visit_expr_paths_mut(els, f);
        }
        Expr::Cmp { lhs, rhs, .. } => {
            visit_expr_paths_mut(lhs, f);
            visit_expr_paths_mut(rhs, f);
        }
        Expr::And(es) | Expr::Or(es) | Expr::Seq(es) => {
            for e in es {
                visit_expr_paths_mut(e, f);
            }
        }
        Expr::Call { args, .. } => {
            for a in args {
                visit_expr_paths_mut(a, f);
            }
        }
        Expr::Element { children, .. } => {
            for c in children {
                visit_expr_paths_mut(c, f);
            }
        }
        Expr::Str(_) | Expr::Num(_) | Expr::Text(_) => {}
    }
}

fn visit_expr_paths(expr: &Expr, f: &mut dyn FnMut(&PathSource)) {
    match expr {
        Expr::Path(ps) => f(ps),
        Expr::Flwor { clauses, where_clause, order_by, ret } => {
            for clause in clauses {
                match clause {
                    Clause::For(b) | Clause::Let(b) => visit_expr_paths(&b.expr, f),
                }
            }
            if let Some(w) = where_clause {
                visit_expr_paths(w, f);
            }
            if let Some((k, _)) = order_by {
                visit_expr_paths(k, f);
            }
            visit_expr_paths(ret, f);
        }
        Expr::Arith { lhs, rhs, .. } => {
            visit_expr_paths(lhs, f);
            visit_expr_paths(rhs, f);
        }
        Expr::Neg(e) => visit_expr_paths(e, f),
        Expr::If { cond, then, els } => {
            visit_expr_paths(cond, f);
            visit_expr_paths(then, f);
            visit_expr_paths(els, f);
        }
        Expr::Cmp { lhs, rhs, .. } => {
            visit_expr_paths(lhs, f);
            visit_expr_paths(rhs, f);
        }
        Expr::And(es) | Expr::Or(es) | Expr::Seq(es) => {
            for e in es {
                visit_expr_paths(e, f);
            }
        }
        Expr::Call { args, .. } => {
            for a in args {
                visit_expr_paths(a, f);
            }
        }
        Expr::Element { children, .. } => {
            for c in children {
                visit_expr_paths(c, f);
            }
        }
        Expr::Str(_) | Expr::Num(_) | Expr::Text(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    #[test]
    fn collections_listed_once() {
        let q = parse_query(
            r#"for $i in collection("items")/Item
               where $i/Section = "CD"
               return count(collection("items")/Item)"#,
        )
        .unwrap();
        assert_eq!(q.collections(), ["items"]);
    }

    #[test]
    fn visit_paths_mut_rewrites() {
        let mut q = parse_query(r#"for $i in collection("a")/x return $i/y"#).unwrap();
        q.visit_paths_mut(&mut |ps| {
            if let PathStart::Collection(name) = &mut ps.start {
                *name = "b".to_owned();
            }
        });
        assert_eq!(q.collections(), ["b"]);
    }
}
