//! Morsel decomposition: splitting one query into per-document-batch
//! partials that merge back into the exact sequential answer.
//!
//! PartiX already parallelizes *across* fragments — every node evaluates
//! its sub-query concurrently. But each node's evaluation is sequential,
//! so a single huge fragment bounds the whole query (ROADMAP O3). This
//! module provides the query-level half of intra-fragment parallelism:
//!
//! * [`plan`] decides whether a query is **morsel-decomposable** — safe to
//!   evaluate over disjoint batches ("morsels") of the driving
//!   collection's documents and recombine;
//! * [`eval_partial`] runs the decomposed core over one morsel's
//!   documents;
//! * [`merge`] recombines the partials into the exact sequence the
//!   sequential evaluator would have produced.
//!
//! The storage engine (`partix-storage`) owns the other half: choosing
//! morsel boundaries and running partials on worker threads.
//!
//! ## Decomposability
//!
//! A query decomposes when its result is a function of a single pass over
//! one collection, document by document:
//!
//! 1. it reads **exactly one** `collection(…)` source and no `doc(…)`
//!    sources — so a morsel view serving only its batch can answer every
//!    data access;
//! 2. its core (after peeling single-argument function wrappers like
//!    `count(…)`, `sum(…)`, `string(…)`) is either a bare collection
//!    path or a FLWOR whose **first `for` clause** is bound directly to
//!    the collection path — making that clause the driving loop whose
//!    iteration space the morsels partition.
//!
//! Under these conditions the tuple stream of the full collection is the
//! concatenation of the per-morsel tuple streams (in morsel order =
//! document order), so:
//!
//! * an unordered core's result is the concatenation of morsel results;
//! * an ordered core is evaluated per-morsel *without sorting*, carrying
//!   each tuple's sort key ([`Evaluator::eval_flwor_keyed`]); one global
//!   stable sort at the merge reproduces the sequential semantics
//!   (stable sort ascending, reverse for `descending`) exactly;
//! * wrapper functions are applied once, to the merged sequence —
//!   `f(morsel₁ ++ morsel₂ ++ …)` is by construction the sequential
//!   answer, with no per-function distribution law needed (unlike the
//!   coordinator's fragment composition, which must re-aggregate
//!   `count` as a sum of counts because nodes apply the wrapper
//!   locally).
//!
//! Everything else — nested collection scans (joins), `doc(…)` reads,
//! queries whose first `for` ranges over a variable — falls back to the
//! sequential path by returning `None` from [`plan`].

use crate::ast::{Clause, Expr, PathStart, Query, SortDir};
use crate::eval::{CollectionProvider, EvalError, Evaluator, SortKey};
use crate::func::call_function;
use crate::value::Sequence;

/// A morsel-decomposable query, split at its decomposition point.
#[derive(Debug, Clone)]
pub struct MorselPlan {
    /// The single collection the core scans — morsels partition its
    /// documents.
    pub collection: String,
    /// Single-argument function wrappers peeled off around the core,
    /// innermost first. Applied once, in order, to the merged sequence.
    pub wrappers: Vec<String>,
    /// The decomposition point: a FLWOR driven by the collection, or a
    /// bare collection-rooted path.
    pub core: Expr,
    /// `Some(dir)` when the core carries an `order by` — partials are
    /// then keyed and the merge performs the global sort.
    pub ordered: Option<SortDir>,
}

/// Result of evaluating a plan's core over one morsel.
#[derive(Debug, Clone)]
pub enum MorselPartial {
    /// Unordered core: the core's result items, in document order.
    Plain(Sequence),
    /// Ordered core: per-tuple `(sort key, return items)` pairs, in
    /// document order, *not* sorted yet.
    Keyed(Vec<(SortKey, Sequence)>),
}

/// Decide whether `query` is morsel-decomposable; see the module docs for
/// the exact conditions. Returns `None` when it must run sequentially.
pub fn plan(query: &Query) -> Option<MorselPlan> {
    // condition 1: exactly one collection source, no doc sources
    let mut collections = 0usize;
    let mut docs = 0usize;
    let mut name: Option<String> = None;
    query.visit_paths(&mut |ps| match &ps.start {
        PathStart::Collection(c) => {
            collections += 1;
            name = Some(c.clone());
        }
        PathStart::Doc(_) => docs += 1,
        PathStart::Var(_) => {}
    });
    if collections != 1 || docs != 0 {
        return None;
    }
    let collection = name.expect("counted one collection source");

    // peel single-argument wrappers: count(…), sum(…), string(…), …
    let mut wrappers = Vec::new();
    let mut core = &query.expr;
    while let Expr::Call { name, args } = core {
        if args.len() != 1 {
            return None; // the collection ref hides in a multi-arg call
        }
        wrappers.push(name.clone());
        core = &args[0];
    }
    wrappers.reverse(); // peeled outside-in, applied inside-out

    // condition 2: the core is driven by the collection itself
    let ordered = match core {
        Expr::Path(ps) if matches!(&ps.start, PathStart::Collection(_)) => None,
        Expr::Flwor { clauses, order_by, .. } => {
            let first_for = clauses.iter().find_map(|c| match c {
                Clause::For(b) => Some(b),
                Clause::Let(_) => None,
            })?;
            let Expr::Path(ps) = &first_for.expr else {
                return None;
            };
            if !matches!(&ps.start, PathStart::Collection(_)) {
                return None; // driving loop ranges over a variable/let
            }
            order_by.as_ref().map(|(_, dir)| *dir)
        }
        _ => return None, // collection ref buried in a non-decomposable shape
    };
    Some(MorselPlan { collection, wrappers, core: core.clone(), ordered })
}

/// Evaluate the plan's core over one morsel, served by `provider` (which
/// must answer `collection(plan.collection)` with exactly that morsel's
/// documents — the plan guarantees no other data access occurs).
pub fn eval_partial(
    plan: &MorselPlan,
    provider: &dyn CollectionProvider,
) -> Result<MorselPartial, EvalError> {
    let ev = Evaluator::new(provider);
    match plan.ordered {
        None => Ok(MorselPartial::Plain(ev.eval_root(&plan.core)?)),
        Some(_) => Ok(MorselPartial::Keyed(ev.eval_flwor_keyed(&plan.core)?)),
    }
}

/// Recombine per-morsel partials (in morsel = document order) into the
/// exact sequential answer: concatenate (sorting globally if ordered),
/// then apply the peeled wrappers once.
pub fn merge(
    plan: &MorselPlan,
    partials: Vec<MorselPartial>,
) -> Result<Sequence, EvalError> {
    let mut seq: Sequence = match plan.ordered {
        None => {
            let mut out = Vec::new();
            for p in partials {
                match p {
                    MorselPartial::Plain(items) => out.extend(items),
                    MorselPartial::Keyed(_) => {
                        return Err(EvalError::TypeError(
                            "keyed partial for an unordered plan".into(),
                        ))
                    }
                }
            }
            out
        }
        Some(dir) => {
            let mut keyed: Vec<(SortKey, Sequence)> = Vec::new();
            for p in partials {
                match p {
                    MorselPartial::Keyed(pairs) => keyed.extend(pairs),
                    MorselPartial::Plain(_) => {
                        return Err(EvalError::TypeError(
                            "plain partial for an ordered plan".into(),
                        ))
                    }
                }
            }
            // exactly the sequential evaluator's procedure: stable sort
            // ascending over the full tuple stream, reverse if descending
            keyed.sort_by(|a, b| a.0.compare(&b.0));
            if dir == SortDir::Descending {
                keyed.reverse();
            }
            keyed.into_iter().flat_map(|(_, items)| items).collect()
        }
    };
    for name in &plan.wrappers {
        seq = call_function(name, vec![seq])?;
    }
    Ok(seq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::MemProvider;
    use crate::parser::parse_query;
    use crate::value::Item;
    use partix_xml::parse;

    fn planned(src: &str) -> Option<MorselPlan> {
        plan(&parse_query(src).unwrap())
    }

    #[test]
    fn simple_flwor_is_decomposable() {
        let p = planned(
            r#"for $i in collection("items")/Item where $i/Section = "CD" return $i/Name"#,
        )
        .unwrap();
        assert_eq!(p.collection, "items");
        assert!(p.wrappers.is_empty());
        assert!(p.ordered.is_none());
    }

    #[test]
    fn aggregate_wrappers_peel() {
        let p = planned(
            r#"count(for $i in collection("items")/Item return $i)"#,
        )
        .unwrap();
        assert_eq!(p.wrappers, ["count"]);
        let p = planned(
            r#"string(count(for $i in collection("items")/Item return $i))"#,
        )
        .unwrap();
        // innermost first: count applied before string
        assert_eq!(p.wrappers, ["count", "string"]);
    }

    #[test]
    fn ordered_flwor_records_direction() {
        let p = planned(
            r#"for $i in collection("items")/Item order by number($i/Price) descending return $i/Code"#,
        )
        .unwrap();
        assert_eq!(p.ordered, Some(SortDir::Descending));
    }

    #[test]
    fn bare_collection_path_is_decomposable() {
        let p = planned(r#"count(collection("items")//Description)"#).unwrap();
        assert_eq!(p.wrappers, ["count"]);
        assert!(matches!(p.core, Expr::Path(_)));
    }

    #[test]
    fn nested_collection_scan_is_not() {
        // two collection refs: a correlated join must see all documents
        assert!(planned(
            r#"for $i in collection("items")/Item
               where count(for $j in collection("items")/Item
                           where $j/Section = $i/Section return $j) > 1
               return $i"#,
        )
        .is_none());
    }

    #[test]
    fn doc_access_is_not() {
        assert!(planned(r#"doc("i1")/Item/Name"#).is_none());
        assert!(planned(
            r#"for $i in collection("items")/Item
               where $i/Code = doc("ref")/Ref/Code return $i"#,
        )
        .is_none());
    }

    #[test]
    fn var_driven_first_for_is_not() {
        // the collection ref lives in a let; morsels can't partition it
        assert!(planned(
            r#"for $s in collection("items")/Item/Section return $s"#,
        )
        .is_some());
        assert!(planned(
            r#"let $all := collection("items")/Item
               for $i in $all return $i/Name"#,
        )
        .is_none());
    }

    #[test]
    fn multi_arg_call_blocks_peeling() {
        // concat's second argument hides nothing here, but the collection
        // ref is inside a multi-arg call — conservatively sequential
        assert!(planned(
            r#"concat(string(count(collection("items")/Item)), "x")"#,
        )
        .is_none());
    }

    #[test]
    fn secondary_var_fors_decompose() {
        let p = planned(
            r#"for $i in collection("items")/Item, $p in $i//Picture return $p"#,
        );
        assert!(p.is_some());
    }

    fn items() -> Vec<(&'static str, &'static str)> {
        vec![
            ("i1", "<Item><Code>1</Code><Section>CD</Section><Price>10</Price></Item>"),
            ("i2", "<Item><Code>2</Code><Section>DVD</Section><Price>25</Price></Item>"),
            ("i3", "<Item><Code>3</Code><Section>CD</Section><Price>8</Price></Item>"),
            ("i4", "<Item><Code>4</Code><Section>CD</Section><Price>8</Price></Item>"),
        ]
    }

    /// Evaluate via 2-document morsels and compare against sequential.
    fn assert_morsel_equivalent(src: &str) {
        let q = parse_query(src).unwrap();
        let all = items();
        let mut seq_provider = MemProvider::new();
        seq_provider.add_collection(
            "items",
            all.iter().map(|(n, xml)| {
                let mut d = parse(xml).unwrap();
                d.name = Some((*n).to_owned());
                d
            }),
        );
        let expected = Evaluator::new(&seq_provider).eval(&q).unwrap();

        let p = plan(&q).expect("decomposable");
        let mut partials = Vec::new();
        for chunk in all.chunks(2) {
            let mut view = MemProvider::new();
            view.add_collection(
                "items",
                chunk.iter().map(|(n, xml)| {
                    let mut d = parse(xml).unwrap();
                    d.name = Some((*n).to_owned());
                    d
                }),
            );
            partials.push(eval_partial(&p, &view).unwrap());
        }
        let merged = merge(&p, partials).unwrap();
        let a: Vec<String> = expected.iter().map(Item::serialize).collect();
        let b: Vec<String> = merged.iter().map(Item::serialize).collect();
        assert_eq!(a, b, "morsel result diverged for {src}");
    }

    #[test]
    fn merge_matches_sequential_selection() {
        assert_morsel_equivalent(
            r#"for $i in collection("items")/Item where $i/Section = "CD" return $i/Code"#,
        );
    }

    #[test]
    fn merge_matches_sequential_aggregates() {
        for agg in ["count", "sum", "min", "max", "avg"] {
            assert_morsel_equivalent(&format!(
                r#"{agg}(for $i in collection("items")/Item return number($i/Price))"#
            ));
        }
    }

    #[test]
    fn merge_matches_sequential_order_by() {
        // duplicate keys (8, 8) exercise stable-sort tie-breaking
        assert_morsel_equivalent(
            r#"for $i in collection("items")/Item order by number($i/Price) return $i/Code"#,
        );
        assert_morsel_equivalent(
            r#"for $i in collection("items")/Item order by number($i/Price) descending return $i/Code"#,
        );
    }

    #[test]
    fn merge_matches_sequential_path_only() {
        assert_morsel_equivalent(r#"count(collection("items")//Code)"#);
        assert_morsel_equivalent(r#"collection("items")/Item/Code"#);
    }

    #[test]
    fn mismatched_partial_kinds_error() {
        let q = parse_query(
            r#"for $i in collection("items")/Item order by $i/Code return $i"#,
        )
        .unwrap();
        let p = plan(&q).unwrap();
        assert!(merge(&p, vec![MorselPartial::Plain(vec![])]).is_err());
    }
}
