//! Tokenizer for the XQuery subset.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Bare name: keywords, function names, step names.
    Name(String),
    /// `$name`
    Var(String),
    Str(String),
    Num(f64),
    Slash,
    DoubleSlash,
    At,
    Star,
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Comma,
    Plus,
    Minus,
    Assign, // :=
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// `<` immediately followed by a name start — beginning of a direct
    /// element constructor. Distinguished during lexing by lookahead.
    TagOpen(String),
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Name(n) => write!(f, "{n}"),
            Token::Var(v) => write!(f, "${v}"),
            Token::Str(s) => write!(f, "\"{s}\""),
            Token::Num(n) => write!(f, "{n}"),
            Token::Slash => f.write_str("/"),
            Token::DoubleSlash => f.write_str("//"),
            Token::At => f.write_str("@"),
            Token::Star => f.write_str("*"),
            Token::LParen => f.write_str("("),
            Token::RParen => f.write_str(")"),
            Token::LBracket => f.write_str("["),
            Token::RBracket => f.write_str("]"),
            Token::LBrace => f.write_str("{"),
            Token::RBrace => f.write_str("}"),
            Token::Comma => f.write_str(","),
            Token::Plus => f.write_str("+"),
            Token::Minus => f.write_str("-"),
            Token::Assign => f.write_str(":="),
            Token::Eq => f.write_str("="),
            Token::Ne => f.write_str("!="),
            Token::Lt => f.write_str("<"),
            Token::Le => f.write_str("<="),
            Token::Gt => f.write_str(">"),
            Token::Ge => f.write_str(">="),
            Token::TagOpen(n) => write!(f, "<{n}"),
            Token::Eof => f.write_str("<eof>"),
        }
    }
}

/// A token plus its byte offset (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    pub token: Token,
    pub offset: usize,
}

/// A lexical error.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    pub offset: usize,
    pub message: String,
}

/// Tokenize a query. Comments `(: … :)` are skipped (nesting supported).
pub fn tokenize(input: &str) -> Result<Vec<Spanned>, LexError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let start = pos;
        let b = bytes[pos];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                pos += 1;
            }
            b'(' if bytes.get(pos + 1) == Some(&b':') => {
                // comment, possibly nested
                let mut depth = 1;
                pos += 2;
                while pos < bytes.len() && depth > 0 {
                    if bytes[pos] == b'(' && bytes.get(pos + 1) == Some(&b':') {
                        depth += 1;
                        pos += 2;
                    } else if bytes[pos] == b':' && bytes.get(pos + 1) == Some(&b')') {
                        depth -= 1;
                        pos += 2;
                    } else {
                        pos += 1;
                    }
                }
                if depth > 0 {
                    return Err(LexError { offset: start, message: "unterminated comment".into() });
                }
            }
            b'$' => {
                pos += 1;
                let name = lex_name(input, &mut pos)
                    .ok_or_else(|| LexError { offset: pos, message: "expected variable name".into() })?;
                out.push(Spanned { token: Token::Var(name), offset: start });
            }
            b'"' | b'\'' => {
                let quote = b;
                pos += 1;
                let str_start = pos;
                while pos < bytes.len() && bytes[pos] != quote {
                    pos += 1;
                }
                if pos >= bytes.len() {
                    return Err(LexError { offset: start, message: "unterminated string".into() });
                }
                out.push(Spanned {
                    token: Token::Str(input[str_start..pos].to_owned()),
                    offset: start,
                });
                pos += 1;
            }
            b'0'..=b'9' => {
                while pos < bytes.len()
                    && (bytes[pos].is_ascii_digit() || bytes[pos] == b'.')
                {
                    pos += 1;
                }
                let n: f64 = input[start..pos]
                    .parse()
                    .map_err(|_| LexError { offset: start, message: "invalid number".into() })?;
                out.push(Spanned { token: Token::Num(n), offset: start });
            }
            b'/' => {
                if bytes.get(pos + 1) == Some(&b'/') {
                    out.push(Spanned { token: Token::DoubleSlash, offset: start });
                    pos += 2;
                } else {
                    out.push(Spanned { token: Token::Slash, offset: start });
                    pos += 1;
                }
            }
            b'@' => {
                out.push(Spanned { token: Token::At, offset: start });
                pos += 1;
            }
            b'*' => {
                out.push(Spanned { token: Token::Star, offset: start });
                pos += 1;
            }
            b'(' => {
                out.push(Spanned { token: Token::LParen, offset: start });
                pos += 1;
            }
            b')' => {
                out.push(Spanned { token: Token::RParen, offset: start });
                pos += 1;
            }
            b'[' => {
                out.push(Spanned { token: Token::LBracket, offset: start });
                pos += 1;
            }
            b']' => {
                out.push(Spanned { token: Token::RBracket, offset: start });
                pos += 1;
            }
            b'{' => {
                out.push(Spanned { token: Token::LBrace, offset: start });
                pos += 1;
            }
            b'}' => {
                out.push(Spanned { token: Token::RBrace, offset: start });
                pos += 1;
            }
            b',' => {
                out.push(Spanned { token: Token::Comma, offset: start });
                pos += 1;
            }
            b'+' => {
                out.push(Spanned { token: Token::Plus, offset: start });
                pos += 1;
            }
            b'-' => {
                out.push(Spanned { token: Token::Minus, offset: start });
                pos += 1;
            }
            b':' if bytes.get(pos + 1) == Some(&b'=') => {
                out.push(Spanned { token: Token::Assign, offset: start });
                pos += 2;
            }
            b'=' => {
                out.push(Spanned { token: Token::Eq, offset: start });
                pos += 1;
            }
            b'!' if bytes.get(pos + 1) == Some(&b'=') => {
                out.push(Spanned { token: Token::Ne, offset: start });
                pos += 2;
            }
            b'<' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    out.push(Spanned { token: Token::Le, offset: start });
                    pos += 2;
                } else if bytes
                    .get(pos + 1)
                    .is_some_and(|&c| c.is_ascii_alphabetic() || c == b'_')
                {
                    // direct element constructor
                    pos += 1;
                    let name = lex_name(input, &mut pos)
                        .ok_or_else(|| LexError { offset: pos, message: "bad tag name".into() })?;
                    out.push(Spanned { token: Token::TagOpen(name), offset: start });
                } else {
                    out.push(Spanned { token: Token::Lt, offset: start });
                    pos += 1;
                }
            }
            b'>' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    out.push(Spanned { token: Token::Ge, offset: start });
                    pos += 2;
                } else {
                    out.push(Spanned { token: Token::Gt, offset: start });
                    pos += 1;
                }
            }
            _ => {
                if let Some(name) = lex_name(input, &mut pos) {
                    out.push(Spanned { token: Token::Name(name), offset: start });
                } else {
                    return Err(LexError {
                        offset: start,
                        message: format!("unexpected character {:?}", input[start..].chars().next().unwrap_or('?')),
                    });
                }
            }
        }
    }
    out.push(Spanned { token: Token::Eof, offset: input.len() });
    Ok(out)
}

fn lex_name(input: &str, pos: &mut usize) -> Option<String> {
    let start = *pos;
    let mut chars = input[*pos..].char_indices().peekable();
    match chars.peek() {
        Some((_, c)) if c.is_alphabetic() || *c == '_' => {}
        _ => return None,
    }
    for (i, c) in chars {
        if c.is_alphanumeric() || c == '_' || c == '-' || c == '.' {
            *pos = start + i + c.len_utf8();
        } else {
            break;
        }
    }
    if *pos == start {
        // single-char name
        let c = input[start..].chars().next()?;
        *pos = start + c.len_utf8();
    }
    Some(input[start..*pos].to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        tokenize(src).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn basic_flwor_tokens() {
        let t = toks(r#"for $i in collection("items")/Item where $i/Section = "CD" return $i"#);
        assert_eq!(t[0], Token::Name("for".into()));
        assert_eq!(t[1], Token::Var("i".into()));
        assert!(t.contains(&Token::Str("items".into())));
        assert!(t.contains(&Token::Eq));
        assert_eq!(*t.last().unwrap(), Token::Eof);
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            toks("= != < <= > >= :="),
            [
                Token::Eq,
                Token::Ne,
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge,
                Token::Assign,
                Token::Eof
            ]
        );
    }

    #[test]
    fn tag_open_vs_less_than() {
        let t = toks("<hit> $a < 3");
        assert_eq!(t[0], Token::TagOpen("hit".into()));
        assert_eq!(t[1], Token::Gt);
        assert_eq!(t[3], Token::Lt);
    }

    #[test]
    fn comments_skipped() {
        let t = toks("for (: a comment (: nested :) still :) $i");
        assert_eq!(t, [Token::Name("for".into()), Token::Var("i".into()), Token::Eof]);
    }

    #[test]
    fn numbers_and_paths() {
        let t = toks("/a//b[1] 3.25");
        assert_eq!(
            t,
            [
                Token::Slash,
                Token::Name("a".into()),
                Token::DoubleSlash,
                Token::Name("b".into()),
                Token::LBracket,
                Token::Num(1.0),
                Token::RBracket,
                Token::Num(3.25),
                Token::Eof
            ]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(tokenize(r#" "abc "#).is_err());
        assert!(tokenize("(: never closed").is_err());
    }
}
