//! Built-in functions of the XQuery subset.

use crate::eval::EvalError;
use crate::value::{effective_boolean, format_number, Item, Sequence};

/// Dispatch a function call on already-evaluated arguments.
pub fn call_function(name: &str, mut args: Vec<Sequence>) -> Result<Sequence, EvalError> {
    match name {
        "count" => {
            let arg = one_arg(name, &mut args)?;
            Ok(vec![Item::Num(arg.len() as f64)])
        }
        "sum" => {
            let arg = one_arg(name, &mut args)?;
            let mut total = 0.0;
            for item in &arg {
                total += item.number_value().ok_or_else(|| {
                    EvalError::TypeError(format!(
                        "sum(): item {:?} is not numeric",
                        item.string_value()
                    ))
                })?;
            }
            Ok(vec![Item::Num(total)])
        }
        "avg" => {
            let arg = one_arg(name, &mut args)?;
            if arg.is_empty() {
                return Ok(vec![]);
            }
            let mut total = 0.0;
            for item in &arg {
                total += item.number_value().ok_or_else(|| {
                    EvalError::TypeError(format!(
                        "avg(): item {:?} is not numeric",
                        item.string_value()
                    ))
                })?;
            }
            Ok(vec![Item::Num(total / arg.len() as f64)])
        }
        "min" | "max" => {
            let arg = one_arg(name, &mut args)?;
            if arg.is_empty() {
                return Ok(vec![]);
            }
            // numeric if every item is numeric; else string comparison
            let nums: Option<Vec<f64>> = arg.iter().map(Item::number_value).collect();
            match nums {
                Some(nums) => {
                    let v = if name == "min" {
                        nums.into_iter().fold(f64::INFINITY, f64::min)
                    } else {
                        nums.into_iter().fold(f64::NEG_INFINITY, f64::max)
                    };
                    Ok(vec![Item::Num(v)])
                }
                None => {
                    let mut strs: Vec<String> =
                        arg.iter().map(Item::string_value).collect();
                    strs.sort();
                    let v = if name == "min" {
                        strs.remove(0)
                    } else {
                        strs.pop().expect("non-empty")
                    };
                    Ok(vec![Item::Str(v)])
                }
            }
        }
        "empty" => {
            let arg = one_arg(name, &mut args)?;
            Ok(vec![Item::Bool(arg.is_empty())])
        }
        "exists" => {
            let arg = one_arg(name, &mut args)?;
            Ok(vec![Item::Bool(!arg.is_empty())])
        }
        "not" => {
            let arg = one_arg(name, &mut args)?;
            Ok(vec![Item::Bool(!effective_boolean(&arg))])
        }
        "contains" => {
            let (haystack, needle) = two_args(name, &mut args)?;
            let needle = first_string(&needle);
            Ok(vec![Item::Bool(
                haystack.iter().any(|item| item.string_value().contains(&needle)),
            )])
        }
        "starts-with" => {
            let (haystack, needle) = two_args(name, &mut args)?;
            let needle = first_string(&needle);
            Ok(vec![Item::Bool(
                haystack.iter().any(|item| item.string_value().starts_with(&needle)),
            )])
        }
        "string" => {
            let arg = one_arg(name, &mut args)?;
            Ok(match arg.first() {
                Some(item) => vec![Item::Str(item.string_value())],
                None => vec![Item::Str(String::new())],
            })
        }
        "number" => {
            let arg = one_arg(name, &mut args)?;
            Ok(match arg.first().and_then(Item::number_value) {
                Some(n) => vec![Item::Num(n)],
                None => vec![],
            })
        }
        "string-length" => {
            let arg = one_arg(name, &mut args)?;
            let len = arg.first().map_or(0, |i| i.string_value().chars().count());
            Ok(vec![Item::Num(len as f64)])
        }
        "concat" => {
            let mut out = String::new();
            for arg in &args {
                if let Some(item) = arg.first() {
                    out.push_str(&item.string_value());
                }
            }
            Ok(vec![Item::Str(out)])
        }
        "data" => {
            let arg = one_arg(name, &mut args)?;
            Ok(arg.iter().map(|i| Item::Str(i.string_value())).collect())
        }
        "distinct-values" => {
            let arg = one_arg(name, &mut args)?;
            let mut seen = std::collections::HashSet::new();
            let mut out = Vec::new();
            for item in &arg {
                let v = item.string_value();
                if seen.insert(v.clone()) {
                    out.push(Item::Str(v));
                }
            }
            Ok(out)
        }
        "round" => {
            let arg = one_arg(name, &mut args)?;
            Ok(match arg.first().and_then(Item::number_value) {
                Some(n) => vec![Item::Num(n.round())],
                None => vec![],
            })
        }
        "string-join" => {
            let (items, sep) = two_args(name, &mut args)?;
            let sep = first_string(&sep);
            let joined = items
                .iter()
                .map(Item::string_value)
                .collect::<Vec<_>>()
                .join(&sep);
            Ok(vec![Item::Str(joined)])
        }
        _ => Err(EvalError::UnknownFunction(name.to_owned())),
    }
}

fn one_arg(name: &str, args: &mut Vec<Sequence>) -> Result<Sequence, EvalError> {
    if args.len() != 1 {
        return Err(EvalError::BadArity {
            function: name.to_owned(),
            expected: 1,
            found: args.len(),
        });
    }
    Ok(args.pop().expect("checked length"))
}

fn two_args(name: &str, args: &mut Vec<Sequence>) -> Result<(Sequence, Sequence), EvalError> {
    if args.len() != 2 {
        return Err(EvalError::BadArity {
            function: name.to_owned(),
            expected: 2,
            found: args.len(),
        });
    }
    let second = args.pop().expect("checked length");
    let first = args.pop().expect("checked length");
    Ok((first, second))
}

fn first_string(seq: &Sequence) -> String {
    seq.first().map(Item::string_value).unwrap_or_default()
}

/// Render a sequence the way the PartiX driver ships results: one line
/// per item.
pub fn serialize_sequence(seq: &Sequence) -> String {
    let mut out = String::new();
    for (i, item) in seq.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        match item {
            Item::Num(n) => out.push_str(&format_number(*n)),
            other => out.push_str(&other.serialize()),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn num(n: f64) -> Sequence {
        vec![Item::Num(n)]
    }

    #[test]
    fn count_sum_avg() {
        let seq = vec![Item::Num(1.0), Item::Num(2.0), Item::Num(3.0)];
        assert_eq!(call_function("count", vec![seq.clone()]).unwrap(), num(3.0));
        assert_eq!(call_function("sum", vec![seq.clone()]).unwrap(), num(6.0));
        assert_eq!(call_function("avg", vec![seq]).unwrap(), num(2.0));
        assert_eq!(call_function("count", vec![vec![]]).unwrap(), num(0.0));
        assert_eq!(call_function("sum", vec![vec![]]).unwrap(), num(0.0));
        assert_eq!(call_function("avg", vec![vec![]]).unwrap(), vec![]);
    }

    #[test]
    fn sum_type_error() {
        let seq = vec![Item::Str("abc".into())];
        assert!(matches!(
            call_function("sum", vec![seq]),
            Err(EvalError::TypeError(_))
        ));
    }

    #[test]
    fn min_max_numeric_and_string() {
        let nums = vec![Item::Num(5.0), Item::Num(2.0), Item::Num(9.0)];
        assert_eq!(call_function("min", vec![nums.clone()]).unwrap(), num(2.0));
        assert_eq!(call_function("max", vec![nums]).unwrap(), num(9.0));
        let strs = vec![Item::Str("pear".into()), Item::Str("apple".into())];
        assert_eq!(
            call_function("min", vec![strs.clone()]).unwrap(),
            vec![Item::Str("apple".into())]
        );
        assert_eq!(
            call_function("max", vec![strs]).unwrap(),
            vec![Item::Str("pear".into())]
        );
    }

    #[test]
    fn boolean_functions() {
        assert_eq!(
            call_function("empty", vec![vec![]]).unwrap(),
            vec![Item::Bool(true)]
        );
        assert_eq!(
            call_function("exists", vec![num(1.0)]).unwrap(),
            vec![Item::Bool(true)]
        );
        assert_eq!(
            call_function("not", vec![vec![Item::Bool(true)]]).unwrap(),
            vec![Item::Bool(false)]
        );
    }

    #[test]
    fn string_functions() {
        assert_eq!(
            call_function(
                "contains",
                vec![vec![Item::Str("a good record".into())], vec![Item::Str("good".into())]]
            )
            .unwrap(),
            vec![Item::Bool(true)]
        );
        assert_eq!(
            call_function(
                "concat",
                vec![vec![Item::Str("a".into())], vec![Item::Str("b".into())]]
            )
            .unwrap(),
            vec![Item::Str("ab".into())]
        );
        assert_eq!(
            call_function("string-length", vec![vec![Item::Str("maçã".into())]]).unwrap(),
            num(4.0)
        );
        assert_eq!(
            call_function(
                "string-join",
                vec![
                    vec![Item::Str("a".into()), Item::Str("b".into())],
                    vec![Item::Str(",".into())]
                ]
            )
            .unwrap(),
            vec![Item::Str("a,b".into())]
        );
    }

    #[test]
    fn distinct_values() {
        let seq = vec![
            Item::Str("CD".into()),
            Item::Str("DVD".into()),
            Item::Str("CD".into()),
        ];
        assert_eq!(
            call_function("distinct-values", vec![seq]).unwrap(),
            vec![Item::Str("CD".into()), Item::Str("DVD".into())]
        );
    }

    #[test]
    fn arity_errors() {
        assert!(matches!(
            call_function("count", vec![]),
            Err(EvalError::BadArity { .. })
        ));
        assert!(matches!(
            call_function("contains", vec![vec![]]),
            Err(EvalError::BadArity { .. })
        ));
    }

    #[test]
    fn unknown_function() {
        assert!(matches!(
            call_function("frobnicate", vec![]),
            Err(EvalError::UnknownFunction(_))
        ));
    }

    #[test]
    fn sequence_serialization() {
        let seq = vec![Item::Num(3.0), Item::Str("x".into())];
        assert_eq!(serialize_sequence(&seq), "3\nx");
    }
}
