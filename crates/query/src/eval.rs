//! The query evaluator.

use crate::ast::{Clause, Expr, PathSource, PathStart, Query, SortDir};
use crate::func::call_function;
use crate::value::{effective_boolean, general_compare, Item, Sequence};
use partix_path::eval_path_from;
use partix_path::PathExpr;
use partix_xml::{Document, NodeId, NodeKind};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Supplies stored collections/documents to the evaluator — implemented
/// by the storage engine (`partix-storage`) and, for tests, by
/// [`MemProvider`].
pub trait CollectionProvider {
    /// All documents of a collection. Unknown names yield an error.
    fn collection(&self, name: &str) -> Result<Vec<Arc<Document>>, EvalError>;

    /// A single stored document by name.
    fn document(&self, name: &str) -> Result<Arc<Document>, EvalError>;

    /// Optional index-assisted pre-filter: documents of `name` that *may*
    /// satisfy `predicate`. The default scans everything; storage engines
    /// override this with index lookups. Implementations may
    /// over-approximate but must never drop a qualifying document.
    fn collection_filtered(
        &self,
        name: &str,
        predicate: &partix_path::Predicate,
    ) -> Result<Vec<Arc<Document>>, EvalError> {
        let _ = predicate;
        self.collection(name)
    }
}

/// Evaluation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    UnknownCollection(String),
    UnknownDocument(String),
    UnboundVariable(String),
    UnknownFunction(String),
    BadArity { function: String, expected: usize, found: usize },
    TypeError(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnknownCollection(n) => write!(f, "unknown collection {n:?}"),
            EvalError::UnknownDocument(n) => write!(f, "unknown document {n:?}"),
            EvalError::UnboundVariable(v) => write!(f, "unbound variable ${v}"),
            EvalError::UnknownFunction(n) => write!(f, "unknown function {n}()"),
            EvalError::BadArity { function, expected, found } => {
                write!(f, "{function}() expects {expected} argument(s), got {found}")
            }
            EvalError::TypeError(msg) => write!(f, "type error: {msg}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// In-memory collection provider for tests and examples.
#[derive(Debug, Default)]
pub struct MemProvider {
    collections: HashMap<String, Vec<Arc<Document>>>,
}

impl MemProvider {
    pub fn new() -> MemProvider {
        MemProvider::default()
    }

    pub fn add_collection(
        &mut self,
        name: &str,
        docs: impl IntoIterator<Item = Document>,
    ) -> &mut Self {
        self.collections
            .entry(name.to_owned())
            .or_default()
            .extend(docs.into_iter().map(Arc::new));
        self
    }
}

impl CollectionProvider for MemProvider {
    fn collection(&self, name: &str) -> Result<Vec<Arc<Document>>, EvalError> {
        self.collections
            .get(name)
            .cloned()
            .ok_or_else(|| EvalError::UnknownCollection(name.to_owned()))
    }

    fn document(&self, name: &str) -> Result<Arc<Document>, EvalError> {
        for docs in self.collections.values() {
            if let Some(d) = docs.iter().find(|d| d.name.as_deref() == Some(name)) {
                return Ok(Arc::clone(d));
            }
        }
        Err(EvalError::UnknownDocument(name.to_owned()))
    }
}

/// The evaluator: borrows a provider, evaluates queries against it.
pub struct Evaluator<'a> {
    provider: &'a dyn CollectionProvider,
}

impl<'a> Evaluator<'a> {
    pub fn new(provider: &'a dyn CollectionProvider) -> Evaluator<'a> {
        Evaluator { provider }
    }

    /// Evaluate a whole query.
    pub fn eval(&self, query: &Query) -> Result<Sequence, EvalError> {
        let env = Env::default();
        self.eval_expr(&query.expr, &env)
    }

    fn eval_expr(&self, expr: &Expr, env: &Env) -> Result<Sequence, EvalError> {
        match expr {
            Expr::Str(s) => Ok(vec![Item::Str(s.clone())]),
            Expr::Num(n) => Ok(vec![Item::Num(*n)]),
            Expr::Text(t) => Ok(vec![Item::Str(t.clone())]),
            Expr::Path(ps) => self.eval_path_source(ps, env),
            Expr::Seq(es) => {
                let mut out = Vec::new();
                for e in es {
                    out.extend(self.eval_expr(e, env)?);
                }
                Ok(out)
            }
            Expr::Cmp { lhs, op, rhs } => {
                let l = self.eval_expr(lhs, env)?;
                let r = self.eval_expr(rhs, env)?;
                Ok(vec![Item::Bool(general_compare(&l, *op, &r))])
            }
            Expr::Arith { lhs, op, rhs } => {
                // XQuery arithmetic: empty operand -> empty result;
                // otherwise atomize the first item of each side
                let l = self.eval_expr(lhs, env)?;
                let r = self.eval_expr(rhs, env)?;
                let (Some(a), Some(b)) = (l.first(), r.first()) else {
                    return Ok(vec![]);
                };
                let (Some(a), Some(b)) = (a.number_value(), b.number_value()) else {
                    return Err(EvalError::TypeError(format!(
                        "arithmetic {op} needs numeric operands"
                    )));
                };
                use crate::ast::ArithOp;
                let v = match op {
                    ArithOp::Add => a + b,
                    ArithOp::Sub => a - b,
                    ArithOp::Mul => a * b,
                    ArithOp::Div => a / b,
                    ArithOp::Mod => a % b,
                };
                Ok(vec![Item::Num(v)])
            }
            Expr::Neg(e) => {
                let v = self.eval_expr(e, env)?;
                match v.first() {
                    None => Ok(vec![]),
                    Some(item) => match item.number_value() {
                        Some(n) => Ok(vec![Item::Num(-n)]),
                        None => Err(EvalError::TypeError(
                            "unary minus needs a numeric operand".into(),
                        )),
                    },
                }
            }
            Expr::If { cond, then, els } => {
                if effective_boolean(&self.eval_expr(cond, env)?) {
                    self.eval_expr(then, env)
                } else {
                    self.eval_expr(els, env)
                }
            }
            Expr::And(es) => {
                for e in es {
                    if !effective_boolean(&self.eval_expr(e, env)?) {
                        return Ok(vec![Item::Bool(false)]);
                    }
                }
                Ok(vec![Item::Bool(true)])
            }
            Expr::Or(es) => {
                for e in es {
                    if effective_boolean(&self.eval_expr(e, env)?) {
                        return Ok(vec![Item::Bool(true)]);
                    }
                }
                Ok(vec![Item::Bool(false)])
            }
            Expr::Call { name, args } => {
                let mut arg_values = Vec::with_capacity(args.len());
                for a in args {
                    arg_values.push(self.eval_expr(a, env)?);
                }
                call_function(name, arg_values)
            }
            Expr::Element { name, attrs, children } => {
                let mut doc = Document::new(name);
                for (k, v) in attrs {
                    doc.add_attribute(NodeId::ROOT, k, v);
                }
                for child in children {
                    let seq = self.eval_expr(child, env)?;
                    for item in seq {
                        append_item(&mut doc, NodeId::ROOT, &item);
                    }
                }
                Ok(vec![Item::Node(Arc::new(doc), NodeId::ROOT)])
            }
            Expr::Flwor { clauses, where_clause, order_by, ret } => {
                let mut tuples = self.flwor_tuples(clauses, where_clause.as_deref(), env)?;
                if let Some((key, dir)) = order_by {
                    let mut keyed: Vec<(SortKey, Env)> = Vec::with_capacity(tuples.len());
                    for tuple in tuples {
                        let seq = self.eval_expr(key, &tuple)?;
                        keyed.push((SortKey::from_sequence(&seq), tuple));
                    }
                    keyed.sort_by(|a, b| a.0.compare(&b.0));
                    if *dir == SortDir::Descending {
                        keyed.reverse();
                    }
                    tuples = keyed.into_iter().map(|(_, t)| t).collect();
                }
                let mut out = Vec::new();
                for tuple in &tuples {
                    out.extend(self.eval_expr(ret, tuple)?);
                }
                Ok(out)
            }
        }
    }

    /// Materialize a FLWOR's tuple stream: expand `for`/`let` clauses in
    /// source order, then apply the `where` filter. Tuples come out in
    /// binding order (document order for collection-driven clauses) —
    /// `order by` is *not* applied here.
    fn flwor_tuples(
        &self,
        clauses: &[Clause],
        where_clause: Option<&Expr>,
        env: &Env,
    ) -> Result<Vec<Env>, EvalError> {
        let mut tuples = vec![env.clone()];
        for clause in clauses {
            match clause {
                Clause::For(binding) => {
                    let mut next = Vec::new();
                    for tuple in &tuples {
                        let seq = self.eval_expr(&binding.expr, tuple)?;
                        for item in seq {
                            let mut t = tuple.clone();
                            t.bind(&binding.var, vec![item]);
                            next.push(t);
                        }
                    }
                    tuples = next;
                }
                Clause::Let(binding) => {
                    for tuple in &mut tuples {
                        let seq = self.eval_expr(&binding.expr, tuple)?;
                        tuple.bind(&binding.var, seq);
                    }
                }
            }
        }
        if let Some(w) = where_clause {
            let mut kept = Vec::with_capacity(tuples.len());
            for tuple in tuples {
                if effective_boolean(&self.eval_expr(w, &tuple)?) {
                    kept.push(tuple);
                }
            }
            tuples = kept;
        }
        Ok(tuples)
    }

    /// Evaluate a bare expression with no bindings in scope — the entry
    /// point morsel execution uses to run a decomposed query core.
    pub fn eval_root(&self, expr: &Expr) -> Result<Sequence, EvalError> {
        self.eval_expr(expr, &Env::default())
    }

    /// Evaluate an ordered FLWOR **without sorting**, returning each
    /// surviving tuple's sort key alongside its `return` items, in tuple
    /// (document) order. Morsel execution concatenates these partials
    /// across morsels and performs one global stable sort at the merge —
    /// yielding exactly the sequence the sequential evaluator produces
    /// (which also stable-sorts the full tuple stream).
    pub fn eval_flwor_keyed(
        &self,
        expr: &Expr,
    ) -> Result<Vec<(SortKey, Sequence)>, EvalError> {
        let Expr::Flwor { clauses, where_clause, order_by, ret } = expr else {
            return Err(EvalError::TypeError(
                "keyed evaluation needs an ordered FLWOR".into(),
            ));
        };
        let Some((key, _)) = order_by else {
            return Err(EvalError::TypeError(
                "keyed evaluation needs an order by clause".into(),
            ));
        };
        let env = Env::default();
        let tuples = self.flwor_tuples(clauses, where_clause.as_deref(), &env)?;
        let mut out = Vec::with_capacity(tuples.len());
        for tuple in &tuples {
            let k = SortKey::from_sequence(&self.eval_expr(key, tuple)?);
            out.push((k, self.eval_expr(ret, tuple)?));
        }
        Ok(out)
    }

    fn eval_path_source(&self, ps: &PathSource, env: &Env) -> Result<Sequence, EvalError> {
        match &ps.start {
            PathStart::Collection(name) => {
                let docs = self.provider.collection(name)?;
                let mut out = Vec::new();
                for doc in docs {
                    for id in eval_absolute(&doc, &ps.path) {
                        out.push(Item::Node(Arc::clone(&doc), id));
                    }
                }
                Ok(out)
            }
            PathStart::Doc(name) => {
                let doc = self.provider.document(name)?;
                Ok(eval_absolute(&doc, &ps.path)
                    .into_iter()
                    .map(|id| Item::Node(Arc::clone(&doc), id))
                    .collect())
            }
            PathStart::Var(var) => {
                let bound = env.lookup(var)?;
                if ps.path.steps.is_empty() {
                    return Ok(bound.clone());
                }
                let mut out = Vec::new();
                for item in bound {
                    if let Item::Node(doc, id) = item {
                        for hit in eval_path_from(doc, &[*id], &ps.path) {
                            out.push(Item::Node(Arc::clone(doc), hit));
                        }
                    }
                }
                Ok(out)
            }
        }
    }
}

/// Evaluate a stored relative path against a document as if absolute
/// (first step tests the root element) — the `collection("c")/Item`
/// convention.
fn eval_absolute(doc: &Document, path: &PathExpr) -> Vec<NodeId> {
    let mut p = path.clone();
    p.absolute = true;
    partix_path::eval_path(doc, &p)
}

/// Variable bindings.
#[derive(Debug, Clone, Default)]
struct Env {
    vars: HashMap<String, Sequence>,
}

impl Env {
    fn bind(&mut self, var: &str, seq: Sequence) {
        self.vars.insert(var.to_owned(), seq);
    }

    fn lookup(&self, var: &str) -> Result<&Sequence, EvalError> {
        self.vars
            .get(var)
            .ok_or_else(|| EvalError::UnboundVariable(var.to_owned()))
    }
}

/// Orderable key for `order by`: numeric when possible, else string.
///
/// Public so morsel execution can carry per-tuple keys across the merge
/// boundary (see [`Evaluator::eval_flwor_keyed`]).
#[derive(Debug, Clone, PartialEq)]
pub enum SortKey {
    Empty,
    Num(f64),
    Str(String),
}

impl SortKey {
    pub fn from_sequence(seq: &Sequence) -> SortKey {
        match seq.first() {
            None => SortKey::Empty,
            Some(item) => match item.number_value() {
                Some(n) => SortKey::Num(n),
                None => SortKey::Str(item.string_value()),
            },
        }
    }

    /// Total order over keys (named `compare` rather than implementing
    /// `Ord`: NaN keys collapse to `Equal`, which `Ord` must not do).
    pub fn compare(&self, other: &SortKey) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        match (self, other) {
            (SortKey::Empty, SortKey::Empty) => Ordering::Equal,
            (SortKey::Empty, _) => Ordering::Less,
            (_, SortKey::Empty) => Ordering::Greater,
            (SortKey::Num(a), SortKey::Num(b)) => a.partial_cmp(b).unwrap_or(Ordering::Equal),
            (SortKey::Str(a), SortKey::Str(b)) => a.cmp(b),
            (SortKey::Num(_), SortKey::Str(_)) => Ordering::Less,
            (SortKey::Str(_), SortKey::Num(_)) => Ordering::Greater,
        }
    }
}

/// Append an item into a document being constructed.
fn append_item(doc: &mut Document, parent: NodeId, item: &Item) {
    match item {
        Item::Node(src, id) => {
            let node = src.get(*id).expect("node belongs to doc");
            match node.kind() {
                NodeKind::Element => {
                    doc.graft(parent, src, *id);
                }
                NodeKind::Attribute => {
                    doc.add_attribute(parent, node.label(), node.value().unwrap_or(""));
                }
                NodeKind::Text => {
                    doc.add_text(parent, node.value().unwrap_or(""));
                }
            }
        }
        other => {
            doc.add_text(parent, &other.string_value());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use partix_xml::parse;

    fn provider() -> MemProvider {
        let mut p = MemProvider::new();
        let docs = [
            ("i1", r#"<Item><Code>1</Code><Name>Kind of Blue</Name><Section>CD</Section><Price>10</Price><Characteristics><Description>a good jazz record</Description></Characteristics></Item>"#),
            ("i2", r#"<Item><Code>2</Code><Name>Brazil</Name><Section>DVD</Section><Price>25</Price><Characteristics><Description>dystopia</Description></Characteristics></Item>"#),
            ("i3", r#"<Item><Code>3</Code><Name>Hunky Dory</Name><Section>CD</Section><Price>8</Price><Characteristics><Description>good rock</Description></Characteristics><PictureList><Picture><OriginalPath>p.jpg</OriginalPath></Picture></PictureList></Item>"#),
        ];
        p.add_collection(
            "items",
            docs.iter().map(|(name, xml)| {
                let mut d = parse(xml).unwrap();
                d.name = Some((*name).to_owned());
                d
            }),
        );
        p
    }

    fn run(src: &str) -> Sequence {
        let p = provider();
        let q = parse_query(src).unwrap();
        Evaluator::new(&p).eval(&q).unwrap()
    }

    fn run_strings(src: &str) -> Vec<String> {
        run(src).iter().map(Item::serialize).collect()
    }

    #[test]
    fn selection_by_predicate() {
        let names = run_strings(
            r#"for $i in collection("items")/Item
               where $i/Section = "CD"
               return $i/Name"#,
        );
        assert_eq!(names, ["<Name>Kind of Blue</Name>", "<Name>Hunky Dory</Name>"]);
    }

    #[test]
    fn text_search_contains() {
        let names = run_strings(
            r#"for $i in collection("items")/Item
               where contains($i//Description, "good")
               return $i/Code"#,
        );
        assert_eq!(names, ["<Code>1</Code>", "<Code>3</Code>"]);
    }

    #[test]
    fn aggregation_count() {
        let out = run(r#"count(for $i in collection("items")/Item where $i/Section = "CD" return $i)"#);
        assert_eq!(out, vec![Item::Num(2.0)]);
    }

    #[test]
    fn aggregation_sum_avg_min_max() {
        let out = run(r#"sum(for $i in collection("items")/Item return number($i/Price))"#);
        assert_eq!(out, vec![Item::Num(43.0)]);
        let out = run(r#"avg(for $i in collection("items")/Item return number($i/Price))"#);
        assert!(matches!(out[0], Item::Num(n) if (n - 43.0 / 3.0).abs() < 1e-9));
        let out = run(r#"min(for $i in collection("items")/Item return number($i/Price))"#);
        assert_eq!(out, vec![Item::Num(8.0)]);
        let out = run(r#"max(for $i in collection("items")/Item return number($i/Price))"#);
        assert_eq!(out, vec![Item::Num(25.0)]);
    }

    #[test]
    fn numeric_where() {
        let names = run_strings(
            r#"for $i in collection("items")/Item where $i/Price < 20 return $i/Code"#,
        );
        assert_eq!(names, ["<Code>1</Code>", "<Code>3</Code>"]);
    }

    #[test]
    fn existential_where() {
        let names = run_strings(
            r#"for $i in collection("items")/Item where exists($i/PictureList) return $i/Code"#,
        );
        assert_eq!(names, ["<Code>3</Code>"]);
        let names = run_strings(
            r#"for $i in collection("items")/Item where empty($i/PictureList) return $i/Code"#,
        );
        assert_eq!(names, ["<Code>1</Code>", "<Code>2</Code>"]);
    }

    #[test]
    fn order_by_price() {
        let codes = run_strings(
            r#"for $i in collection("items")/Item
               order by number($i/Price)
               return $i/Code"#,
        );
        assert_eq!(codes, ["<Code>3</Code>", "<Code>1</Code>", "<Code>2</Code>"]);
        let codes = run_strings(
            r#"for $i in collection("items")/Item
               order by number($i/Price) descending
               return $i/Code"#,
        );
        assert_eq!(codes, ["<Code>2</Code>", "<Code>1</Code>", "<Code>3</Code>"]);
    }

    #[test]
    fn let_binding() {
        let out = run_strings(
            r#"for $i in collection("items")/Item
               let $d := $i//Description
               where contains($d, "jazz")
               return $d"#,
        );
        assert_eq!(out, ["<Description>a good jazz record</Description>"]);
    }

    #[test]
    fn element_construction() {
        let out = run_strings(
            r#"for $i in collection("items")/Item
               where $i/Code = "1"
               return <hit section="CD">{$i/Name}</hit>"#,
        );
        assert_eq!(out, [r#"<hit section="CD"><Name>Kind of Blue</Name></hit>"#]);
    }

    #[test]
    fn nested_flwor() {
        let out = run(
            r#"count(for $i in collection("items")/Item
                     where count(for $j in collection("items")/Item
                                 where $j/Section = $i/Section return $j) > 1
                     return $i)"#,
        );
        assert_eq!(out, vec![Item::Num(2.0)]); // two CDs
    }

    #[test]
    fn doc_access() {
        let p = provider();
        let q = parse_query(r#"doc("i2")/Item/Name"#).unwrap();
        let out = Evaluator::new(&p).eval(&q).unwrap();
        assert_eq!(out[0].serialize(), "<Name>Brazil</Name>");
    }

    #[test]
    fn unknown_collection_error() {
        let p = provider();
        let q = parse_query(r#"for $i in collection("nope")/x return $i"#).unwrap();
        assert!(matches!(
            Evaluator::new(&p).eval(&q),
            Err(EvalError::UnknownCollection(_))
        ));
    }

    #[test]
    fn unbound_variable_error() {
        let p = provider();
        let q = parse_query(r#"for $i in collection("items")/Item return $zzz"#).unwrap();
        assert!(matches!(
            Evaluator::new(&p).eval(&q),
            Err(EvalError::UnboundVariable(_))
        ));
    }

    #[test]
    fn attribute_results() {
        let mut p = MemProvider::new();
        p.add_collection("c", [parse(r#"<a id="7"><b/></a>"#).unwrap()]);
        let q = parse_query(r#"for $x in collection("c")/a return $x/@id"#).unwrap();
        let out = Evaluator::new(&p).eval(&q).unwrap();
        assert_eq!(out[0].serialize(), "id=\"7\"");
        assert_eq!(out[0].string_value(), "7");
    }

    #[test]
    fn descendant_path_from_collection() {
        let out = run(r#"count(collection("items")//Description)"#);
        assert_eq!(out, vec![Item::Num(3.0)]);
    }

    #[test]
    fn arithmetic_evaluation() {
        let out = run(r#"1 + 2 * 3 - 4"#);
        assert_eq!(out, vec![Item::Num(3.0)]);
        let out = run(r#"10 div 4"#);
        assert_eq!(out, vec![Item::Num(2.5)]);
        let out = run(r#"10 mod 3"#);
        assert_eq!(out, vec![Item::Num(1.0)]);
        let out = run(r#"-(2 + 3)"#);
        assert_eq!(out, vec![Item::Num(-5.0)]);
    }

    #[test]
    fn arithmetic_over_node_values() {
        // prices: 10, 25, 8 — doubled and filtered (20 is not > 20)
        let codes = run_strings(
            r#"for $i in collection("items")/Item
               where $i/Price * 2 > 20 return $i/Code"#,
        );
        assert_eq!(codes, ["<Code>2</Code>"]);
        let out = run(r#"sum(for $i in collection("items")/Item return $i/Price + 1)"#);
        assert_eq!(out, vec![Item::Num(46.0)]);
    }

    #[test]
    fn arithmetic_empty_operand_is_empty() {
        let out = run(r#"for $i in collection("items")/Item where $i/Code = "1" return $i/Nothing + 1"#);
        assert!(out.is_empty());
    }

    #[test]
    fn conditional_evaluation() {
        let out = run_strings(
            r#"for $i in collection("items")/Item
               order by number($i/Code)
               return if ($i/Price > 20) then concat($i/Code, ":pricey")
                      else concat($i/Code, ":cheap")"#,
        );
        assert_eq!(out, ["1:cheap", "2:pricey", "3:cheap"]);
    }

    #[test]
    fn multiple_fors_cross_product() {
        let out = run(
            r#"count(for $i in collection("items")/Item, $j in collection("items")/Item return $i)"#,
        );
        assert_eq!(out, vec![Item::Num(9.0)]);
    }
}
