//! Predicate pushdown and footprint extraction.
//!
//! Given a FLWOR query, [`analyze`] recovers:
//!
//! * the **driving clause** — the first `for` bound to a
//!   `collection(…)` path, which determines the collection the query
//!   scans;
//! * a **document predicate** — a [`Predicate`] over single documents
//!   that is *necessary* for a document to contribute any result tuple.
//!   The storage layer turns it into index probes; the middleware matches
//!   it against horizontal fragmentation predicates for localization;
//! * the **footprint** — every absolute path the query touches,
//!   used to decide which vertical fragments are relevant.
//!
//! The translation is deliberately conservative: whenever a `where`
//! conjunct cannot be soundly expressed as a per-document condition it is
//! dropped (weakening the filter, never losing documents).

use crate::ast::{Clause, Expr, PathStart, Query};
use partix_path::pred::{BoolFn, ValueFn};
use partix_path::{PathExpr, Predicate, Value};
use std::collections::HashMap;

/// Result of query analysis.
#[derive(Debug, Clone)]
pub struct QueryAnalysis {
    /// Collection scanned by the driving `for` clause.
    pub collection: String,
    /// Variable bound by the driving clause.
    pub var: String,
    /// Absolute path of the driving binding (e.g. `/Item`).
    pub binding_path: PathExpr,
    /// Per-document necessary condition extracted from `where`; `None`
    /// when nothing sound could be extracted.
    pub doc_predicate: Option<Predicate>,
    /// Exact per-*tuple* predicate: the `where` clause translated with
    /// paths rooted at the driving binding's node (e.g. `/Item/Section`
    /// when the binding is `/Store/Items/Item`). This is the space hybrid
    /// fragment predicates live in, enabling unit-level localization.
    pub tuple_predicate: Option<Predicate>,
    /// Absolute paths the query touches (deduplicated).
    pub footprint: Vec<PathExpr>,
}

/// Analyze a query. Returns `None` for queries without a
/// `for $v in collection(…)…` driving clause (e.g. bare `doc(…)` reads).
pub fn analyze(query: &Query) -> Option<QueryAnalysis> {
    // unwrap an aggregation wrapper: count(FLWOR), sum(FLWOR), …
    let Some(flwor @ Expr::Flwor { .. }) = find_flwor(&query.expr) else {
        return analyze_pathonly(query);
    };
    let Expr::Flwor { clauses, where_clause, .. } = flwor else {
        unreachable!("matched above");
    };
    // driving clause + variable → absolute-path environment
    let mut var_paths: HashMap<&str, (String, PathExpr)> = HashMap::new();
    let mut driving: Option<(String, String, PathExpr)> = None;
    for clause in clauses {
        let (Clause::For(b) | Clause::Let(b)) = clause;
        if let Expr::Path(ps) = &b.expr {
            let resolved = match &ps.start {
                PathStart::Collection(c) => {
                    let mut p = ps.path.clone();
                    p.absolute = true;
                    Some((c.clone(), p))
                }
                PathStart::Var(v) => var_paths.get(v.as_str()).map(|(c, base)| {
                    (c.clone(), base.join(&ps.path))
                }),
                PathStart::Doc(_) => None,
            };
            if let Some((coll, abs)) = resolved {
                var_paths.insert(&b.var, (coll.clone(), abs.clone()));
                if driving.is_none() && matches!(clause, Clause::For(_)) {
                    driving = Some((coll, b.var.clone(), abs));
                }
            }
        }
    }
    let (collection, var, binding_path) = driving?;
    // the translation is exact (per-tuple == per-document) when the
    // driving binding selects the document root: a single step
    let exact = binding_path.steps.len() == 1 && !binding_path.has_wildcards();
    let doc_predicate = where_clause.as_ref().and_then(|w| {
        translate(w, &var, &binding_path, &var_paths, exact)
    });
    // tuple-space translation: the driving binding's node becomes the
    // (pseudo) document root, so translation is exact per tuple
    let tuple_predicate = where_clause.as_ref().and_then(|w| {
        // correlated collection scans inside `where` cannot be expressed
        // in tuple space — skip translation (conservative: no pruning)
        let mut has_collection_paths = false;
        visit_expr_collection_paths(w, &mut has_collection_paths);
        if has_collection_paths {
            return None;
        }
        let pseudo = PathExpr {
            absolute: true,
            steps: binding_path.steps.last().cloned().into_iter().collect(),
        };
        // rebuild the variable environment in tuple space: only chains
        // hanging off the driving variable resolve
        let mut tuple_vars: HashMap<&str, (String, PathExpr)> = HashMap::new();
        tuple_vars.insert(var.as_str(), (collection.clone(), pseudo.clone()));
        for clause in clauses {
            let (Clause::For(b) | Clause::Let(b)) = clause;
            if let Expr::Path(ps) = &b.expr {
                if let PathStart::Var(v) = &ps.start {
                    if let Some((coll, base)) = tuple_vars.get(v.as_str()) {
                        let joined = (coll.clone(), base.join(&ps.path));
                        tuple_vars.insert(&b.var, joined);
                    }
                }
            }
        }
        translate(w, &var, &pseudo, &tuple_vars, true)
    });
    // footprint: every *value* path — paths whose selected nodes feed
    // comparisons, functions, or the result. `for`/`let` clauses that
    // merely bind a variable to a path are skipped: a binding alone does
    // not read data, so it must not make fragments relevant (a bare use
    // of the variable re-introduces the path from the use site).
    let mut footprint: Vec<PathExpr> = Vec::new();
    collect_value_paths(&query.expr, &collection, &var_paths, &mut footprint);
    if footprint.is_empty() {
        // queries that only iterate bindings (e.g. count the binding):
        // the binding itself is the data being read
        footprint.push(binding_path.clone());
    }
    Some(QueryAnalysis {
        collection,
        var,
        binding_path,
        doc_predicate,
        tuple_predicate,
        footprint,
    })
}

/// Collect value paths (see [`analyze`]) into `out`.
fn collect_value_paths(
    expr: &Expr,
    collection: &str,
    var_paths: &HashMap<&str, (String, PathExpr)>,
    out: &mut Vec<PathExpr>,
) {
    let mut push = |ps: &crate::ast::PathSource| {
        let abs = match &ps.start {
            PathStart::Collection(c) if c == collection => {
                let mut p = ps.path.clone();
                p.absolute = true;
                Some(p)
            }
            PathStart::Var(v) => var_paths
                .get(v.as_str())
                .filter(|(c, _)| c == collection)
                .map(|(_, base)| base.join(&ps.path)),
            _ => None,
        };
        if let Some(abs) = abs {
            if !out.contains(&abs) {
                out.push(abs);
            }
        }
    };
    match expr {
        Expr::Path(ps) => push(ps),
        Expr::Flwor { clauses, where_clause, order_by, ret } => {
            for clause in clauses {
                let (Clause::For(b) | Clause::Let(b)) = clause;
                // a plain path binding is not a read; anything else is
                if !matches!(b.expr, Expr::Path(_)) {
                    collect_value_paths(&b.expr, collection, var_paths, out);
                }
            }
            if let Some(w) = where_clause {
                collect_value_paths(w, collection, var_paths, out);
            }
            if let Some((k, _)) = order_by {
                collect_value_paths(k, collection, var_paths, out);
            }
            collect_value_paths(ret, collection, var_paths, out);
        }
        Expr::Cmp { lhs, rhs, .. } => {
            collect_value_paths(lhs, collection, var_paths, out);
            collect_value_paths(rhs, collection, var_paths, out);
        }
        Expr::And(es) | Expr::Or(es) | Expr::Seq(es) => {
            for e in es {
                collect_value_paths(e, collection, var_paths, out);
            }
        }
        Expr::Call { args, .. } => {
            for a in args {
                collect_value_paths(a, collection, var_paths, out);
            }
        }
        Expr::Element { children, .. } => {
            for c in children {
                collect_value_paths(c, collection, var_paths, out);
            }
        }
        Expr::Arith { lhs, rhs, .. } => {
            collect_value_paths(lhs, collection, var_paths, out);
            collect_value_paths(rhs, collection, var_paths, out);
        }
        Expr::Neg(e) => collect_value_paths(e, collection, var_paths, out),
        Expr::If { cond, then, els } => {
            collect_value_paths(cond, collection, var_paths, out);
            collect_value_paths(then, collection, var_paths, out);
            collect_value_paths(els, collection, var_paths, out);
        }
        Expr::Str(_) | Expr::Num(_) | Expr::Text(_) => {}
    }
}

/// Does `expr` contain a `collection(…)`-rooted path?
fn visit_expr_collection_paths(expr: &Expr, found: &mut bool) {
    let probe = Query { expr: expr.clone() };
    probe.visit_paths(&mut |ps| {
        if matches!(ps.start, PathStart::Collection(_) | PathStart::Doc(_)) {
            *found = true;
        }
    });
}

/// Fallback analysis for queries without a FLWOR core — e.g.
/// `count(collection("items")//Description)`. The first collection path
/// becomes the driving binding (its first step) and every collection path
/// joins the footprint; no document predicate is extractable.
fn analyze_pathonly(query: &Query) -> Option<QueryAnalysis> {
    let mut collection: Option<String> = None;
    let mut binding: Option<PathExpr> = None;
    let mut footprint: Vec<PathExpr> = Vec::new();
    query.visit_paths(&mut |ps| {
        if let PathStart::Collection(c) = &ps.start {
            let mut abs = ps.path.clone();
            abs.absolute = true;
            if collection.is_none() {
                collection = Some(c.clone());
                binding = Some(PathExpr {
                    absolute: true,
                    steps: abs.steps.first().cloned().into_iter().collect(),
                });
            }
            if collection.as_deref() == Some(c.as_str()) && !footprint.contains(&abs) {
                footprint.push(abs);
            }
        }
    });
    Some(QueryAnalysis {
        collection: collection?,
        var: String::new(),
        binding_path: binding?,
        doc_predicate: None,
        tuple_predicate: None,
        footprint,
    })
}

/// Peel aggregation wrappers to find the FLWOR core.
fn find_flwor(expr: &Expr) -> Option<&Expr> {
    match expr {
        Expr::Flwor { .. } => Some(expr),
        Expr::Call { args, .. } if args.len() == 1 => find_flwor(&args[0]),
        Expr::Cmp { lhs, .. } => find_flwor(lhs),
        _ => None,
    }
}

/// Translate a where-expression into a per-document [`Predicate`].
///
/// In `exact` mode every construct is translated faithfully. Otherwise
/// only *existentially sound* constructs survive: a predicate that holds
/// of some tuple must hold of the whole document.
fn translate(
    expr: &Expr,
    var: &str,
    binding: &PathExpr,
    var_paths: &HashMap<&str, (String, PathExpr)>,
    exact: bool,
) -> Option<Predicate> {
    match expr {
        Expr::And(es) => {
            // drop untranslatable conjuncts: weaker but still necessary
            let parts: Vec<Predicate> = es
                .iter()
                .filter_map(|e| translate(e, var, binding, var_paths, exact))
                .collect();
            match parts.len() {
                0 => None,
                1 => parts.into_iter().next(),
                _ => Some(Predicate::And(parts)),
            }
        }
        Expr::Or(es) => {
            // every disjunct must translate, else the condition is lost
            let parts: Vec<Predicate> = es
                .iter()
                .map(|e| translate(e, var, binding, var_paths, exact))
                .collect::<Option<_>>()?;
            Some(Predicate::Or(parts))
        }
        Expr::Cmp { lhs, op, rhs } => {
            let (path_expr, literal, op) = match (&**lhs, &**rhs) {
                (Expr::Path(ps), lit) => (ps, lit, *op),
                (lit, Expr::Path(ps)) => (ps, lit, op.flip()),
                _ if exact => return translate_fncmp(expr, var, binding, var_paths),
                _ => return None,
            };
            let abs = resolve(path_expr, var, binding, var_paths)?;
            let value = match literal {
                Expr::Str(s) => Value::Str(s.clone()),
                Expr::Num(n) => Value::Num(*n),
                _ => return None,
            };
            Some(Predicate::Cmp { path: abs, op, value })
        }
        Expr::Call { name, args } => match (name.as_str(), args.as_slice()) {
            ("contains", [Expr::Path(ps), Expr::Str(s)]) => {
                let abs = resolve(ps, var, binding, var_paths)?;
                Some(Predicate::Bool(BoolFn::Contains(abs, s.clone())))
            }
            ("starts-with", [Expr::Path(ps), Expr::Str(s)]) => {
                let abs = resolve(ps, var, binding, var_paths)?;
                Some(Predicate::Bool(BoolFn::StartsWith(abs, s.clone())))
            }
            ("exists", [Expr::Path(ps)]) => {
                let abs = resolve(ps, var, binding, var_paths)?;
                Some(Predicate::Exists(abs))
            }
            ("empty", [Expr::Path(ps)]) if exact => {
                let abs = resolve(ps, var, binding, var_paths)?;
                Some(Predicate::Bool(BoolFn::Empty(abs)))
            }
            ("not", [inner]) if exact => {
                let p = translate(inner, var, binding, var_paths, exact)?;
                Some(Predicate::Not(Box::new(p)))
            }
            ("count", _) => None, // handled only inside Cmp below
            _ => None,
        },
        // count($v/p) θ n — exact mode only
        _ if exact => translate_fncmp(expr, var, binding, var_paths),
        Expr::Path(ps) => {
            // bare path in boolean context: existential test
            let abs = resolve(ps, var, binding, var_paths)?;
            Some(Predicate::Exists(abs))
        }
        _ => None,
    }
}

fn translate_fncmp(
    expr: &Expr,
    var: &str,
    binding: &PathExpr,
    var_paths: &HashMap<&str, (String, PathExpr)>,
) -> Option<Predicate> {
    let Expr::Cmp { lhs, op, rhs } = expr else {
        if let Expr::Path(ps) = expr {
            let abs = resolve(ps, var, binding, var_paths)?;
            return Some(Predicate::Exists(abs));
        }
        return None;
    };
    let (call, lit, op) = match (&**lhs, &**rhs) {
        (Expr::Call { name, args }, lit) => ((name, args), lit, *op),
        (lit, Expr::Call { name, args }) => ((name, args), lit, op.flip()),
        _ => return None,
    };
    let func = match call.0.as_str() {
        "count" => ValueFn::Count,
        "string-length" => ValueFn::StringLength,
        "number" => ValueFn::Number,
        _ => return None,
    };
    let [Expr::Path(ps)] = call.1.as_slice() else {
        return None;
    };
    let abs = resolve(ps, var, binding, var_paths)?;
    let value = match lit {
        Expr::Str(s) => Value::Str(s.clone()),
        Expr::Num(n) => Value::Num(*n),
        _ => return None,
    };
    Some(Predicate::FnCmp { func, path: abs, op, value })
}

/// Resolve a path source to an absolute per-document path.
fn resolve(
    ps: &crate::ast::PathSource,
    var: &str,
    binding: &PathExpr,
    var_paths: &HashMap<&str, (String, PathExpr)>,
) -> Option<PathExpr> {
    match &ps.start {
        PathStart::Var(v) if v == var => Some(binding.join(&ps.path)),
        PathStart::Var(v) => var_paths.get(v.as_str()).map(|(_, base)| base.join(&ps.path)),
        PathStart::Collection(_) => {
            let mut p = ps.path.clone();
            p.absolute = true;
            Some(p)
        }
        PathStart::Doc(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use partix_xml::parse as parse_xml;

    fn analysis(src: &str) -> QueryAnalysis {
        analyze(&parse_query(src).unwrap()).expect("analyzable")
    }

    #[test]
    fn simple_selection() {
        let a = analysis(
            r#"for $i in collection("items")/Item where $i/Section = "CD" return $i/Name"#,
        );
        assert_eq!(a.collection, "items");
        assert_eq!(a.var, "i");
        assert_eq!(a.binding_path.to_string(), "/Item");
        assert_eq!(a.doc_predicate.unwrap().to_string(), "/Item/Section = \"CD\"");
        // value paths only: the bare binding /Item is not read
        let fp: Vec<String> = a.footprint.iter().map(|p| p.to_string()).collect();
        assert_eq!(fp, ["/Item/Section", "/Item/Name"]);
    }

    #[test]
    fn pushed_predicate_matches_eval() {
        // the pushdown predicate must agree with actual query semantics
        let a = analysis(
            r#"for $i in collection("items")/Item
               where $i/Section = "CD" and contains($i//Description, "good")
               return $i"#,
        );
        let pred = a.doc_predicate.unwrap();
        let matching = parse_xml(
            "<Item><Section>CD</Section><Characteristics><Description>good</Description></Characteristics></Item>",
        )
        .unwrap();
        let non1 = parse_xml("<Item><Section>DVD</Section><Characteristics><Description>good</Description></Characteristics></Item>").unwrap();
        let non2 = parse_xml("<Item><Section>CD</Section><Characteristics><Description>bad</Description></Characteristics></Item>").unwrap();
        assert!(pred.eval(&matching));
        assert!(!pred.eval(&non1));
        assert!(!pred.eval(&non2));
    }

    #[test]
    fn aggregation_wrapper_unwrapped() {
        let a = analysis(
            r#"count(for $i in collection("items")/Item where $i/Section = "CD" return $i)"#,
        );
        assert!(a.doc_predicate.is_some());
    }

    #[test]
    fn count_predicate_in_exact_mode() {
        let a = analysis(
            r#"for $i in collection("items")/Item
               where count($i/PictureList/Picture) >= 2
               return $i"#,
        );
        assert_eq!(
            a.doc_predicate.unwrap().to_string(),
            "count(/Item/PictureList/Picture) >= 2"
        );
    }

    #[test]
    fn deep_binding_is_inexact_drops_not() {
        // binding /Store/Items/Item is 3 steps → inexact; not() is dropped
        let a = analysis(
            r#"for $i in collection("store")/Store/Items/Item
               where not(contains($i/Name, "x")) and $i/Section = "CD"
               return $i"#,
        );
        // only the sound conjunct survives
        assert_eq!(
            a.doc_predicate.unwrap().to_string(),
            "/Store/Items/Item/Section = \"CD\""
        );
    }

    #[test]
    fn or_requires_all_disjuncts() {
        let a = analysis(
            r#"for $i in collection("items")/Item
               where $i/Section = "CD" or $i/Section = "DVD"
               return $i"#,
        );
        assert_eq!(
            a.doc_predicate.unwrap().to_string(),
            "(/Item/Section = \"CD\") or (/Item/Section = \"DVD\")"
        );
    }

    #[test]
    fn let_chains_resolve() {
        let a = analysis(
            r#"for $i in collection("items")/Item
               let $c := $i/Characteristics
               where contains($c/Description, "good")
               return $i"#,
        );
        assert_eq!(
            a.doc_predicate.unwrap().to_string(),
            "contains(/Item/Characteristics/Description, \"good\")"
        );
    }

    #[test]
    fn reversed_comparison_flips() {
        let a = analysis(
            r#"for $i in collection("items")/Item where 20 > $i/Price return $i"#,
        );
        assert_eq!(a.doc_predicate.unwrap().to_string(), "/Item/Price < 20");
    }

    #[test]
    fn non_flwor_returns_none() {
        let q = parse_query(r#"doc("d")/a/b"#).unwrap();
        assert!(analyze(&q).is_none());
    }

    #[test]
    fn footprint_includes_descendant_paths() {
        let a = analysis(
            r#"for $i in collection("items")/Item
               where contains($i//Description, "good") return $i/Name"#,
        );
        let fp: Vec<String> = a.footprint.iter().map(|p| p.to_string()).collect();
        assert!(fp.contains(&"/Item//Description".to_owned()));
    }
}
